"""Tests for QoS-tier admission control and load shedding."""

from __future__ import annotations

import dataclasses

import pytest

from repro.fleet.admission import AdmissionController, default_tiers
from repro.fleet.jobs import JobRecord
from repro.runtime.qos import MissBudget, QosTier


def job(jid: str, tier: str, runtime: float = 100.0, limit: float = 400.0) -> JobRecord:
    return JobRecord(
        job_id=jid,
        tenant="t",
        tier=tier,
        app="a",
        submit_ms=0.0,
        cores=1,
        runtime_ms=runtime,
        limit_ms=limit,
        deadline_ms=1e9,
        priority={"gold": 2, "silver": 1, "bronze": 0}.get(tier, 0),
    )


def tight_tiers() -> dict[str, QosTier]:
    """Deliberately tight contracts so a small burst triggers shedding."""
    return {
        "gold": QosTier(
            name="gold",
            priority=2,
            wait_budget_ms=100.0,
            max_pending=4,
            miss_budget=0.01,
            sheddable=False,
        ),
        "silver": QosTier(
            name="silver",
            priority=1,
            wait_budget_ms=200.0,
            max_pending=4,
            miss_budget=0.05,
            shed_wait_factor=2.0,
        ),
        "bronze": QosTier(
            name="bronze",
            priority=0,
            wait_budget_ms=200.0,
            max_pending=2,
            miss_budget=0.20,
            shed_wait_factor=1.0,
        ),
    }


class TestQosTier:
    def test_shed_wait_ms(self):
        t = QosTier(
            name="x",
            priority=0,
            wait_budget_ms=100.0,
            max_pending=8,
            miss_budget=0.1,
            shed_wait_factor=3.0,
        )
        assert t.shed_wait_ms == 300.0
        assert t.wait_budget().require() == 100.0

    def test_validation(self):
        with pytest.raises(ValueError):
            QosTier("x", 0, -1.0, 8, 0.1)
        with pytest.raises(ValueError):
            QosTier("x", 0, 100.0, 0, 0.1)
        with pytest.raises(ValueError):
            QosTier("x", 0, 100.0, 8, 1.5)
        with pytest.raises(ValueError):
            QosTier("x", 0, 100.0, 8, 0.1, shed_wait_factor=0.5)


class TestMissBudget:
    def test_burn(self):
        b = MissBudget(0.1)
        for missed in (False, False, False, True):
            b.record(missed)
        assert b.miss_rate == 0.25
        assert b.burn() == pytest.approx(2.5)


class TestAdmission:
    def test_gold_never_shed(self):
        ctl = AdmissionController(tight_tiers(), capacity_core_speed=1.0)
        # Monstrous projected wait and deep queue: gold still admits.
        for i in range(50):
            decision = ctl.on_submit(job(f"g{i}", "gold"), backlog_core_ms=1e9)
            assert decision.admitted

    def test_depth_cap_sheds(self):
        ctl = AdmissionController(tight_tiers(), capacity_core_speed=1.0)
        outcomes = [
            ctl.on_submit(job(f"b{i}", "bronze"), backlog_core_ms=0.0)
            for i in range(4)
        ]
        assert [d.admitted for d in outcomes] == [True, True, False, False]
        assert outcomes[2].reason == "pending-depth"

    def test_projected_wait_sheds(self):
        ctl = AdmissionController(tight_tiers(), capacity_core_speed=1.0)
        # bronze sheds at factor 1.0 x 200 ms; silver at 2.0 x 200 ms.
        backlog = 300.0  # projected wait 300 ms at ratio 1, capacity 1
        assert not ctl.on_submit(job("b0", "bronze"), backlog).admitted
        assert ctl.on_submit(job("s0", "silver"), backlog).admitted
        assert not ctl.on_submit(job("s1", "silver"), 500.0).admitted

    def test_bronze_sheds_before_silver_under_ramp(self):
        """As the backlog ramps up, the bronze threshold trips first."""
        ctl = AdmissionController(tight_tiers(), capacity_core_speed=1.0)
        first_shed = {}
        for backlog in (100.0, 250.0, 450.0):
            for tier in ("silver", "bronze"):
                d = ctl.on_submit(job(f"{tier}-{backlog}", tier), backlog)
                if not d.admitted and tier not in first_shed:
                    first_shed[tier] = backlog
                if d.admitted:
                    # keep depth below the cap for this test
                    ctl.on_start(job(f"{tier}-{backlog}", tier), 0.0)
        assert first_shed["bronze"] < first_shed["silver"]

    def test_calibration_converges_on_padding_factor(self):
        """Completions teach the controller the tenants' padding, so
        the projected wait drops toward the true backlog scale."""
        ctl = AdmissionController(default_tiers(), capacity_core_speed=1.0)
        assert ctl.limit_ratio == 1.0
        raw = ctl.projected_wait_ms(1000.0)
        assert raw == pytest.approx(1000.0)
        for i in range(100):
            # runtime 100 of limit 400: padding factor 4
            ctl.on_finish(job(f"j{i}", "silver"), finish_ms=100.0)
        assert ctl.limit_ratio == pytest.approx(0.25, abs=0.01)
        assert ctl.projected_wait_ms(1000.0) == pytest.approx(250.0, rel=0.05)

    def test_unknown_tier_raises(self):
        ctl = AdmissionController(tight_tiers(), capacity_core_speed=1.0)
        with pytest.raises(ValueError, match="unknown QoS tier"):
            ctl.on_submit(job("x", "platinum"), 0.0)

    def test_tier_report_shape(self):
        ctl = AdmissionController(tight_tiers(), capacity_core_speed=1.0)
        ctl.on_submit(job("g0", "gold"), 0.0)
        ctl.on_start(job("g0", "gold"), 50.0)
        ctl.on_finish(job("g0", "gold"), 150.0)
        report = ctl.tier_report()
        assert sorted(report) == ["bronze", "gold", "silver"]
        gold = report["gold"]
        assert gold["admitted"] == 1
        assert gold["shed"] == 0
        assert gold["deadline_misses"] == 0
        assert gold["wait_violations"] == 0


def app_job(jid: str, app: str, tier: str = "bronze") -> JobRecord:
    return dataclasses.replace(job(jid, tier), app=app)


class TestAppEnvelope:
    """The statically-proven feasibility-envelope precheck."""

    def _controller(self, caps):
        return AdmissionController(default_tiers(), 100.0, app_caps=caps)

    def test_arrival_beyond_cap_is_shed(self):
        ctl = self._controller({"sb": 1})
        assert ctl.on_submit(app_job("j1", "sb"), 0.0).admitted
        decision = ctl.on_submit(app_job("j2", "sb"), 0.0)
        assert not decision.admitted
        assert decision.reason == "app-envelope"

    def test_uncapped_app_is_unaffected(self):
        ctl = self._controller({"sb": 1})
        for i in range(5):
            assert ctl.on_submit(app_job(f"j{i}", "other"), 0.0).admitted

    def test_gold_is_never_shed_but_counts(self):
        ctl = self._controller({"sb": 1})
        assert ctl.on_submit(app_job("g1", "sb", tier="gold"), 0.0).admitted
        # Gold ignores the cap by contract ...
        assert ctl.on_submit(app_job("g2", "sb", tier="gold"), 0.0).admitted
        assert ctl.app_inflight("sb") == 2
        # ... but its in-flight jobs still block sheddable arrivals.
        assert not ctl.on_submit(app_job("b1", "sb"), 0.0).admitted

    def test_finish_frees_the_slot(self):
        ctl = self._controller({"sb": 1})
        j1 = app_job("j1", "sb")
        assert ctl.on_submit(j1, 0.0).admitted
        assert not ctl.on_submit(app_job("j2", "sb"), 0.0).admitted
        ctl.on_start(j1, 0.0)
        ctl.on_finish(j1, 100.0)
        assert ctl.app_inflight("sb") == 0
        assert ctl.on_submit(app_job("j3", "sb"), 0.0).admitted

    def test_zero_cap_sheds_everything_sheddable(self):
        ctl = self._controller({"sb": 0})
        decision = ctl.on_submit(app_job("j1", "sb"), 0.0)
        assert not decision.admitted and decision.reason == "app-envelope"

    def test_negative_cap_rejected(self):
        with pytest.raises(ValueError):
            self._controller({"sb": -1})

    def test_app_report_shape(self):
        ctl = self._controller({"sb": 1})
        ctl.on_submit(app_job("j1", "sb"), 0.0)
        ctl.on_submit(app_job("j2", "sb"), 0.0)  # shed
        ctl.on_submit(app_job("j3", "other"), 0.0)
        report = ctl.app_report()
        assert report["sb"] == {"cap": 1, "inflight": 1, "shed": 1}
        assert report["other"] == {"cap": -1, "inflight": 1, "shed": 0}

    def test_no_caps_means_no_envelope_bookkeeping(self):
        ctl = AdmissionController(default_tiers(), 100.0)
        for i in range(20):
            assert ctl.on_submit(app_job(f"j{i}", "sb"), 0.0).admitted
