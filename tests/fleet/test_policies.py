"""Tests for the fleet schedulers: FCFS order and EASY backfill."""

from __future__ import annotations

from repro.fleet.jobs import JobRecord
from repro.fleet.nodes import Fleet, FleetNode
from repro.fleet.policies import (
    BackfillScheduler,
    FcfsScheduler,
    PendingJob,
    RunningJob,
    queue_order,
)


def job(
    jid: str,
    cores: int,
    runtime: float = 100.0,
    limit: float | None = None,
    priority: int = 0,
    submit: float = 0.0,
) -> JobRecord:
    return JobRecord(
        job_id=jid,
        tenant="t",
        tier="bronze",
        app="a",
        submit_ms=submit,
        cores=cores,
        runtime_ms=runtime,
        limit_ms=limit if limit is not None else runtime,
        deadline_ms=1e9,
        priority=priority,
    )


def pend(record: JobRecord, estimate: float, seq: int) -> PendingJob:
    return PendingJob(record, estimate, seq)


def one_node_fleet(cores: int = 8) -> Fleet:
    return Fleet([FleetNode(name="n0", n_cores=cores, speed=1.0)])


class TestQueueOrder:
    def test_priority_then_submit_then_seq(self):
        a = pend(job("a", 1, priority=0, submit=1.0), 10.0, 0)
        b = pend(job("b", 1, priority=2, submit=5.0), 10.0, 1)
        c = pend(job("c", 1, priority=2, submit=5.0), 10.0, 2)
        d = pend(job("d", 1, priority=2, submit=2.0), 10.0, 3)
        assert [p.record.job_id for p in queue_order([a, b, c, d])] == [
            "d",
            "b",
            "c",
            "a",
        ]


class TestFcfs:
    def test_blocks_at_head(self):
        fleet = one_node_fleet(8)
        wide = pend(job("wide", 8), 100.0, 0)
        narrow = pend(job("narrow", 1), 10.0, 1)
        fleet.node("n0").allocate(1)  # 7 free: wide blocks
        placements = FcfsScheduler().select(0.0, [wide, narrow], fleet, [])
        # Strict FCFS: nothing may jump the blocked head.
        assert placements == []

    def test_places_in_order_while_fitting(self):
        fleet = one_node_fleet(8)
        jobs = [pend(job(f"j{i}", 2), 50.0, i) for i in range(3)]
        placements = FcfsScheduler().select(0.0, jobs, fleet, [])
        assert [p.job.record.job_id for p in placements] == ["j0", "j1", "j2"]

    def test_skips_forever_infeasible_jobs(self):
        fleet = one_node_fleet(4)
        giant = pend(job("giant", 16), 100.0, 0)
        small = pend(job("small", 1), 10.0, 1)
        placements = FcfsScheduler().select(0.0, [giant, small], fleet, [])
        assert [p.job.record.job_id for p in placements] == ["small"]


class TestBackfillReservation:
    def test_backfill_respects_reservation(self):
        """A backfill candidate whose estimate overruns the shadow
        time must NOT start on the reserved node."""
        fleet = one_node_fleet(8)
        fleet.node("n0").allocate(6)  # 2 free
        running = [RunningJob("r0", "n0", 6, est_finish_ms=100.0)]
        head = pend(job("head", 8), 50.0, 0)  # needs full node
        # Candidate fits the 2 free cores but would run past t=100
        # (the reservation instant) -- backfilling it would delay head.
        late = pend(job("late", 2, runtime=500.0), 500.0, 1)
        placements = BackfillScheduler().select(0.0, [head, late], fleet, running)
        assert placements == []

    def test_backfill_fills_hole_within_shadow(self):
        """A candidate estimated to finish before the shadow time
        backfills into the reservation hole."""
        fleet = one_node_fleet(8)
        fleet.node("n0").allocate(6)
        running = [RunningJob("r0", "n0", 6, est_finish_ms=100.0)]
        head = pend(job("head", 8), 50.0, 0)
        quick = pend(job("quick", 2, runtime=80.0), 80.0, 1)
        placements = BackfillScheduler().select(0.0, [head, quick], fleet, running)
        assert [p.job.record.job_id for p in placements] == ["quick"]

    def test_backfill_exactly_at_shadow_allowed(self):
        fleet = one_node_fleet(8)
        fleet.node("n0").allocate(6)
        running = [RunningJob("r0", "n0", 6, est_finish_ms=100.0)]
        head = pend(job("head", 8), 50.0, 0)
        exact = pend(job("exact", 2, runtime=100.0), 100.0, 1)
        placements = BackfillScheduler().select(0.0, [head, exact], fleet, running)
        assert [p.job.record.job_id for p in placements] == ["exact"]

    def test_backfill_on_other_node_unrestricted(self):
        """Nodes without the reservation take backfill regardless of
        estimated finish."""
        fleet = Fleet(
            [
                FleetNode(name="n0", n_cores=8, speed=1.0),
                FleetNode(name="n1", n_cores=4, speed=1.0),
            ]
        )
        fleet.node("n0").allocate(6)  # head (8 cores) must wait for n0
        running = [RunningJob("r0", "n0", 6, est_finish_ms=100.0)]
        head = pend(job("head", 8), 50.0, 0)
        slow = pend(job("slow", 4, runtime=900.0), 900.0, 1)
        placements = BackfillScheduler().select(0.0, [head, slow], fleet, running)
        assert [(p.job.record.job_id, p.node) for p in placements] == [
            ("slow", "n1")
        ]

    def test_shadow_accounts_for_same_cycle_placements(self):
        """Jobs placed in phase 1 of the same cycle occupy cores in
        the reservation computation."""
        fleet = one_node_fleet(8)
        first = pend(job("first", 6, runtime=200.0), 200.0, 0)
        head = pend(job("head", 8), 50.0, 1)
        # 'late' fits the remaining 2 cores but finishes at t=300,
        # after the head's shadow (t=200 when 'first' drains).
        late = pend(job("late", 2, runtime=300.0), 300.0, 2)
        placements = BackfillScheduler().select(
            0.0, [first, head, late], fleet, []
        )
        assert [p.job.record.job_id for p in placements] == ["first"]

    def test_tighter_estimates_widen_backfill_window(self):
        """The prediction-aware effect in miniature: with worst-case
        estimates a candidate looks too long to backfill; with tight
        (accurate) estimates the same candidate fits."""
        def run(estimate: float) -> list[str]:
            fleet = one_node_fleet(8)
            fleet.node("n0").allocate(6)
            running = [RunningJob("r0", "n0", 6, est_finish_ms=100.0)]
            head = pend(job("head", 8), 50.0, 0)
            cand = pend(
                job("cand", 2, runtime=60.0, limit=600.0), estimate, 1
            )
            placements = BackfillScheduler().select(
                0.0, [head, cand], fleet, running
            )
            return [p.job.record.job_id for p in placements]

        assert run(estimate=600.0) == []  # declared limit: blocked
        assert run(estimate=60.0) == ["cand"]  # triple-c scale: fits
