"""End-to-end simulator tests: determinism, shedding, policy wins."""

from __future__ import annotations

import json

import pytest

from repro.fleet.estimates import make_estimator
from repro.fleet.jobs import JobRecord, synthetic_burst_trace
from repro.fleet.nodes import Fleet, FleetNode, default_fleet
from repro.fleet.policies import BackfillScheduler, FcfsScheduler
from repro.fleet.simulator import FleetSimulator
from repro.runtime.qos import QosTier


def run_policy(trace, policy: str, fleet=None, tiers=None):
    scheduler = FcfsScheduler() if policy == "fcfs" else BackfillScheduler()
    estimator_kind = {
        "fcfs": "worst-case",
        "easy": "worst-case",
        "predictive": "triplec",
        "oracle": "oracle",
    }[policy]
    sim = FleetSimulator(
        fleet if fleet is not None else default_fleet(),
        scheduler,
        make_estimator(estimator_kind, trace),
        tiers=tiers,
    )
    return sim.run(trace)


@pytest.fixture(scope="module")
def smoke_trace():
    return synthetic_burst_trace(n_jobs=400, seed=7)


class TestDeterminism:
    def test_same_seed_same_summary_bytes(self, smoke_trace):
        a = run_policy(smoke_trace, "predictive").slo_summary()
        b = run_policy(
            synthetic_burst_trace(n_jobs=400, seed=7), "predictive"
        ).slo_summary()
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_different_seed_different_trace(self):
        a = synthetic_burst_trace(n_jobs=50, seed=1)
        b = synthetic_burst_trace(n_jobs=50, seed=2)
        assert [j.runtime_ms for j in a] != [j.runtime_ms for j in b]

    def test_all_jobs_accounted(self, smoke_trace):
        result = run_policy(smoke_trace, "easy")
        assert len(result.outcomes) == len(smoke_trace)
        assert len(result.completed) + len(result.shed) == len(smoke_trace)


class TestConservation:
    def test_no_core_oversubscription(self, smoke_trace):
        """After a full drain every node is back to fully free."""
        fleet = default_fleet()
        run_policy(smoke_trace, "predictive", fleet=fleet)
        for node in fleet.nodes:
            assert node.free_cores == node.n_cores

    def test_wait_times_non_negative(self, smoke_trace):
        result = run_policy(smoke_trace, "easy")
        assert all(o.wait_ms >= 0.0 for o in result.completed)

    def test_utilization_in_unit_range(self, smoke_trace):
        result = run_policy(smoke_trace, "fcfs")
        assert 0.0 < result.utilization() <= 1.0


class TestSheddingUnderBurst:
    def tight_tiers(self):
        return {
            "gold": QosTier(
                name="gold",
                priority=2,
                wait_budget_ms=500.0,
                max_pending=10_000,
                miss_budget=0.5,
                sheddable=False,
            ),
            "silver": QosTier(
                name="silver",
                priority=1,
                wait_budget_ms=500.0,
                max_pending=16,
                miss_budget=0.5,
                shed_wait_factor=2.0,
            ),
            "bronze": QosTier(
                name="bronze",
                priority=0,
                wait_budget_ms=250.0,
                max_pending=8,
                miss_budget=0.5,
                shed_wait_factor=1.0,
            ),
        }

    def test_burst_sheds_low_tiers_never_gold(self):
        # Small fleet + tight tiers: the synthetic bursts overwhelm it.
        fleet = Fleet(
            [
                FleetNode(name="n0", n_cores=16, speed=1.0),
                FleetNode(name="n1", n_cores=4, speed=1.0),
            ]
        )
        trace = synthetic_burst_trace(n_jobs=400, seed=7)
        result = run_policy(trace, "easy", fleet=fleet, tiers=self.tight_tiers())
        shed_tiers = {o.tier for o in result.shed if o.tier != "gold"} | {
            o.tier for o in result.shed
        }
        assert len(result.shed) > 0
        assert "gold" not in {o.tier for o in result.shed if o.node == ""}
        assert shed_tiers <= {"silver", "bronze"}
        # Bronze (smallest depth cap, factor 1.0) sheds at a higher
        # rate than silver.
        by_tier = {"silver": [0, 0], "bronze": [0, 0]}
        for o in result.outcomes:
            if o.tier in by_tier:
                by_tier[o.tier][0] += o.state == "shed"
                by_tier[o.tier][1] += 1
        bronze_rate = by_tier["bronze"][0] / by_tier["bronze"][1]
        silver_rate = by_tier["silver"][0] / by_tier["silver"][1]
        assert bronze_rate > silver_rate

    def test_graceful_degradation_keeps_gold_wait_bounded(self):
        fleet = Fleet([FleetNode(name="n0", n_cores=16, speed=1.0)])
        trace = synthetic_burst_trace(n_jobs=300, seed=7)
        result = run_policy(trace, "easy", fleet=fleet, tiers=self.tight_tiers())
        report = result.tier_report
        # With silver/bronze shed at the door, gold's wait violations
        # stay a small fraction despite the overload.
        assert report["gold"]["admitted"] > 0
        assert report["gold"]["shed"] == 0
        assert report["silver"]["shed"] + report["bronze"]["shed"] > 0


class TestPolicyComparison:
    def test_predictive_beats_fcfs_on_tail_wait(self):
        """The acceptance property, at test scale: prediction-aware
        backfill completes at least as much work with a lower p99
        queue wait than strict FCFS."""
        trace = synthetic_burst_trace(n_jobs=1000, seed=7)
        fcfs = run_policy(trace, "fcfs").slo_summary()
        predictive = run_policy(trace, "predictive").slo_summary()
        assert predictive["wait_ms"]["p99"] < fcfs["wait_ms"]["p99"]
        assert predictive["utilization"] >= fcfs["utilization"] - 1e-6
        assert predictive["jobs"]["completed"] >= fcfs["jobs"]["completed"]

    def test_oracle_at_least_as_good_as_worst_case_backfill(self):
        trace = synthetic_burst_trace(n_jobs=600, seed=7)
        easy = run_policy(trace, "easy").slo_summary()
        oracle = run_policy(trace, "oracle").slo_summary()
        assert oracle["wait_ms"]["p99"] <= easy["wait_ms"]["p99"] * 1.05


class TestStallGuards:
    def test_infeasible_job_shed_not_stalled(self):
        fleet = Fleet([FleetNode(name="tiny", n_cores=2, speed=1.0)])
        trace = [
            JobRecord(
                job_id="giant",
                tenant="t",
                tier="gold",
                app="a",
                submit_ms=0.0,
                cores=64,
                runtime_ms=100.0,
                limit_ms=100.0,
                deadline_ms=1e9,
                priority=2,
            ),
            JobRecord(
                job_id="ok",
                tenant="t",
                tier="gold",
                app="a",
                submit_ms=1.0,
                cores=1,
                runtime_ms=50.0,
                limit_ms=50.0,
                deadline_ms=1e9,
                priority=2,
            ),
        ]
        result = run_policy(trace, "easy", fleet=fleet)
        states = {o.job_id: o.state for o in result.outcomes}
        assert states == {"giant": "shed", "ok": "done"}

    def test_empty_trace_raises(self):
        with pytest.raises(ValueError, match="empty trace"):
            run_policy([], "easy", fleet=default_fleet())
