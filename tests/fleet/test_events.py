"""Tests for the deterministic event clock and queue."""

from __future__ import annotations

import pytest

from repro.fleet.events import Event, EventKind, EventQueue


class TestEventQueue:
    def test_pops_in_time_order(self):
        q = EventQueue()
        q.push(30.0, EventKind.ARRIVAL, "c")
        q.push(10.0, EventKind.ARRIVAL, "a")
        q.push(20.0, EventKind.ARRIVAL, "b")
        assert [q.pop().job_id for _ in range(3)] == ["a", "b", "c"]

    def test_completion_before_arrival_at_same_instant(self):
        q = EventQueue()
        q.push(10.0, EventKind.ARRIVAL, "arr")
        q.push(10.0, EventKind.COMPLETION, "done")
        first, second = q.pop(), q.pop()
        assert first.kind is EventKind.COMPLETION
        assert second.kind is EventKind.ARRIVAL

    def test_same_kind_ties_break_by_insertion_seq(self):
        q = EventQueue()
        for jid in ("x", "y", "z"):
            q.push(5.0, EventKind.ARRIVAL, jid)
        assert [q.pop().job_id for _ in range(3)] == ["x", "y", "z"]

    def test_pop_batch_returns_one_instant(self):
        q = EventQueue()
        q.push(1.0, EventKind.ARRIVAL, "a")
        q.push(1.0, EventKind.COMPLETION, "b")
        q.push(2.0, EventKind.ARRIVAL, "c")
        batch = q.pop_batch()
        assert [e.job_id for e in batch] == ["b", "a"]
        assert len(q) == 1
        assert q.peek_time() == 2.0

    def test_pop_batch_deterministic_order_within_instant(self):
        # Replaying the same pushes always yields the same batch order.
        def build() -> list[Event]:
            q = EventQueue()
            q.push(3.0, EventKind.ARRIVAL, "j2")
            q.push(3.0, EventKind.COMPLETION, "j0")
            q.push(3.0, EventKind.ARRIVAL, "j1")
            q.push(3.0, EventKind.COMPLETION, "j3")
            return q.pop_batch()

        first = [(e.kind, e.job_id) for e in build()]
        second = [(e.kind, e.job_id) for e in build()]
        assert first == second
        assert [k for k, _ in first] == [
            EventKind.COMPLETION,
            EventKind.COMPLETION,
            EventKind.ARRIVAL,
            EventKind.ARRIVAL,
        ]

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_peek_time_empty_returns_none(self):
        assert EventQueue().peek_time() is None

    def test_len_and_bool(self):
        q = EventQueue()
        assert not q
        q.push(0.0, EventKind.ARRIVAL, "a")
        assert q and len(q) == 1
