"""The replay corpus format and its conversion to job streams."""

from __future__ import annotations

import json

import pytest

from repro.fleet.cli import main as fleet_main
from repro.fleet.replay import (
    WORKLOAD_TRACE_SCHEMA,
    jobs_from_workload_trace,
    load_workload_trace,
    save_workload_trace,
    workload_trace_doc,
)
from repro.profiling.traces import TraceSet
from repro.workloads import REGISTRY_VERSION, workload_names


def tiny_traceset(name: str, n_frames: int = 12) -> TraceSet:
    """Hand-built trace set with plausible latencies (fast, no profiler)."""
    ts = TraceSet(
        pixel_scale=16.0,
        platform="blackford-2x-quad",
        workload=name,
        registry_version=REGISTRY_VERSION,
    )
    for seq in range(2):
        for frame in range(n_frames // 2):
            ts.add_frame(
                seq=seq,
                frame=frame,
                scenario_id=(seq + frame) % 8,
                task_ms={"ACQ": 1.0 + frame},
                roi_kpixels=64.0,
                latency_ms=40.0 + 10.0 * frame + 3.0 * seq,
                eviction_bytes=1000,
                external_bytes=2000,
            )
    return ts


@pytest.fixture()
def corpus_doc():
    return workload_trace_doc(
        {name: tiny_traceset(name) for name in workload_names()}
    )


class TestDocumentFormat:
    def test_schema_and_workloads(self, corpus_doc):
        assert corpus_doc["schema"] == WORKLOAD_TRACE_SCHEMA
        assert [w["workload"] for w in corpus_doc["workloads"]] == sorted(
            workload_names()
        )

    def test_sequences_carry_latency_and_scenarios(self, corpus_doc):
        for entry in corpus_doc["workloads"]:
            assert entry["registry_version"] == REGISTRY_VERSION
            assert entry["platform"] == "blackford-2x-quad"
            for seq in entry["sequences"]:
                assert len(seq["latency_ms"]) == len(seq["scenario_id"])
                assert len(seq["latency_ms"]) > 0

    def test_provenance_mismatch_rejected(self):
        with pytest.raises(ValueError, match="re-profile"):
            workload_trace_doc({"ultrasound": tiny_traceset("stentboost")})

    def test_save_load_round_trip(self, corpus_doc, tmp_path):
        path = save_workload_trace(corpus_doc, tmp_path / "corpus.json")
        assert load_workload_trace(path) == corpus_doc

    def test_load_rejects_fleet_trace_schema(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"schema": "repro-fleet-trace/1"}))
        with pytest.raises(ValueError, match="expected schema"):
            load_workload_trace(path)


class TestJobConversion:
    def test_one_job_per_frame(self, corpus_doc):
        jobs = jobs_from_workload_trace(corpus_doc, seed=7)
        n_frames = sum(
            len(s["latency_ms"])
            for w in corpus_doc["workloads"]
            for s in w["sequences"]
        )
        assert len(jobs) == n_frames
        assert {j.app for j in jobs} == set(workload_names())

    def test_runtimes_are_measured_latencies(self, corpus_doc):
        jobs = jobs_from_workload_trace(corpus_doc, seed=7)
        by_app: dict[str, list[float]] = {}
        for j in jobs:
            by_app.setdefault(j.app, []).append(j.runtime_ms)
        for entry in corpus_doc["workloads"]:
            want = sorted(
                round(max(v, 1.0), 3)
                for s in entry["sequences"]
                for v in s["latency_ms"]
            )
            assert sorted(by_app[entry["workload"]]) == want

    def test_cores_come_from_registry(self, corpus_doc):
        from repro.workloads import get_workload

        for j in jobs_from_workload_trace(corpus_doc, seed=7):
            assert j.cores in get_workload(j.app).fleet.cores_choices

    def test_same_seed_identical_jobs(self, corpus_doc):
        a = jobs_from_workload_trace(corpus_doc, seed=7)
        b = jobs_from_workload_trace(corpus_doc, seed=7)
        assert a == b

    def test_different_seed_different_stream(self, corpus_doc):
        a = jobs_from_workload_trace(corpus_doc, seed=7)
        b = jobs_from_workload_trace(corpus_doc, seed=8)
        assert [j.submit_ms for j in a] != [j.submit_ms for j in b]

    def test_unknown_workload_rejected(self, corpus_doc):
        doc = json.loads(json.dumps(corpus_doc))
        doc["workloads"][0]["workload"] = "mri"
        with pytest.raises(KeyError, match="unknown workload"):
            jobs_from_workload_trace(doc, seed=7)

    def test_wrong_schema_rejected(self):
        with pytest.raises(ValueError, match="expected schema"):
            jobs_from_workload_trace({"schema": "repro-fleet-trace/1"})


class TestCliReplay:
    def test_replay_reports_byte_identical(self, corpus_doc, tmp_path):
        corpus = save_workload_trace(corpus_doc, tmp_path / "corpus.json")
        out_a = tmp_path / "a.json"
        out_b = tmp_path / "b.json"
        for out in (out_a, out_b):
            code = fleet_main(
                ["--trace", str(corpus), "--seed", "7", "--out", str(out)]
            )
            assert code == 0
        assert out_a.read_bytes() == out_b.read_bytes()

    def test_fleet_trace_schema_still_loads(self, tmp_path):
        from repro.fleet.jobs import save_trace, synthetic_burst_trace

        trace = synthetic_burst_trace(n_jobs=30, seed=3)
        path = save_trace(trace, tmp_path / "jobs.json")
        out = tmp_path / "out.json"
        assert fleet_main(["--trace", str(path), "--out", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert doc["trace"]["n_jobs"] == 30
