"""Tests for the ``python -m repro.fleet`` CLI."""

from __future__ import annotations

import json

import pytest

from repro.fleet.cli import REPORT_SCHEMA, main, run_comparison
from repro.fleet.jobs import synthetic_burst_trace


@pytest.fixture(scope="module")
def trace():
    return synthetic_burst_trace(n_jobs=300, seed=7)


class TestRunComparison:
    def test_report_shape(self, trace):
        doc = run_comparison(trace, policies=("fcfs", "predictive"), seed=7)
        assert doc["schema"] == REPORT_SCHEMA
        assert doc["seed"] == 7
        assert sorted(doc["policies"]) == ["fcfs", "predictive"]
        vs = doc["comparison"]["vs_fcfs"]
        assert set(vs) == {"predictive"}
        assert set(vs["predictive"]) == {
            "p99_wait_ratio",
            "p99_wait_delta_ms",
            "utilization_delta",
        }

    def test_unknown_policy_raises(self, trace):
        with pytest.raises(ValueError, match="unknown policy"):
            run_comparison(trace, policies=("fcfs", "sorcery"))

    def test_no_fcfs_no_comparison(self, trace):
        doc = run_comparison(trace, policies=("easy",))
        assert doc["comparison"] == {}


class TestMain:
    def test_byte_identical_across_runs(self, tmp_path):
        out_a = tmp_path / "a.json"
        out_b = tmp_path / "b.json"
        args = ["--jobs", "200", "--seed", "7", "--policies", "fcfs,predictive"]
        assert main([*args, "--out", str(out_a)]) == 0
        assert main([*args, "--out", str(out_b)]) == 0
        assert out_a.read_bytes() == out_b.read_bytes()

    def test_seed_changes_output(self, tmp_path):
        out_a = tmp_path / "a.json"
        out_b = tmp_path / "b.json"
        base = ["--jobs", "200", "--policies", "fcfs"]
        main([*base, "--seed", "1", "--out", str(out_a)])
        main([*base, "--seed", "2", "--out", str(out_b)])
        assert out_a.read_bytes() != out_b.read_bytes()

    def test_save_and_replay_trace(self, tmp_path):
        corpus = tmp_path / "corpus.json"
        out_a = tmp_path / "a.json"
        out_b = tmp_path / "b.json"
        main(
            [
                "--jobs",
                "150",
                "--seed",
                "5",
                "--policies",
                "easy",
                "--save-trace",
                str(corpus),
                "--out",
                str(out_a),
            ]
        )
        main(
            [
                "--trace",
                str(corpus),
                "--seed",
                "5",
                "--policies",
                "easy",
                "--out",
                str(out_b),
            ]
        )
        a = json.loads(out_a.read_text())
        b = json.loads(out_b.read_text())
        assert a["policies"] == b["policies"]

    def test_check_passes_at_smoke_scale(self, tmp_path):
        """The CI gate property: --smoke --seed 7 --check exits 0."""
        out = tmp_path / "slo.json"
        rc = main(["--smoke", "--seed", "7", "--check", "--out", str(out)])
        assert rc == 0
        doc = json.loads(out.read_text())
        vs = doc["comparison"]["vs_fcfs"]["predictive"]
        assert vs["p99_wait_ratio"] < 1.0
        assert vs["utilization_delta"] >= -1e-6

    def test_check_fails_without_predictive(self, tmp_path):
        out = tmp_path / "slo.json"
        rc = main(
            [
                "--jobs",
                "100",
                "--policies",
                "easy",
                "--check",
                "--out",
                str(out),
            ]
        )
        assert rc == 1


class TestEnvelopeFlag:
    def test_envelope_caps_flow_into_the_report(self, tmp_path):
        envelope = tmp_path / "envelope.json"
        envelope.write_text(
            json.dumps(
                {
                    "schema": "repro-sched-envelope/1",
                    "cores": 8,
                    "rate_hz": 30.0,
                    "max_instances": {"stentboost": 0},
                }
            ),
            encoding="utf-8",
        )
        out = tmp_path / "slo.json"
        code = main(
            [
                "--jobs",
                "200",
                "--seed",
                "7",
                "--policies",
                "fcfs",
                "--envelope",
                str(envelope),
                "--out",
                str(out),
            ]
        )
        assert code == 0
        doc = json.loads(out.read_text(encoding="utf-8"))
        assert doc["app_caps"] == {"stentboost": 0}
        # Cap 0 sheds every sheddable stentboost arrival at the door.
        fcfs = doc["policies"]["fcfs"]
        assert fcfs["jobs"]["shed"] > 0

    def test_malformed_envelope_is_a_usage_error(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "other"}), encoding="utf-8")
        with pytest.raises(SystemExit):
            main(["--jobs", "50", "--envelope", str(bad)])
