"""Tests for job records, traces and the estimator stack."""

from __future__ import annotations

import json

import pytest

from repro.fleet.estimates import (
    ESTIMATOR_KINDS,
    TripleCEstimator,
    make_estimator,
)
from repro.fleet.jobs import (
    TRACE_SCHEMA,
    JobRecord,
    load_trace,
    save_trace,
    synthetic_burst_trace,
    trace_summary,
)


class TestJobRecord:
    def test_validation(self):
        with pytest.raises(ValueError, match="cores"):
            JobRecord("j", "t", "gold", "a", 0.0, 0, 10.0, 10.0, 1.0, 0)
        with pytest.raises(ValueError, match="limit_ms"):
            JobRecord("j", "t", "gold", "a", 0.0, 1, 10.0, 5.0, 1.0, 0)
        with pytest.raises(ValueError, match="submit_ms"):
            JobRecord("j", "t", "gold", "a", -1.0, 1, 10.0, 10.0, 1.0, 0)


class TestSyntheticTrace:
    def test_deterministic_per_seed(self):
        a = synthetic_burst_trace(n_jobs=100, seed=3)
        b = synthetic_burst_trace(n_jobs=100, seed=3)
        assert a == b

    def test_submit_order_and_unique_ids(self):
        trace = synthetic_burst_trace(n_jobs=200, seed=7)
        assert len({j.job_id for j in trace}) == 200
        submits = [j.submit_ms for j in trace]
        assert submits == sorted(submits)

    def test_limits_pad_runtimes(self):
        trace = synthetic_burst_trace(n_jobs=200, seed=7)
        for j in trace:
            assert j.limit_ms >= j.runtime_ms
        # The padding regime: median declared/actual well above 2x.
        ratios = sorted(j.limit_ms / j.runtime_ms for j in trace)
        assert ratios[len(ratios) // 2] > 2.0

    def test_tiers_and_priorities_consistent(self):
        trace = synthetic_burst_trace(n_jobs=200, seed=7)
        want = {"gold": 2, "silver": 1, "bronze": 0}
        for j in trace:
            assert j.priority == want[j.tier]

    def test_summary_shape(self):
        trace = synthetic_burst_trace(n_jobs=50, seed=7)
        s = trace_summary(trace)
        assert s["n_jobs"] == 50
        assert sum(s["by_tier"].values()) == 50
        assert sum(s["by_app"].values()) == 50
        assert s["total_core_ms"] > 0


class TestTraceRoundtrip:
    def test_save_load_roundtrip(self, tmp_path):
        trace = synthetic_burst_trace(n_jobs=40, seed=9)
        path = save_trace(trace, tmp_path / "trace.json")
        doc = json.loads(path.read_text())
        assert doc["schema"] == TRACE_SCHEMA
        loaded = load_trace(path)
        assert loaded == trace

    def test_load_rejects_wrong_schema(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text(json.dumps({"schema": "nope/9", "jobs": []}))
        with pytest.raises(ValueError, match="expected schema"):
            load_trace(p)


class TestEstimators:
    def test_kinds_constructible(self):
        trace = synthetic_burst_trace(n_jobs=150, seed=7)
        for kind in ESTIMATOR_KINDS:
            est = make_estimator(kind, trace)
            v = est.estimate_ms(trace[0])
            assert v > 0

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown estimator"):
            make_estimator("psychic", [])

    def test_worst_case_is_limit(self):
        trace = synthetic_burst_trace(n_jobs=20, seed=7)
        est = make_estimator("worst-case", trace)
        assert est.estimate_ms(trace[3]) == trace[3].limit_ms

    def test_oracle_is_truth(self):
        trace = synthetic_burst_trace(n_jobs=20, seed=7)
        est = make_estimator("oracle", trace)
        assert est.estimate_ms(trace[3]) == trace[3].runtime_ms

    def test_triplec_tighter_than_worst_case(self):
        """On the synthetic mix the Triple-C estimate error is far
        below the declared-limit padding."""
        trace = synthetic_burst_trace(n_jobs=600, seed=7)
        est = TripleCEstimator.from_trace(trace)
        err_triplec = 0.0
        err_limit = 0.0
        n = 0
        for j in trace:
            e = est.estimate_ms(j)
            est.observe(j, j.runtime_ms)
            err_triplec += abs(e - j.runtime_ms)
            err_limit += abs(j.limit_ms - j.runtime_ms)
            n += 1
        assert err_triplec / n < 0.25 * (err_limit / n)

    def test_triplec_capped_at_limit(self):
        trace = synthetic_burst_trace(n_jobs=100, seed=7)
        est = TripleCEstimator.from_trace(trace)
        for j in trace:
            assert est.estimate_ms(j) <= j.limit_ms

    def test_triplec_unknown_app_falls_back_to_limit(self):
        trace = synthetic_burst_trace(n_jobs=50, seed=7)
        est = TripleCEstimator.from_trace(trace)
        alien = JobRecord(
            "x", "t", "gold", "never-seen-app", 0.0, 1, 10.0, 70.0, 1.0, 2
        )
        assert est.estimate_ms(alien) == 70.0
