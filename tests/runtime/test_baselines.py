"""Tests for the baseline execution policies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.imaging.pipeline import PipelineConfig, StentBoostPipeline
from repro.runtime import run_straightforward, run_worst_case
from repro.synthetic.sequence import SequenceConfig, XRaySequence


@pytest.fixture(scope="module")
def seq():
    return XRaySequence(SequenceConfig(n_frames=40, seed=99, visibility_dips=1))


def make_pipe(seq):
    return StentBoostPipeline(
        PipelineConfig(expected_distance=seq.config.resolved_phantom().marker_separation)
    )


class TestStraightforward:
    def test_latency_follows_content(self, seq, profile_config):
        run = run_straightforward(
            seq, make_pipe(seq), profile_config.make_simulator(), seq_key="b-sw"
        )
        lat = run.latency()
        assert lat.shape == (40,)
        # Output equals completion: no QoS smoothing at all.
        np.testing.assert_array_equal(run.output_latency(), lat)
        assert run.label == "straightforward"
        assert all(f.cores_used == 1 for f in run.frames)


class TestWorstCase:
    def test_output_constant_at_reservation(self, seq, profile_config):
        run = run_worst_case(
            seq,
            make_pipe(seq),
            profile_config.make_simulator(),
            worst_case_ms=150.0,
            seq_key="b-wc",
        )
        out = run.output_latency()
        np.testing.assert_allclose(out, 150.0)
        assert run.budget_ms == 150.0
        # But the completion latency still varies underneath.
        assert np.std(run.latency()) > 0

    def test_invalid_reservation(self, seq, profile_config):
        with pytest.raises(ValueError):
            run_worst_case(
                seq, make_pipe(seq), profile_config.make_simulator(), worst_case_ms=0.0
            )

    def test_output_latency_is_maximal(self, seq, profile_config):
        """The Section 6 drawback: output latency is pinned at the
        conservative worst case, higher than actually required."""
        sim1 = profile_config.make_simulator()
        sw = run_straightforward(seq, make_pipe(seq), sim1, seq_key="b-sw2")
        wc = run_worst_case(
            seq,
            make_pipe(seq),
            profile_config.make_simulator(),
            worst_case_ms=float(sw.latency().max()) * 1.05,
            seq_key="b-wc2",
        )
        assert wc.output_latency().mean() > sw.latency().mean()
