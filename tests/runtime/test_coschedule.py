"""Tests for co-scheduling ("more functions on the same platform")."""

from __future__ import annotations

import pytest

from repro.hw.spec import blackford
from repro.runtime.coschedule import BackgroundFunction, coschedule, idle_core_ms
from repro.runtime.manager import FrameLog, RunResult


def frame(serial_ms, latency_ms, cores):
    return FrameLog(
        index=0,
        predicted_scenario=3,
        actual_scenario=3,
        predicted_ms=serial_ms,
        serial_ms=serial_ms,
        latency_ms=latency_ms,
        output_ms=latency_ms,
        cores_used=cores,
        parts={},
    )


class TestBackgroundFunction:
    def test_validation(self):
        with pytest.raises(ValueError):
            BackgroundFunction(work_ms_per_item=0.0)


class TestIdleCoreMs:
    def test_managed_run_frees_unused_cores(self):
        run = RunResult(label="triple-c managed", budget_ms=50.0)
        run.frames.append(frame(40.0, 40.0, cores=2))
        plat = blackford()
        idle = idle_core_ms(run, plat, frame_period_ms=33.3)
        # 8 cores * 33.3 - 2 cores * 33.3 (latency clamped to period).
        assert idle[0] == pytest.approx(8 * 33.3 - 2 * 33.3)

    def test_static_reservation_blocks_cores_for_whole_period(self):
        run = RunResult(label="worst-case reservation", budget_ms=100.0)
        run.frames.append(frame(40.0, 40.0, cores=1))
        plat = blackford()
        idle = idle_core_ms(run, plat, frame_period_ms=33.3, reserved_cores=6)
        assert idle[0] == pytest.approx((8 - 6) * 33.3)
        # Reserving the whole platform leaves nothing.
        idle_all = idle_core_ms(run, plat, 33.3, reserved_cores=8)
        assert idle_all[0] == 0.0

    def test_invalid_reserved_cores(self):
        run = RunResult(label="worst-case reservation", budget_ms=100.0)
        run.frames.append(frame(40.0, 40.0, cores=1))
        with pytest.raises(ValueError):
            idle_core_ms(run, blackford(), 33.3, reserved_cores=9)


class TestCoschedule:
    def test_managed_beats_static_reservation(self):
        plat = blackford()
        managed = RunResult(label="triple-c managed", budget_ms=50.0)
        reserved = RunResult(label="worst-case reservation", budget_ms=120.0)
        for _ in range(10):
            # Managed: 2 cores for 30 ms; static: 6 cores pinned.
            managed.frames.append(frame(30.0, 30.0, cores=2))
            reserved.frames.append(frame(30.0, 30.0, cores=1))
        bg = BackgroundFunction(work_ms_per_item=5.0)
        res_mg = coschedule(managed, plat, bg)
        res_wc = coschedule(reserved, plat, bg, reserved_cores=6)
        assert res_mg.items_per_second > res_wc.items_per_second
        assert res_mg.items_per_frame == pytest.approx(
            res_mg.idle_core_ms_per_frame / 5.0
        )
