"""Tests for the resource manager (the Fig. 7 loop)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.imaging.pipeline import PipelineConfig, StentBoostPipeline
from repro.runtime import ResourceManager, run_straightforward
from repro.synthetic.sequence import SequenceConfig, XRaySequence


@pytest.fixture(scope="module")
def test_seq():
    return XRaySequence(
        SequenceConfig(n_frames=80, seed=777, visibility_dips=1, clutter_level=0.9)
    )


def make_pipe(seq):
    return StentBoostPipeline(
        PipelineConfig(expected_distance=seq.config.resolved_phantom().marker_separation)
    )


@pytest.fixture(scope="module")
def fresh_model(traces):
    """A private model: the manager mutates online state."""
    from repro.core import TripleC

    return TripleC.fit(traces)


@pytest.fixture(scope="module")
def expected_budget(traces):
    from repro.core import TripleC

    return TripleC.fit(traces).expected_frame_ms() * 1.08


@pytest.fixture(scope="module")
def managed_run(fresh_model, profile_config, test_seq):
    mgr = ResourceManager(fresh_model, profile_config.make_simulator())
    return mgr.run_sequence(test_seq, make_pipe(test_seq), seq_key="t-mg")


@pytest.fixture(scope="module")
def straightforward_run(profile_config, test_seq):
    return run_straightforward(
        test_seq, make_pipe(test_seq), profile_config.make_simulator(), seq_key="t-sw"
    )


class TestResourceManager:
    def test_budget_auto_initialized(self, managed_run, expected_budget):
        # Budget = slack x average-case expectation, computed from the
        # model *before* any online updates.
        assert managed_run.budget_ms == pytest.approx(expected_budget, rel=1e-6)

    def test_one_log_per_frame(self, managed_run, test_seq):
        assert len(managed_run.frames) == len(test_seq)

    def test_output_latency_pinned_to_budget(self, managed_run):
        out = managed_run.output_latency()
        assert np.all(out >= managed_run.budget_ms - 1e-9)
        # Almost all frames make the budget -> output ~ constant.
        at_budget = np.isclose(out, managed_run.budget_ms).mean()
        assert at_budget > 0.85

    def test_jitter_lower_than_straightforward(
        self, managed_run, straightforward_run
    ):
        """The Fig. 7 headline: managed output latency is far more
        stable than the straightforward mapping."""
        j_sw = straightforward_run.jitter()
        out_std = float(np.std(managed_run.output_latency()))
        assert out_std < 0.5 * j_sw.std

    def test_worst_over_avg_reduced(self, managed_run, straightforward_run):
        """Paper: 85 % -> ~20 % (completion latency)."""
        sw = straightforward_run.jitter().worst_over_avg
        mg = managed_run.jitter().worst_over_avg
        assert mg < 0.6 * sw

    def test_scenario_hit_rate_high(self, managed_run):
        assert managed_run.scenario_hit_rate() > 0.85

    def test_expensive_frames_partitioned(self, managed_run):
        """Frames predicted over budget must have been split."""
        expensive = [
            f
            for f in managed_run.frames
            if f.serial_ms > managed_run.budget_ms * 1.1
        ]
        if not expensive:
            pytest.skip("no over-budget frames in this sequence")
        for f in expensive:
            assert max(f.parts.values()) > 1

    def test_cores_left_free(self, managed_run, profile_config):
        """Most frames use a fraction of the platform -- the headroom
        the co-scheduling experiment exploits."""
        assert managed_run.mean_cores_used() < profile_config.platform.n_cores / 2

    def test_explicit_budget_respected(self, trained_model, profile_config, test_seq):
        mgr = ResourceManager(
            trained_model, profile_config.make_simulator(), budget_ms=70.0
        )
        run = mgr.run_sequence(test_seq, make_pipe(test_seq), seq_key="t-b70")
        assert run.budget_ms == 70.0
        assert np.all(run.output_latency() >= 70.0 - 1e-9)


class TestRunResult:
    def test_accessors_shapes(self, managed_run):
        n = len(managed_run.frames)
        assert managed_run.latency().shape == (n,)
        assert managed_run.output_latency().shape == (n,)
        assert managed_run.serial_latency().shape == (n,)
        assert managed_run.predicted().shape == (n,)

    def test_prediction_tracks_serial_time(self, managed_run):
        """Predicted serial times stay close to measured ones.

        (Correlation is meaningless on a near-constant steady-state
        series, so assert relative accuracy instead.)"""
        pred = managed_run.predicted()[3:]
        meas = managed_run.serial_latency()[3:]
        rel_err = np.abs(pred - meas) / np.maximum(meas, 1e-9)
        assert np.median(rel_err) < 0.10
