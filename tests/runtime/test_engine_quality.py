"""Engine-level coverage of the quality-degradation path.

A tight budget with partitioning capped below what expensive frames
need forces the :class:`QualityController` below "full"; these tests
pin the whole path through the engine -- the FrameLog quality column,
the pipeline knob, and the runtime telemetry counters.
"""

from __future__ import annotations

import pytest

import repro.obs as obs
from repro.core import TripleC
from repro.imaging.pipeline import PipelineConfig, StentBoostPipeline
from repro.runtime import FrameEngine, TripleCPolicy
from repro.runtime.partition import Partitioner
from repro.runtime.quality import QualityController
from repro.synthetic.sequence import SequenceConfig, XRaySequence


@pytest.fixture(scope="module")
def degraded_run(traces, profile_config):
    """One engine run under observability whose budget forces
    quality degradation (40 ms, partitioning capped at 2)."""
    seq = XRaySequence(
        SequenceConfig(n_frames=48, seed=777, visibility_dips=1, clutter_level=0.9)
    )
    pipe = StentBoostPipeline(
        PipelineConfig(
            expected_distance=seq.config.resolved_phantom().marker_separation
        )
    )
    model = TripleC.fit(traces)
    sim = profile_config.make_simulator()
    policy = TripleCPolicy.for_simulator(
        model,
        sim,
        partitioner=Partitioner(sim.platform, model.graph, max_parts=2),
        budget_ms=40.0,
        quality_controller=QualityController(),
    )
    engine = FrameEngine(sim, policy)
    with obs.observed() as o:
        result = engine.run(seq, pipe, seq_key="eq")
    return o, result


class TestQualityDegradationPath:
    def test_budget_forces_degradation(self, degraded_run):
        _o, result = degraded_run
        assert result.budget_ms == 40.0
        degraded = [f for f in result.frames if f.quality != "full"]
        assert degraded, "40 ms budget must push the controller below full"
        assert all(f.quality in ("reduced", "minimum") for f in degraded)

    def test_counter_matches_degraded_frames(self, degraded_run):
        o, result = degraded_run
        degraded = sum(1 for f in result.frames if f.quality != "full")
        assert (
            o.metrics.counter("runtime_quality_degraded_total").value == degraded
        )

    def test_frame_span_quality_attr_matches_log(self, degraded_run):
        o, result = degraded_run
        frames = [
            r
            for r in o.tracer.records
            if r.get("kind") == "span" and r.get("name") == "engine.frame"
        ]
        assert len(frames) == len(result.frames)
        for rec, log in zip(frames, result.frames):
            assert rec["attrs"]["quality"] == log.quality

    def test_deadline_misses_counted_against_budget(self, degraded_run):
        o, result = degraded_run
        over = sum(1 for f in result.frames if f.latency_ms > 40.0)
        assert o.metrics.counter("runtime_deadline_miss_total").value == over

    def test_full_quality_run_emits_no_degradation_counter(
        self, traces, profile_config
    ):
        seq = XRaySequence(SequenceConfig(n_frames=12, seed=777))
        pipe = StentBoostPipeline(
            PipelineConfig(
                expected_distance=seq.config.resolved_phantom().marker_separation
            )
        )
        model = TripleC.fit(traces)
        sim = profile_config.make_simulator()
        engine = FrameEngine(sim, TripleCPolicy.for_simulator(model, sim))
        with obs.observed() as o:
            result = engine.run(seq, pipe, seq_key="eq-full")
        assert all(f.quality == "full" for f in result.frames)
        assert o.metrics.counter("runtime_quality_degraded_total").value == 0
