"""Tests for the greedy repartitioner."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import build_stentboost_graph
from repro.hw.spec import blackford
from repro.runtime.partition import Partitioner


@pytest.fixture(scope="module")
def part():
    return Partitioner(blackford(), build_stentboost_graph(), max_parts=4)


class TestTaskLatency:
    def test_serial_is_compute(self, part):
        assert part.task_latency_ms("RDG_FULL", 40.0, 1) == 40.0

    def test_split_adds_overhead(self, part):
        t2 = part.task_latency_ms("RDG_FULL", 40.0, 2)
        assert 20.0 < t2 < 22.0  # half + fork/join/halo

    def test_diminishing_returns(self, part):
        gains = []
        for k in range(1, 4):
            gains.append(
                part.task_latency_ms("RDG_FULL", 40.0, k)
                - part.task_latency_ms("RDG_FULL", 40.0, k + 1)
            )
        assert gains[0] > gains[1] > gains[2]

    def test_splittable_classification(self, part):
        assert part.splittable("RDG_FULL") and part.splittable("ENH")
        assert part.splittable("CPLS_SEL") and part.splittable("GW_EXT")
        assert not part.splittable("REG") and not part.splittable("ROI_EST")
        assert not part.splittable("UNKNOWN_TASK")


class TestChoose:
    TASKS = {"RDG_FULL": 45.0, "MKX_FULL_RDG": 4.0, "REG": 2.0, "ENH": 24.0, "ZOOM": 12.0}

    def test_serial_when_budget_loose(self, part):
        d = part.choose(self.TASKS, budget_ms=200.0)
        assert all(k == 1 for k in d.parts.values())
        assert d.cores_used == 1

    def test_splits_until_budget_met(self, part):
        d = part.choose(self.TASKS, budget_ms=50.0)
        assert d.predicted_latency_ms <= 50.0
        assert d.parts["RDG_FULL"] > 1  # biggest gain first

    def test_infeasible_budget_gives_best_effort(self, part):
        d = part.choose(self.TASKS, budget_ms=1.0)
        assert d.predicted_latency_ms > 1.0
        # Everything splittable should be maxed out.
        assert d.parts["RDG_FULL"] == 4
        assert d.parts["ENH"] == 4
        # REG is not splittable and stays serial.
        assert d.parts["REG"] == 1

    def test_invalid_budget(self, part):
        with pytest.raises(ValueError):
            part.choose(self.TASKS, budget_ms=0.0)

    @given(st.floats(min_value=10.0, max_value=200.0))
    @settings(max_examples=30, deadline=None)
    def test_property_mapping_consistent(self, part, budget):
        d = part.choose(self.TASKS, budget_ms=budget)
        for t, k in d.parts.items():
            assert d.mapping.partitions(t) == k
        assert d.cores_used <= 4
        assert d.predicted_latency_ms == pytest.approx(
            part.frame_latency_ms(self.TASKS, d.parts)
        )


class TestChooseRobust:
    def test_covers_worst_scenario(self, part):
        scenarios = {
            3: {"MKX_ROI": 0.5, "REG": 2.0, "ENH": 24.0, "ZOOM": 12.0},
            7: {"RDG_ROI": 5.0, "MKX_ROI_RDG": 0.5, "REG": 2.0, "ENH": 24.0, "ZOOM": 12.0},
            5: {"RDG_FULL": 45.0, "MKX_FULL_RDG": 4.0, "REG": 2.0, "ENH": 24.0, "ZOOM": 12.0},
        }
        d = part.choose_robust(scenarios, budget_ms=48.0)
        for tm in scenarios.values():
            assert part.frame_latency_ms(tm, d.parts) <= 48.0
        # The cheap scenario alone would not have needed the RDG split.
        assert d.parts["RDG_FULL"] > 1

    def test_single_scenario_close_to_plain_choose(self, part):
        tasks = dict(TestChoose.TASKS)
        a = part.choose(tasks, budget_ms=50.0)
        b = part.choose_robust({5: tasks}, budget_ms=50.0)
        assert a.parts == b.parts

    def test_empty_scenarios_rejected(self, part):
        with pytest.raises(ValueError):
            part.choose_robust({}, budget_ms=10.0)
