"""Bit-for-bit parity of the batched engine with the scalar loop.

The batched path (``FrameEngine.run(batched=True)``) must be an
*optimization only*: for every policy the recorded tables -- every
logged float, scenario id, partition map and per-task time -- and the
simulator's bandwidth ledger must equal the scalar loop's exactly,
and the policy's model must end the run in the same state.
Configurations the batch walk cannot reproduce (quality control,
warmed-up predictors, observability, DRAM contention) must fall back
to the scalar loop rather than diverge.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.obs as obs
from repro.core import TripleC
from repro.experiments.common import make_pipeline
from repro.experiments.fig7 import fig7_sequence
from repro.runtime import (
    FrameEngine,
    QualityController,
    ResourceManager,
    StaticSerialPolicy,
    WorstCaseReservationPolicy,
    record_tape,
)

#: Scalar table columns compared elementwise (dtype + bytes).
_COLUMNS = (
    "index",
    "predicted_scenario",
    "actual_scenario",
    "predicted_ms",
    "serial_ms",
    "latency_ms",
    "output_ms",
    "cores_used",
)


@pytest.fixture(scope="module")
def seq():
    return fig7_sequence(n_frames=48)


def assert_bit_identical(batched, scalar):
    assert batched.label == scalar.label
    assert batched.budget_ms == scalar.budget_ms
    assert len(batched) == len(scalar)
    for name in _COLUMNS:
        got = batched.table.column(name)
        want = scalar.table.column(name)
        assert got.dtype == want.dtype
        assert np.array_equal(got, want), f"column {name!r} diverged"
    # FrameLog equality additionally covers parts, quality and the
    # per-task measured/predicted time dicts.
    for got, want in zip(batched.frames, scalar.frames):
        assert got == want


def _ledger_state(simulator):
    return (
        simulator.ledger.frames,
        {
            link: simulator.ledger.total_bytes(link)
            for link in ("dram", "bus", "l2")
        },
    )


class TestBatchParity:
    def test_straightforward(self, seq, profile_config):
        sim_s = profile_config.make_simulator()
        sim_b = profile_config.make_simulator()
        scalar = FrameEngine(sim_s, StaticSerialPolicy()).run(
            seq, make_pipeline(seq), seq_key="b-sw"
        )
        engine = FrameEngine(sim_b, StaticSerialPolicy())
        assert engine._batch_supported()
        batched = engine.run(seq, make_pipeline(seq), seq_key="b-sw", batched=True)
        assert_bit_identical(batched, scalar)
        assert _ledger_state(sim_b) == _ledger_state(sim_s)

    def test_straightforward_with_model(self, seq, traces, profile_config):
        sim_s = profile_config.make_simulator()
        sim_b = profile_config.make_simulator()
        scalar = FrameEngine(
            sim_s, StaticSerialPolicy(model=TripleC.fit(traces))
        ).run(seq, make_pipeline(seq), seq_key="b-swm")
        engine = FrameEngine(
            sim_b, StaticSerialPolicy(model=TripleC.fit(traces))
        )
        assert engine._batch_supported()
        batched = engine.run(
            seq, make_pipeline(seq), seq_key="b-swm", batched=True
        )
        assert_bit_identical(batched, scalar)

    def test_managed(self, seq, traces, profile_config):
        mgr_s = ResourceManager(
            TripleC.fit(traces), profile_config.make_simulator()
        )
        scalar = mgr_s.run_sequence(seq, make_pipeline(seq), seq_key="b-mg")
        mgr_b = ResourceManager(
            TripleC.fit(traces), profile_config.make_simulator()
        )
        assert mgr_b.engine._batch_supported()
        batched = mgr_b.run_sequence(
            seq, make_pipeline(seq), seq_key="b-mg", batched=True
        )
        assert_bit_identical(batched, scalar)
        assert _ledger_state(mgr_b.simulator) == _ledger_state(mgr_s.simulator)

    def test_managed_model_end_state(self, seq, traces, profile_config):
        mgr_s = ResourceManager(
            TripleC.fit(traces), profile_config.make_simulator()
        )
        mgr_s.run_sequence(seq, make_pipeline(seq), seq_key="b-st")
        mgr_b = ResourceManager(
            TripleC.fit(traces), profile_config.make_simulator()
        )
        mgr_b.run_sequence(
            seq, make_pipeline(seq), seq_key="b-st", batched=True
        )
        assert (
            mgr_b.triplec._current_scenario == mgr_s.triplec._current_scenario
        )
        assert np.array_equal(
            mgr_b.triplec.scenarios.counts, mgr_s.triplec.scenarios.counts
        )
        # The warmed predictors answer identically after either run.
        pred_s = mgr_s.triplec.predict(100.0)
        pred_b = mgr_b.triplec.predict(100.0)
        assert pred_b.task_ms == pred_s.task_ms
        assert pred_b.scenario_id == pred_s.scenario_id

    def test_worst_case(self, seq, profile_config):
        sim_s = profile_config.make_simulator()
        sim_b = profile_config.make_simulator()
        scalar = FrameEngine(sim_s, WorstCaseReservationPolicy(120.0)).run(
            seq, make_pipeline(seq), seq_key="b-wc"
        )
        engine = FrameEngine(sim_b, WorstCaseReservationPolicy(120.0))
        assert engine._batch_supported()
        batched = engine.run(
            seq, make_pipeline(seq), seq_key="b-wc", batched=True
        )
        assert_bit_identical(batched, scalar)


class TestBatchFallback:
    def test_quality_controller_falls_back(self, seq, traces, profile_config):
        """Quality control mutates the live pipeline per frame; the
        batched flag must quietly take the scalar loop."""

        def managed_quality(batched: bool):
            mgr = ResourceManager(
                TripleC.fit(traces),
                profile_config.make_simulator(),
                budget_ms=40.0,
                quality_controller=QualityController(),
            )
            assert not mgr.engine._batch_supported()
            return mgr.run_sequence(
                seq, make_pipeline(seq), seq_key="b-q", batched=batched
            )

        assert_bit_identical(managed_quality(True), managed_quality(False))

    def test_warm_model_falls_back(self, seq, traces, profile_config):
        """A second run starts from warmed predictor state, which the
        batch walk cannot reproduce -- it must fall back, and the
        two-run outcome must match two scalar runs."""

        def run_twice(batched: bool):
            mgr = ResourceManager(
                TripleC.fit(traces), profile_config.make_simulator()
            )
            first = mgr.run_sequence(
                seq, make_pipeline(seq), seq_key="b-w1", batched=batched
            )
            if batched:
                assert not mgr.engine._batch_supported()
            second = mgr.run_sequence(
                seq, make_pipeline(seq), seq_key="b-w2", batched=batched
            )
            return first, second

        scalar1, scalar2 = run_twice(False)
        batched1, batched2 = run_twice(True)
        assert_bit_identical(batched1, scalar1)
        assert_bit_identical(batched2, scalar2)

    def test_observability_forces_scalar(self, seq, profile_config):
        engine = FrameEngine(
            profile_config.make_simulator(), StaticSerialPolicy()
        )
        with obs.observed():
            assert not engine._batch_supported()

    def test_dram_contention_forces_scalar(self, profile_config):
        sim = profile_config.make_simulator()
        sim.dram_contention = True
        engine = FrameEngine(sim, StaticSerialPolicy())
        assert not engine._batch_supported()


class TestRunTape:
    def test_scalar_replay_matches_live_run(self, seq, traces, profile_config):
        """A recorded tape replayed through the unmodified scalar loop
        reproduces the live run exactly."""
        mgr_live = ResourceManager(
            TripleC.fit(traces), profile_config.make_simulator()
        )
        live = mgr_live.run_sequence(seq, make_pipeline(seq), seq_key="b-tp")

        tape = record_tape(seq, make_pipeline(seq))
        mgr_tape = ResourceManager(
            TripleC.fit(traces), profile_config.make_simulator()
        )
        replayed = mgr_tape.engine.run_tape(tape, seq_key="b-tp", batched=False)
        assert_bit_identical(replayed, live)

    def test_batched_tape_matches_live_run(self, seq, traces, profile_config):
        tape = record_tape(seq, make_pipeline(seq))
        mgr_live = ResourceManager(
            TripleC.fit(traces), profile_config.make_simulator()
        )
        live = mgr_live.run_sequence(seq, make_pipeline(seq), seq_key="b-tb")
        mgr_tape = ResourceManager(
            TripleC.fit(traces), profile_config.make_simulator()
        )
        batched = mgr_tape.engine.run_tape(tape, seq_key="b-tb", batched=True)
        assert_bit_identical(batched, live)

    def test_replay_refuses_frame_setup(self, seq, profile_config):
        tape = record_tape(seq, make_pipeline(seq))
        engine = FrameEngine(
            profile_config.make_simulator(),
            StaticSerialPolicy(frame_setup=lambda pipeline: None),
        )
        with pytest.raises(ValueError, match="frame_setup"):
            engine.run_tape(tape, batched=False)
