"""Tests for the latency budget and delay line."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.qos import DelayLine, LatencyBudget


class TestLatencyBudget:
    def test_initialize_applies_slack(self):
        b = LatencyBudget(slack=1.1)
        assert not b.initialized
        target = b.initialize(50.0)
        assert target == pytest.approx(55.0)
        assert b.initialized

    def test_require_before_init_raises(self):
        with pytest.raises(RuntimeError):
            LatencyBudget().require()

    def test_invalid_average_case(self):
        with pytest.raises(ValueError):
            LatencyBudget().initialize(0.0)

    def test_explicit_target(self):
        b = LatencyBudget(target_ms=48.0)
        assert b.require() == 48.0


class TestDelayLine:
    def make(self, target=50.0):
        return DelayLine(LatencyBudget(target_ms=target))

    def test_early_frame_padded(self):
        d = self.make()
        assert d.push(30.0) == 50.0
        assert d.violations == 0

    def test_late_frame_passes_and_counts(self):
        d = self.make()
        assert d.push(60.0) == 60.0
        assert d.violations == 1
        assert d.violation_rate() == 1.0

    def test_output_jitter_zero_when_all_early(self):
        d = self.make()
        for lat in (10.0, 30.0, 49.9):
            d.push(lat)
        assert d.output_jitter_std() == 0.0
        assert d.violation_rate() == 0.0

    def test_series_recorded(self):
        d = self.make()
        d.push(20.0)
        d.push(70.0)
        assert d.completion_ms == [20.0, 70.0]
        assert d.output_ms == [50.0, 70.0]
        assert d.n_frames == 2

    @given(st.lists(st.floats(min_value=0.1, max_value=200.0), min_size=1, max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_property_output_dominates(self, lats):
        d = self.make(target=50.0)
        for lat in lats:
            out = d.push(lat)
            assert out >= lat - 1e-12
            assert out >= 50.0 - 1e-12
        assert np.std(d.output_ms) <= max(np.std(d.completion_ms), 1e-12) + 1e-9
