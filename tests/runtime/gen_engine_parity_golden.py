"""Regenerate the engine-parity golden data.

Usage::

    PYTHONPATH=src python tests/runtime/gen_engine_parity_golden.py

Writes ``tests/runtime/golden/engine_parity.json``: the RunResults of
the four reference runs (straightforward, managed, worst-case
reservation, managed + quality control) plus the multiapp/throughput
mapping transforms, all on the fig7 smoke sequence with a model
trained on the shared test corpus (``CorpusSpec(5, 220, 7)``).

The committed golden file was produced by the pre-refactor
implementations (``ResourceManager.run_sequence`` and the
``baselines``/driver loops *before* the frame engine existed), so
``tests/runtime/test_engine_parity.py`` pins the refactored engine
bit-for-bit to the original behavior.  Only regenerate it when a
deliberate behavioral change is made (e.g. recalibration), and say so
in the commit message.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path

from repro.core import TripleC
from repro.experiments.common import make_pipeline
from repro.experiments.fig7 import fig7_sequence
from repro.hw.mapping import Mapping
from repro.profiling import ProfileConfig, profile_corpus
from repro.runtime import (
    Partitioner,
    QualityController,
    ResourceManager,
    run_straightforward,
    run_worst_case,
)
from repro.synthetic import CorpusSpec, generate_corpus

OUT = Path(__file__).parent / "golden" / "engine_parity.json"

#: Matches tests/conftest.py's session corpus so the parity test can
#: reuse the shared ``traces`` fixture.
CORPUS = CorpusSpec(n_sequences=5, total_frames=220, base_seed=7)
N_FRAMES = 48


def run_to_dict(result) -> dict:
    return {
        "label": result.label,
        "budget_ms": result.budget_ms,
        "frames": [asdict(f) for f in result.frames],
        "jitter": asdict(result.jitter()),
    }


def mapping_to_dict(mapping: Mapping) -> dict:
    return {
        "assignments": {
            t: list(cores) for t, cores in sorted(mapping.assignments.items())
        },
        "default_core": mapping.default_core,
    }


def multiapp_transform(parts: dict[str, int], k: int, half: int, core_base: int) -> Mapping:
    """The pre-refactor multiapp._app_frames mapping construction."""
    mapping = Mapping.serial()
    for task, n_parts in parts.items():
        if n_parts > 1:
            mapping = mapping.with_partition(task, tuple(range(min(n_parts, half))))
    local = mapping.rotated(k, half)
    return Mapping(
        assignments={
            t: tuple(c + core_base for c in cores)
            for t, cores in local.assignments.items()
        },
        default_core=local.default_core + core_base,
    )


def throughput_transform(parts: dict[str, int], k: int, n_cores: int) -> Mapping:
    """The pre-refactor throughput managed-rotated mapping construction."""
    mapping = Mapping.serial()
    for task, n_parts in parts.items():
        if n_parts > 1:
            mapping = mapping.with_partition(task, tuple(range(n_parts)))
    return mapping.rotated(k, n_cores)


def main() -> None:
    config = ProfileConfig()
    traces = profile_corpus(generate_corpus(CORPUS), config)
    seq = fig7_sequence(n_frames=N_FRAMES)

    sw = run_straightforward(
        seq, make_pipeline(seq), config.make_simulator(), seq_key="par-sw"
    )

    mgr = ResourceManager(TripleC.fit(traces), config.make_simulator())
    mg = mgr.run_sequence(seq, make_pipeline(seq), seq_key="par-mg")

    worst_budget = float(sw.latency().max()) * 1.05
    wc = run_worst_case(
        seq,
        make_pipeline(seq),
        config.make_simulator(),
        worst_case_ms=worst_budget,
        seq_key="par-wc",
    )

    model_q = TripleC.fit(traces)
    sim_q = config.make_simulator()
    mgr_q = ResourceManager(
        model_q,
        sim_q,
        partitioner=Partitioner(sim_q.platform, model_q.graph, max_parts=2),
        budget_ms=40.0,
        quality_controller=QualityController(),
    )
    quality = mgr_q.run_sequence(seq, make_pipeline(seq), seq_key="par-q")

    n_cores = sim_q.platform.n_cores
    half = n_cores // 2
    transforms = {
        "multiapp": [
            mapping_to_dict(multiapp_transform(f.parts, k, half, core_base=half))
            for k, f in enumerate(mg.frames)
        ],
        "throughput": [
            mapping_to_dict(throughput_transform(f.parts, k, n_cores))
            for k, f in enumerate(mg.frames)
        ],
        "n_cores": n_cores,
        "half": half,
    }

    doc = {
        "corpus": {
            "n_sequences": CORPUS.n_sequences,
            "total_frames": CORPUS.total_frames,
            "base_seed": CORPUS.base_seed,
        },
        "n_frames": N_FRAMES,
        "worst_budget_ms": worst_budget,
        "runs": {
            "straightforward": run_to_dict(sw),
            "managed": run_to_dict(mg),
            "worst_case": run_to_dict(wc),
            "quality": run_to_dict(quality),
        },
        "transforms": transforms,
    }
    OUT.parent.mkdir(parents=True, exist_ok=True)
    OUT.write_text(json.dumps(doc, indent=1))
    print(f"wrote {OUT} ({len(mg.frames)} managed frames)")


if __name__ == "__main__":
    main()
