"""Tests for quality-level QoS control."""

from __future__ import annotations

import numpy as np
import pytest

from repro.imaging.pipeline import PipelineConfig, StentBoostPipeline
from repro.runtime import ResourceManager
from repro.runtime.partition import Partitioner
from repro.runtime.quality import QUALITY_LEVELS, QualityController, QualityLevel
from repro.synthetic.sequence import SequenceConfig, XRaySequence


class TestQualityLevel:
    def test_builtin_levels_ordered(self):
        assert [q.name for q in QUALITY_LEVELS] == ["full", "reduced", "minimum"]
        # Monotone cost knobs: scales and candidate caps never grow.
        scales = [len(q.rdg_scales) for q in QUALITY_LEVELS]
        cands = [q.max_candidates for q in QUALITY_LEVELS]
        assert scales == sorted(scales, reverse=True)
        assert cands == sorted(cands, reverse=True)

    def test_validation(self):
        with pytest.raises(ValueError):
            QualityLevel("bad", rdg_scales=(), max_candidates=10)
        with pytest.raises(ValueError):
            QualityLevel("bad", rdg_scales=(2.0,), max_candidates=1)


class TestQualityController:
    def test_starts_at_full(self):
        c = QualityController()
        assert c.current.name == "full"
        assert not c.degraded

    def test_degrades_on_infeasible_prediction(self):
        c = QualityController()
        level = c.decide(predicted_latency_ms=60.0, budget_ms=50.0)
        assert level.name == "reduced"
        level = c.decide(60.0, 50.0)
        assert level.name == "minimum"
        # Already at the floor: stays.
        assert c.decide(60.0, 50.0).name == "minimum"

    def test_recovery_requires_hysteresis(self):
        c = QualityController(recovery_frames=3)
        c.decide(60.0, 50.0)  # -> reduced
        assert c.degraded
        # Two calm frames are not enough ...
        assert c.decide(15.0, 50.0).name == "reduced"
        assert c.decide(15.0, 50.0).name == "reduced"
        # ... the third restores.
        assert c.decide(15.0, 50.0).name == "full"

    def test_marginal_headroom_does_not_restore(self):
        c = QualityController(recovery_frames=2, recovery_headroom=0.8)
        c.decide(60.0, 50.0)
        for _ in range(10):
            # Better level would cost 2x (scale count 2 vs 1): 2*30=60
            # > 0.8*50, so the controller must hold at "reduced".
            assert c.decide(30.0, 50.0).name == "reduced"

    def test_reset(self):
        c = QualityController()
        c.decide(60.0, 50.0)
        c.reset()
        assert c.current.name == "full"

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            QualityController().decide(10.0, 0.0)


class TestPipelineQualityKnobs:
    def test_reduced_quality_cuts_rdg_work(self, short_sequence):
        sep = short_sequence.config.resolved_phantom().marker_separation
        img, _ = short_sequence.frame(2)

        def rdg_pixels(quality):
            pipe = StentBoostPipeline(PipelineConfig(expected_distance=sep))
            pipe.quality = quality
            fa = pipe.process(img)
            for name, rep in fa.reports.items():
                if name.startswith("RDG_") and name != "RDG_DETECT":
                    return rep.pixels
            return None

        full = rdg_pixels(QUALITY_LEVELS[0])
        reduced = rdg_pixels(QUALITY_LEVELS[1])
        if full is None or reduced is None:
            pytest.skip("RDG switch off for this frame")
        assert reduced == full // 2  # one scale instead of two

    def test_candidate_cap_applied(self, short_sequence):
        sep = short_sequence.config.resolved_phantom().marker_separation
        img, _ = short_sequence.frame(2)
        pipe = StentBoostPipeline(PipelineConfig(expected_distance=sep))
        pipe.quality = QualityLevel("tiny", rdg_scales=(2.0,), max_candidates=3)
        fa = pipe.process(img)
        assert len(fa.candidates) <= 3


class TestManagedQualityScaling:
    def test_quality_rescues_infeasible_budget(self, traces, profile_config):
        """With partitioning capped at 2 and a tight budget, fixed
        quality misses the budget on expensive frames; the controller
        degrades instead and recovers the deadline."""
        from repro.core import TripleC

        seq_cfg = SequenceConfig(
            n_frames=60, seed=777, visibility_dips=1, clutter_level=0.9
        )

        def run(controller):
            seq = XRaySequence(seq_cfg)
            pipe = StentBoostPipeline(
                PipelineConfig(
                    expected_distance=seq.config.resolved_phantom().marker_separation
                )
            )
            model = TripleC.fit(traces)
            sim = profile_config.make_simulator()
            part = Partitioner(sim.platform, model.graph, max_parts=2)
            mgr = ResourceManager(
                model,
                sim,
                partitioner=part,
                budget_ms=40.0,
                quality_controller=controller,
            )
            return mgr.run_sequence(seq, pipe, seq_key="q")

        fixed = run(None)
        scaled = run(QualityController())

        def excess_ms(r):
            return float(np.sum(np.maximum(r.latency() - 40.0, 0.0)))

        # Quality scaling cannot fix a mispredicted switch frame, but
        # it must slash the total over-budget mass and the worst frame.
        assert excess_ms(scaled) < 0.5 * excess_ms(fixed)
        assert scaled.latency().max() < fixed.latency().max()
        assert any(f.quality != "full" for f in scaled.frames)
        assert all(f.quality == "full" for f in fixed.frames)
