"""Regenerate the workload-registry parity golden data.

Usage::

    PYTHONPATH=src python tests/workloads/gen_workload_parity_golden.py

Writes ``tests/workloads/golden/workload_parity.json``: the exact
artifacts the pre-registry code produced for the StentBoost
application -- corpus-config fingerprint, a fully profiled smoke
``TraceSet`` payload, the scenario table, and straightforward engine
latencies -- so ``tests/workloads/test_workload_parity.py`` can pin
that resolving ``stentboost`` through ``repro.workloads`` is
bit-identical to the old direct ``build_stentboost_graph`` /
``StentBoostPipeline`` path.

The committed golden file was produced by the *pre-refactor* seed
implementation (direct imports, no registry).  Only regenerate it when
a deliberate behavioral change is made, and say so in the commit
message.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict
from pathlib import Path

from repro.experiments.common import make_pipeline
from repro.graph.scenarios import scenario_table
from repro.graph.stentboost import build_stentboost_graph
from repro.profiling import ProfileConfig, profile_corpus
from repro.runtime import run_straightforward
from repro.synthetic import CorpusSpec, corpus_configs, generate_corpus

OUT = Path(__file__).parent / "golden" / "workload_parity.json"

#: Tiny dedicated corpus -- small enough to profile in seconds, big
#: enough to exercise scenario switching.
CORPUS = CorpusSpec(n_sequences=2, total_frames=40, base_seed=11)
N_FRAMES = 24


def corpus_fingerprint(spec: CorpusSpec) -> str:
    blob = json.dumps(
        [asdict(cfg) for cfg in corpus_configs(spec)], sort_keys=True
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def main() -> None:
    config = ProfileConfig()
    traces = profile_corpus(generate_corpus(CORPUS), config, jobs=1)
    payload = {
        "pixel_scale": traces.pixel_scale,
        "platform": traces.platform,
        "records": [asdict(r) for r in traces.records],
    }

    rows = [
        {
            "id": row["id"],
            "name": row["name"],
            "tasks": list(row["tasks"]),
            "bandwidth_mbps": row["bandwidth_mbps"],
        }
        for row in scenario_table(build_stentboost_graph())
    ]

    seq = generate_corpus(CorpusSpec(1, N_FRAMES, base_seed=13))[0]
    sw = run_straightforward(
        seq, make_pipeline(seq), config.make_simulator(), seq_key="wl-par"
    )

    doc = {
        "corpus": {
            "n_sequences": CORPUS.n_sequences,
            "total_frames": CORPUS.total_frames,
            "base_seed": CORPUS.base_seed,
        },
        "corpus_fingerprint": corpus_fingerprint(CORPUS),
        "traces": payload,
        "scenario_table": rows,
        "engine": {
            "n_frames": N_FRAMES,
            "latency_ms": [f.latency_ms for f in sw.frames],
            "scenario_ids": [f.actual_scenario for f in sw.frames],
        },
    }
    OUT.parent.mkdir(parents=True, exist_ok=True)
    OUT.write_text(json.dumps(doc, indent=1, sort_keys=True))
    print(f"wrote {OUT} ({len(traces.records)} trace records)")


if __name__ == "__main__":
    main()
