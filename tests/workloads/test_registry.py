"""Registry behavior + per-workload smoke over the whole stack.

Every registered workload must survive the same pipeline StentBoost
does: synthetic corpus generation, serial and parallel profiling
(byte-identical), the straightforward engine run, and trace
provenance round-trips.  The two new applications additionally pin
their contrasting scenario dynamics (slow navigation drift vs abrupt
per-frame switching).
"""

from __future__ import annotations

import json

import pytest

from repro.profiling import ProfileConfig, profile_corpus
from repro.profiling.traces import TraceSet
from repro.runtime import run_straightforward
from repro.synthetic import CorpusSpec, XRaySequence
from repro.workloads import (
    DEFAULT_WORKLOAD,
    REGISTRY_VERSION,
    all_workloads,
    get_workload,
    workload_names,
)

SMOKE = CorpusSpec(n_sequences=2, total_frames=16, base_seed=21)

ALL_NAMES = ("stentboost", "robotvision", "ultrasound")


def smoke_sequences(name: str) -> list[XRaySequence]:
    return [XRaySequence(c) for c in get_workload(name).corpus_configs(SMOKE)]


class TestRegistry:
    def test_registered_names(self):
        assert workload_names() == list(ALL_NAMES)
        assert [wl.name for wl in all_workloads()] == list(ALL_NAMES)

    def test_default_workload_registered(self):
        assert get_workload(DEFAULT_WORKLOAD).name == DEFAULT_WORKLOAD

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown workload"):
            get_workload("mri")

    def test_switch_names_are_triples(self):
        for wl in all_workloads():
            assert len(wl.switch_names) == 3

    def test_fleet_params_consistent(self):
        for wl in all_workloads():
            fp = wl.fleet
            assert len(fp.transition) == len(fp.state_base_ms)
            for row in fp.transition:
                assert len(row) == len(fp.state_base_ms)
                assert abs(sum(row) - 1.0) < 1e-9
            assert all(c > 0 for c in fp.cores_choices)
            assert 0.0 < fp.weight <= 1.0

    def test_graphs_have_eight_scenario_tables(self):
        from repro.graph.scenarios import scenario_table

        for wl in all_workloads():
            rows = scenario_table(wl.build_graph(), wl.switch_names)
            assert len(rows) == 8
            assert all(row["tasks"] for row in rows)


@pytest.mark.parametrize("name", ALL_NAMES)
class TestPerWorkloadSmoke:
    def test_profile_serial_parallel_byte_identity(self, name, tmp_path):
        config = ProfileConfig(workload=name)
        sequences = smoke_sequences(name)
        serial = profile_corpus(sequences, config, jobs=1)
        pooled = profile_corpus(sequences, config, jobs=2)
        p_serial = tmp_path / "serial.json"
        p_pooled = tmp_path / "pooled.json"
        serial.save(p_serial)
        pooled.save(p_pooled)
        assert p_serial.read_bytes() == p_pooled.read_bytes()

    def test_trace_provenance_recorded(self, name):
        traces = profile_corpus(
            smoke_sequences(name), ProfileConfig(workload=name), jobs=1
        )
        assert traces.workload == name
        assert traces.registry_version == REGISTRY_VERSION
        assert len(traces) == SMOKE.total_frames

    def test_provenance_save_load_round_trip(self, name, tmp_path):
        traces = profile_corpus(
            smoke_sequences(name), ProfileConfig(workload=name), jobs=1
        )
        path = tmp_path / "traces.json"
        traces.save(path)
        loaded = TraceSet.load(path)
        # meta drops the (unserializable) live ledger on save; every
        # serialized field must survive.
        assert loaded.records == traces.records
        assert loaded.pixel_scale == traces.pixel_scale
        assert loaded.platform == traces.platform
        assert loaded.workload == name
        assert loaded.registry_version == REGISTRY_VERSION
        # The JSON fallback path (stale/missing sidecar) keeps it too.
        path.with_suffix(".npz").unlink()
        fallback = TraceSet.load(path)
        assert fallback.workload == name
        assert fallback.registry_version == REGISTRY_VERSION

    def test_engine_straightforward_run(self, name):
        wl = get_workload(name)
        seq = smoke_sequences(name)[0]
        config = ProfileConfig(workload=name)
        result = run_straightforward(
            seq,
            wl.make_pipeline(seq, None),
            config.make_simulator(),
            seq_key=f"smoke-{name}",
        )
        assert len(result.frames) == len(seq)
        assert all(f.latency_ms > 0 for f in result.frames)
        assert all(0 <= f.actual_scenario <= 7 for f in result.frames)


class TestLegacyProvenance:
    def test_fresh_trace_set_has_empty_provenance(self):
        assert TraceSet().workload == ""
        assert TraceSet().registry_version == ""

    def test_legacy_json_without_keys_loads_empty(self, tmp_path):
        traces = profile_corpus(
            smoke_sequences("stentboost"),
            ProfileConfig(workload="stentboost"),
            jobs=1,
        )
        path = tmp_path / "legacy.json"
        traces.save(path)
        payload = json.loads(path.read_text())
        del payload["workload"]
        del payload["registry_version"]
        path.write_text(json.dumps(payload, sort_keys=True))
        path.with_suffix(".npz").unlink()
        loaded = TraceSet.load(path)
        assert loaded.workload == ""
        assert loaded.registry_version == ""
        assert loaded.records == traces.records


class TestScenarioDynamics:
    """The two new applications contrast as designed: robotvision
    drifts slowly, ultrasound switches abruptly."""

    N_FRAMES = 64

    def _scenario_ids(self, name: str) -> list[int]:
        wl = get_workload(name)
        spec = CorpusSpec(n_sequences=1, total_frames=self.N_FRAMES, base_seed=33)
        seq = XRaySequence(wl.corpus_configs(spec)[0])
        pipe = wl.make_pipeline(seq, None)
        return [
            pipe.process(img).scenario_id for img, _truth in seq.iter_frames()
        ]

    @staticmethod
    def _changes(sids: list[int]) -> int:
        return sum(a != b for a, b in zip(sids, sids[1:]))

    def test_ultrasound_switches_abruptly(self):
        sids = self._scenario_ids("ultrasound")
        assert len(set(sids)) >= 3
        assert self._changes(sids) >= len(sids) // 4

    def test_robotvision_drifts_slowly(self):
        sids = self._scenario_ids("robotvision")
        assert len(set(sids)) >= 2

    def test_contrast_between_the_two(self):
        rv = self._changes(self._scenario_ids("robotvision"))
        us = self._changes(self._scenario_ids("ultrasound"))
        assert rv < us
