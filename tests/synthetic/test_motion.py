"""Tests for the cardiac/respiratory motion model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.synthetic.motion import MotionModel, MotionSpec, RigidOffset


class TestRigidOffset:
    def test_identity(self):
        off = RigidOffset(0.0, 0.0, 0.0)
        assert off.apply((5.0, 7.0), (0.0, 0.0)) == (5.0, 7.0)

    def test_pure_translation(self):
        off = RigidOffset(2.0, -3.0, 0.0)
        y, x = off.apply((1.0, 1.0), (0.0, 0.0))
        assert (y, x) == pytest.approx((3.0, -2.0))

    def test_rotation_about_pivot(self):
        off = RigidOffset(0.0, 0.0, np.pi / 2)
        y, x = off.apply((0.0, 1.0), (0.0, 0.0))
        # Convention: ry = cos*y - sin*x, rx = sin*y + cos*x.
        assert (y, x) == pytest.approx((-1.0, 0.0), abs=1e-12)

    def test_pivot_is_fixed_point(self):
        off = RigidOffset(0.0, 0.0, 0.7)
        assert off.apply((4.0, 5.0), (4.0, 5.0)) == pytest.approx((4.0, 5.0))

    def test_rotation_preserves_distances(self):
        off = RigidOffset(1.0, 2.0, 0.3)
        pivot = (10.0, 10.0)
        a = np.array(off.apply((3.0, 4.0), pivot))
        b = np.array(off.apply((8.0, -2.0), pivot))
        orig = np.hypot(8.0 - 3.0, -2.0 - 4.0)
        assert np.hypot(*(a - b)) == pytest.approx(orig, rel=1e-12)


class TestMotionModel:
    def test_deterministic(self):
        m1 = MotionModel(MotionSpec(), 50, seed=3)
        m2 = MotionModel(MotionSpec(), 50, seed=3)
        for k in (0, 10, 49):
            assert m1.offset(k) == m2.offset(k)

    def test_out_of_range_raises(self):
        m = MotionModel(MotionSpec(), 10, seed=0)
        with pytest.raises(IndexError):
            m.offset(10)
        with pytest.raises(IndexError):
            m.offset(-1)

    def test_amplitude_bounded(self):
        spec = MotionSpec(cardiac_amp=4.0, resp_amp=6.0, tremor_sigma=0.3)
        m = MotionModel(spec, 300, seed=1)
        offs = m.offsets()
        dys = np.array([o.dy for o in offs])
        dxs = np.array([o.dx for o in offs])
        bound = 0.8 * 1.35 * 4.0 + 0.9 * 6.0 + 5 * 0.3  # components + tremor tail
        assert np.all(np.abs(dys) < bound)
        assert np.all(np.abs(dxs) < bound)

    def test_cardiac_periodicity_visible(self):
        """The dy series must show energy at the cardiac frequency."""
        spec = MotionSpec(
            cardiac_period=20.0, cardiac_amp=5.0, resp_amp=0.0, tremor_sigma=0.0
        )
        m = MotionModel(spec, 200, seed=2)
        dy = np.array([m.offset(k).dy for k in range(200)])
        spectrum = np.abs(np.fft.rfft(dy - dy.mean()))
        freqs = np.fft.rfftfreq(200)
        peak_freq = freqs[np.argmax(spectrum)]
        assert peak_freq == pytest.approx(1.0 / 20.0, abs=0.01)

    def test_rotation_bounded(self):
        spec = MotionSpec(rotation_amp=0.05)
        m = MotionModel(spec, 100, seed=4)
        angles = [abs(m.offset(k).angle) for k in range(100)]
        assert max(angles) <= 0.05 + 1e-12
