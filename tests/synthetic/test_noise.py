"""Tests for the X-ray noise model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.synthetic.noise import NoiseSpec, apply_xray_noise
from repro.util.rng import rng_stream


class TestNoiseSpec:
    def test_nonpositive_dose_rejected(self):
        with pytest.raises(ValueError):
            NoiseSpec(dose=0.0)
        with pytest.raises(ValueError):
            NoiseSpec(dose=-1.0)


class TestApplyXrayNoise:
    def _noisy(self, level, dose=1.0, seed=0, n=200_000):
        clean = np.full(n, level, dtype=np.float32)
        spec = NoiseSpec(dose=dose)
        return apply_xray_noise(
            clean.reshape(400, -1), spec, rng_stream(seed, "t")
        ).ravel()

    def test_mean_preserved(self):
        noisy = self._noisy(0.5)
        assert noisy.mean() == pytest.approx(0.5, abs=1e-3)

    def test_variance_scales_with_signal(self):
        """Quantum noise: brighter pixels are noisier (Poisson-like)."""
        lo = self._noisy(0.2).std()
        hi = self._noisy(0.8).std()
        assert hi > lo * 1.5

    def test_variance_decreases_with_dose(self):
        noisy_low = self._noisy(0.5, dose=0.5)
        noisy_high = self._noisy(0.5, dose=4.0)
        assert noisy_high.std() < noisy_low.std() / 1.8

    def test_clipped_to_unit_range(self):
        noisy = self._noisy(0.99, dose=0.1)
        assert noisy.max() <= 1.0
        assert self._noisy(0.01, dose=0.1).min() >= 0.0

    def test_deterministic_per_rng(self):
        clean = np.full((64, 64), 0.5, dtype=np.float32)
        spec = NoiseSpec()
        a = apply_xray_noise(clean, spec, rng_stream(1, "n"))
        b = apply_xray_noise(clean, spec, rng_stream(1, "n"))
        np.testing.assert_array_equal(a, b)

    def test_input_not_mutated(self):
        clean = np.full((32, 32), 0.5, dtype=np.float32)
        ref = clean.copy()
        apply_xray_noise(clean, NoiseSpec(), rng_stream(0, "m"))
        np.testing.assert_array_equal(clean, ref)

    def test_matches_combined_sigma_model(self):
        """Output std ~ sqrt(I*sq^2/dose + se^2)."""
        spec = NoiseSpec(dose=2.0, quantum_scale=0.04, electronic_sigma=0.01)
        noisy = apply_xray_noise(
            np.full((500, 500), 0.5, dtype=np.float32), spec, rng_stream(3, "s")
        )
        expected = np.sqrt(0.5 * 0.04**2 / 2.0 + 0.01**2)
        assert noisy.std() == pytest.approx(expected, rel=0.02)
