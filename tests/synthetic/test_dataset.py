"""Tests for the corpus builder (the 37-sequence training set)."""

from __future__ import annotations

import pytest

from repro.synthetic.dataset import (
    PAPER_N_SEQUENCES,
    PAPER_TOTAL_FRAMES,
    CorpusSpec,
    corpus_configs,
    generate_corpus,
)


class TestCorpusSpec:
    def test_paper_defaults(self):
        spec = CorpusSpec()
        assert spec.n_sequences == PAPER_N_SEQUENCES == 37
        assert spec.total_frames == PAPER_TOTAL_FRAMES == 1921

    def test_validation(self):
        with pytest.raises(ValueError):
            CorpusSpec(n_sequences=0)
        with pytest.raises(ValueError):
            CorpusSpec(n_sequences=10, total_frames=50)


class TestCorpusConfigs:
    def test_frame_budget_exact(self):
        for spec in (CorpusSpec(), CorpusSpec(n_sequences=5, total_frames=123)):
            configs = corpus_configs(spec)
            assert len(configs) == spec.n_sequences
            assert sum(c.n_frames for c in configs) == spec.total_frames

    def test_min_length_respected(self):
        configs = corpus_configs(CorpusSpec(n_sequences=10, total_frames=80))
        assert all(c.n_frames >= 8 for c in configs)

    def test_deterministic(self):
        a = corpus_configs(CorpusSpec(n_sequences=6, total_frames=200))
        b = corpus_configs(CorpusSpec(n_sequences=6, total_frames=200))
        assert a == b

    def test_seeds_distinct(self):
        configs = corpus_configs(CorpusSpec(n_sequences=12, total_frames=400))
        seeds = [c.seed for c in configs]
        assert len(set(seeds)) == 12

    def test_parameter_diversity(self):
        """The corpus must vary the content drivers (Section 7: the
        training set contains 'different scenarios ... to create the
        dynamics in algorithmic adaptation and switching')."""
        configs = corpus_configs(CorpusSpec(n_sequences=12, total_frames=400))
        doses = {round(c.noise.dose, 3) for c in configs}
        clutters = {round(c.clutter_level, 3) for c in configs}
        assert len(doses) > 6 and len(clutters) > 6
        assert any(c.injection_frame < 0 for c in configs) or any(
            c.injection_frame >= 0 for c in configs
        )


class TestGenerateCorpus:
    def test_sequences_render(self):
        corpus = generate_corpus(CorpusSpec(n_sequences=2, total_frames=20))
        assert len(corpus) == 2
        img, truth = corpus[0].frame(0)
        assert img.shape == (256, 256)
