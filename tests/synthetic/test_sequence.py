"""Tests for per-frame sequence rendering."""

from __future__ import annotations

import numpy as np
import pytest

from repro.synthetic.sequence import SequenceConfig, XRaySequence


@pytest.fixture(scope="module")
def seq() -> XRaySequence:
    return XRaySequence(SequenceConfig(n_frames=30, seed=11, visibility_dips=0))


class TestRendering:
    def test_frame_shape_dtype_range(self, seq):
        img, truth = seq.frame(3)
        assert img.shape == (256, 256)
        assert img.dtype == np.float32
        assert 0.0 <= img.min() and img.max() <= 1.0

    def test_deterministic(self, seq):
        a, _ = seq.frame(7)
        b, _ = seq.frame(7)
        np.testing.assert_array_equal(a, b)

    def test_order_independent(self):
        s1 = XRaySequence(SequenceConfig(n_frames=10, seed=5))
        s2 = XRaySequence(SequenceConfig(n_frames=10, seed=5))
        a, _ = s1.frame(9)
        for k in range(9):
            s2.frame(k)
        b, _ = s2.frame(9)
        np.testing.assert_array_equal(a, b)

    def test_markers_are_dark_blobs(self, seq):
        img, truth = seq.frame(5)
        ay, ax = int(round(truth.marker_a[0])), int(round(truth.marker_a[1]))
        local_bg = float(np.median(img[ay - 10 : ay + 11, ax - 10 : ax + 11]))
        marker_val = float(img[ay - 1 : ay + 2, ax - 1 : ax + 2].min())
        assert marker_val < local_bg - 0.2

    def test_truth_matches_motion(self, seq):
        truth = seq.truth(8)
        img, truth2 = seq.frame(8)
        assert truth.marker_a == truth2.marker_a
        assert truth.offset == truth2.offset

    def test_len_and_iter(self, seq):
        assert len(seq) == 30
        frames = list(seq.iter_frames())
        assert len(frames) == 30
        assert frames[4][1].index == 4


class TestContentSchedules:
    def test_contrast_injection_ramps(self):
        s = XRaySequence(
            SequenceConfig(n_frames=60, seed=2, injection_frame=10, contrast_base=0.3)
        )
        assert s.contrast(5) == pytest.approx(0.3)
        assert s.contrast(25) > 0.6
        # Washout eventually decays back toward base.
        assert s.contrast(25) > s.contrast(59)

    def test_no_injection(self):
        s = XRaySequence(SequenceConfig(n_frames=20, seed=2, injection_frame=-1))
        for k in (0, 10, 19):
            assert s.contrast(k) == pytest.approx(s.config.contrast_base)

    def test_visibility_dips(self):
        s = XRaySequence(SequenceConfig(n_frames=80, seed=3, visibility_dips=2))
        vis = np.array([s.marker_visibility(k) for k in range(80)])
        assert vis.min() < 0.7  # a dip exists
        assert vis.max() <= 1.0 and vis.min() >= 0.15

    def test_no_dips_means_full_visibility(self):
        s = XRaySequence(SequenceConfig(n_frames=20, seed=3, visibility_dips=0))
        vis = [s.marker_visibility(k) for k in range(20)]
        assert min(vis) == pytest.approx(1.0)

    def test_clutter_activity_bounded(self, seq):
        for k in range(0, 30, 3):
            assert 0.0 <= seq.clutter_activity(k) <= 1.2
