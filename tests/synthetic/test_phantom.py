"""Tests for the static anatomy phantom."""

from __future__ import annotations

import numpy as np
import pytest

from repro.synthetic.phantom import (
    PhantomSpec,
    build_phantom,
    rasterize_polyline,
    stamp_gaussian_blob,
)


class TestStampGaussianBlob:
    def test_adds_peak_at_center(self):
        img = np.zeros((64, 64), dtype=np.float32)
        stamp_gaussian_blob(img, (32.0, 32.0), sigma=2.0, amplitude=1.0)
        assert img[32, 32] == pytest.approx(1.0, abs=1e-3)
        assert img[32, 32] == img.max()

    def test_negative_amplitude_darkens(self):
        img = np.ones((32, 32), dtype=np.float32)
        stamp_gaussian_blob(img, (16.0, 16.0), sigma=1.5, amplitude=-0.5)
        assert img[16, 16] == pytest.approx(0.5, abs=1e-3)

    def test_local_support_only(self):
        img = np.zeros((64, 64), dtype=np.float32)
        stamp_gaussian_blob(img, (32.0, 32.0), sigma=1.0, amplitude=1.0)
        assert img[0, 0] == 0.0
        assert img[32, 60] == 0.0

    def test_off_frame_center_is_safe(self):
        img = np.zeros((16, 16), dtype=np.float32)
        stamp_gaussian_blob(img, (-50.0, -50.0), sigma=1.0, amplitude=1.0)
        assert img.sum() == 0.0

    def test_subpixel_center(self):
        img = np.zeros((32, 32), dtype=np.float32)
        stamp_gaussian_blob(img, (15.5, 15.5), sigma=2.0, amplitude=1.0)
        quad = img[15:17, 15:17]
        assert np.allclose(quad, quad[::-1, ::-1])  # symmetric about 15.5


class TestRasterizePolyline:
    def test_tube_amplitude(self):
        pts = np.array([[10.0, 5.0], [10.0, 55.0]])
        tube = rasterize_polyline((64, 64), pts, width_sigma=1.5, amplitude=0.3)
        assert tube.max() == pytest.approx(0.3, rel=1e-5)

    def test_tube_follows_line(self):
        pts = np.array([[32.0, 4.0], [32.0, 60.0]])
        tube = rasterize_polyline((64, 64), pts, width_sigma=1.0)
        on_line = tube[32, 10:54].mean()
        off_line = tube[10, 10:54].mean()
        assert on_line > 10 * max(off_line, 1e-9)

    def test_bad_points_rejected(self):
        with pytest.raises(ValueError):
            rasterize_polyline((32, 32), np.zeros((1, 2)), 1.0)
        with pytest.raises(ValueError):
            rasterize_polyline((32, 32), np.zeros((3, 3)), 1.0)

    def test_out_of_frame_points_clipped(self):
        pts = np.array([[-10.0, -10.0], [80.0, 80.0]])
        tube = rasterize_polyline((64, 64), pts, width_sigma=1.0)
        assert np.all(np.isfinite(tube))


class TestBuildPhantom:
    def test_deterministic_in_seed(self):
        a = build_phantom(PhantomSpec(seed=5))
        b = build_phantom(PhantomSpec(seed=5))
        np.testing.assert_array_equal(a.background, b.background)
        np.testing.assert_array_equal(a.vessels, b.vessels)
        assert a.marker_a == b.marker_a

    def test_different_seeds_differ(self):
        a = build_phantom(PhantomSpec(seed=5))
        b = build_phantom(PhantomSpec(seed=6))
        assert not np.array_equal(a.vessels, b.vessels)

    def test_marker_separation_respected(self):
        spec = PhantomSpec(marker_separation=30.0, seed=3)
        p = build_phantom(spec)
        d = np.hypot(
            p.marker_a[0] - p.marker_b[0], p.marker_a[1] - p.marker_b[1]
        )
        assert d == pytest.approx(30.0, rel=1e-6)

    def test_layer_shapes_and_ranges(self):
        p = build_phantom(PhantomSpec(width=128, height=96, seed=1))
        for layer in (p.background, p.vessels, p.clutter, p.stent, p.wire):
            assert layer.shape == (96, 128)
            assert layer.dtype == np.float32
            assert np.all(layer >= 0.0)
        assert 0.5 <= p.background.min() and p.background.max() <= 0.95

    def test_extras_present(self):
        p = build_phantom(PhantomSpec(seed=2))
        assert "wire_pts" in p.extras and "stent_struts" in p.extras
        assert len(p.extras["stent_struts"]) == 5

    def test_markers_inside_frame(self):
        for seed in range(8):
            p = build_phantom(PhantomSpec(seed=seed))
            for m in (p.marker_a, p.marker_b):
                assert 0 <= m[0] < p.spec.height
                assert 0 <= m[1] < p.spec.width
