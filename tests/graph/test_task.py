"""Tests for task and phase specifications."""

from __future__ import annotations

import pytest

from repro.graph.task import PhaseSpec, TaskSpec
from repro.util.units import KIB


class TestPhaseSpec:
    def test_total_kb(self):
        ph = PhaseSpec("p", (("a", 100.0), ("b", 28.0)))
        assert ph.total_kb == 128.0


class TestTaskSpec:
    def test_totals(self):
        spec = TaskSpec("T", kind="stream", input_kb=10, intermediate_kb=20, output_kb=30)
        assert spec.total_kb == 60
        assert spec.total_bytes == 60 * KIB
        assert spec.intermediate_bytes == 20 * KIB

    def test_invalid_kind(self):
        with pytest.raises(ValueError):
            TaskSpec("T", kind="gpu", input_kb=0, intermediate_kb=0, output_kb=0)

    def test_defaults(self):
        spec = TaskSpec("T", kind="feature", input_kb=1, intermediate_kb=1, output_kb=1)
        assert not spec.divisible
        assert not spec.functional_parallel
        assert spec.phases == ()
