"""Tests for the StentBoost flow graph (Fig. 2 + Table 1)."""

from __future__ import annotations

import pytest

from repro.graph import build_stentboost_graph
from repro.graph.scenarios import ALL_SCENARIOS, scenario_name, scenario_table
from repro.graph.stentboost import TABLE1_ROWS
from repro.imaging.pipeline import SwitchState


@pytest.fixture(scope="module")
def graph():
    return build_stentboost_graph()


class TestTable1Fidelity:
    def test_rdg_full_row(self, graph):
        spec = graph.tasks["RDG_FULL"]
        assert (spec.input_kb, spec.intermediate_kb, spec.output_kb) == (
            2048,
            7168,
            5120,
        )

    def test_all_paper_rows_present(self, graph):
        mapping = {
            ("RDG FULL", ""): "RDG_FULL",
            ("RDG ROI", ""): "RDG_ROI",
            ("MKX FULL", "-"): "MKX_FULL",
            ("MKX ROI", "-"): "MKX_ROI",
            ("MKX FULL", "x"): "MKX_FULL_RDG",
            ("MKX ROI", "x"): "MKX_ROI_RDG",
            ("ENH", ""): "ENH",
            ("ZOOM", ""): "ZOOM",
        }
        for task, sel, in_kb, mid_kb, out_kb in TABLE1_ROWS:
            spec = graph.tasks[mapping[(task, sel)]]
            assert (spec.input_kb, spec.intermediate_kb, spec.output_kb) == (
                in_kb,
                mid_kb,
                out_kb,
            )

    def test_feature_tasks_negligible(self, graph):
        """Section 5.1: feature tasks are negligible in memory."""
        for name in ("CPLS_SEL", "REG", "ROI_EST", "GW_EXT"):
            assert graph.tasks[name].kind == "feature"
            assert graph.tasks[name].total_kb < 8


class TestParallelismClasses:
    def test_streaming_tasks_divisible(self, graph):
        """Section 6: RDG (and the other streaming tasks) partition
        by data; CPLS SEL and GW EXT partition functionally."""
        for name in ("RDG_FULL", "RDG_ROI", "ENH", "ZOOM"):
            assert graph.tasks[name].divisible
        for name in ("CPLS_SEL", "GW_EXT"):
            assert graph.tasks[name].functional_parallel
        for name in ("REG", "ROI_EST"):
            assert not graph.tasks[name].divisible
            assert not graph.tasks[name].functional_parallel


class TestScenarios:
    def test_eight_scenarios(self, graph):
        assert len(ALL_SCENARIOS) == 8
        rows = scenario_table(graph)
        assert [r["id"] for r in rows] == list(range(8))

    def test_worst_case_is_rdg_full_success(self, graph):
        rows = scenario_table(graph)
        worst = max(rows, key=lambda r: r["bandwidth_mbps"])
        assert worst["id"] in (5, 7)  # RDG on + success
        assert "RDG" in worst["name"] and "ok" in worst["name"]

    def test_fail_scenarios_skip_enhancement(self, graph):
        for sid in (0, 2, 4, 6):
            tasks = graph.active_tasks(SwitchState.from_scenario_id(sid))
            assert "ENH" not in tasks and "ZOOM" not in tasks

    def test_rdg_selects_mkx_variant(self, graph):
        with_rdg = graph.active_tasks(SwitchState(True, False, True))
        without = graph.active_tasks(SwitchState(False, False, True))
        assert "MKX_FULL_RDG" in with_rdg and "MKX_FULL" not in with_rdg
        assert "MKX_FULL" in without and "MKX_FULL_RDG" not in without

    def test_execution_order_valid_all_scenarios(self, graph):
        for sc in ALL_SCENARIOS:
            order = graph.execution_order(sc.state)
            assert order[0] == "RDG_DETECT"

    def test_scenario_names(self):
        assert scenario_name(SwitchState(True, True, True)) == "RDG/ROI/ok"
        assert scenario_name(SwitchState(False, False, False)) == "rdg-/FULL/fail"


class TestFig2Labels:
    def test_paper_rounded_labels(self, graph):
        """Edge labels land on the paper's rounded MByte/s values."""
        bw = graph.inter_task_bandwidth(SwitchState(True, False, True))
        assert bw[("INPUT", "RDG_FULL")] == pytest.approx(60, abs=5)
        assert bw[("RDG_FULL", "MKX_FULL_RDG")] == pytest.approx(150, abs=10)
        assert bw[("ENH", "ZOOM")] == pytest.approx(30, abs=3)
        assert bw[("ZOOM", "OUTPUT")] == pytest.approx(120, abs=7)
