"""Tests for the scenario enumeration helpers."""

from __future__ import annotations

import pytest

from repro.graph import ALL_SCENARIOS, Scenario, build_stentboost_graph
from repro.graph.scenarios import scenario_name, scenario_table
from repro.imaging.pipeline import SwitchState


class TestScenario:
    def test_ids_cover_range(self):
        assert [sc.scenario_id for sc in ALL_SCENARIOS] == list(range(8))

    def test_name_round_trips_state(self):
        for sc in ALL_SCENARIOS:
            name = sc.name
            assert ("RDG" in name) == sc.state.rdg_on
            assert ("ROI" in name) == sc.state.roi_mode
            assert ("ok" in name) == sc.state.reg_success

    def test_scenario_dataclass(self):
        sc = Scenario(SwitchState(True, True, False))
        assert sc.scenario_id == 6
        assert sc.name == "RDG/ROI/fail"


class TestScenarioTable:
    @pytest.fixture(scope="class")
    def rows(self):
        return scenario_table(build_stentboost_graph())

    def test_eight_rows_with_fields(self, rows):
        assert len(rows) == 8
        for row in rows:
            assert set(row) == {"id", "name", "tasks", "bandwidth_mbps"}
            assert row["bandwidth_mbps"] > 0
            assert len(row["tasks"]) >= 4

    def test_success_scenarios_have_more_tasks(self, rows):
        by_id = {r["id"]: r for r in rows}
        for fail_id, ok_id in ((0, 1), (2, 3), (4, 5), (6, 7)):
            assert len(by_id[ok_id]["tasks"]) > len(by_id[fail_id]["tasks"])

    def test_names_unique(self, rows):
        names = [r["name"] for r in rows]
        assert len(set(names)) == 8

    def test_scenario_name_function(self):
        assert scenario_name(SwitchState(False, True, True)) == "rdg-/ROI/ok"
