"""Tests for the switched flow graph."""

from __future__ import annotations

import pytest

from repro.graph.flowgraph import Edge, FlowGraph
from repro.graph.task import TaskSpec
from repro.imaging.pipeline import SwitchState
from repro.util.units import KIB, MB


def tiny_graph():
    tasks = {
        "A": TaskSpec("A", kind="stream", input_kb=100, intermediate_kb=0, output_kb=200),
        "B": TaskSpec("B", kind="stream", input_kb=200, intermediate_kb=0, output_kb=50),
        "C": TaskSpec("C", kind="feature", input_kb=1, intermediate_kb=1, output_kb=1),
    }
    edges = [
        Edge(FlowGraph.INPUT, "A", 100),
        Edge("A", "B", 200),
        Edge("B", "C", 1),
        Edge("C", FlowGraph.OUTPUT, 1),
    ]

    def activation(state: SwitchState):
        names = ["A", "B"]
        if state.reg_success:
            names.append("C")
        return names

    return FlowGraph(tasks, edges, activation)


class TestEdge:
    def test_bandwidth_label(self):
        e = Edge("A", "B", kb_per_frame=5120)
        assert e.bandwidth_mbps(30.0) == pytest.approx(5120 * KIB * 30 / MB)

    @pytest.mark.parametrize(
        ("kb_per_frame", "exact_mbps", "printed_label"),
        [
            (2048, 62.9, 60),  # INPUT -> RDG/ENH stream
            (4608, 141.6, 140),  # ridge-filtered stream into MKX
            (5120, 157.3, 150),  # RDG output
            (1024, 31.5, 30),  # ENH -> ZOOM
            (4096, 125.8, 120),  # ZOOM -> OUTPUT
        ],
    )
    def test_fig2_printed_labels(self, kb_per_frame, exact_mbps, printed_label):
        """Exact MByte/s values vs the rounded labels printed in Fig. 2.

        The paper rounds its edge labels *down* to friendly decimal
        values; the analytic value must sit at or just above the
        printed one (within 10 %), never below it.
        """
        bw = Edge("X", "Y", kb_per_frame).bandwidth_mbps()
        assert bw == pytest.approx(exact_mbps, abs=0.1)
        assert printed_label <= bw <= printed_label * 1.10

    def test_rate_scales_linearly(self):
        e = Edge("A", "B", kb_per_frame=1000)
        assert e.bandwidth_mbps(60.0) == pytest.approx(2 * e.bandwidth_mbps(30.0))


class TestFlowGraph:
    def test_unknown_edge_endpoint_rejected(self):
        tasks = {"A": TaskSpec("A", kind="feature", input_kb=1, intermediate_kb=1, output_kb=1)}
        with pytest.raises(ValueError):
            FlowGraph(tasks, [Edge("A", "Z", 1)], lambda s: ["A"])

    def test_active_tasks_by_state(self):
        g = tiny_graph()
        on = SwitchState(False, False, True)
        off = SwitchState(False, False, False)
        assert g.active_tasks(on) == ["A", "B", "C"]
        assert g.active_tasks(off) == ["A", "B"]

    def test_active_edges_follow_tasks(self):
        g = tiny_graph()
        off = SwitchState(False, False, False)
        edges = g.active_edges(off)
        assert ("B", "C") not in [(e.src, e.dst) for e in edges]

    def test_total_bandwidth_scenario_dependent(self):
        g = tiny_graph()
        hi = g.total_bandwidth_mbps(SwitchState(False, False, True))
        lo = g.total_bandwidth_mbps(SwitchState(False, False, False))
        assert hi > lo

    def test_predecessors_successors(self):
        g = tiny_graph()
        assert g.predecessors("B") == ["A"]
        assert g.successors("B") == ["C"]
        assert g.predecessors("A") == []  # INPUT is a pseudo-node

    def test_activation_unknown_task_rejected(self):
        g = tiny_graph()
        g._activation = lambda s: ["A", "Z"]
        with pytest.raises(ValueError):
            g.active_tasks(SwitchState(False, False, False))

    def test_execution_order_validates_dependencies(self):
        g = tiny_graph()
        order = g.execution_order(SwitchState(False, False, True))
        assert order == ["A", "B", "C"]
        g._activation = lambda s: ["B", "A"]  # violates A -> B
        with pytest.raises(ValueError):
            g.execution_order(SwitchState(False, False, False))
