"""Tests for the ablation helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.computation import ConstantPredictor, LastValuePredictor
from repro.experiments.ablation import (
    held_out_traces,
    order2_sparsity,
    partition_policy_comparison,
    predictor_comparison,
    quantization_comparison,
    state_factor_sweep,
    stripe_scaling,
    walk_forward_accuracy,
)


@pytest.fixture(scope="module")
def test_traces(tiny_context):
    return held_out_traces(tiny_context, n_sequences=3)


class TestWalkForward:
    def test_constant_predictor_exact_on_constant_series(self):
        p = ConstantPredictor(value_ms=5.0)
        rep = walk_forward_accuracy(p, [np.full(20, 5.0)])
        assert rep.mean_accuracy == pytest.approx(1.0)

    def test_warmup_excluded(self):
        p = LastValuePredictor(fallback_ms=1.0)
        series = [np.array([100.0, 100.0, 5.0, 5.0, 5.0])]
        rep = walk_forward_accuracy(p, series, warmup=2)
        # Scored samples: predictions for idx 2..4 = 100, 5, 5.
        assert rep.n == 3

    def test_reset_between_series(self):
        p = LastValuePredictor(fallback_ms=7.0)
        rep = walk_forward_accuracy(
            p, [np.full(5, 7.0), np.full(5, 7.0)], warmup=0
        )
        # Fallback (= 7.0) used at each series start: all exact.
        assert rep.mean_accuracy == pytest.approx(1.0)

    def test_too_short_raises(self):
        with pytest.raises(ValueError):
            walk_forward_accuracy(
                ConstantPredictor(1.0), [np.array([1.0])], warmup=5
            )


class TestSweeps:
    def test_state_factor_rows(self, tiny_context, test_traces):
        rows = state_factor_sweep(
            tiny_context.traces, test_traces, "CPLS_SEL", factors=(1.0, 2.0)
        )
        assert len(rows) == 2
        for factor, n_states, rep in rows:
            assert n_states >= 2
            assert 0.0 <= rep.mean_accuracy <= 1.0

    def test_quantization_keys(self, tiny_context, test_traces):
        out = quantization_comparison(tiny_context.traces, test_traces, "CPLS_SEL")
        assert set(out) == {"equal-mass", "equal-width"}

    def test_predictor_comparison_keys(self, tiny_context, test_traces):
        out = predictor_comparison(tiny_context.traces, test_traces, "CPLS_SEL")
        assert set(out) == {"constant", "last-value", "markov", "ewma+markov"}

    def test_order2_sparsity_fields(self, tiny_context):
        stats = order2_sparsity(tiny_context.traces, "CPLS_SEL")
        assert stats["order2_samples_per_row"] <= stats["order1_samples_per_row"]


class TestStripeScaling:
    def test_monotone_speedup(self, tiny_context):
        points = stripe_scaling(tiny_context, max_parts=6)
        assert [p.parts for p in points] == list(range(1, 7))
        speed = [p.speedup for p in points]
        assert all(b >= a for a, b in zip(speed, speed[1:]))
        assert points[0].speedup == pytest.approx(1.0)
        assert points[0].efficiency == pytest.approx(1.0)


class TestPartitionPolicy:
    def test_policies_compared(self, tiny_context):
        out = partition_policy_comparison(tiny_context, n_frames=40)
        assert set(out) == {"robust", "most-likely"}
        for stats in out.values():
            assert 0.0 <= stats["violation_rate"] <= 1.0
            assert stats["budget_ms"] > 0


class TestConditioningAndOrder:
    def test_conditioning_comparison(self, tiny_context, test_traces):
        from repro.experiments.ablation import conditioning_comparison

        out = conditioning_comparison(tiny_context.traces, test_traces, "CPLS_SEL")
        assert set(out) == {"pooled", "conditioned"}
        for rep in out.values():
            assert 0.0 <= rep.mean_accuracy <= 1.0

    def test_order_comparison(self, tiny_context, test_traces):
        from repro.experiments.ablation import order_comparison

        out = order_comparison(tiny_context.traces, test_traces, "CPLS_SEL")
        assert set(out) == {"order-1", "order-2"}

