"""Tests for the ACF model-selection reproduction."""

from __future__ import annotations

import pytest

from repro.experiments.acf_report import classify_task, run


class TestClassifyTask:
    def test_low_variance_is_constant(self):
        assert classify_task(cv=0.01, tau_raw=50.0) == "constant"

    def test_fast_decay_is_markov(self):
        assert classify_task(cv=0.5, tau_raw=1.0) == "markov-ok"

    def test_slow_decay_needs_ewma(self):
        assert classify_task(cv=0.5, tau_raw=12.0) == "ewma+markov"

    def test_nan_tau_defaults_to_markov(self):
        assert classify_task(cv=0.5, tau_raw=float("nan")) == "markov-ok"


class TestRun:
    @pytest.fixture(scope="class")
    def out(self, tiny_context):
        return run(tiny_context, min_samples=40)

    def test_rows_well_formed(self, out):
        assert out["rows"]
        for r in out["rows"]:
            assert r["classified"] in ("constant", "markov-ok", "ewma+markov")
            assert r["cv"] >= 0
            assert r["n"] >= 40

    def test_fixed_tasks_constant(self, out):
        by_task = {r["task"]: r for r in out["rows"]}
        for task in ("REG", "ROI_EST"):
            if task in by_task:
                assert by_task[task]["classified"] == "constant"

    def test_agreement_reported(self, out):
        assert 0.0 <= out["agreement"] <= 1.0
        assert "agrees with the Table 2(b)" in out["text"]
