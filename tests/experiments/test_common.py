"""Tests for the experiment context and its disk cache."""

from __future__ import annotations

import os
from unittest import mock


from repro.experiments.common import ExperimentContext, default_context
from repro.profiling import TraceSet
from repro.synthetic import CorpusSpec


class TestExperimentContext:
    def test_traces_cached_on_disk(self, tmp_path):
        spec = CorpusSpec(n_sequences=2, total_frames=20, base_seed=99)
        with mock.patch.dict(os.environ, {"REPRO_CACHE_DIR": str(tmp_path)}):
            ctx = ExperimentContext(corpus_spec=spec)
            traces1 = ctx.traces
            files = list(tmp_path.glob("traces-*.json"))
            assert len(files) == 1
            # A fresh context loads from the cache file.
            ctx2 = ExperimentContext(corpus_spec=spec)
            traces2 = ctx2.traces
            assert len(traces2) == len(traces1)
            assert traces2.records[0] == traces1.records[0]

    def test_cache_key_sensitive_to_spec(self, tmp_path):
        with mock.patch.dict(os.environ, {"REPRO_CACHE_DIR": str(tmp_path)}):
            a = ExperimentContext(
                corpus_spec=CorpusSpec(n_sequences=2, total_frames=20, base_seed=1)
            )
            b = ExperimentContext(
                corpus_spec=CorpusSpec(n_sequences=2, total_frames=20, base_seed=2)
            )
            assert a._cache_key() != b._cache_key()

    def test_model_memoized(self, tiny_context):
        assert tiny_context.model is tiny_context.model

    def test_fresh_model_independent(self, tiny_context):
        m1 = tiny_context.fresh_model()
        m2 = tiny_context.fresh_model()
        assert m1 is not m2
        m1.observe(3, {"REG": 2.0}, 100.0)
        assert m2._current_scenario is None

    def test_traces_type(self, tiny_context):
        assert isinstance(tiny_context.traces, TraceSet)


class TestDefaultContext:
    def test_fast_mode(self):
        with mock.patch.dict(os.environ, {"REPRO_FAST": "1"}):
            ctx = default_context()
            assert ctx.corpus_spec.n_sequences == 8

    def test_paper_mode(self):
        with mock.patch.dict(os.environ, {}, clear=False):
            os.environ.pop("REPRO_FAST", None)
            ctx = default_context()
            assert ctx.corpus_spec.n_sequences == 37
            assert ctx.corpus_spec.total_frames == 1921
