"""Tests for the experiment context and its sharded disk cache."""

from __future__ import annotations

import os
from unittest import mock

from repro.experiments.common import ExperimentContext, default_context
from repro.imaging.pipeline import PipelineConfig
from repro.profiling import ProfileConfig, TraceSet
from repro.synthetic import CorpusSpec


class TestExperimentContext:
    def test_traces_cached_on_disk(self, tmp_path):
        spec = CorpusSpec(n_sequences=2, total_frames=20, base_seed=99)
        with mock.patch.dict(os.environ, {"REPRO_CACHE_DIR": str(tmp_path)}):
            ctx = ExperimentContext(corpus_spec=spec)
            traces1 = ctx.traces
            shards = list((tmp_path / "trace-shards").glob("shard-*.json"))
            assert len(shards) == spec.n_sequences
            # A fresh context loads from the shard files.
            ctx2 = ExperimentContext(corpus_spec=spec)
            traces2 = ctx2.traces
            assert len(traces2) == len(traces1)
            assert traces2.records[0] == traces1.records[0]
            # The corpus ledger survives the cache round trip.
            assert traces2.meta["ledger"].frames == len(traces2)

    def test_delta_reprofiling_recomputes_only_missing_shard(self, tmp_path):
        spec = CorpusSpec(n_sequences=3, total_frames=30, base_seed=99)
        with mock.patch.dict(os.environ, {"REPRO_CACHE_DIR": str(tmp_path)}):
            full = ExperimentContext(corpus_spec=spec).traces
            shard_dir = tmp_path / "trace-shards"
            shards = sorted(shard_dir.glob("shard-*.json"))
            assert len(shards) == 3
            victim = shards[1]
            kept_mtimes = {
                p: p.stat().st_mtime_ns for p in shards if p != victim
            }
            victim.unlink()
            rebuilt = ExperimentContext(corpus_spec=spec).traces
            assert victim.exists()
            for p, mtime in kept_mtimes.items():
                assert p.stat().st_mtime_ns == mtime  # untouched
            assert [r for r in rebuilt.records] == [r for r in full.records]

    def test_legacy_monolith_migrated_to_shards(self, tmp_path):
        spec = CorpusSpec(n_sequences=2, total_frames=20, base_seed=99)
        with mock.patch.dict(os.environ, {"REPRO_CACHE_DIR": str(tmp_path)}):
            ctx = ExperimentContext(corpus_spec=spec)
            traces = ctx.traces
            # Re-create the pre-shard layout: one monolithic file under
            # the legacy key, no shards.
            legacy = tmp_path / f"traces-{ctx._legacy_cache_key()}.json"
            traces.save(legacy)
            for p in (tmp_path / "trace-shards").glob("shard-*.json"):
                p.unlink()
            migrated = ExperimentContext(corpus_spec=spec).traces
            assert len(migrated) == len(traces)
            assert migrated.records == traces.records
            # The migration split the monolith instead of re-profiling:
            # both shard files exist now.
            shards = list((tmp_path / "trace-shards").glob("shard-*.json"))
            assert len(shards) == spec.n_sequences

    def test_cache_key_sensitive_to_spec(self, tmp_path):
        with mock.patch.dict(os.environ, {"REPRO_CACHE_DIR": str(tmp_path)}):
            a = ExperimentContext(
                corpus_spec=CorpusSpec(n_sequences=2, total_frames=20, base_seed=1)
            )
            b = ExperimentContext(
                corpus_spec=CorpusSpec(n_sequences=2, total_frames=20, base_seed=2)
            )
            assert a._cache_key() != b._cache_key()

    def test_cache_key_sensitive_to_pipeline_tunables(self):
        spec = CorpusSpec(n_sequences=2, total_frames=20, base_seed=1)
        a = ExperimentContext(corpus_spec=spec)
        b = ExperimentContext(
            corpus_spec=spec,
            profile_config=ProfileConfig(
                pipeline=PipelineConfig(max_candidates=8)
            ),
        )
        assert a._cache_key() != b._cache_key()
        from repro.synthetic import corpus_configs

        cfg = corpus_configs(spec)[0]
        assert a._shard_key(0, cfg) != b._shard_key(0, cfg)

    def test_shard_key_sensitive_to_sequence_index(self, tiny_context):
        from repro.synthetic import corpus_configs

        cfgs = corpus_configs(tiny_context.corpus_spec)
        assert tiny_context._shard_key(0, cfgs[0]) != tiny_context._shard_key(
            1, cfgs[0]
        )

    def test_graph_memoized(self, tiny_context):
        assert tiny_context.graph is tiny_context.graph

    def test_model_memoized(self, tiny_context):
        assert tiny_context.model is tiny_context.model

    def test_fresh_model_independent(self, tiny_context):
        m1 = tiny_context.fresh_model()
        m2 = tiny_context.fresh_model()
        assert m1 is not m2
        m1.observe(3, {"REG": 2.0}, 100.0)
        assert m2._current_scenario is None

    def test_traces_type(self, tiny_context):
        assert isinstance(tiny_context.traces, TraceSet)


class TestDefaultContext:
    def test_fast_mode(self):
        with mock.patch.dict(os.environ, {"REPRO_FAST": "1"}):
            ctx = default_context()
            assert ctx.corpus_spec.n_sequences == 8

    def test_paper_mode(self):
        with mock.patch.dict(os.environ, {}, clear=False):
            os.environ.pop("REPRO_FAST", None)
            ctx = default_context()
            assert ctx.corpus_spec.n_sequences == 37
            assert ctx.corpus_spec.total_frames == 1921
