"""Smoke + shape tests for the throughput and multi-app experiments."""

from __future__ import annotations

import pytest

from repro.experiments import multiapp, throughput


class TestThroughput:
    @pytest.fixture(scope="class")
    def out(self, tiny_context):
        return throughput.run(tiny_context, n_frames=60)

    def test_single_core_collapses(self, out):
        row = out["rows"]["single-core"]
        assert row["latency_slope_ms_per_frame"] > 3.0
        assert row["sustained_fps"] < 28.0

    def test_rotated_sustains(self, out):
        for name in ("rotated serial", "managed rotated"):
            row = out["rows"][name]
            assert abs(row["latency_slope_ms_per_frame"]) < 1.0
            assert row["sustained_fps"] > 28.0

    def test_managed_bounds_latency(self, out):
        assert (
            out["rows"]["managed rotated"]["max_latency"]
            <= out["rows"]["rotated serial"]["max_latency"]
        )


class TestMultiApp:
    @pytest.fixture(scope="class")
    def out(self, tiny_context):
        return multiapp.run(tiny_context, n_frames=40)

    def test_admission_check(self, out):
        assert out["admitted"]
        assert out["bandwidth_demand_mbps"] < out["bandwidth_capacity_mbps"]

    def test_no_material_interference(self, out):
        for name, r in out["rows"].items():
            assert abs(r["interference_ms"]) < 1.0, name

    def test_both_hold_budgets(self, out):
        for name, r in out["rows"].items():
            assert r["shared_max"] <= r["budget_ms"] * 1.2, name
