"""Tests for CSV figure export."""

from __future__ import annotations

import csv

from repro.experiments.export import export_csv


class TestExportCsv:
    def test_writes_all_files(self, tiny_context, tmp_path):
        files = export_csv(
            tiny_context, tmp_path, n_frames_fig3=60, n_frames_fig7=50
        )
        names = {f.name for f in files}
        assert names == {"fig3.csv", "acf.csv", "fig6.csv", "fig7.csv", "table2a.csv"}
        for f in files:
            assert f.exists() and f.stat().st_size > 50

    def test_fig7_columns_consistent(self, tiny_context, tmp_path):
        export_csv(tiny_context, tmp_path, n_frames_fig3=60, n_frames_fig7=40)
        with open(tmp_path / "fig7.csv") as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == 40
        for row in rows:
            out = float(row["managed_output_ms"])
            managed = float(row["managed_ms"])
            assert out >= managed - 1e-9  # delay line only adds

    def test_table2a_square(self, tiny_context, tmp_path):
        export_csv(tiny_context, tmp_path, n_frames_fig3=60, n_frames_fig7=40)
        with open(tmp_path / "table2a.csv") as fh:
            rows = list(csv.reader(fh))
        n = len(rows[0]) - 1
        assert len(rows) == n + 1  # header + n state rows
        for row in rows[1:]:
            s = sum(float(v) for v in row[1:])
            assert abs(s - 1.0) < 1e-6
