"""Tests for the SVG figure renderer."""

from __future__ import annotations

import xml.etree.ElementTree as ET

import pytest

from repro.experiments.svgfig import LineChart, export_svg


class TestLineChart:
    def make(self):
        c = LineChart(title="demo", x_label="x", y_label="y")
        c.add("a", [0, 1, 2], [0.0, 1.0, 0.5])
        c.add("b", [0, 1, 2], [1.0, 0.5, 0.2], mode="dots")
        return c

    def test_renders_well_formed_xml(self):
        svg = self.make().render()
        root = ET.fromstring(svg)
        assert root.tag.endswith("svg")

    def test_contains_series_marks(self):
        svg = self.make().render()
        assert "<polyline" in svg  # line series
        assert "<circle" in svg  # dots series
        assert "demo" in svg and ">a<" in svg and ">b<" in svg

    def test_empty_chart_rejected(self):
        with pytest.raises(ValueError):
            LineChart(title="t", x_label="x", y_label="y").render()

    def test_mismatched_series_rejected(self):
        c = LineChart(title="t", x_label="x", y_label="y")
        with pytest.raises(ValueError):
            c.add("bad", [0, 1], [0.0])

    def test_constant_series_safe(self):
        c = LineChart(title="t", x_label="x", y_label="y")
        c.add("flat", [0, 1, 2], [5.0, 5.0, 5.0])
        assert "<polyline" in c.render()

    def test_coordinates_inside_viewbox(self):
        c = self.make()
        svg = c.render()
        root = ET.fromstring(svg)
        for poly in root.iter("{http://www.w3.org/2000/svg}polyline"):
            for pair in poly.get("points").split():
                x, y = map(float, pair.split(","))
                assert 0 <= x <= c.width and 0 <= y <= c.height


class TestExportSvg:
    def test_writes_three_figures(self, tiny_context, tmp_path):
        files = export_svg(
            tiny_context, tmp_path, n_frames_fig3=60, n_frames_fig7=40
        )
        assert {f.name for f in files} == {"fig3.svg", "fig6.svg", "fig7.svg"}
        for f in files:
            root = ET.fromstring(f.read_text())
            assert root.tag.endswith("svg")
            assert f.stat().st_size > 2000
