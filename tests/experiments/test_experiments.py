"""Smoke + shape tests for every paper-artefact experiment.

Each experiment runs on the session's small corpus context; assertions
check the *shape* claims the reproduction targets (who wins, what
overflows, what is linear), not absolute paper numbers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import accuracy_comp, fig2, fig3, fig4, fig5, fig6, fig7, table1, table2


class TestFig2:
    def test_labels_close_to_paper(self, tiny_context):
        out = fig2.run(tiny_context)
        for (edge, ours, paper) in out["edges"]:
            assert ours == pytest.approx(paper, rel=0.12), edge
        assert "text" in out

    def test_scenarios_ordered_by_cost(self, tiny_context):
        out = fig2.run(tiny_context)
        by_id = {sid: mbps for sid, _, mbps in out["scenarios"]}
        assert by_id[5] == max(by_id.values())
        assert by_id[5] > by_id[0]


class TestFig3:
    def test_series_in_paper_band(self, tiny_context):
        out = fig3.run(tiny_context, n_frames=120)
        assert out["stats"].mean == pytest.approx(45.0, abs=8.0)
        assert out["stats"].minimum > 30.0
        assert out["stats"].maximum < 65.0

    def test_decomposition_consistent(self, tiny_context):
        out = fig3.run(tiny_context, n_frames=80)
        np.testing.assert_allclose(
            out["hpf"] + out["lpf"], out["series"], rtol=1e-10
        )
        assert abs(out["acf"][0] - 1.0) < 1e-9


class TestFig4:
    def test_exact_match(self, tiny_context):
        out = fig4.run(tiny_context)
        assert out["ours"] == out["paper"]


class TestFig5:
    def test_rdg_full_overflows(self, tiny_context):
        out = fig5.run(tiny_context)
        assert out["eviction_bytes"] > 0
        assert any(ev > 0 for _, _, _, ev in out["phases"])

    def test_paper_overflow_tasks_covered(self, tiny_context):
        out = fig5.run(tiny_context)
        assert out["paper_overflow_named_ok"]


class TestFig6:
    @pytest.fixture(scope="class")
    def out(self, tiny_context):
        return fig6.run(tiny_context, n_frames_per_size=3)

    def test_latency_linear_in_roi(self, out):
        roi, ser = out["roi_kpixels"], out["serial_ms"]
        slope, icpt = out["serial_fit"]
        pred = slope * roi + icpt
        resid = ser - pred
        assert np.std(resid) < 0.15 * np.std(ser)
        assert slope > 0

    def test_two_stripe_speedup(self, out):
        assert 1.4 < out["slope_ratio"] <= 2.2
        assert out["striped_ms"].mean() < out["serial_ms"].mean()


class TestFig7:
    @pytest.fixture(scope="class")
    def out(self, tiny_context):
        return fig7.run(tiny_context, n_frames=100)

    def test_managed_flatter_than_straightforward(self, out):
        j = out["jitter"]
        assert j["managed_output"].std < 0.5 * j["straightforward"].std
        assert (
            j["managed_completion"].worst_over_avg
            < j["straightforward"].worst_over_avg
        )

    def test_jitter_reduction_substantial(self, out):
        assert out["jitter_reduction"] > 0.5  # paper: ~0.7

    def test_worst_case_output_constant(self, out):
        assert out["jitter"]["worst_case_output"].std == pytest.approx(0.0, abs=1e-9)


class TestTables:
    def test_table1_matches_paper(self, tiny_context):
        out = table1.run(tiny_context)
        ours = {r[0]: r[1:] for r in out["rows"]}
        assert ours["RDG_FULL"] == (2048, 7168, 5120)
        assert ours["ENH"] == (2048, 8192, 1024)

    def test_table2_matrix_stochastic(self, tiny_context):
        out = table2.run(tiny_context)
        t = out["transition"]
        np.testing.assert_allclose(t.sum(axis=1), 1.0, atol=1e-9)
        assert 2 <= out["n_states"] <= 32

    def test_table2b_model_kinds(self, tiny_context):
        out = table2.run(tiny_context)
        kinds = dict(out["summary"])
        assert kinds.get("CPLS_SEL") == "<Eq. 1> + Markov"
        assert kinds.get("REG") == "constant"


class TestAccuracyComp:
    def test_headline_accuracy(self, tiny_context):
        out = accuracy_comp.run(tiny_context, n_frames=60)
        # Paper: 97 %.  Small-corpus bound: > 90 %.
        assert out["frame"].mean_accuracy > 0.90
