"""Tests for named deterministic RNG streams."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.rng import rng_stream, spawn_seeds


class TestRngStream:
    def test_same_keys_same_stream(self):
        a = rng_stream(42, "noise", 3).standard_normal(16)
        b = rng_stream(42, "noise", 3).standard_normal(16)
        np.testing.assert_array_equal(a, b)

    def test_different_keys_different_streams(self):
        a = rng_stream(42, "noise", 3).standard_normal(16)
        b = rng_stream(42, "noise", 4).standard_normal(16)
        assert not np.array_equal(a, b)

    def test_different_seeds_different_streams(self):
        a = rng_stream(1, "x").standard_normal(16)
        b = rng_stream(2, "x").standard_normal(16)
        assert not np.array_equal(a, b)

    def test_key_structure_matters(self):
        """("ab",) and ("a","b") must be distinct streams."""
        a = rng_stream(0, "ab").standard_normal(8)
        b = rng_stream(0, "a", "b").standard_normal(8)
        assert not np.array_equal(a, b)

    def test_mixed_key_types(self):
        g = rng_stream(7, "jitter", ("seq", 3), 1.5)
        assert np.isfinite(g.standard_normal())

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_property_deterministic_for_any_seed(self, seed):
        a = rng_stream(seed, "k").integers(0, 1000, 4)
        b = rng_stream(seed, "k").integers(0, 1000, 4)
        np.testing.assert_array_equal(a, b)


class TestSpawnSeeds:
    def test_deterministic(self):
        assert spawn_seeds(9, 5, "c") == spawn_seeds(9, 5, "c")

    def test_distinct(self):
        seeds = spawn_seeds(9, 50, "c")
        assert len(set(seeds)) == 50

    def test_independent_of_count_prefix(self):
        """First seeds stay stable when more are requested."""
        a = spawn_seeds(3, 5, "k")
        b = spawn_seeds(3, 10, "k")
        assert a == b[:5]
