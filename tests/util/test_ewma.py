"""Tests for the EWMA filter (paper Eq. 1)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.ewma import EwmaFilter, ewma, high_low_split

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestEwmaFilter:
    def test_first_update_seeds_state(self):
        f = EwmaFilter(alpha=0.25)
        assert f.value is None
        assert f.update(10.0) == 10.0

    def test_recurrence_matches_eq1(self):
        f = EwmaFilter(alpha=0.5, initial=0.0)
        assert f.update(10.0) == pytest.approx(5.0)
        assert f.update(10.0) == pytest.approx(7.5)

    def test_alpha_one_tracks_input_exactly(self):
        f = EwmaFilter(alpha=1.0)
        for x in (3.0, -7.0, 42.0):
            assert f.update(x) == x

    def test_invalid_alpha_rejected(self):
        for alpha in (0.0, -0.1, 1.5):
            with pytest.raises(ValueError):
                EwmaFilter(alpha=alpha)

    def test_peek_before_update_raises(self):
        with pytest.raises(RuntimeError):
            EwmaFilter(alpha=0.5).peek()

    def test_peek_does_not_advance(self):
        f = EwmaFilter(alpha=0.5)
        f.update(4.0)
        assert f.peek() == f.peek() == 4.0

    def test_reset(self):
        f = EwmaFilter(alpha=0.5)
        f.update(9.0)
        f.reset()
        assert f.value is None
        f.reset(initial=2.0)
        assert f.value == 2.0

    def test_converges_to_constant_input(self):
        f = EwmaFilter(alpha=0.2, initial=0.0)
        for _ in range(200):
            y = f.update(5.0)
        assert y == pytest.approx(5.0, abs=1e-8)


class TestBatchEwma:
    def test_matches_streaming_filter(self):
        rng = np.random.default_rng(0)
        x = rng.normal(10, 3, size=4000)
        for alpha in (0.05, 0.3, 0.9, 1.0):
            f = EwmaFilter(alpha)
            stream = np.array([f.update(v) for v in x])
            batch = ewma(x, alpha)
            np.testing.assert_allclose(batch, stream, rtol=1e-10, atol=1e-9)

    def test_matches_streaming_with_initial(self):
        x = np.array([1.0, 2.0, 3.0, 4.0])
        f = EwmaFilter(0.4, initial=10.0)
        stream = np.array([f.update(v) for v in x])
        np.testing.assert_allclose(ewma(x, 0.4, initial=10.0), stream, rtol=1e-12)

    def test_long_series_no_overflow(self):
        # The blockwise evaluation must survive tiny alpha on long data.
        x = np.ones(100_000)
        out = ewma(x, alpha=0.001)
        assert np.all(np.isfinite(out))
        assert out[-1] == pytest.approx(1.0)

    def test_empty_series(self):
        assert ewma(np.empty(0), 0.3).size == 0

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            ewma(np.zeros((3, 3)), 0.5)

    @given(
        st.lists(finite_floats, min_size=1, max_size=200),
        st.floats(min_value=0.01, max_value=1.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_output_within_running_minmax(self, xs, alpha):
        """EWMA is a convex combination: stays inside the running hull."""
        x = np.asarray(xs)
        y = ewma(x, alpha)
        running_min = np.minimum.accumulate(x)
        running_max = np.maximum.accumulate(x)
        assert np.all(y >= running_min - 1e-6 * (1 + np.abs(running_min)))
        assert np.all(y <= running_max + 1e-6 * (1 + np.abs(running_max)))


class TestHighLowSplit:
    def test_parts_sum_to_signal(self):
        x = np.random.default_rng(1).normal(40, 5, 500)
        hpf, lpf = high_low_split(x, alpha=0.3)
        np.testing.assert_allclose(hpf + lpf, x, rtol=1e-12)

    def test_lpf_smoother_than_signal(self):
        rng = np.random.default_rng(2)
        x = 40 + rng.normal(0, 5, 2000)
        _, lpf = high_low_split(x, alpha=0.1)
        assert np.std(np.diff(lpf)) < np.std(np.diff(x))
