"""Tests for batched stream creation (``rng_stream_many``).

The batch path reimplements numpy's SeedSequence entropy-pool mixing
in vectorized uint32 arithmetic; these tests pin it word-for-word
against the real SeedSequence and draw-for-draw against
``rng_stream`` so any numpy algorithm change or local regression
surfaces immediately.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.rng import (
    _entropy_rows,
    _generate_states,
    _key_entropy,
    _mix_pools,
    rng_stream,
    rng_stream_many,
)


class TestMixingReimplementation:
    def test_pools_match_seedsequence(self):
        rng = np.random.default_rng(123)
        for n_words in range(1, 9):
            ent = rng.integers(0, 2**32, size=(7, n_words), dtype=np.int64)
            ent32 = ent.astype(np.uint32)
            pools = _mix_pools(ent32)
            for k in range(ent.shape[0]):
                ss = np.random.SeedSequence([int(w) for w in ent[k]])
                np.testing.assert_array_equal(np.asarray(ss.pool), pools[k])

    def test_states_match_generate_state(self):
        rng = np.random.default_rng(7)
        ent = rng.integers(0, 2**32, size=(16, 5), dtype=np.int64)
        states = _generate_states(_mix_pools(ent.astype(np.uint32)))
        for k in range(ent.shape[0]):
            ss = np.random.SeedSequence([int(w) for w in ent[k]])
            np.testing.assert_array_equal(
                ss.generate_state(4, np.uint64), states[k]
            )

    def test_entropy_rows_match_key_entropy(self):
        suffixes = [(3, 0), (3, 1), ("x", 2.5)]
        rows = _entropy_rows(42, ("jitter", "RDG"), suffixes)
        for i, suffix in enumerate(suffixes):
            expected = [42 & 0xFFFFFFFF, *_key_entropy("jitter", "RDG", *suffix)]
            assert [int(w) for w in rows[i]] == expected


class TestRngStreamMany:
    def test_draws_bit_identical_to_scalar(self):
        suffixes = [(s, f) for s in range(4) for f in range(25)]
        gens = rng_stream_many(42, ("jitter", "MEX"), suffixes)
        for gen, (s, f) in zip(gens, suffixes):
            ref = rng_stream(42, "jitter", "MEX", s, f)
            # Same call pattern as the cost model's jitter draws.
            assert gen.normal(0.0, 0.03) == ref.normal(0.0, 0.03)
            assert gen.random() == ref.random()
            assert gen.uniform(1.05, 1.22) == ref.uniform(1.05, 1.22)

    def test_long_streams_identical(self):
        (gen,) = rng_stream_many(0, ("noise",), [(11,)])
        ref = rng_stream(0, "noise", 11)
        np.testing.assert_array_equal(
            gen.standard_normal(512), ref.standard_normal(512)
        )
        np.testing.assert_array_equal(
            gen.integers(0, 1 << 20, 64), ref.integers(0, 1 << 20, 64)
        )

    def test_empty_suffixes(self):
        assert rng_stream_many(1, ("a",), []) == []

    def test_empty_prefix(self):
        (gen,) = rng_stream_many(5, (), [("only", 1)])
        ref = rng_stream(5, "only", 1)
        assert gen.random() == ref.random()

    @given(st.integers(min_value=0, max_value=2**63 - 1))
    @settings(max_examples=25, deadline=None)
    def test_property_any_root_seed(self, seed):
        (gen,) = rng_stream_many(seed, ("k",), [(0,)])
        ref = rng_stream(seed, "k", 0)
        np.testing.assert_array_equal(gen.random(8), ref.random(8))
