"""Tests for unit constants and stream-bandwidth helpers."""

from __future__ import annotations

import pytest

from repro.util import units


class TestConstants:
    def test_decimal_vs_binary(self):
        assert units.KB == 1000 and units.KIB == 1024
        assert units.MB == 1000**2 and units.MIB == 1024**2
        assert units.GB == 1000**3 and units.GIB == 1024**3

    def test_native_geometry(self):
        assert units.NATIVE_PIXELS == 1024 * 1024
        assert units.BYTES_PER_PIXEL == 2
        assert units.HZ_VIDEO == 30.0


class TestFrameBytes:
    def test_native_frame_is_2048_kib(self):
        """Table 1's input row: 1024x1024 x 2 B = 2,048 KB."""
        assert units.frame_bytes() == 2048 * units.KIB

    def test_custom_geometry(self):
        assert units.frame_bytes(256, 256) == 256 * 256 * 2


class TestStreamBandwidth:
    def test_fig2_input_label(self):
        """2,048 KB/frame at 30 Hz ~ the paper's '60' MByte/s label."""
        bw = units.stream_bandwidth(units.frame_bytes()) / units.MB
        assert bw == pytest.approx(62.9, abs=0.1)

    def test_fig2_rdg_output_label(self):
        """5,120 KB/frame at 30 Hz ~ the paper's '150' MByte/s label."""
        bw = units.stream_bandwidth(5120 * units.KIB) / units.MB
        assert bw == pytest.approx(157.3, abs=0.1)

    def test_default_rate_is_video_rate(self):
        assert units.stream_bandwidth(100) == 100 * units.HZ_VIDEO

    def test_custom_rate(self):
        assert units.stream_bandwidth(1000, rate_hz=15.0) == 15_000.0


class TestFamilyConversions:
    """The sanctioned binary <-> decimal crossing points."""

    def test_table_kb_is_binary(self):
        """Table 1 prints 'KB' but means KiB: 2,048 KB = one native frame."""
        assert units.table_kb_to_bytes(2048) == units.frame_bytes()
        assert units.table_kb_to_bytes(1) == 1024.0

    def test_bytes_to_mbytes_is_decimal(self):
        assert units.bytes_to_mbytes(157.3e6) == pytest.approx(157.3)
        assert units.bytes_to_mbytes(units.MB) == 1.0

    def test_rdg_label_through_helpers(self):
        """Compose the helpers end-to-end for the Fig. 2 RDG label."""
        bw = units.bytes_to_mbytes(
            units.stream_bandwidth(units.table_kb_to_bytes(5120))
        )
        assert bw == pytest.approx(157.3, abs=0.1)
