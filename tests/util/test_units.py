"""Tests for unit constants and stream-bandwidth helpers."""

from __future__ import annotations

import pytest

from repro.util import units


class TestConstants:
    def test_decimal_vs_binary(self):
        assert units.KB == 1000 and units.KIB == 1024
        assert units.MB == 1000**2 and units.MIB == 1024**2
        assert units.GB == 1000**3 and units.GIB == 1024**3

    def test_native_geometry(self):
        assert units.NATIVE_PIXELS == 1024 * 1024
        assert units.BYTES_PER_PIXEL == 2
        assert units.HZ_VIDEO == 30.0


class TestFrameBytes:
    def test_native_frame_is_2048_kib(self):
        """Table 1's input row: 1024x1024 x 2 B = 2,048 KB."""
        assert units.frame_bytes() == 2048 * units.KIB

    def test_custom_geometry(self):
        assert units.frame_bytes(256, 256) == 256 * 256 * 2


class TestStreamBandwidth:
    def test_fig2_input_label(self):
        """2,048 KB/frame at 30 Hz ~ the paper's '60' MByte/s label."""
        bw = units.stream_bandwidth(units.frame_bytes()) / units.MB
        assert bw == pytest.approx(62.9, abs=0.1)

    def test_fig2_rdg_output_label(self):
        """5,120 KB/frame at 30 Hz ~ the paper's '150' MByte/s label."""
        bw = units.stream_bandwidth(5120 * units.KIB) / units.MB
        assert bw == pytest.approx(157.3, abs=0.1)
