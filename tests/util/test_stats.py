"""Tests for autocorrelation, fits and jitter metrics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.stats import (
    autocorrelation,
    fit_exponential_decay,
    jitter_metrics,
    linear_fit,
    summarize,
)


class TestAutocorrelation:
    def test_lag_zero_is_one(self):
        x = np.random.default_rng(0).normal(size=500)
        acf = autocorrelation(x)
        assert acf[0] == pytest.approx(1.0)

    def test_bounded_by_one(self):
        x = np.random.default_rng(1).normal(size=1000)
        acf = autocorrelation(x, max_lag=100)
        assert np.all(np.abs(acf) <= 1.0 + 1e-9)

    def test_white_noise_decorrelates(self):
        x = np.random.default_rng(2).normal(size=20_000)
        acf = autocorrelation(x, max_lag=10)
        assert np.all(np.abs(acf[1:]) < 0.05)

    def test_ar1_process_decays_exponentially(self):
        rng = np.random.default_rng(3)
        phi = 0.8
        x = np.empty(50_000)
        x[0] = 0.0
        for i in range(1, x.size):
            x[i] = phi * x[i - 1] + rng.normal()
        acf = autocorrelation(x, max_lag=10)
        for k in range(1, 6):
            assert acf[k] == pytest.approx(phi**k, abs=0.05)

    def test_constant_series(self):
        acf = autocorrelation(np.full(100, 3.0), max_lag=5)
        np.testing.assert_allclose(acf, 1.0)

    def test_matches_naive_estimator(self):
        x = np.random.default_rng(4).normal(size=300)
        acf = autocorrelation(x, max_lag=20)
        xc = x - x.mean()
        var = np.dot(xc, xc)
        for k in (1, 5, 20):
            naive = np.dot(xc[:-k], xc[k:]) / var
            assert acf[k] == pytest.approx(naive, abs=1e-10)

    def test_too_short_raises(self):
        with pytest.raises(ValueError):
            autocorrelation(np.array([1.0]))


class TestExponentialDecayFit:
    def test_recovers_known_tau(self):
        tau = 4.0
        acf = np.exp(-np.arange(20) / tau)
        assert fit_exponential_decay(acf) == pytest.approx(tau, rel=1e-6)

    def test_constant_acf_gives_infinite_tau(self):
        assert fit_exponential_decay(np.ones(10)) == float("inf")

    def test_immediate_drop_gives_small_tau(self):
        acf = np.array([1.0, -0.01, 0.0])
        assert fit_exponential_decay(acf) == 0.0


class TestLinearFit:
    def test_exact_line(self):
        x = np.linspace(0, 300, 50)
        y = 0.067 * x + 20.6  # Eq. 3
        slope, intercept = linear_fit(x, y)
        assert slope == pytest.approx(0.067, rel=1e-9)
        assert intercept == pytest.approx(20.6, rel=1e-9)

    def test_mismatched_shapes_raise(self):
        with pytest.raises(ValueError):
            linear_fit(np.arange(5), np.arange(6))

    @given(
        st.floats(min_value=-10, max_value=10),
        st.floats(min_value=-100, max_value=100),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_recovers_any_line(self, slope, intercept):
        x = np.linspace(0, 10, 20)
        s, i = linear_fit(x, slope * x + intercept)
        assert s == pytest.approx(slope, abs=1e-6)
        assert i == pytest.approx(intercept, abs=1e-5)


class TestJitterMetrics:
    def test_constant_series_has_zero_jitter(self):
        j = jitter_metrics(np.full(50, 42.0))
        assert j.std == 0.0
        assert j.peak_to_peak == 0.0
        assert j.worst_over_avg == 0.0

    def test_known_values(self):
        j = jitter_metrics(np.array([60.0, 120.0]))
        assert j.mean == pytest.approx(90.0)
        assert j.peak_to_peak == pytest.approx(60.0)
        assert j.worst_over_avg == pytest.approx(1.0 / 3.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            jitter_metrics(np.empty(0))

    @given(st.lists(st.floats(min_value=0.1, max_value=1e4), min_size=1, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_property_invariants(self, xs):
        j = jitter_metrics(np.asarray(xs))
        assert j.peak_to_peak >= 0
        assert j.std >= 0
        assert j.worst_over_avg >= 0
        assert j.mean >= min(xs) - 1e-9
        assert j.mean <= max(xs) + 1e-9


class TestSummarize:
    def test_fields(self):
        s = summarize(np.arange(101, dtype=float))
        assert s.n == 101
        assert s.minimum == 0 and s.maximum == 100
        assert s.p50 == pytest.approx(50.0)
        assert s.p95 == pytest.approx(95.0)
