"""Tests for marker (punctual dark zone) extraction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.imaging.markers import extract_markers
from repro.imaging.ridge import ridge_filter
from repro.synthetic.phantom import rasterize_polyline, stamp_gaussian_blob


def make_marker_image(positions, size=128, amplitude=0.45, with_wire=False):
    img = np.full((size, size), 0.75, dtype=np.float32)
    for p in positions:
        stamp_gaussian_blob(img, p, sigma=1.8, amplitude=-amplitude)
    if with_wire and len(positions) >= 2:
        pts = np.asarray(positions[:2], dtype=np.float64)
        img -= rasterize_polyline((size, size), pts, width_sigma=0.9, amplitude=0.2)
    return img


class TestExtractMarkers:
    def test_finds_isolated_markers(self):
        truth = [(40.0, 40.0), (80.0, 90.0)]
        cands, rep = extract_markers(make_marker_image(truth))
        assert len(cands) >= 2
        for t in truth:
            d = np.linalg.norm(cands.positions - np.asarray(t), axis=1).min()
            assert d < 1.5
        assert rep.count("candidates") == len(cands)

    def test_markers_on_wire_still_found(self):
        """The punctuality screen must keep blobs that sit on a line
        (the clinical configuration: markers threaded on the wire)."""
        truth = [(60.0, 40.0), (60.0, 90.0)]
        img = make_marker_image(truth, with_wire=True)
        cands, _ = extract_markers(img)
        for t in truth:
            d = np.linalg.norm(cands.positions - np.asarray(t), axis=1).min()
            assert d < 1.5

    def test_pure_line_rejected(self):
        img = np.full((128, 128), 0.75, dtype=np.float32)
        pts = np.array([[64.0, 10.0], [64.0, 118.0]])
        img -= rasterize_polyline((128, 128), pts, width_sigma=1.5, amplitude=0.4)
        cands, _ = extract_markers(img)
        # Line interior peaks must not survive the punctuality screen
        # (endpoints may: the response does drop in most directions).
        for p in cands.positions:
            assert not (20 < p[1] < 108 and abs(p[0] - 64) < 3)

    def test_empty_image_no_candidates(self):
        cands, _ = extract_markers(np.full((64, 64), 0.7, dtype=np.float32))
        assert len(cands) == 0

    def test_scores_sorted_descending(self):
        truth = [(30.0, 30.0), (90.0, 90.0), (30.0, 90.0)]
        cands, _ = extract_markers(make_marker_image(truth))
        assert np.all(np.diff(cands.scores) <= 1e-12)

    def test_max_candidates_respected(self):
        rng = np.random.default_rng(0)
        pos = [(float(r), float(c)) for r, c in rng.uniform(10, 118, (30, 2))]
        cands, _ = extract_markers(make_marker_image(pos), max_candidates=5)
        assert len(cands) <= 5

    def test_ridge_variant_report(self):
        truth = [(40.0, 40.0), (80.0, 90.0)]
        img = make_marker_image(truth, with_wire=True)
        ridge, _ = ridge_filter(img)
        _, rep = extract_markers(img, ridge=ridge, task="MKX_FULL_RDG")
        assert rep.task == "MKX_FULL_RDG"
        assert rep.count("with_ridge") == 1.0
        # Table 1: the RDG-selected variant reads response + mask too.
        px = img.size
        assert rep.bytes_in == px * 2 + px * 4 + px

    def test_subpixel_accuracy(self):
        truth = [(40.25, 40.75), (80.5, 90.5)]
        cands, _ = extract_markers(make_marker_image(truth))
        for t in truth:
            d = np.linalg.norm(cands.positions - np.asarray(t), axis=1).min()
            assert d < 0.75

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            extract_markers(np.zeros(16, dtype=np.float32))
