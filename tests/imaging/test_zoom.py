"""Tests for ROI zoom / presentation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.imaging.roi import Roi
from repro.imaging.zoom import zoom_roi


class TestZoomRoi:
    def test_default_doubles_roi(self):
        img = np.random.default_rng(0).random((128, 128)).astype(np.float32)
        roi = Roi(20, 20, 60, 80)
        out, rep = zoom_roi(img, roi)
        assert out.shape == (80, 120)
        assert rep.task == "ZOOM"

    def test_explicit_output_shape(self):
        img = np.zeros((128, 128), dtype=np.float32)
        out, _ = zoom_roi(img, Roi(0, 0, 50, 50), output_shape=(181, 181))
        assert out.shape == (181, 181)

    def test_constant_region_stays_constant(self):
        img = np.full((64, 64), 0.42, dtype=np.float32)
        out, _ = zoom_roi(img, Roi(10, 10, 40, 40))
        np.testing.assert_allclose(out, 0.42, atol=1e-5)

    def test_values_interpolate_smoothly(self):
        img = np.tile(np.linspace(0, 1, 64, dtype=np.float32), (64, 1))
        out, _ = zoom_roi(img, Roi(0, 0, 64, 64), output_shape=(128, 128), order=1)
        assert out.min() >= -1e-5 and out.max() <= 1.0 + 1e-5
        assert np.all(np.diff(out[64], 1) >= -1e-4)  # monotone gradient

    def test_empty_roi_raises(self):
        img = np.zeros((32, 32), dtype=np.float32)
        with pytest.raises(ValueError):
            zoom_roi(img, Roi(32, 32, 32, 32))

    def test_work_counts(self):
        img = np.zeros((128, 128), dtype=np.float32)
        roi = Roi(0, 0, 40, 40)
        out, rep = zoom_roi(img, roi, output_shape=(100, 100))
        assert rep.pixels == 100 * 100
        assert rep.count("roi_kpixels") == pytest.approx(1.6)
        assert rep.count("out_kpixels") == pytest.approx(10.0)
