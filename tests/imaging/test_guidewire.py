"""Tests for guide-wire extraction / marker stability validation."""

from __future__ import annotations

import numpy as np

from repro.imaging.guidewire import extract_guidewire
from repro.synthetic.phantom import rasterize_polyline, stamp_gaussian_blob


def image_with_wire(a, b, size=128, wire=True):
    img = np.full((size, size), 0.75, dtype=np.float32)
    if wire:
        pts = np.stack([np.asarray(a, float), np.asarray(b, float)])
        img -= rasterize_polyline((size, size), pts, width_sigma=0.9, amplitude=0.25)
    stamp_gaussian_blob(img, a, sigma=1.8, amplitude=-0.45)
    stamp_gaussian_blob(img, b, sigma=1.8, amplitude=-0.45)
    return img


class TestExtractGuidewire:
    def test_wire_present_stable(self):
        a, b = (60.0, 30.0), (60.0, 90.0)
        res, rep = extract_guidewire(image_with_wire(a, b), a, b)
        assert res.stable
        assert res.support > 0.8
        assert rep.task == "GW_EXT"

    def test_no_wire_unstable(self):
        a, b = (60.0, 30.0), (60.0, 90.0)
        res, _ = extract_guidewire(image_with_wire(a, b, wire=False), a, b)
        assert not res.stable

    def test_sagging_wire_found_by_perpendicular_search(self):
        a, b = (60.0, 30.0), (60.0, 90.0)
        img = np.full((128, 128), 0.75, dtype=np.float32)
        sag = np.array([[60.0, 30.0], [63.0, 60.0], [60.0, 90.0]])
        img -= rasterize_polyline((128, 128), sag, width_sigma=0.9, amplitude=0.25)
        res, _ = extract_guidewire(img, a, b)
        assert res.stable

    def test_degenerate_markers(self):
        img = np.full((64, 64), 0.75, dtype=np.float32)
        res, _ = extract_guidewire(img, (32.0, 32.0), (32.0, 32.5))
        assert not res.stable
        assert res.support == 0.0

    def test_path_shape(self):
        a, b = (60.0, 30.0), (60.0, 90.0)
        res, _ = extract_guidewire(image_with_wire(a, b), a, b)
        assert res.path.ndim == 2 and res.path.shape[1] == 2

    def test_work_scales_with_separation(self):
        img = image_with_wire((60.0, 20.0), (60.0, 110.0))
        _, rep_long = extract_guidewire(img, (60.0, 20.0), (60.0, 110.0))
        img2 = image_with_wire((60.0, 50.0), (60.0, 70.0))
        _, rep_short = extract_guidewire(img2, (60.0, 50.0), (60.0, 70.0))
        assert rep_long.count("path_samples") > rep_short.count("path_samples")
        assert rep_long.count("band_pixels") > rep_short.count("band_pixels")

    def test_near_edge_markers_safe(self):
        a, b = (2.0, 2.0), (2.0, 26.0)
        img = image_with_wire(a, b)
        res, _ = extract_guidewire(img, a, b)
        assert isinstance(res.stable, bool)
