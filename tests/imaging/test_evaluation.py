"""Tests for detection-quality evaluation (application guardrails)."""

from __future__ import annotations

import pytest

from repro.imaging.couples import CoupleResult
from repro.imaging.evaluation import couple_error_px, evaluate_detection
from repro.imaging.pipeline import PipelineConfig, StentBoostPipeline
from repro.synthetic.sequence import FrameTruth, SequenceConfig, XRaySequence
from repro.synthetic.motion import RigidOffset


def truth_at(a, b):
    return FrameTruth(
        index=0,
        marker_a=a,
        marker_b=b,
        offset=RigidOffset(0, 0, 0),
        contrast=1.0,
        clutter_activity=0.0,
        marker_visibility=1.0,
    )


class TestCoupleError:
    def test_exact_match(self):
        c = CoupleResult(True, (10.0, 10.0), (10.0, 34.0), 1.0, 1)
        assert couple_error_px(c, truth_at((10, 10), (10, 34))) == 0.0

    def test_swapped_assignment(self):
        c = CoupleResult(True, (10.0, 34.0), (10.0, 10.0), 1.0, 1)
        assert couple_error_px(c, truth_at((10, 10), (10, 34))) == 0.0

    def test_worst_of_pair(self):
        c = CoupleResult(True, (10.0, 10.0), (10.0, 39.0), 1.0, 1)
        assert couple_error_px(c, truth_at((10, 10), (10, 34))) == pytest.approx(5.0)


class TestEvaluateDetection:
    @pytest.fixture(scope="class")
    def metrics(self):
        seq = XRaySequence(SequenceConfig(n_frames=40, seed=11, visibility_dips=0))
        pipe = StentBoostPipeline(
            PipelineConfig(
                expected_distance=seq.config.resolved_phantom().marker_separation
            )
        )
        return evaluate_detection(seq, pipe)

    def test_application_quality_guardrails(self, metrics):
        """The imaging substrate must stay clinically plausible --
        every timing experiment builds on these rates."""
        assert metrics.n_frames == 40
        assert metrics.couple_rate > 0.9
        assert metrics.couple_correct_rate > 0.85
        assert metrics.median_error_px < 1.5
        assert metrics.marker_recall > 0.9

    def test_tracking_continuity(self, metrics):
        assert metrics.track_longest_run >= 10

    def test_degraded_content_degrades_metrics(self):
        """Heavy visibility dips must show up in the metrics (the
        metric responds to content, not just to code)."""
        seq = XRaySequence(
            SequenceConfig(n_frames=40, seed=11, visibility_dips=3)
        )
        pipe = StentBoostPipeline(
            PipelineConfig(
                expected_distance=seq.config.resolved_phantom().marker_separation
            )
        )
        degraded = evaluate_detection(seq, pipe)
        assert degraded.couple_correct_rate <= 1.0
        assert degraded.marker_recall < 1.0
