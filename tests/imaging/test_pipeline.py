"""Tests for the StentBoost pipeline and its switches."""

from __future__ import annotations

import numpy as np
import pytest

from repro.imaging.pipeline import PipelineConfig, StentBoostPipeline, SwitchState
from repro.synthetic.sequence import SequenceConfig, XRaySequence


class TestSwitchState:
    def test_scenario_id_bijection(self):
        seen = set()
        for rdg in (False, True):
            for roi in (False, True):
                for reg in (False, True):
                    s = SwitchState(rdg, roi, reg)
                    sid = s.scenario_id
                    assert 0 <= sid < 8
                    seen.add(sid)
                    assert SwitchState.from_scenario_id(sid) == s
        assert len(seen) == 8

    def test_from_invalid_id(self):
        for sid in (-1, 8):
            with pytest.raises(ValueError):
                SwitchState.from_scenario_id(sid)


class TestPipeline:
    def test_first_frame_is_full_frame(self, short_sequence, pipeline):
        img, _ = short_sequence.frame(0)
        fa = pipeline.process(img)
        assert not fa.switches.roi_mode
        assert fa.roi_used is None

    def test_roi_mode_engages_after_success(self, short_sequence, pipeline):
        engaged = False
        for k in range(12):
            img, _ = short_sequence.frame(k)
            fa = pipeline.process(img)
            if fa.switches.roi_mode:
                engaged = True
                assert fa.roi_used is not None
                break
        assert engaged

    def test_reports_match_scenario_tasks(self, short_sequence, pipeline):
        from repro.graph import build_stentboost_graph

        graph = build_stentboost_graph()
        for k in range(8):
            img, _ = short_sequence.frame(k)
            fa = pipeline.process(img)
            assert fa.executed_tasks() == graph.active_tasks(fa.switches)

    def test_success_path_produces_output(self, short_sequence, pipeline):
        for k in range(10):
            img, _ = short_sequence.frame(k)
            fa = pipeline.process(img)
            if fa.switches.reg_success:
                assert fa.output is not None
                assert fa.output.ndim == 2
                # Fixed presentation size: sqrt(2) x frame.
                assert fa.output.shape[0] == int(round(img.shape[0] * np.sqrt(2)))
                return
        pytest.fail("no successful frame in 10")

    def test_couple_positions_in_frame_coords(self, short_sequence, pipeline):
        """In ROI mode the couple must still be in frame coordinates."""
        for k in range(15):
            img, truth = short_sequence.frame(k)
            fa = pipeline.process(img)
            if fa.switches.roi_mode and fa.couple is not None and fa.couple.found:
                pa = np.asarray(fa.couple.marker_a)
                d = min(
                    np.linalg.norm(pa - truth.marker_a),
                    np.linalg.norm(pa - truth.marker_b),
                )
                assert d < 6.0
                return
        pytest.fail("no ROI-mode couple found in 15 frames")

    def test_track_loss_resets_to_full_frame(self):
        seq = XRaySequence(
            SequenceConfig(n_frames=30, seed=11, visibility_dips=0)
        )
        cfg = PipelineConfig(
            expected_distance=seq.config.resolved_phantom().marker_separation,
            reset_after_lost=2,
        )
        pipe = StentBoostPipeline(cfg)
        for k in range(6):
            pipe.process(seq.frame(k)[0])
        # Feed blank frames: no markers -> couple lost -> ROI dropped.
        blank = np.full((256, 256), 0.7, dtype=np.float32)
        for _ in range(3):
            fa = pipe.process(blank)
        assert pipe.roi is None
        assert pipe.reference_couple is None
        assert not fa.switches.reg_success

    def test_reset(self, short_sequence, pipeline):
        for k in range(5):
            pipeline.process(short_sequence.frame(k)[0])
        pipeline.reset()
        assert pipeline.roi is None
        assert pipeline.reference_couple is None
        fa = pipeline.process(short_sequence.frame(0)[0])
        assert fa.index == 0

    def test_frame_indices_increment(self, short_sequence, pipeline):
        for k in range(4):
            fa = pipeline.process(short_sequence.frame(k)[0])
            assert fa.index == k

    def test_extras_roi_kpixels(self, short_sequence, pipeline):
        img, _ = short_sequence.frame(0)
        fa = pipeline.process(img)
        assert fa.extras["roi_kpixels"] == pytest.approx(img.size / 1000.0)
