"""Tests for couples selection."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.imaging.couples import select_couple
from repro.imaging.markers import MarkerCandidates


def cands(positions, scores=None):
    pos = np.asarray(positions, dtype=np.float64).reshape(-1, 2)
    sc = (
        np.asarray(scores, dtype=np.float64)
        if scores is not None
        else np.ones(len(pos))
    )
    return MarkerCandidates(positions=pos, scores=sc, n_raw=len(pos))


class TestSelectCouple:
    def test_picks_pair_at_expected_distance(self):
        c = cands([(0, 0), (0, 24), (0, 60)])
        result, _ = select_couple(c, expected_distance=24.0)
        assert result.found
        got = {tuple(np.round(result.marker_a)), tuple(np.round(result.marker_b))}
        assert got == {(0.0, 0.0), (0.0, 24.0)}

    def test_no_admissible_pair(self):
        c = cands([(0, 0), (0, 100)])
        result, _ = select_couple(c, expected_distance=24.0)
        assert not result.found
        with pytest.raises(ValueError):
            result.positions()

    def test_fewer_than_two_candidates(self):
        for c in (cands(np.empty((0, 2))), cands([(5, 5)])):
            result, rep = select_couple(c, 24.0)
            assert not result.found
            assert rep.count("pairs_tested") == 0

    def test_prefers_higher_scores_among_admissible(self):
        c = cands(
            [(0, 0), (0, 24), (50, 0), (50, 24)],
            scores=[1.0, 1.0, 5.0, 5.0],
        )
        result, _ = select_couple(c, 24.0)
        assert result.found
        assert result.marker_a[0] == pytest.approx(50.0)

    def test_distance_tolerance(self):
        c = cands([(0, 0), (0, 28)])
        loose, _ = select_couple(c, 24.0, distance_tol=0.25)
        tight, _ = select_couple(c, 24.0, distance_tol=0.05)
        assert loose.found and not tight.found

    def test_pairs_tested_quadratic(self):
        n = 10
        pos = [(float(i * 3), 0.0) for i in range(n)]
        _, rep = select_couple(cands(pos), 24.0)
        assert rep.count("pairs_tested") == n * (n - 1) // 2

    def test_invalid_distance(self):
        with pytest.raises(ValueError):
            select_couple(cands([(0, 0), (0, 1)]), expected_distance=0.0)

    @given(st.integers(min_value=2, max_value=16), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_property_selected_pair_is_admissible(self, n, seed):
        rng = np.random.default_rng(seed)
        pos = rng.uniform(0, 100, size=(n, 2))
        c = cands(pos, rng.uniform(0.1, 1.0, n))
        result, _ = select_couple(c, expected_distance=30.0, distance_tol=0.2)
        if result.found:
            d = np.linalg.norm(
                np.asarray(result.marker_a) - np.asarray(result.marker_b)
            )
            assert abs(d - 30.0) / 30.0 <= 0.2 + 1e-9
