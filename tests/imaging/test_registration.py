"""Tests for temporal registration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.imaging.couples import CoupleResult
from repro.imaging.registration import RigidTransform, register_couples


def couple(a, b):
    return CoupleResult(True, tuple(a), tuple(b), 1.0, 1)


def missing():
    return CoupleResult(False, None, None, float("-inf"), 0)


SEP = 24.0


class TestRegisterCouples:
    def test_identity_when_same(self):
        c = couple((10, 10), (10, 34))
        t, rep = register_couples(c, c, SEP)
        assert t.success
        assert t.dy == pytest.approx(0.0, abs=1e-9)
        assert t.dx == pytest.approx(0.0, abs=1e-9)
        assert t.angle == pytest.approx(0.0, abs=1e-9)
        assert rep.counts["failure"] == 0.0

    def test_pure_translation_recovered(self):
        ref = couple((10, 10), (10, 34))
        cur = couple((13, 8), (13, 32))
        t, _ = register_couples(cur, ref, SEP)
        assert t.success
        mapped = t.apply(cur.marker_a)
        assert mapped == pytest.approx(ref.marker_a, abs=1e-9)

    def test_rotation_recovered(self):
        ref = couple((0, -12), (0, 12))
        ang = 0.2
        rot = np.array([[np.cos(ang), -np.sin(ang)], [np.sin(ang), np.cos(ang)]])
        a = rot @ np.array([0.0, -12.0])
        b = rot @ np.array([0.0, 12.0])
        cur = couple(a, b)
        t, _ = register_couples(cur, ref, SEP)
        assert t.success
        assert abs(t.angle) == pytest.approx(ang, abs=1e-6)
        np.testing.assert_allclose(t.apply(cur.marker_a), ref.marker_a, atol=1e-6)
        np.testing.assert_allclose(t.apply(cur.marker_b), ref.marker_b, atol=1e-6)

    def test_marker_order_invariance(self):
        ref = couple((10, 10), (10, 34))
        cur = couple((11, 35), (11, 11))  # swapped order + shift
        t, _ = register_couples(cur, ref, SEP)
        assert t.success
        assert abs(t.angle) < 0.1  # no spurious 180-degree flip

    def test_missing_couple_fails(self):
        ref = couple((10, 10), (10, 34))
        for cur, r in [(missing(), ref), (ref, missing()), (missing(), missing())]:
            t, rep = register_couples(cur, r, SEP)
            assert not t.success
            assert rep.counts["failure"] == 1.0

    def test_excessive_motion_rejected(self):
        ref = couple((10, 10), (10, 34))
        cur = couple((60, 10), (60, 34))  # 50 px jump >> 0.8 * 24
        t, _ = register_couples(cur, ref, SEP)
        assert not t.success

    def test_separation_drift_rejected(self):
        ref = couple((10, 10), (10, 34))
        cur = couple((10, 10), (10, 44))  # separation 34 vs 24
        t, _ = register_couples(cur, ref, SEP)
        assert not t.success


class TestRigidTransform:
    def test_identity_factory(self):
        t = RigidTransform.identity((3.0, 4.0))
        assert t.success
        assert t.apply((7.0, 8.0)) == pytest.approx((7.0, 8.0))

    def test_apply_invertibility(self):
        t = RigidTransform(2.0, -1.0, 0.3, pivot=(5.0, 5.0), success=True, residual=0.0)
        inv = RigidTransform(
            0.0, 0.0, -0.3, pivot=t.apply((5.0, 5.0)), success=True, residual=0.0
        )
        p = (9.0, 2.0)
        fwd = t.apply(p)
        # Rotating back about the mapped pivot then removing the
        # translation restores the point.
        back = inv.apply(fwd)
        back = (back[0] - t.dy, back[1] - t.dx)
        assert back == pytest.approx(p, abs=1e-9)
