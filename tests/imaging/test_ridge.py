"""Tests for ridge detection and the RDG-switch pre-check."""

from __future__ import annotations

import numpy as np
import pytest

from repro.imaging.ridge import ridge_filter, structure_precheck
from repro.synthetic.phantom import rasterize_polyline


def make_line_image(size=128, amplitude=0.3):
    """Bright background with one dark horizontal line."""
    img = np.full((size, size), 0.8, dtype=np.float32)
    pts = np.array([[size / 2, 8.0], [size / 2, size - 8.0]])
    img -= rasterize_polyline((size, size), pts, width_sigma=1.5, amplitude=amplitude)
    return img


class TestRidgeFilter:
    def test_responds_on_dark_line(self):
        img = make_line_image()
        result, _ = ridge_filter(img)
        mid = result.response[64, 20:108].mean()
        off = result.response[32, 20:108].mean()
        assert mid > 5 * max(off, 1e-9)

    def test_mask_and_count_consistent(self):
        result, _ = ridge_filter(make_line_image())
        assert result.ridge_pixels == int(result.mask.sum())
        assert result.mask.dtype == bool

    def test_flat_image_no_ridges(self):
        img = np.full((64, 64), 0.7, dtype=np.float32)
        result, _ = ridge_filter(img)
        assert result.ridge_pixels == 0

    def test_bright_line_not_detected(self):
        """The filter targets *dark* lines only."""
        img = np.full((128, 128), 0.5, dtype=np.float32)
        pts = np.array([[64.0, 8.0], [64.0, 120.0]])
        img += rasterize_polyline((128, 128), pts, width_sigma=1.5, amplitude=0.3)
        result, _ = ridge_filter(img)
        dark_ref, _ = ridge_filter(make_line_image())
        assert result.response[64, 20:108].mean() < 0.2 * dark_ref.response[64, 20:108].mean()

    def test_work_report_contents(self):
        img = make_line_image(size=96)
        _, rep = ridge_filter(img, scales=(1.4, 2.8), task="RDG_ROI")
        assert rep.task == "RDG_ROI"
        assert rep.pixels == 96 * 96 * 2
        assert rep.bytes_in == 96 * 96 * 2
        assert rep.count("scales") == 2.0
        assert rep.count("ridge_pixels") >= 0
        names = {b.name for b in rep.buffers}
        assert {"input", "hessian", "response", "output"} <= names

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            ridge_filter(np.zeros((4, 4, 3), dtype=np.float32))

    def test_stronger_contrast_more_ridge_pixels(self):
        weak, _ = ridge_filter(make_line_image(amplitude=0.1))
        strong, _ = ridge_filter(make_line_image(amplitude=0.4))
        assert strong.ridge_pixels >= weak.ridge_pixels


class TestStructurePrecheck:
    def test_quiet_image_skips_rdg(self):
        img = np.full((256, 256), 0.7, dtype=np.float32)
        on, rep = structure_precheck(img)
        assert on is False
        assert rep.task == "RDG_DETECT"

    def test_structured_image_triggers_rdg(self):
        img = np.full((256, 256), 0.7, dtype=np.float32)
        rng = np.random.default_rng(0)
        for _ in range(14):
            a = rng.uniform(10, 246, 2)
            b = rng.uniform(10, 246, 2)
            img -= rasterize_polyline(
                (256, 256), np.stack([a, b]), width_sigma=2.0, amplitude=0.3
            )
        on, rep = structure_precheck(img)
        assert on is True
        assert rep.counts["strong_gradient_fraction"] > 0.135

    def test_decimation_cost(self):
        img = np.full((256, 256), 0.7, dtype=np.float32)
        _, rep = structure_precheck(img, decimation=4)
        assert rep.pixels == (256 // 4) ** 2
