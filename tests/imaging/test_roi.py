"""Tests for ROI estimation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.imaging.couples import CoupleResult
from repro.imaging.roi import MIN_ROI_EDGE, Roi, estimate_roi


def couple(a, b):
    return CoupleResult(True, tuple(a), tuple(b), 1.0, 1)


class TestRoi:
    def test_geometry_properties(self):
        r = Roi(10, 20, 40, 70)
        assert r.height == 30 and r.width == 50
        assert r.pixels == 1500

    def test_slices_give_view(self):
        img = np.zeros((100, 100), dtype=np.float32)
        r = Roi(10, 20, 40, 70)
        view = img[r.slices]
        assert view.shape == (30, 50)
        assert view.base is img

    def test_contains(self):
        r = Roi(10, 20, 40, 70)
        assert r.contains((10, 20)) and r.contains((39.9, 69.9))
        assert not r.contains((40, 20)) and not r.contains((9.9, 30))

    def test_coordinate_round_trip(self):
        r = Roi(10, 20, 40, 70)
        p = (17.5, 33.25)
        assert r.to_frame(r.to_local(p)) == pytest.approx(p)


class TestEstimateRoi:
    def test_contains_both_markers(self):
        c = couple((100, 100), (100, 124))
        roi, _ = estimate_roi(c, (256, 256))
        assert roi.contains(c.marker_a) and roi.contains(c.marker_b)

    def test_clamped_to_frame(self):
        c = couple((3, 3), (3, 27))
        roi, _ = estimate_roi(c, (256, 256))
        assert roi.row0 >= 0 and roi.col0 >= 0
        assert roi.row1 <= 256 and roi.col1 <= 256

    def test_margin_scales_roi(self):
        c = couple((128, 116), (128, 140))
        small, _ = estimate_roi(c, (256, 256), margin_factor=1.0)
        large, _ = estimate_roi(c, (256, 256), margin_factor=3.0)
        assert large.pixels > small.pixels

    def test_min_edge(self):
        c = couple((128, 127), (128, 129))  # degenerate short couple
        roi, _ = estimate_roi(c, (256, 256))
        assert roi.height >= MIN_ROI_EDGE and roi.width >= MIN_ROI_EDGE

    def test_requires_found_couple(self):
        c = CoupleResult(False, None, None, float("-inf"), 0)
        with pytest.raises(ValueError):
            estimate_roi(c, (256, 256))

    def test_report_roi_kpixels(self):
        c = couple((100, 100), (100, 124))
        roi, rep = estimate_roi(c, (256, 256))
        assert rep.count("roi_kpixels") == pytest.approx(roi.pixels / 1000.0)
