"""Tests for motion-compensated temporal integration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.imaging.enhance import TemporalEnhancer
from repro.imaging.registration import RigidTransform


def ident():
    return RigidTransform.identity((32.0, 32.0))


class TestTemporalEnhancer:
    def test_first_frame_passthrough(self):
        enh = TemporalEnhancer(decay=0.25)
        img = np.random.default_rng(0).random((64, 64)).astype(np.float32)
        out, rep = enh.enhance(img, ident())
        np.testing.assert_allclose(out, img, atol=1e-6)
        assert rep.count("integrated_frames") == 1.0

    def test_noise_suppression(self):
        """Integrating static content reduces noise variance."""
        rng = np.random.default_rng(1)
        clean = np.full((64, 64), 0.5, dtype=np.float32)
        enh = TemporalEnhancer(decay=0.15)
        for _ in range(60):
            noisy = clean + rng.normal(0, 0.05, clean.shape).astype(np.float32)
            out, _ = enh.enhance(noisy, ident())
        assert out.std() < 0.05 / 2.0
        assert out.mean() == pytest.approx(0.5, abs=0.005)

    def test_motion_compensation_aligns(self):
        """A shifted copy warps back onto the reference geometry."""
        img = np.zeros((64, 64), dtype=np.float32)
        img[30:34, 30:34] = 1.0
        shifted = np.roll(img, (3, 5), axis=(0, 1))
        t = RigidTransform(
            dy=-3.0, dx=-5.0, angle=0.0, pivot=(32.0, 32.0), success=True, residual=0.0
        )
        enh = TemporalEnhancer(decay=1.0)
        out, _ = enh.enhance(shifted, t)
        # Peak of warped output must sit where the original peak was.
        peak = np.unravel_index(np.argmax(out), out.shape)
        assert abs(peak[0] - 31) <= 1 and abs(peak[1] - 31) <= 1

    def test_reset(self):
        enh = TemporalEnhancer()
        enh.enhance(np.zeros((16, 16), dtype=np.float32), ident())
        assert enh.integrated_frames == 1
        enh.reset()
        assert enh.integrated_frames == 0

    def test_output_is_copy(self):
        enh = TemporalEnhancer()
        img = np.full((16, 16), 0.5, dtype=np.float32)
        out, _ = enh.enhance(img, ident())
        out[:] = 99.0
        out2, _ = enh.enhance(img, ident())
        assert out2.max() <= 1.0

    def test_invalid_decay(self):
        for d in (0.0, 1.5, -0.2):
            with pytest.raises(ValueError):
                TemporalEnhancer(decay=d)

    def test_report_buffers(self):
        enh = TemporalEnhancer()
        _, rep = enh.enhance(np.zeros((32, 32), dtype=np.float32), ident())
        names = {b.name for b in rep.buffers}
        assert {"input", "warped", "accumulator", "output"} <= names
        assert rep.pixels == 32 * 32 * 2
