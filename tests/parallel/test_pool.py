"""Tests for the sanctioned process pool."""

from __future__ import annotations

import os
from unittest import mock

import pytest

from repro.parallel import (
    available_cpus,
    get_payload,
    map_sequences,
    resolve_jobs,
)


def _triple(x: int) -> int:
    """Module-level worker (picklable for the pool path)."""
    return 3 * x


def _ident(x: int) -> tuple[int, int]:
    return (x, os.getpid())


class TestAvailableCpus:
    def test_prefers_scheduling_affinity(self):
        if hasattr(os, "sched_getaffinity"):
            assert available_cpus() == len(os.sched_getaffinity(0))
        else:
            assert available_cpus() == (os.cpu_count() or 1)

    def test_falls_back_to_cpu_count(self, monkeypatch):
        monkeypatch.delattr(os, "sched_getaffinity", raising=False)
        assert available_cpus() == (os.cpu_count() or 1)

    def test_at_least_one(self):
        assert available_cpus() >= 1


class TestResolveJobs:
    def test_explicit_value(self):
        assert resolve_jobs(3) == 3

    def test_zero_means_all_available_cores(self):
        assert resolve_jobs(0) == available_cpus()

    def test_default_is_available_cpus(self):
        with mock.patch.dict(os.environ, {}, clear=False):
            os.environ.pop("REPRO_JOBS", None)
            assert resolve_jobs(None) == available_cpus()

    def test_env_override(self):
        with mock.patch.dict(os.environ, {"REPRO_JOBS": "5"}):
            assert resolve_jobs(None) == 5

    def test_env_zero_means_all_available_cores(self):
        with mock.patch.dict(os.environ, {"REPRO_JOBS": "0"}):
            assert resolve_jobs(None) == available_cpus()

    def test_explicit_beats_env(self):
        with mock.patch.dict(os.environ, {"REPRO_JOBS": "5"}):
            assert resolve_jobs(2) == 2

    def test_env_garbage_raises(self):
        with mock.patch.dict(os.environ, {"REPRO_JOBS": "many"}):
            with pytest.raises(ValueError, match="REPRO_JOBS"):
                resolve_jobs(None)

    def test_negative_raises(self):
        with pytest.raises(ValueError, match="jobs"):
            resolve_jobs(-1)


class TestMapSequences:
    def test_inline_path_accepts_closures(self):
        # jobs=1 never pickles, so unpicklable workers are fine.
        captured = []

        def worker(x):
            captured.append(x)
            return x + 1

        assert map_sequences(worker, [1, 2, 3], jobs=1) == [2, 3, 4]
        assert captured == [1, 2, 3]

    def test_single_item_runs_inline(self):
        # One item short-circuits even when a pool was requested.
        assert map_sequences(lambda x: x * 2, [21], jobs=8) == [42]

    def test_pool_preserves_input_order(self):
        items = list(range(12))
        assert map_sequences(_triple, items, jobs=4) == [3 * x for x in items]

    def test_pool_matches_inline(self):
        items = list(range(7))
        inline = map_sequences(_triple, items, jobs=1)
        pooled = map_sequences(_triple, items, jobs=3)
        assert inline == pooled

    def test_pool_actually_forks(self):
        results = map_sequences(_ident, list(range(6)), jobs=3)
        assert [x for x, _ in results] == list(range(6))
        child_pids = {pid for _, pid in results}
        assert os.getpid() not in child_pids

    def test_empty_items(self):
        assert map_sequences(_triple, [], jobs=4) == []


def _tagged(i: int) -> tuple[int, str, int]:
    payload = get_payload()
    return (i, payload["tag"], os.getpid())


def _spans(o, name):
    return [
        r
        for r in o.tracer.records
        if r["kind"] == "span" and r["name"] == name
    ]


class TestSharedPayload:
    def test_inline_install_and_teardown(self):
        out = map_sequences(_tagged, [1, 2], jobs=1, payload={"tag": "t"})
        assert out == [(1, "t", os.getpid()), (2, "t", os.getpid())]
        with pytest.raises(RuntimeError, match="no shared payload"):
            get_payload()

    def test_pool_installs_once_per_worker(self):
        out = map_sequences(
            _tagged, list(range(6)), jobs=2, payload={"tag": "pool"}
        )
        assert [(i, tag) for i, tag, _ in out] == [
            (i, "pool") for i in range(6)
        ]
        assert os.getpid() not in {pid for _, _, pid in out}

    def test_no_payload_raises_in_worker(self):
        with pytest.raises(RuntimeError, match="no shared payload"):
            map_sequences(_tagged, [1, 2], jobs=1)


class TestChunksize:
    def test_autotune_emitted_on_span(self):
        import repro.obs as obs

        with obs.observed() as o:
            map_sequences(_triple, list(range(24)), jobs=2)
        (map_span,) = _spans(o, "parallel.map")
        # max(1, 24 // (4 * 2)) = 3: four dispatch rounds per worker.
        assert map_span["attrs"]["chunksize"] == 3

    def test_explicit_chunksize_respected(self):
        import repro.obs as obs

        with obs.observed() as o:
            results = map_sequences(_triple, list(range(8)), jobs=2, chunksize=4)
        assert results == [3 * x for x in range(8)]
        (map_span,) = _spans(o, "parallel.map")
        assert map_span["attrs"]["chunksize"] == 4

    def test_coarse_work_degrades_to_one(self):
        import repro.obs as obs

        with obs.observed() as o:
            map_sequences(_triple, list(range(3)), jobs=2)
        (map_span,) = _spans(o, "parallel.map")
        assert map_span["attrs"]["chunksize"] == 1
