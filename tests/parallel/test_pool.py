"""Tests for the sanctioned process pool."""

from __future__ import annotations

import os
from unittest import mock

import pytest

from repro.parallel import map_sequences, resolve_jobs


def _triple(x: int) -> int:
    """Module-level worker (picklable for the pool path)."""
    return 3 * x


def _ident(x: int) -> tuple[int, int]:
    return (x, os.getpid())


class TestResolveJobs:
    def test_explicit_value(self):
        assert resolve_jobs(3) == 3

    def test_zero_means_all_cores(self):
        assert resolve_jobs(0) == (os.cpu_count() or 1)

    def test_default_is_cpu_count(self):
        with mock.patch.dict(os.environ, {}, clear=False):
            os.environ.pop("REPRO_JOBS", None)
            assert resolve_jobs(None) == (os.cpu_count() or 1)

    def test_env_override(self):
        with mock.patch.dict(os.environ, {"REPRO_JOBS": "5"}):
            assert resolve_jobs(None) == 5

    def test_env_zero_means_all_cores(self):
        with mock.patch.dict(os.environ, {"REPRO_JOBS": "0"}):
            assert resolve_jobs(None) == (os.cpu_count() or 1)

    def test_explicit_beats_env(self):
        with mock.patch.dict(os.environ, {"REPRO_JOBS": "5"}):
            assert resolve_jobs(2) == 2

    def test_env_garbage_raises(self):
        with mock.patch.dict(os.environ, {"REPRO_JOBS": "many"}):
            with pytest.raises(ValueError, match="REPRO_JOBS"):
                resolve_jobs(None)

    def test_negative_raises(self):
        with pytest.raises(ValueError, match="jobs"):
            resolve_jobs(-1)


class TestMapSequences:
    def test_inline_path_accepts_closures(self):
        # jobs=1 never pickles, so unpicklable workers are fine.
        captured = []

        def worker(x):
            captured.append(x)
            return x + 1

        assert map_sequences(worker, [1, 2, 3], jobs=1) == [2, 3, 4]
        assert captured == [1, 2, 3]

    def test_single_item_runs_inline(self):
        # One item short-circuits even when a pool was requested.
        assert map_sequences(lambda x: x * 2, [21], jobs=8) == [42]

    def test_pool_preserves_input_order(self):
        items = list(range(12))
        assert map_sequences(_triple, items, jobs=4) == [3 * x for x in items]

    def test_pool_matches_inline(self):
        items = list(range(7))
        inline = map_sequences(_triple, items, jobs=1)
        pooled = map_sequences(_triple, items, jobs=3)
        assert inline == pooled

    def test_pool_actually_forks(self):
        results = map_sequences(_ident, list(range(6)), jobs=3)
        assert [x for x, _ in results] == list(range(6))
        child_pids = {pid for _, pid in results}
        assert os.getpid() not in child_pids

    def test_empty_items(self):
        assert map_sequences(_triple, [], jobs=4) == []
