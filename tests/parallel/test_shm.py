"""Tests for the shared-memory array transport."""

from __future__ import annotations

import os
import pickle

import numpy as np
import pytest

from repro.parallel import SharedArrays, map_sequences


@pytest.fixture()
def arrays():
    return {
        "a": np.arange(12, dtype=np.float32).reshape(3, 4),
        "b": np.arange(5, dtype=np.int64),
        "c": np.float64([[1.5]]),
    }


class TestCreateAndAccess:
    def test_values_round_trip(self, arrays):
        with SharedArrays.create(arrays) as bundle:
            assert sorted(bundle.keys()) == ["a", "b", "c"]
            for name, arr in arrays.items():
                got = bundle.get(name)
                np.testing.assert_array_equal(got, arr)
                assert got.dtype == arr.dtype

    def test_views_are_read_only(self, arrays):
        with SharedArrays.create(arrays) as bundle:
            view = bundle.get("a")
            with pytest.raises(ValueError):
                view[0, 0] = 99.0

    def test_nbytes_counts_payload(self, arrays):
        with SharedArrays.create(arrays) as bundle:
            assert bundle.nbytes == sum(a.nbytes for a in arrays.values())

    def test_contains_iter_len(self, arrays):
        with SharedArrays.create(arrays) as bundle:
            assert "a" in bundle and "missing" not in bundle
            assert set(bundle) == set(arrays)
            assert len(bundle) == 3

    def test_non_contiguous_input_packed(self):
        base = np.arange(20, dtype=np.float64).reshape(4, 5)
        strided = base[:, ::2]
        with SharedArrays.create({"s": strided}) as bundle:
            np.testing.assert_array_equal(bundle.get("s"), strided)


class TestPickleTransport:
    def test_attach_by_name(self, arrays):
        bundle = SharedArrays.create(arrays)
        try:
            if not bundle.shared:
                pytest.skip("no shared memory on this platform")
            attached = pickle.loads(pickle.dumps(bundle))
            assert attached.shared
            for name, arr in arrays.items():
                np.testing.assert_array_equal(attached.get(name), arr)
                assert not attached.get(name).flags.writeable
            attached.close()
        finally:
            bundle.close()
            bundle.unlink()

    def test_pickle_is_small(self, arrays):
        big = {"big": np.zeros(1 << 20, dtype=np.float64)}  # 8 MiB
        bundle = SharedArrays.create(big)
        try:
            if not bundle.shared:
                pytest.skip("no shared memory on this platform")
            # By-name transport: the pickle carries the segment name
            # and index, not the 8 MiB payload.
            assert len(pickle.dumps(bundle)) < 4096
        finally:
            bundle.close()
            bundle.unlink()

    def test_fallback_pickles_by_value(self, arrays, monkeypatch):
        import multiprocessing.shared_memory as shm_mod

        def boom(*args, **kwargs):
            raise OSError("no /dev/shm")

        monkeypatch.setattr(shm_mod, "SharedMemory", boom)
        bundle = SharedArrays.create(arrays)
        assert not bundle.shared
        clone = pickle.loads(pickle.dumps(bundle))
        for name, arr in arrays.items():
            np.testing.assert_array_equal(clone.get(name), arr)
            assert not clone.get(name).flags.writeable


class TestLifecycle:
    def test_context_manager_unlinks(self, arrays):
        bundle = SharedArrays.create(arrays)
        if not bundle.shared:
            pytest.skip("no shared memory on this platform")
        name = bundle._shm.name
        with bundle:
            pass
        from multiprocessing.shared_memory import SharedMemory

        with pytest.raises(FileNotFoundError):
            SharedMemory(name=name)

    def test_unlink_idempotent(self, arrays):
        bundle = SharedArrays.create(arrays)
        bundle.close()
        bundle.unlink()
        bundle.unlink()  # second call is a no-op


def _read_shared(i: int) -> tuple[int, float, bool, int]:
    from repro.parallel import get_payload

    payload = get_payload()
    bundle = payload["bundle"]
    total = float(bundle.get("data")[i].sum())
    return (i, total, bundle.shared, os.getpid())


class TestAcrossThePool:
    def test_workers_read_shared_payload(self):
        data = np.arange(24, dtype=np.float64).reshape(4, 6)
        bundle = SharedArrays.create({"data": data})
        try:
            out = map_sequences(
                _read_shared,
                list(range(4)),
                jobs=2,
                payload={"bundle": bundle},
            )
        finally:
            bundle.close()
            bundle.unlink()
        expected = [float(data[i].sum()) for i in range(4)]
        assert [t for _, t, _, _ in out] == expected
        assert os.getpid() not in {pid for _, _, _, pid in out}
