"""Tests for trace records and trace-set accessors."""

from __future__ import annotations

import numpy as np
import pytest

from repro.profiling.traces import TraceRecord, TraceSet


def rec(seq, frame, tasks, scenario=3, roi=100.0):
    return TraceRecord(
        seq=seq,
        frame=frame,
        scenario_id=scenario,
        task_ms=tasks,
        roi_kpixels=roi,
        latency_ms=sum(tasks.values()),
        eviction_bytes=0,
        external_bytes=1000,
    )


@pytest.fixture()
def ts():
    t = TraceSet(pixel_scale=16.0, platform="test")
    # seq 0: A runs on frames 0,1,2; B on 0 and 2 (gap on 1).
    t.append(rec(0, 0, {"A": 1.0, "B": 5.0}, scenario=1))
    t.append(rec(0, 1, {"A": 2.0}, scenario=2))
    t.append(rec(0, 2, {"A": 3.0, "B": 6.0}, scenario=1))
    # seq 1: A runs on both frames.
    t.append(rec(1, 0, {"A": 10.0}, scenario=3))
    t.append(rec(1, 1, {"A": 11.0}, scenario=3))
    return t


class TestAccessors:
    def test_task_series_respects_gaps_and_sequences(self, ts):
        series = ts.task_series("A")
        assert [list(s) for s in series] == [[1.0, 2.0, 3.0], [10.0, 11.0]]
        series_b = ts.task_series("B")
        # Gap on frame 1 splits B into two single-sample runs.
        assert [list(s) for s in series_b] == [[5.0], [6.0]]

    def test_task_values_concatenated(self, ts):
        np.testing.assert_array_equal(
            ts.task_values("A"), [1.0, 2.0, 3.0, 10.0, 11.0]
        )
        assert ts.task_values("MISSING").size == 0

    def test_tasks_listed(self, ts):
        assert set(ts.tasks()) == {"A", "B"}

    def test_scenario_chains(self, ts):
        chains = ts.scenario_chains()
        assert [list(c) for c in chains] == [[1, 2, 1], [3, 3]]

    def test_roi_series_pairs(self, ts):
        pairs = ts.roi_series("B")
        assert len(pairs) == 2
        for roi_arr, ms_arr in pairs:
            assert roi_arr.shape == ms_arr.shape

    def test_latencies(self, ts):
        assert ts.latencies().shape == (5,)

    def test_sequences(self, ts):
        assert ts.sequences() == [0, 1]


class TestPersistence:
    def test_save_load_round_trip(self, ts, tmp_path):
        path = tmp_path / "traces.json"
        ts.meta["note"] = "hello"
        ts.meta["unserializable"] = object()
        ts.save(path)
        loaded = TraceSet.load(path)
        assert len(loaded) == len(ts)
        assert loaded.pixel_scale == 16.0
        assert loaded.platform == "test"
        assert loaded.meta["note"] == "hello"
        assert "unserializable" not in loaded.meta
        assert loaded.records[0] == ts.records[0]
