"""Tests for trace records and trace-set accessors."""

from __future__ import annotations

import numpy as np
import pytest

from repro.profiling.traces import TraceRecord, TraceSet


def rec(seq, frame, tasks, scenario=3, roi=100.0):
    return TraceRecord(
        seq=seq,
        frame=frame,
        scenario_id=scenario,
        task_ms=tasks,
        roi_kpixels=roi,
        latency_ms=sum(tasks.values()),
        eviction_bytes=0,
        external_bytes=1000,
    )


@pytest.fixture()
def ts():
    t = TraceSet(pixel_scale=16.0, platform="test")
    # seq 0: A runs on frames 0,1,2; B on 0 and 2 (gap on 1).
    t.append(rec(0, 0, {"A": 1.0, "B": 5.0}, scenario=1))
    t.append(rec(0, 1, {"A": 2.0}, scenario=2))
    t.append(rec(0, 2, {"A": 3.0, "B": 6.0}, scenario=1))
    # seq 1: A runs on both frames.
    t.append(rec(1, 0, {"A": 10.0}, scenario=3))
    t.append(rec(1, 1, {"A": 11.0}, scenario=3))
    return t


class TestAccessors:
    def test_task_series_respects_gaps_and_sequences(self, ts):
        series = ts.task_series("A")
        assert [list(s) for s in series] == [[1.0, 2.0, 3.0], [10.0, 11.0]]
        series_b = ts.task_series("B")
        # Gap on frame 1 splits B into two single-sample runs.
        assert [list(s) for s in series_b] == [[5.0], [6.0]]

    def test_task_values_concatenated(self, ts):
        np.testing.assert_array_equal(
            ts.task_values("A"), [1.0, 2.0, 3.0, 10.0, 11.0]
        )
        assert ts.task_values("MISSING").size == 0

    def test_tasks_listed(self, ts):
        assert set(ts.tasks()) == {"A", "B"}

    def test_scenario_chains(self, ts):
        chains = ts.scenario_chains()
        assert [list(c) for c in chains] == [[1, 2, 1], [3, 3]]

    def test_roi_series_pairs(self, ts):
        pairs = ts.roi_series("B")
        assert len(pairs) == 2
        for roi_arr, ms_arr in pairs:
            assert roi_arr.shape == ms_arr.shape

    def test_latencies(self, ts):
        assert ts.latencies().shape == (5,)

    def test_sequences(self, ts):
        assert ts.sequences() == [0, 1]


class TestPersistence:
    def test_save_load_round_trip(self, ts, tmp_path):
        path = tmp_path / "traces.json"
        ts.meta["note"] = "hello"
        ts.meta["unserializable"] = object()
        ts.save(path)
        loaded = TraceSet.load(path)
        assert len(loaded) == len(ts)
        assert loaded.pixel_scale == 16.0
        assert loaded.platform == "test"
        assert loaded.meta["note"] == "hello"
        assert "unserializable" not in loaded.meta
        assert loaded.records[0] == ts.records[0]

    def test_save_writes_npz_sidecar(self, ts, tmp_path):
        path = tmp_path / "traces.json"
        ts.save(path)
        assert (tmp_path / "traces.npz").exists()

    def test_npz_and_json_load_paths_are_equal(self, ts, tmp_path):
        path = tmp_path / "traces.json"
        ts.meta["note"] = "hello"
        ts.save(path)
        fast = TraceSet.load(path)  # sidecar fingerprint matches
        (tmp_path / "traces.npz").unlink()
        slow = TraceSet.load(path)  # JSON-only fallback
        assert fast.records == slow.records == ts.records
        assert fast.pixel_scale == slow.pixel_scale == ts.pixel_scale
        assert fast.platform == slow.platform == ts.platform
        assert fast.meta == slow.meta == {"note": "hello"}
        assert fast == slow

    def test_stale_sidecar_falls_back_to_json(self, ts, tmp_path):
        path = tmp_path / "traces.json"
        ts.save(path)
        # Rewrite the JSON without refreshing the sidecar: the stale
        # sidecar's fingerprint no longer matches and must be ignored.
        other = TraceSet(pixel_scale=2.0, platform="other")
        other.append(rec(7, 0, {"Z": 4.0}, scenario=5))
        payload_path = tmp_path / "other.json"
        other.save(payload_path)
        path.write_text(payload_path.read_text())
        loaded = TraceSet.load(path)
        assert loaded.platform == "other"
        assert loaded.records == other.records

    def test_corrupt_sidecar_falls_back_to_json(self, ts, tmp_path):
        path = tmp_path / "traces.json"
        ts.save(path)
        (tmp_path / "traces.npz").write_bytes(b"not a zipfile")
        loaded = TraceSet.load(path)
        assert loaded.records == ts.records

    def test_roundtrip_preserves_accessors(self, ts, tmp_path):
        path = tmp_path / "traces.json"
        ts.save(path)
        loaded = TraceSet.load(path)
        assert [list(s) for s in loaded.task_series("A")] == [
            list(s) for s in ts.task_series("A")
        ]
        assert [list(c) for c in loaded.scenario_chains()] == [
            list(c) for c in ts.scenario_chains()
        ]
        np.testing.assert_array_equal(loaded.latencies(), ts.latencies())
        assert loaded.tasks() == ts.tasks()
        assert loaded.sequences() == ts.sequences()


class TestColumnarStorage:
    def test_add_frame_matches_append(self, ts):
        direct = TraceSet(pixel_scale=16.0, platform="test")
        for r in ts.records:
            direct.add_frame(
                seq=r.seq,
                frame=r.frame,
                scenario_id=r.scenario_id,
                task_ms=r.task_ms,
                roi_kpixels=r.roi_kpixels,
                latency_ms=r.latency_ms,
                eviction_bytes=r.eviction_bytes,
                external_bytes=r.external_bytes,
            )
        assert direct.records == ts.records
        assert direct == ts

    def test_extend_matches_record_appends(self, ts):
        shard = TraceSet(pixel_scale=16.0, platform="test")
        shard.append(rec(2, 0, {"C": 9.0, "A": 1.5}, scenario=4))
        shard.append(rec(2, 1, {"A": 2.5}, scenario=4))

        bulk = TraceSet(pixel_scale=16.0, platform="test")
        bulk.extend(ts)
        bulk.extend(shard)

        slow = TraceSet(pixel_scale=16.0, platform="test")
        for r in ts.records + shard.records:
            slow.append(r)
        assert bulk.records == slow.records
        assert bulk.tasks() == slow.tasks() == ["A", "B", "C"]

    def test_growth_past_initial_capacity(self):
        t = TraceSet()
        for i in range(300):
            t.add_frame(
                seq=i // 100,
                frame=i % 100,
                scenario_id=i % 8,
                task_ms={"A": float(i)},
                roi_kpixels=1.0,
                latency_ms=float(i),
                eviction_bytes=0,
                external_bytes=i,
            )
        assert len(t) == 300
        assert t.records[299].task_ms == {"A": 299.0}
        np.testing.assert_array_equal(
            t.task_values("A"), np.arange(300, dtype=np.float64)
        )

    def test_records_cache_invalidated_by_writes(self, ts):
        first = ts.records
        assert ts.records is first  # cached between reads
        ts.append(rec(9, 0, {"A": 1.0}))
        assert len(ts.records) == len(first) + 1

    def test_constructor_accepts_records(self, ts):
        rebuilt = TraceSet(
            ts.records, pixel_scale=ts.pixel_scale, platform=ts.platform
        )
        assert rebuilt == ts
