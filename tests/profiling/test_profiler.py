"""Tests for corpus profiling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hw.bus import BandwidthLedger
from repro.profiling import ProfileConfig, profile_sequence
from repro.synthetic.sequence import SequenceConfig, XRaySequence


class TestProfileSequence:
    @pytest.fixture(scope="class")
    def profiled(self):
        seq = XRaySequence(SequenceConfig(n_frames=15, seed=21, visibility_dips=0))
        return profile_sequence(seq, ProfileConfig(), seq_id=7)

    def test_one_record_per_frame(self, profiled):
        assert len(profiled) == 15
        assert [r.frame for r in profiled.records] == list(range(15))
        assert all(r.seq == 7 for r in profiled.records)

    def test_scenarios_valid(self, profiled):
        assert all(0 <= r.scenario_id < 8 for r in profiled.records)

    def test_roi_kpixels_native_scaled(self, profiled):
        # Full-frame first frame: 256*256/1000 * 16 = ~1049 Kpx native.
        assert profiled.records[0].roi_kpixels == pytest.approx(1048.576)

    def test_latency_positive_and_consistent(self, profiled):
        for r in profiled.records:
            assert r.latency_ms > 0
            assert r.latency_ms == pytest.approx(sum(r.task_ms.values()), rel=0.01)

    def test_deterministic(self):
        seq = XRaySequence(SequenceConfig(n_frames=6, seed=3))
        a = profile_sequence(seq, ProfileConfig(), seq_id=0)
        seq2 = XRaySequence(SequenceConfig(n_frames=6, seed=3))
        b = profile_sequence(seq2, ProfileConfig(), seq_id=0)
        assert [r.task_ms for r in a.records] == [r.task_ms for r in b.records]


class TestProfileCorpus:
    def test_session_traces(self, traces, small_corpus_spec):
        assert len(traces) == small_corpus_spec.total_frames
        assert traces.meta["n_sequences"] == small_corpus_spec.n_sequences
        assert isinstance(traces.meta["ledger"], BandwidthLedger)
        assert traces.meta["ledger"].frames == len(traces)

    def test_scenario_diversity(self, traces):
        scenarios = {r.scenario_id for r in traces.records}
        assert len(scenarios) >= 5  # the corpus exercises the switches

    def test_core_tasks_profiled(self, traces):
        tasks = set(traces.tasks())
        assert {"RDG_DETECT", "CPLS_SEL", "REG"} <= tasks
        assert tasks & {"RDG_FULL", "RDG_ROI"}
        assert tasks & {"ENH", "ZOOM"}

    def test_rdg_roi_time_tracks_roi(self, traces):
        """Eq. 3's premise: RDG ROI time grows with ROI size."""
        pairs = traces.roi_series("RDG_ROI")
        roi = np.concatenate([r for r, _ in pairs])
        ms = np.concatenate([m for _, m in pairs])
        if roi.size < 20 or np.ptp(roi) < 30:
            pytest.skip("not enough ROI variation in the small corpus")
        # Positive dependence; content fluctuation dilutes but must
        # not hide the linear growth the Eq. 3 model captures.
        corr = np.corrcoef(roi, ms)[0, 1]
        assert corr > 0.3
        slope = np.polyfit(roi, ms, 1)[0]
        assert slope > 0
