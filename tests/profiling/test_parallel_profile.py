"""Parallel corpus profiling must be indistinguishable from serial.

The acceptance property of ``repro.parallel``: fanning sequences
across a process pool changes wall-clock time only -- the serialized
TraceSet is byte-identical, because every stochastic draw is keyed by
``(seq_id, frame)`` and frames carry no cross-sequence state.
"""

from __future__ import annotations

import pytest

from repro.hw.bus import BandwidthLedger
from repro.profiling import (
    ProfileConfig,
    merge_shards,
    profile_corpus,
    profile_shards,
)
from repro.synthetic import CorpusSpec, generate_corpus


@pytest.fixture(scope="module")
def tiny_corpus():
    return generate_corpus(CorpusSpec(n_sequences=3, total_frames=24, base_seed=55))


class TestParallelEqualsSerial:
    def test_serialized_byte_identity(self, tiny_corpus, tmp_path):
        config = ProfileConfig()
        serial = profile_corpus(tiny_corpus, config, jobs=1)
        pooled = profile_corpus(tiny_corpus, config, jobs=3)

        p_serial = tmp_path / "serial.json"
        p_pooled = tmp_path / "pooled.json"
        serial.save(p_serial)
        pooled.save(p_pooled)
        assert p_serial.read_bytes() == p_pooled.read_bytes()

    def test_records_identical(self, tiny_corpus):
        config = ProfileConfig()
        serial = profile_corpus(tiny_corpus, config, jobs=1)
        pooled = profile_corpus(tiny_corpus, config, jobs=4)
        assert serial.records == pooled.records

    def test_ledger_merged_across_shards(self, tiny_corpus):
        traces = profile_corpus(tiny_corpus, ProfileConfig(), jobs=2)
        ledger = traces.meta["ledger"]
        assert isinstance(ledger, BandwidthLedger)
        assert ledger.frames == len(traces)

    def test_oversubscribed_pool_is_fine(self, tiny_corpus):
        # More workers than sequences: min() clamps the pool size.
        traces = profile_corpus(tiny_corpus, ProfileConfig(), jobs=16)
        assert len(traces) == sum(len(s) for s in tiny_corpus)


class TestShards:
    def test_shards_in_input_order(self, tiny_corpus):
        config = ProfileConfig()
        items = [(i, seq.config) for i, seq in enumerate(tiny_corpus)]
        shards = profile_shards(items, config, jobs=2)
        assert [s.records[0].seq for s in shards] == [0, 1, 2]

    def test_shard_subset_matches_full_profile(self, tiny_corpus):
        config = ProfileConfig()
        full = profile_corpus(tiny_corpus, config, jobs=1)
        shard = profile_shards([(1, tiny_corpus[1].config)], config, jobs=1)[0]
        expected = [r for r in full.records if r.seq == 1]
        assert shard.records == expected

    def test_merge_drops_ledger_when_a_shard_lacks_one(self, tiny_corpus):
        config = ProfileConfig()
        shards = profile_shards(
            [(i, s.config) for i, s in enumerate(tiny_corpus)], config, jobs=1
        )
        del shards[1].meta["ledger"]
        merged = merge_shards(shards, config)
        assert "ledger" not in merged.meta
        assert len(merged) == sum(len(s) for s in shards)
