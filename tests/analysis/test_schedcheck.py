"""Tests for the scenario-space schedulability model checker.

Covers the acceptance properties: the default two-StentBoost mix is
feasible on the reference platform, an overloaded mix produces
``sched/*`` ERRORs whose messages carry a Markov-reachable witness
path and the joint stationary probability, symmetry reduction is
exact against brute-force enumeration, unreachable violations are
downgraded, and the feasibility envelope marks the boundary.
"""

from __future__ import annotations

import dataclasses
import math

import pytest

from repro.analysis.findings import Severity
from repro.analysis.schedcheck import (
    MAX_WITNESS_FRAMES,
    FeasibilityEnvelope,
    _AppModel,
    check_schedulability,
    compute_envelope,
    product_scenario_chain,
    static_task_cost_ms,
)
from repro.hw.cost import TaskCostSpec
from repro.hw.spec import blackford
from repro.util.units import BYTES_PER_PIXEL, HZ_VIDEO, KIB, MS_PER_S, PX_PER_KPX
from repro.workloads import ScenarioDynamics, get_workload

PERIOD_MS = MS_PER_S / HZ_VIDEO


def _deterministic_workload(name: str = "sbdet"):
    """StentBoost's graph with deterministic switch dynamics.

    Every bit flips on with probability 1 and then stays on: from the
    initial scenario 0 the only trajectory is ``0 -> 7 -> 7 -> ...``,
    so scenarios 1..6 are statically unreachable.
    """
    return dataclasses.replace(
        get_workload("stentboost"),
        name=name,
        scenarios=ScenarioDynamics(stay=((0.0, 1.0), (0.0, 1.0), (0.0, 1.0))),
    )


class TestStaticCost:
    def test_none_cost_is_free(self):
        assert static_task_cost_ms(512.0, None) == 0.0

    def test_fixed_plus_per_kpixel(self):
        cost = TaskCostSpec(fixed_ms=1.5, per_kpixel_ms=0.01)
        kpx = 512.0 * KIB / BYTES_PER_PIXEL / PX_PER_KPX
        assert static_task_cost_ms(512.0, cost) == pytest.approx(
            1.5 + 0.01 * kpx
        )


class TestFeasibleMix:
    def test_two_stentboost_on_blackford_has_no_errors(self):
        report = check_schedulability(
            ["stentboost", "stentboost"], blackford(), cores=8
        )
        assert report.errors == [], [f.render() for f in report.errors]
        assert report.apps == ("stentboost", "stentboost")
        assert report.n_joint == 64
        # Two identical instances collapse to C(8+1, 2) = 36 orbits.
        assert report.n_orbits == 36
        assert report.n_checked + report.n_pruned <= report.n_orbits + 1

    def test_l2_pressure_is_warning_not_error(self):
        # StentBoost legitimately overflows L2 (the Fig. 5 swap
        # story); the checker must report pressure without failing.
        report = check_schedulability(
            ["stentboost", "stentboost"], blackford(), cores=8
        )
        pressure = [
            f for f in report.findings if f.rule == "sched/l2-pressure"
        ]
        assert pressure and all(
            f.severity is Severity.WARNING for f in pressure
        )


class TestInfeasibleMix:
    @pytest.fixture(scope="class")
    def report(self):
        return check_schedulability(
            ["stentboost"] * 4, blackford(), cores=1
        )

    def test_overload_is_an_error(self, report):
        rules = {f.rule for f in report.errors}
        assert "sched/compute-budget" in rules
        assert "sched/deadline" in rules

    def test_messages_carry_probability_and_witness(self, report):
        compute = [
            f for f in report.findings if f.rule == "sched/compute-budget"
        ]
        assert compute
        for f in compute:
            assert "stationary p=" in f.message
            assert "witness (" in f.message

    def test_top_violation_is_most_probable_and_pinned(self, report):
        # The first compute-budget finding is the highest-stationary
        # joint scenario; with identical instances that is the per-app
        # stationary argmax in every slot.
        model = _AppModel(get_workload("stentboost"), 1, HZ_VIDEO)
        best = max(
            range(model.n_scenarios), key=lambda s: model.stationary[s]
        )
        first = next(
            f for f in report.findings if f.rule == "sched/compute-budget"
        )
        sids = ",".join([str(best)] * 4)
        assert f"({sids})" in first.location
        prob = model.stationary[best] ** 4
        assert f"p={prob:.3e}" in first.message
        # All registered dynamics are strictly positive, so every
        # joint scenario is one hop from the initial (0,0,0,0).
        assert f"witness (1 frame(s)): (0,0,0,0)->({sids})" in first.message

    def test_orbit_weight_reported(self, report):
        mixed = [
            f
            for f in report.findings
            if f.rule == "sched/compute-budget" and "orbit x" in f.message
        ]
        assert mixed  # any non-uniform assignment has orbit > 1


class TestSymmetryReduction:
    def test_orbits_cover_the_full_product(self):
        """Brute-force the joint space; the symmetry-reduced report
        must account for exactly the same violating assignments."""
        platform = blackford()
        cores = 1
        model = _AppModel(get_workload("stentboost"), cores, HZ_VIDEO)
        supply = cores * PERIOD_MS
        bus = min(
            float(platform.l2_bus_bw), float(platform.total_dram_stream_bw)
        )
        l2_total = float(platform.n_l2 * platform.l2.capacity_bytes)

        expected = {"sched/compute-budget": 0, "sched/bus-budget": 0,
                    "sched/l2-pressure": 0}
        for a in range(8):
            for b in range(8):
                load = model.loads[a] + model.loads[b]
                if load.cost_ms > supply:
                    expected["sched/compute-budget"] += 1
                if load.bw_bytes > bus:
                    expected["sched/bus-budget"] += 1
                if load.ws_bytes > l2_total:
                    expected["sched/l2-pressure"] += 1

        report = check_schedulability(
            ["stentboost", "stentboost"],
            platform,
            cores=cores,
            report_cap=100,
        )
        got = {"sched/compute-budget": 0, "sched/bus-budget": 0,
               "sched/l2-pressure": 0}
        for f in report.findings:
            if f.rule not in got:
                continue
            orbit = 1
            if "orbit x" in f.message:
                orbit = int(
                    f.message.split("orbit x")[1].split(";")[0].strip()
                )
            got[f.rule] += orbit
        assert got == expected
        assert report.n_joint == 64 and report.n_orbits == 36

    def test_instance_order_does_not_matter(self):
        a = check_schedulability(
            ["stentboost", "stentboost", "stentboost"], blackford(), cores=2
        )
        b = check_schedulability(
            ["stentboost", "stentboost", "stentboost"], blackford(), cores=2
        )
        assert [f.render() for f in a.findings] == [
            f.render() for f in b.findings
        ]


class TestReachabilityDowngrade:
    def test_unreachable_violations_are_downgraded(self):
        det = _deterministic_workload()
        report = check_schedulability([det] * 4, blackford(), cores=1)
        compute = [
            f for f in report.findings if f.rule == "sched/compute-budget"
        ]
        assert compute
        for f in compute:
            if "downgraded" in f.message:
                assert f.severity <= Severity.WARNING
            else:
                assert f.severity is Severity.ERROR
                assert "witness (" in f.message
        # Both kinds exist: (7,7,7,7) is witnessed, mixed tuples not.
        assert any("statically unreachable" in f.message for f in compute)
        assert any("witness (" in f.message for f in compute)

    def test_pinned_deterministic_witness(self):
        det = _deterministic_workload()
        report = check_schedulability([det, det], blackford(), cores=1)
        witnessed = [
            f
            for f in report.findings
            if f.rule == "sched/compute-budget" and f.severity is Severity.ERROR
        ]
        # The only jointly reachable scenarios are (0,0) and (7,7)
        # (both apps move in lockstep); the violating one is (7,7),
        # one deterministic hop from start.  Everything else -- even
        # per-app-reachable combinations like (0,7) -- is downgraded.
        assert len(witnessed) == 1
        assert "(7,7)" in witnessed[0].location
        assert "witness (1 frame(s)): (0,0)->(7,7)" in witnessed[0].message
        assert "p=1.000e+00" in witnessed[0].message

    def test_reachability_layers_are_bounded(self):
        det = _deterministic_workload()
        model = _AppModel(det, 1, HZ_VIDEO)
        assert model.dist[0] == 0 and model.dist[7] == 1
        assert all(model.dist[s] is None for s in range(1, 7))
        assert len(model.exact) == MAX_WITNESS_FRAMES + 1


class TestProductChain:
    def test_stationary_factorizes(self):
        joint = product_scenario_chain(["stentboost", "ultrasound"])
        assert joint.n_states == 64
        pa = product_scenario_chain(["stentboost"]).stationary()
        pb = product_scenario_chain(["ultrasound"]).stationary()
        pj = joint.stationary()
        for i in range(8):
            for j in range(8):
                assert pj[i * 8 + j] == pytest.approx(
                    pa[i] * pb[j], abs=1e-9
                )

    def test_rows_are_stochastic(self):
        joint = product_scenario_chain(["stentboost", "robotvision"])
        for row in joint.transition:
            assert math.isclose(float(sum(row)), 1.0, abs_tol=1e-9)


class TestReportCap:
    def test_cap_truncates_with_a_note(self):
        capped = check_schedulability(
            ["stentboost"] * 4, blackford(), cores=1, report_cap=2
        )
        by_rule: dict[str, int] = {}
        for f in capped.findings:
            by_rule[f.rule] = by_rule.get(f.rule, 0) + 1
        assert by_rule["sched/compute-budget"] == 2
        notes = [
            f for f in capped.findings if f.rule == "sched/report-cap"
        ]
        assert notes and all(f.severity is Severity.INFO for f in notes)
        assert any("sched/compute-budget" in f.message for f in notes)


class TestHeterogeneousMixes:
    def test_hetero_pair_is_feasible_on_blackford(self):
        report = check_schedulability(
            ["stentboost", "ultrasound"], blackford()
        )
        assert report.errors == [], [f.render() for f in report.errors]
        assert report.apps == ("stentboost", "ultrasound")
        # Distinct workloads do not collapse: all 64 joint scenarios
        # are distinct orbits.
        assert report.n_orbits == 64

    def test_every_registered_single_is_feasible(self):
        from repro.workloads import workload_names

        for name in workload_names():
            report = check_schedulability([name], blackford())
            assert report.errors == [], (
                name,
                [f.render() for f in report.errors],
            )

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError):
            check_schedulability(["no-such-app"], blackford())

    def test_empty_mix_rejected(self):
        with pytest.raises(ValueError):
            check_schedulability([], blackford())

    def test_bad_core_count_rejected(self):
        with pytest.raises(ValueError):
            check_schedulability(["stentboost"], blackford(), cores=0)


class TestEnvelope:
    def test_boundary_is_tight(self):
        platform = blackford()
        env = compute_envelope(
            platform, workloads=["stentboost"], search_cap=8
        )
        cap = env.max_instances["stentboost"]
        assert 1 <= cap <= 8
        at_cap = check_schedulability(["stentboost"] * cap, platform)
        assert at_cap.errors == []
        if cap < 8:
            over = check_schedulability(["stentboost"] * (cap + 1), platform)
            assert over.errors

    def test_doc_round_trip(self):
        env = FeasibilityEnvelope(
            cores=8, rate_hz=30.0, max_instances={"b": 2, "a": 1}
        )
        doc = env.to_doc()
        assert doc["schema"] == "repro-sched-envelope/1"
        assert list(doc["max_instances"]) == ["a", "b"]
        assert env.as_app_caps() == {"a": 1, "b": 2}
