"""Incremental engine: cache hits, invalidation, dependency closure."""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

from repro.analysis.incremental import run_incremental

REPO = Path(__file__).resolve().parents[2]

BASE_DIRTY = """
    import json


    def dump(payload):
        return json.dumps(payload)
"""

BASE_CLEAN = """
    import json


    def dump(payload):
        return json.dumps(payload, sort_keys=True)
"""

MID = """
    from pkg.base import dump


    def describe(payload):
        return dump(payload)
"""

TOP = """
    from pkg.mid import describe


    def report(payload):
        return describe(payload)
"""


def _write_project(root: Path, base_src: str = BASE_DIRTY) -> Path:
    pkg = root / "pkg"
    pkg.mkdir(exist_ok=True)
    (pkg / "__init__.py").write_text("")
    (pkg / "base.py").write_text(textwrap.dedent(base_src))
    (pkg / "mid.py").write_text(textwrap.dedent(MID))
    (pkg / "top.py").write_text(textwrap.dedent(TOP))
    return pkg


def _names(paths: list[str]) -> set[str]:
    return {Path(p).name for p in paths}


class TestIncrementalCache:
    def test_cold_run_analyzes_everything(self, tmp_path):
        pkg = _write_project(tmp_path)
        res = run_incremental([pkg], cache_dir=tmp_path / "cache")
        assert res.stats.cache_hits == 0
        assert res.stats.cache_misses == 4
        assert any(f.rule == "dataflow/json-sort-keys" for f in res.findings)

    def test_warm_unchanged_rerun_analyzes_zero_modules(self, tmp_path):
        pkg = _write_project(tmp_path)
        cache = tmp_path / "cache"
        cold = run_incremental([pkg], cache_dir=cache)
        warm = run_incremental([pkg], cache_dir=cache)
        assert warm.stats.analyzed == []
        assert warm.stats.cache_hits == 4
        assert warm.stats.cache_misses == 0
        # Cached findings are byte-identical to the cold run's.
        assert [f.render() for f in warm.findings] == [
            f.render() for f in cold.findings
        ]

    def test_leaf_edit_reanalyzes_only_the_leaf(self, tmp_path):
        pkg = _write_project(tmp_path)
        cache = tmp_path / "cache"
        run_incremental([pkg], cache_dir=cache)
        (pkg / "top.py").write_text(
            textwrap.dedent(TOP) + "\n\ndef extra():\n    return 1\n"
        )
        res = run_incremental([pkg], cache_dir=cache)
        assert _names(res.stats.analyzed) == {"top.py"}
        # The unrelated cached finding in base.py survives the merge.
        assert any(f.rule == "dataflow/json-sort-keys" for f in res.findings)

    def test_base_edit_reanalyzes_the_reverse_import_closure(self, tmp_path):
        pkg = _write_project(tmp_path)
        cache = tmp_path / "cache"
        run_incremental([pkg], cache_dir=cache)
        (pkg / "base.py").write_text(textwrap.dedent(BASE_CLEAN))
        res = run_incremental([pkg], cache_dir=cache)
        # mid imports base, top imports mid: both ride along.
        assert _names(res.stats.analyzed) == {"base.py", "mid.py", "top.py"}
        assert not any(
            f.rule == "dataflow/json-sort-keys" for f in res.findings
        )

    def test_pass_set_change_invalidates_the_whole_cache(self, tmp_path):
        pkg = _write_project(tmp_path)
        cache = tmp_path / "cache"
        run_incremental([pkg], cache_dir=cache)
        res = run_incremental(
            [pkg], cache_dir=cache, passes=("lint", "dataflow")
        )
        assert res.stats.cache_misses == 4

    def test_cache_survives_corruption(self, tmp_path):
        pkg = _write_project(tmp_path)
        cache = tmp_path / "cache"
        run_incremental([pkg], cache_dir=cache)
        (cache / "modules.json").write_text("{not json")
        res = run_incremental([pkg], cache_dir=cache)
        assert res.stats.cache_misses == 4
        assert any(f.rule == "dataflow/json-sort-keys" for f in res.findings)


class TestCliFlags:
    def _run(self, *args: str, cwd: Path):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        return subprocess.run(
            [sys.executable, "-m", "repro.analysis", *args],
            capture_output=True,
            text=True,
            env=env,
            cwd=cwd,
            timeout=120,
        )

    def test_incremental_stats_and_json_artifact(self, tmp_path):
        pkg = _write_project(tmp_path, base_src=BASE_CLEAN)
        common = (
            str(pkg),
            "--incremental",
            "--no-graph",
            "--cache-dir",
            str(tmp_path / "cache"),
            "--stats",
            "--stats-json",
            str(tmp_path / "stats.json"),
        )
        cold = self._run(*common, cwd=tmp_path)
        assert cold.returncode == 0, cold.stdout + cold.stderr
        assert "miss(es)" in cold.stderr
        warm = self._run(*common, cwd=tmp_path)
        assert warm.returncode == 0
        assert "0 miss(es); 0 module(s) analyzed" in warm.stderr
        doc = json.loads((tmp_path / "stats.json").read_text())
        assert doc["analyzed"] == []
        assert doc["cache_misses"] == 0

    def test_no_effects_no_perf_skip_those_passes(self, tmp_path):
        pkg = _write_project(tmp_path, base_src=BASE_CLEAN)
        proc = self._run(
            str(pkg), "--no-graph", "--no-effects", "--no-perf", cwd=tmp_path
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr


class TestWarmSpeedup:
    def test_warm_rerun_at_least_5x_faster_on_the_real_repo(self, tmp_path):
        roots = [REPO / "src" / "repro"]
        cache = tmp_path / "cache"
        cold = run_incremental(roots, cache_dir=cache)
        warm = run_incremental(roots, cache_dir=cache)
        assert warm.stats.analyzed == []
        cold_s = sum(cold.stats.pass_seconds.values())
        warm_s = sum(warm.stats.pass_seconds.values())
        assert warm_s * 5 <= cold_s, (cold_s, warm_s)
        # And the merged findings match a fresh cold run elsewhere.
        cold2 = run_incremental(roots, cache_dir=tmp_path / "cache2")
        assert [f.render() for f in warm.findings] == [
            f.render() for f in cold2.findings
        ]
