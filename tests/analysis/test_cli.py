"""End-to-end tests of ``python -m repro.analysis`` (exit codes, output)."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
SRC = REPO / "src"
FIXTURES = Path(__file__).resolve().parent / "fixtures"
BAD_GRAPH = FIXTURES / "bad_graph.py"


def run_cli(*args: str) -> subprocess.CompletedProcess[str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO,
        timeout=120,
    )


class TestRepoSelfCheck:
    def test_default_run_is_clean(self):
        """Tier-2 gate: lint over src/repro + graph checks over the
        StentBoost graph exit 0 (INFO findings are expected, ERRORs not)."""
        proc = run_cli()
        assert proc.returncode == 0, proc.stdout + proc.stderr
        # The expected L2 overflows are reported but do not fail the run.
        assert "graph/buffer-budget" in proc.stdout

    def test_fail_on_info_raises_exit_code(self):
        proc = run_cli("--fail-on", "info")
        assert proc.returncode == 1


class TestLintFixtures:
    def test_banned_random_fixture_fails(self):
        proc = run_cli(str(FIXTURES / "bad_rng.py"), "--no-graph")
        assert proc.returncode == 1
        assert "lint/banned-random" in proc.stdout
        assert "bad_rng.py:7" in proc.stdout

    def test_json_format(self):
        proc = run_cli(str(FIXTURES / "bad_rng.py"), "--no-graph", "--format", "json")
        assert proc.returncode == 1
        payload = json.loads(proc.stdout)
        assert payload[0]["rule"] == "lint/banned-random"
        assert payload[0]["severity"] == "error"


class TestGraphFixtures:
    def test_cyclic_graph_fails(self):
        proc = run_cli("--no-lint", "--graph", f"{BAD_GRAPH}:build_cyclic_graph")
        assert proc.returncode == 1
        assert "graph/cycle" in proc.stdout
        assert "cycle" in proc.stdout.lower()

    def test_uncovered_switch_state_fails(self):
        proc = run_cli("--no-lint", "--graph", f"{BAD_GRAPH}:build_uncovered_graph")
        assert proc.returncode == 1
        assert "graph/switch-coverage" in proc.stdout

    def test_stentboost_graph_alone_passes(self):
        proc = run_cli("--no-lint")
        assert proc.returncode == 0, proc.stdout + proc.stderr


class TestCliSurface:
    def test_list_rules(self):
        proc = run_cli("--list-rules")
        assert proc.returncode == 0
        for rule_id in (
            "lint/banned-random",
            "lint/wall-clock",
            "lint/unit-mix",
            "lint/ewma-alpha",
            "lint/frozen-setattr",
        ):
            assert rule_id in proc.stdout

    def test_missing_path_errors(self):
        proc = run_cli("does/not/exist.py", "--no-graph")
        assert proc.returncode != 0
        assert "no such path" in proc.stderr
