"""Tests for ``python -m repro.analysis schedcheck``.

Exit-code semantics, byte-identical SARIF across runs, the result
cache, the feasibility-envelope file, and the subcommand dispatch
through the main analysis CLI.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.schedcheck_cli import main, matrix_mixes

FEASIBLE = ["--apps", "stentboost,stentboost", "--cores", "8", "--no-cache"]
INFEASIBLE = [
    "--apps",
    "stentboost,stentboost,stentboost,stentboost",
    "--cores",
    "1",
    "--no-cache",
]


class TestExitCodes:
    def test_feasible_default_mix_exits_zero(self, capsys):
        assert main(FEASIBLE) == 0
        out = capsys.readouterr().out
        assert "sched/l2-pressure" in out  # pressure reported, not fatal

    def test_overloaded_mix_exits_nonzero(self, capsys):
        assert main(INFEASIBLE) == 1
        out = capsys.readouterr().out
        assert "sched/compute-budget" in out
        assert "witness (" in out and "stationary p=" in out

    def test_fail_on_warning_tightens_the_gate(self, capsys):
        assert main(FEASIBLE + ["--fail-on", "warning"]) == 1
        capsys.readouterr()

    def test_unknown_workload_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit):
            main(["--apps", "no-such-app", "--no-cache"])
        capsys.readouterr()

    def test_bad_platform_spec_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit):
            main(FEASIBLE + ["--platform", "no.such.module:thing"])
        capsys.readouterr()


class TestMatrix:
    def test_matrix_mixes_shape(self):
        mixes = matrix_mixes(["a", "b"])
        assert mixes == [("a",), ("b",), ("a", "a"), ("a", "b"), ("b", "b")]

    def test_default_matrix_exits_zero(self, capsys):
        # The acceptance gate: every registered workload alone and in
        # pairs fits the reference platform.
        assert main(["--no-cache"]) == 0
        capsys.readouterr()


class TestDeterminism:
    def test_sarif_is_byte_identical_across_runs(self, capsys):
        assert main(FEASIBLE + ["--format", "sarif"]) == 0
        first = capsys.readouterr().out
        assert main(FEASIBLE + ["--format", "sarif"]) == 0
        second = capsys.readouterr().out
        assert first == second
        doc = json.loads(first)
        assert doc["version"] == "2.1.0"
        rules = {
            r["id"]
            for r in doc["runs"][0]["tool"]["driver"]["rules"]
        }
        assert "sched/l2-pressure" in rules

    def test_json_format_parses(self, capsys):
        assert main(INFEASIBLE + ["--format", "json"]) == 1
        findings = json.loads(capsys.readouterr().out)
        assert any(f["rule"] == "sched/deadline" for f in findings)


class TestCache:
    def test_cached_rerun_is_identical(self, tmp_path, capsys):
        args = [
            "--apps",
            "stentboost,stentboost",
            "--cores",
            "8",
            "--cache-dir",
            str(tmp_path),
        ]
        assert main(args) == 0
        cold = capsys.readouterr().out
        entries = list((tmp_path / "schedcheck").glob("*.json"))
        assert len(entries) == 1
        assert main(args) == 0
        warm = capsys.readouterr().out
        assert warm == cold

    def test_corrupt_cache_entry_is_recomputed(self, tmp_path, capsys):
        args = [
            "--apps",
            "stentboost,stentboost",
            "--cores",
            "8",
            "--cache-dir",
            str(tmp_path),
        ]
        assert main(args) == 0
        good = capsys.readouterr().out
        (entry,) = (tmp_path / "schedcheck").glob("*.json")
        entry.write_text("{not json", encoding="utf-8")
        assert main(args) == 0
        assert capsys.readouterr().out == good


class TestEnvelope:
    def test_envelope_file_round_trips_into_the_fleet(self, tmp_path, capsys):
        out = tmp_path / "envelope.json"
        assert (
            main(
                [
                    "--apps",
                    "stentboost",
                    "--no-cache",
                    "--envelope",
                    str(out),
                ]
            )
            == 0
        )
        capsys.readouterr()
        doc = json.loads(out.read_text(encoding="utf-8"))
        assert doc["schema"] == "repro-sched-envelope/1"
        assert all(cap >= 1 for cap in doc["max_instances"].values())

        from repro.fleet.cli import _load_envelope

        caps = _load_envelope(out)
        assert caps == doc["max_instances"]


class TestBaseline:
    def test_baseline_swallows_known_violations(self, tmp_path, capsys):
        baseline = tmp_path / "sched-baseline.json"
        assert main(INFEASIBLE + ["--write-baseline", str(baseline)]) == 0
        capsys.readouterr()
        assert main(INFEASIBLE + ["--baseline", str(baseline)]) == 0
        capsys.readouterr()


class TestDispatch:
    def test_main_cli_dispatches_subcommand(self, capsys):
        from repro.analysis.cli import main as analysis_main

        code = analysis_main(["schedcheck"] + FEASIBLE)
        assert code == 0
        capsys.readouterr()
