"""CLI surface of the dataflow passes: SARIF, baseline, suppressions.

Subprocess-level tests of ``python -m repro.analysis`` covering the
reporting features added with the whole-program dataflow engine.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
SRC = REPO / "src"
FIXTURES = Path(__file__).resolve().parent / "fixtures"


def run_cli(*args: str, cwd: Path = REPO) -> subprocess.CompletedProcess[str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        capture_output=True,
        text=True,
        env=env,
        cwd=cwd,
        timeout=120,
    )


class TestDataflowFixtures:
    def test_unit_fixture_fails_with_dataflow_rules(self):
        proc = run_cli(str(FIXTURES / "bad_units.py"), "--no-graph")
        assert proc.returncode == 1
        assert "dataflow/unit-mix" in proc.stdout
        assert "bad_units.py:15" in proc.stdout

    def test_pool_fixture_fails(self):
        proc = run_cli(str(FIXTURES / "bad_pool.py"), "--no-graph")
        assert proc.returncode == 1
        assert "dataflow/pool-global-mutation" in proc.stdout
        assert "dataflow/pool-worker-closure" in proc.stdout

    def test_no_dataflow_flag_skips_the_pass(self):
        proc = run_cli(
            str(FIXTURES / "bad_units.py"), "--no-graph", "--no-dataflow"
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "dataflow/" not in proc.stdout

    def test_output_order_is_byte_stable(self):
        args = (
            str(FIXTURES / "bad_units.py"),
            str(FIXTURES / "bad_pool.py"),
            str(FIXTURES / "bad_ordering.py"),
            "--no-graph",
        )
        assert run_cli(*args).stdout == run_cli(*args).stdout
        lines = [
            ln for ln in run_cli(*args).stdout.splitlines() if ":" in ln
        ]
        assert lines == sorted(lines)


class TestSarifOutput:
    def test_sarif_is_valid_and_fails_on_errors(self):
        proc = run_cli(
            str(FIXTURES / "bad_units.py"), "--no-graph", "--format", "sarif"
        )
        assert proc.returncode == 1
        doc = json.loads(proc.stdout)
        assert doc["version"] == "2.1.0"
        assert doc["$schema"].endswith("sarif-2.1.0.json")
        results = doc["runs"][0]["results"]
        assert any(r["ruleId"] == "dataflow/unit-mix" for r in results)
        assert all(r["level"] in ("note", "warning", "error") for r in results)

    def test_default_repo_sarif_has_no_errors(self):
        proc = run_cli("--format", "sarif")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        doc = json.loads(proc.stdout)
        levels = {r["level"] for r in doc["runs"][0]["results"]}
        assert "error" not in levels

    def test_rules_metadata_present(self):
        proc = run_cli(
            str(FIXTURES / "bad_ordering.py"),
            "--no-graph",
            "--format",
            "sarif",
        )
        doc = json.loads(proc.stdout)
        rules = doc["runs"][0]["tool"]["driver"]["rules"]
        ids = {r["id"] for r in rules}
        emitted = {r["ruleId"] for r in doc["runs"][0]["results"]}
        assert emitted <= ids  # every result's ruleId is declared


class TestBaselineWorkflow:
    def test_write_then_check_is_clean(self, tmp_path: Path):
        baseline = tmp_path / "baseline.json"
        write = run_cli(
            str(FIXTURES / "bad_units.py"),
            "--no-graph",
            "--write-baseline",
            str(baseline),
        )
        assert write.returncode == 0, write.stdout + write.stderr
        check = run_cli(
            str(FIXTURES / "bad_units.py"),
            "--no-graph",
            "--baseline",
            str(baseline),
        )
        assert check.returncode == 0, check.stdout + check.stderr

    def test_new_violation_escapes_baseline(self, tmp_path: Path):
        baseline = tmp_path / "baseline.json"
        run_cli(
            str(FIXTURES / "bad_units.py"),
            "--no-graph",
            "--write-baseline",
            str(baseline),
        )
        proc = run_cli(
            str(FIXTURES / "bad_units.py"),
            str(FIXTURES / "bad_pool.py"),
            "--no-graph",
            "--baseline",
            str(baseline),
        )
        assert proc.returncode == 1
        assert "dataflow/pool-global-mutation" in proc.stdout
        assert "dataflow/unit-mix" not in proc.stdout  # baselined away

    def test_repo_passes_with_committed_empty_baseline(self):
        proc = run_cli("--baseline", str(REPO / "analysis-baseline.json"))
        assert proc.returncode == 0, proc.stdout + proc.stderr


class TestSuppressionWorkflow:
    def test_inline_suppression_silences_finding(self, tmp_path: Path):
        mod = tmp_path / "suppressed.py"
        mod.write_text(
            "import json\n"
            "\n"
            "\n"
            "def write(doc: dict) -> str:\n"
            "    return json.dumps(doc)  # repro: ignore[dataflow/json-sort-keys]\n"
        )
        proc = run_cli(str(mod), "--no-graph")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "json-sort-keys" not in proc.stdout

    def test_unused_suppression_is_flagged(self, tmp_path: Path):
        mod = tmp_path / "stale.py"
        mod.write_text("X = 1  # repro: ignore[dataflow/unit-mix]\n")
        proc = run_cli(str(mod), "--no-graph", "--fail-on", "warning")
        assert proc.returncode == 1
        assert "analysis/unsuppressed-ignore" in proc.stdout

    def test_lint_rules_are_suppressible_too(self, tmp_path: Path):
        mod = tmp_path / "rng.py"
        mod.write_text(
            "import random\n"
            "\n"
            "x = random.random()  # repro: ignore[lint/banned-random]\n"
        )
        proc = run_cli(str(mod), "--no-graph")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "banned-random" not in proc.stdout


class TestListRules:
    def test_catalog_covers_dataflow_and_meta_rules(self):
        proc = run_cli("--list-rules")
        assert proc.returncode == 0
        for rule_id in (
            "dataflow/unit-mix",
            "dataflow/unit-arg",
            "dataflow/pool-worker-closure",
            "dataflow/unordered-accumulation",
            "dataflow/json-sort-keys",
            "graph/bandwidth-budget",
            "analysis/unsuppressed-ignore",
        ):
            assert rule_id in proc.stdout
