"""SARIF export, inline suppressions, and the findings baseline."""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.baseline import (
    filter_baselined,
    fingerprint,
    load_baseline,
    write_baseline,
)
from repro.analysis.catalog import rule_catalog
from repro.analysis.findings import Finding, Severity
from repro.analysis.sarif import (
    SARIF_SCHEMA,
    SARIF_VERSION,
    findings_to_sarif,
    findings_to_sarif_json,
)
from repro.analysis.suppress import (
    UNSUPPRESSED_IGNORE,
    apply_suppressions,
    scan_suppressions,
    split_location,
)


def _f(rule="dataflow/unit-mix", sev=Severity.ERROR, loc="src/x.py:12", msg="m"):
    return Finding(rule=rule, severity=sev, location=loc, message=msg)


class TestSarif:
    def test_envelope_structure(self):
        doc = findings_to_sarif([_f()])
        assert doc["version"] == SARIF_VERSION == "2.1.0"
        assert doc["$schema"] == SARIF_SCHEMA
        (run,) = doc["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro.analysis"
        assert {r["id"] for r in driver["rules"]} == {"dataflow/unit-mix"}
        (result,) = run["results"]
        assert result["ruleId"] == "dataflow/unit-mix"
        assert result["level"] == "error"
        assert result["message"]["text"] == "m"

    def test_severity_level_mapping(self):
        doc = findings_to_sarif(
            [
                _f(sev=Severity.INFO, rule="a/i"),
                _f(sev=Severity.WARNING, rule="a/w"),
                _f(sev=Severity.ERROR, rule="a/e"),
            ]
        )
        levels = {
            r["ruleId"]: r["level"] for r in doc["runs"][0]["results"]
        }
        assert levels == {"a/i": "note", "a/w": "warning", "a/e": "error"}

    def test_physical_location_for_path_line(self):
        doc = findings_to_sarif([_f(loc="src/repro/hw/cost.py:236")])
        (loc,) = doc["runs"][0]["results"][0]["locations"]
        phys = loc["physicalLocation"]
        assert phys["artifactLocation"]["uri"] == "src/repro/hw/cost.py"
        assert phys["region"]["startLine"] == 236

    def test_logical_location_for_graph_findings(self):
        doc = findings_to_sarif([_f(loc="scenario 3, task BG_ANALYTICS")])
        (loc,) = doc["runs"][0]["results"][0]["locations"]
        assert "physicalLocation" not in loc
        (logical,) = loc["logicalLocations"]
        assert logical["fullyQualifiedName"] == "scenario 3, task BG_ANALYTICS"

    def test_rule_descriptions_from_catalog(self):
        catalog = rule_catalog()
        doc = findings_to_sarif(
            [_f()],
            rule_descriptions={k: v[1] for k, v in catalog.items()},
        )
        rules = doc["runs"][0]["tool"]["driver"]["rules"]
        # Every catalog rule is declared, each with its description.
        assert {r["id"] for r in rules} >= set(catalog)
        assert all(r["shortDescription"]["text"] for r in rules)

    def test_json_output_is_byte_stable(self):
        findings = [_f(), _f(rule="graph/cycle", loc="graph")]
        assert findings_to_sarif_json(findings) == findings_to_sarif_json(
            list(reversed(findings))
        )
        json.loads(findings_to_sarif_json(findings))  # must parse


class TestSuppressions:
    def test_split_location(self):
        assert split_location("src/x.py:12") == ("src/x.py", 12)
        assert split_location("graph") is None
        assert split_location("scenario 3, task T") is None

    def test_marker_suppresses_matching_finding(self, tmp_path: Path):
        mod = tmp_path / "m.py"
        mod.write_text(
            "import json\n"
            "def w(d):\n"
            "    return json.dumps(d)  # repro: ignore[dataflow/json-sort-keys]\n"
        )
        markers = scan_suppressions([mod])
        assert len(markers) == 1
        finding = _f(
            rule="dataflow/json-sort-keys", loc=f"{mod}:3", msg="no sort_keys"
        )
        assert apply_suppressions([finding], markers) == []

    def test_tail_segment_matches(self, tmp_path: Path):
        mod = tmp_path / "m.py"
        mod.write_text("x = 1  # repro: ignore[json-sort-keys]\n")
        markers = scan_suppressions([mod])
        finding = _f(rule="dataflow/json-sort-keys", loc=f"{mod}:1")
        assert apply_suppressions([finding], markers) == []

    def test_unused_marker_is_reported(self, tmp_path: Path):
        mod = tmp_path / "m.py"
        mod.write_text("x = 1  # repro: ignore[dataflow/unit-mix]\n")
        markers = scan_suppressions([mod])
        out = apply_suppressions([], markers)
        assert [f.rule for f in out] == [UNSUPPRESSED_IGNORE]
        assert out[0].severity == Severity.WARNING

    def test_docstring_mentions_are_not_markers(self, tmp_path: Path):
        mod = tmp_path / "m.py"
        mod.write_text(
            '"""Docs: use `# repro: ignore[dataflow/unit-mix]` inline."""\n'
            "x = 1\n"
        )
        assert scan_suppressions([mod]) == []

    def test_comma_separated_rule_list(self, tmp_path: Path):
        mod = tmp_path / "m.py"
        mod.write_text(
            "x = 1  # repro: ignore[dataflow/unit-mix, dataflow/unit-assign]\n"
        )
        (marker,) = scan_suppressions([mod])
        a = _f(rule="dataflow/unit-mix", loc=f"{mod}:1")
        b = _f(rule="dataflow/unit-assign", loc=f"{mod}:1")
        assert apply_suppressions([a, b], [marker]) == []


class TestBaseline:
    def test_round_trip(self, tmp_path: Path):
        path = tmp_path / "baseline.json"
        findings = [_f(), _f(rule="graph/cycle", loc="graph", msg="cyc")]
        write_baseline(path, findings)
        base = load_baseline(path)
        assert base == {fingerprint(f) for f in findings}
        assert filter_baselined(findings, base) == []

    def test_fingerprint_ignores_line_numbers(self):
        a = _f(loc="src/x.py:12")
        b = _f(loc="src/x.py:99")
        assert fingerprint(a) == fingerprint(b)

    def test_new_findings_survive_baseline(self, tmp_path: Path):
        path = tmp_path / "baseline.json"
        write_baseline(path, [_f()])
        base = load_baseline(path)
        fresh = _f(rule="dataflow/unit-arg", msg="new")
        assert filter_baselined([_f(), fresh], base) == [fresh]

    def test_baseline_file_is_byte_stable(self, tmp_path: Path):
        p1, p2 = tmp_path / "a.json", tmp_path / "b.json"
        findings = [_f(), _f(rule="graph/cycle", loc="graph")]
        write_baseline(p1, findings)
        write_baseline(p2, list(reversed(findings)))
        assert p1.read_bytes() == p2.read_bytes()

    def test_committed_baseline_is_empty(self):
        repo = Path(__file__).resolve().parents[2]
        doc = json.loads((repo / "analysis-baseline.json").read_text())
        assert doc == {"findings": [], "version": 1}


class TestCatalog:
    def test_every_finding_rule_is_documented(self):
        catalog = rule_catalog()
        # All rules the engines can emit must carry a description.
        for rule_id, (severity, description) in catalog.items():
            assert "/" in rule_id
            assert isinstance(severity, Severity)
            assert description
        for expected in (
            "dataflow/unit-mix",
            "dataflow/pool-global-mutation",
            "dataflow/json-sort-keys",
            "graph/cycle",
            UNSUPPRESSED_IGNORE,
        ):
            assert expected in catalog

    def test_docs_document_every_rule(self):
        repo = Path(__file__).resolve().parents[2]
        text = (repo / "docs" / "analysis.md").read_text()
        missing = [r for r in rule_catalog() if f"`{r}`" not in text]
        assert missing == []
