"""Tests for the AST lint framework and the project rules."""

from __future__ import annotations

import ast
from pathlib import Path

from repro.analysis.astlint import LintContext, LintRule, lint_paths, lint_source
from repro.analysis.findings import Severity
from repro.analysis.rules import WallClockRule, default_rules

FIXTURES = Path(__file__).parent / "fixtures"


def lint(source: str, path: str = "src/repro/somewhere/mod.py", rules=None):
    return lint_source(source, path, rules if rules is not None else default_rules())


def rules_of(findings) -> set[str]:
    return {f.rule for f in findings}


class TestFramework:
    def test_alias_resolution(self):
        src = "import numpy as np\nfrom numpy import random as nr\n"
        ctx = LintContext("m.py", ast.parse(src))
        np_random = ast.parse("np.random.default_rng", mode="eval").body
        assert ctx.dotted_name(np_random) == "numpy.random.default_rng"
        nr_call = ast.parse("nr.rand", mode="eval").body
        assert ctx.dotted_name(nr_call) == "numpy.random.rand"

    def test_unresolvable_expression(self):
        ctx = LintContext("m.py", ast.parse(""))
        call_result = ast.parse("f().attr", mode="eval").body
        assert ctx.dotted_name(call_result) is None

    def test_syntax_error_becomes_finding(self):
        findings = lint("def broken(:\n")
        assert rules_of(findings) == {"lint/syntax-error"}
        assert findings[0].severity is Severity.ERROR

    def test_rule_path_filter(self):
        class Everywhere(LintRule):
            rule_id = "lint/test-everywhere"

            def on_module(self, ctx, node):
                ctx.report(self.rule_id, Severity.INFO, node, "saw module")

        class Nowhere(Everywhere):
            rule_id = "lint/test-nowhere"

            def applies_to(self, path: str) -> bool:
                return False

        findings = lint("x = 1\n", rules=[Everywhere(), Nowhere()])
        assert rules_of(findings) == {"lint/test-everywhere"}


class TestBannedRandom:
    def test_numpy_random_call_flagged(self):
        findings = lint("import numpy as np\nnp.random.rand(3)\n")
        assert rules_of(findings) == {"lint/banned-random"}

    def test_from_import_alias_flagged(self):
        src = "from numpy.random import default_rng\ndefault_rng(0)\n"
        assert rules_of(lint(src)) == {"lint/banned-random"}

    def test_stdlib_random_flagged(self):
        findings = lint("import random\nrandom.choice([1, 2])\n")
        assert rules_of(findings) == {"lint/banned-random"}

    def test_util_rng_is_exempt(self):
        src = "import numpy as np\nnp.random.default_rng(0)\n"
        assert lint(src, path="src/repro/util/rng.py") == []

    def test_generator_annotation_is_fine(self):
        src = (
            "import numpy as np\n"
            "def f(rng: np.random.Generator) -> float:\n"
            "    return float(rng.uniform())\n"
        )
        assert lint(src) == []


class TestWallClock:
    SRC = "import time\ntime.perf_counter()\n"

    def test_flagged_in_core(self):
        # perf_counter in core/ also trips lint/direct-time-call.
        findings = lint(self.SRC, path="src/repro/core/model.py")
        assert rules_of(findings) == {"lint/wall-clock", "lint/direct-time-call"}

    def test_from_import_resolved(self):
        src = "from time import perf_counter\nperf_counter()\n"
        findings = lint(src, path="src/repro/core/model.py")
        assert rules_of(findings) == {"lint/wall-clock", "lint/direct-time-call"}

    def test_allowed_outside_core(self):
        findings = lint(
            self.SRC,
            path="src/repro/experiments/bench.py",
            rules=[WallClockRule()],
        )
        assert findings == []

    def test_directories_none_applies_everywhere(self):
        findings = lint(
            self.SRC,
            path="anywhere.py",
            rules=[WallClockRule(directories=None)],
        )
        assert rules_of(findings) == {"lint/wall-clock"}


class TestUnitMix:
    def test_mixed_expression_flagged(self):
        findings = lint("bw = kb * KIB * 30.0 / MB\n")
        assert rules_of(findings) == {"lint/unit-mix"}
        assert "['MB']" in findings[0].message and "['KIB']" in findings[0].message

    def test_attribute_form_flagged(self):
        src = "from repro.util import units\nx = q * units.GB + r * units.MIB\n"
        assert rules_of(lint(src)) == {"lint/unit-mix"}

    def test_outermost_expression_reported_once(self):
        findings = lint("y = (a * KB + b * KB) / (c * KIB + d * GIB)\n")
        assert len(findings) == 1

    def test_separate_expressions_are_fine(self):
        src = "a = n * KB\nb = m * KIB\n"
        assert lint(src) == []

    def test_units_module_is_exempt(self):
        src = "x = 5 * KIB / MB\n"
        assert lint(src, path="src/repro/util/units.py") == []


class TestEwmaAlpha:
    def test_keyword_literal_out_of_range(self):
        findings = lint("f = EwmaFilter(alpha=1.5)\n")
        assert rules_of(findings) == {"lint/ewma-alpha"}

    def test_zero_alpha_flagged(self):
        findings = lint("from repro.util.ewma import ewma\ny = ewma(x, 0.0)\n")
        assert rules_of(findings) == {"lint/ewma-alpha"}

    def test_in_range_literal_ok(self):
        assert lint("f = EwmaFilter(alpha=0.3)\newma(x, 1.0)\n") == []

    def test_non_literal_alpha_ignored(self):
        assert lint("f = EwmaFilter(alpha=cfg.alpha)\n") == []

    def test_unrelated_alpha_keyword_ignored(self):
        assert lint("plot(x, y, alpha=2.0)\n") == []


class TestFrozenSetattr:
    def test_flagged_outside_post_init(self):
        src = (
            "class M:\n"
            "    def update(self, v):\n"
            "        object.__setattr__(self, 'x', v)\n"
        )
        findings = lint(src)
        assert rules_of(findings) == {"lint/frozen-setattr"}
        assert "update" in findings[0].message

    def test_module_level_flagged(self):
        findings = lint("object.__setattr__(obj, 'x', 1)\n")
        assert rules_of(findings) == {"lint/frozen-setattr"}

    def test_post_init_is_legitimate(self):
        src = (
            "class M:\n"
            "    def __post_init__(self):\n"
            "        object.__setattr__(self, 'x', 1)\n"
        )
        assert lint(src) == []


class TestExecutor:
    def test_process_pool_flagged(self):
        src = (
            "from concurrent.futures import ProcessPoolExecutor\n"
            "pool = ProcessPoolExecutor(max_workers=4)\n"
        )
        findings = lint(src, path="src/repro/profiling/profiler.py")
        assert rules_of(findings) == {"lint/executor-outside-parallel"}
        assert "map_sequences" in findings[0].message

    def test_multiprocessing_pool_flagged(self):
        src = "import multiprocessing\np = multiprocessing.Pool(4)\n"
        findings = lint(src, path="src/repro/experiments/common.py")
        assert rules_of(findings) == {"lint/executor-outside-parallel"}

    def test_aliased_import_flagged(self):
        src = (
            "import concurrent.futures as cf\n"
            "pool = cf.ThreadPoolExecutor()\n"
        )
        findings = lint(src)
        assert rules_of(findings) == {"lint/executor-outside-parallel"}

    def test_parallel_pool_module_exempt(self):
        src = (
            "from concurrent.futures import ProcessPoolExecutor\n"
            "pool = ProcessPoolExecutor(max_workers=4)\n"
        )
        assert lint(src, path="src/repro/parallel/pool.py") == []

    def test_map_sequences_use_is_clean(self):
        src = (
            "from repro.parallel import map_sequences\n"
            "out = map_sequences(str, [1, 2], jobs=4)\n"
        )
        assert lint(src) == []


class TestDirectTimeCall:
    def test_monotonic_flagged(self):
        src = "import time\nt = time.monotonic()\n"
        findings = lint(src)
        assert "lint/direct-time-call" in rules_of(findings)

    def test_perf_counter_ns_flagged(self):
        src = "import time\nt = time.perf_counter_ns()\n"
        findings = lint(src)
        assert "lint/direct-time-call" in rules_of(findings)

    def test_obs_package_exempt(self):
        src = "import time\nt = time.perf_counter()\n"
        assert lint(src, path="src/repro/obs/clock.py") == []

    def test_bench_package_exempt(self):
        src = "import time\nt = time.perf_counter()\n"
        assert lint(src, path="src/repro/bench/harness.py") == []

    def test_monotonic_s_use_is_clean(self):
        src = "from repro.obs.clock import monotonic_s\nt = monotonic_s()\n"
        assert lint(src) == []

    def test_wall_clock_time_not_double_flagged(self):
        # time.time() is the wall-clock rule's business (in core/), not
        # this rule's: outside core/ it is allowed by both.
        src = "import time\nt = time.time()\n"
        assert lint(src) == []


class TestFrameLoop:
    def test_for_loop_flagged(self):
        src = (
            "def drive(sim, frames, mapping):\n"
            "    out = []\n"
            "    for k, reports in enumerate(frames):\n"
            "        out.append(sim.simulate_frame(reports, mapping))\n"
            "    return out\n"
        )
        assert "lint/frame-loop-outside-engine" in rules_of(lint(src))

    def test_comprehension_flagged(self):
        src = (
            "def drive(sim, frames, m):\n"
            "    return [sim.simulate_frame(r, m) for r in frames]\n"
        )
        assert "lint/frame-loop-outside-engine" in rules_of(lint(src))

    def test_while_loop_flagged(self):
        src = (
            "def drive(sim, queue, m):\n"
            "    while queue:\n"
            "        sim.simulate_frame(queue.pop(), m)\n"
        )
        assert "lint/frame-loop-outside-engine" in rules_of(lint(src))

    def test_single_call_outside_loop_is_clean(self):
        src = (
            "def one(sim, reports, mapping):\n"
            "    return sim.simulate_frame(reports, mapping)\n"
        )
        assert lint(src) == []

    def test_engine_module_exempt(self):
        src = (
            "def run(sim, frames, m):\n"
            "    return [sim.simulate_frame(r, m) for r in frames]\n"
        )
        assert lint(src, path="src/repro/runtime/engine.py") == []

    def test_bench_and_profiling_exempt(self):
        src = (
            "def run(sim, frames, m):\n"
            "    return [sim.simulate_frame(r, m) for r in frames]\n"
        )
        assert lint(src, path="src/repro/bench/harness.py") == []
        assert lint(src, path="src/repro/profiling/profiler.py") == []

    def test_other_loops_without_the_call_are_clean(self):
        src = "total = 0\nfor x in range(4):\n    total += x\n"
        assert lint(src) == []

    def test_nested_loop_reports_once_per_call(self):
        src = (
            "def drive(sim, grid, m):\n"
            "    for row in grid:\n"
            "        for r in row:\n"
            "            sim.simulate_frame(r, m)\n"
        )
        findings = [
            f
            for f in lint(src)
            if f.rule == "lint/frame-loop-outside-engine"
        ]
        assert len(findings) == 1


class TestAppHardcode:
    def test_module_import_flagged(self):
        findings = lint("import repro.graph.stentboost\n")
        assert rules_of(findings) == {"lint/app-hardcode"}

    def test_symbol_import_flagged(self):
        src = "from repro.graph import build_stentboost_graph\n"
        assert rules_of(lint(src)) == {"lint/app-hardcode"}

    def test_from_module_import_flagged(self):
        src = "from repro.graph.stentboost import TABLE1_ROWS\n"
        assert rules_of(lint(src)) == {"lint/app-hardcode"}

    def test_graph_package_exempt(self):
        src = "from repro.graph.stentboost import build_stentboost_graph\n"
        assert lint(src, path="src/repro/graph/__init__.py") == []

    def test_workloads_package_exempt(self):
        src = "from repro.graph.stentboost import build_stentboost_graph\n"
        assert lint(src, path="src/repro/workloads/stentboost.py") == []

    def test_registry_resolution_is_fine(self):
        src = (
            "from repro.workloads import get_workload\n"
            "graph = get_workload('stentboost').build_graph()\n"
        )
        assert lint(src) == []


class TestFixtureFiles:
    def test_bad_rng_fixture(self):
        findings = lint_paths([FIXTURES / "bad_rng.py"], default_rules())
        assert rules_of(findings) == {"lint/banned-random"}

    def test_core_clock_fixture(self):
        findings = lint_paths([FIXTURES / "core" / "clocky.py"], default_rules())
        # perf_counter in core/ trips both the purity rule and the
        # injectable-clock rule.
        assert rules_of(findings) == {"lint/wall-clock", "lint/direct-time-call"}

    def test_timed_fixture(self):
        findings = lint_paths([FIXTURES / "timed.py"], default_rules())
        assert rules_of(findings) == {"lint/direct-time-call"}
        assert len(findings) == 2

    def test_frame_loop_fixture(self):
        findings = lint_paths([FIXTURES / "frame_loop.py"], default_rules())
        assert rules_of(findings) == {"lint/frame-loop-outside-engine"}
        assert len(findings) == 1

    def test_app_hardcoded_fixture(self):
        findings = lint_paths([FIXTURES / "app_hardcoded.py"], default_rules())
        assert rules_of(findings) == {"lint/app-hardcode"}
        assert len(findings) == 1

    def test_fixture_directory_walk(self):
        findings = lint_paths([FIXTURES], default_rules())
        assert {
            "lint/banned-random",
            "lint/wall-clock",
            "lint/direct-time-call",
            "lint/frame-loop-outside-engine",
            "lint/app-hardcode",
        } <= rules_of(findings)


class TestRepoIsClean:
    def test_repro_package_passes_its_own_lint(self):
        """Tier-2 self-check: the lint pass is clean over src/repro."""
        import repro

        pkg = Path(repro.__file__).resolve().parent
        findings = lint_paths([pkg], default_rules())
        assert findings == []
