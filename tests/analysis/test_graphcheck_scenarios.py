"""Graph checks against the composite (multi-app / co-schedule) graphs.

Satellite coverage for :mod:`repro.analysis.graphcheck`: the checks
must accept the paper's Section-7 composite workloads on the reference
platform and must object when the aggregate load cannot fit.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.analysis.findings import Severity, sort_key
from repro.analysis.graphcheck import (
    PlatformLike,
    check_flowgraph,
    check_scenarios,
    check_topology,
    scenario_ids_for,
)
from repro.graph.composite import (
    BACKGROUND_TASK,
    CompositeGraph,
    app_prefix,
    build_coschedule_graph,
    build_multiapp_graph,
    resolve_apps,
)
from repro.graph.flowgraph import Edge, FlowGraph
from repro.graph.stentboost import build_stentboost_graph
from repro.hw.spec import blackford
from repro.imaging.pipeline import SwitchState
from repro.workloads import all_workloads, get_workload


def _warnings_or_worse(findings):
    return [f for f in findings if f.severity >= Severity.WARNING]


class TestMultiApp:
    def test_two_apps_pass_on_blackford(self):
        findings = check_flowgraph(build_multiapp_graph(2), blackford())
        assert _warnings_or_worse(findings) == [], [
            f.render() for f in findings
        ]

    def test_three_apps_pass_on_blackford(self):
        findings = check_flowgraph(build_multiapp_graph(3), blackford())
        assert _warnings_or_worse(findings) == []

    def test_task_names_are_prefixed_per_app(self):
        graph = build_multiapp_graph(2)
        assert all(
            name.startswith((app_prefix(0), app_prefix(1)))
            for name in graph.tasks
        )
        # Both instances contribute the same task count.
        a0 = [n for n in graph.tasks if n.startswith(app_prefix(0))]
        a1 = [n for n in graph.tasks if n.startswith(app_prefix(1))]
        assert len(a0) == len(a1) > 0

    def test_aggregate_bandwidth_busts_a_weak_platform(self):
        # Shrink the DRAM stream budget until two concurrent apps
        # cannot fit; the bandwidth check has to say so.
        weak = dataclasses.replace(
            blackford(), dram_stream_bw=1e6, l2_bus_bw=1e6
        )
        findings = check_flowgraph(build_multiapp_graph(2), weak)
        rules = {f.rule for f in _warnings_or_worse(findings)}
        assert "graph/bandwidth-budget" in rules

    def test_rejects_zero_apps(self):
        try:
            build_multiapp_graph(0)
        except ValueError:
            pass
        else:
            raise AssertionError("n_apps=0 must be rejected")


class TestCoschedule:
    def test_coschedule_passes_on_blackford(self):
        findings = check_flowgraph(build_coschedule_graph(), blackford())
        assert _warnings_or_worse(findings) == []

    def test_background_task_active_in_every_scenario(self):
        graph = build_coschedule_graph()
        from repro.imaging.pipeline import SwitchState

        for sid in range(8):
            order = graph.execution_order(SwitchState.from_scenario_id(sid))
            assert BACKGROUND_TASK in order

    def test_starved_background_task_is_reported(self):
        # Rebuild the co-schedule graph but drop the INPUT feed of the
        # background task: it is active yet never fed.
        graph = build_coschedule_graph()
        edges = [e for e in graph.edges if e.dst != BACKGROUND_TASK]
        starved = FlowGraph(dict(graph.tasks), edges, graph.active_tasks)
        findings = check_scenarios(starved)
        starved_rules = {
            f.rule for f in findings if BACKGROUND_TASK in f.location
        }
        assert "graph/starved-task" in starved_rules

    def test_dangling_edge_is_reported(self):
        graph = build_coschedule_graph()
        edges = list(graph.edges) + [Edge("NOT_A_TASK", BACKGROUND_TASK, 1.0)]
        findings = check_topology(graph.tasks, edges)
        assert any(f.rule == "graph/dangling" for f in findings)


class TestEveryWorkload:
    """Satellite coverage: the checks hold per registered workload,
    with the scenario-id range derived from its switch count."""

    @pytest.mark.parametrize(
        "name", [w.name for w in all_workloads()]
    )
    def test_workload_passes_on_blackford(self, name):
        workload = get_workload(name)
        findings = check_flowgraph(
            workload.build_graph(),
            blackford(),
            scenario_ids=scenario_ids_for(workload.switch_names),
        )
        assert _warnings_or_worse(findings) == [], [
            f.render() for f in findings
        ]

    def test_scenario_ids_follow_switch_count(self):
        assert scenario_ids_for(("a",)) == (0, 1)
        assert scenario_ids_for(("a", "b", "c")) == tuple(range(8))

    def test_platform_satisfies_the_protocol(self):
        # The budget checks are typed against PlatformLike rather than
        # getattr duck-typing; the reference spec must satisfy it.
        assert isinstance(blackford(), PlatformLike)


class TestHeterogeneousComposite:
    def test_hetero_pair_passes_on_blackford(self):
        graph = build_multiapp_graph(["stentboost", "ultrasound"])
        findings = check_flowgraph(graph, blackford())
        assert _warnings_or_worse(findings) == []
        assert graph.app_names == ("stentboost", "ultrasound")

    def test_joint_accessors_match_per_component(self):
        graph = build_multiapp_graph(["stentboost", "ultrasound"])
        states = [
            SwitchState.from_scenario_id(5),
            SwitchState.from_scenario_id(2),
        ]
        joint = graph.active_tasks_joint(states)
        expected = [
            app_prefix(0) + n
            for n in graph.components[0].active_tasks(states[0])
        ] + [
            app_prefix(1) + n
            for n in graph.components[1].active_tasks(states[1])
        ]
        assert joint == expected
        # With the same state broadcast to every app, the joint
        # bandwidth equals the plain FlowGraph aggregate.
        s = SwitchState.from_scenario_id(5)
        assert graph.total_bandwidth_mbps_joint([s, s]) == pytest.approx(
            graph.total_bandwidth_mbps(s)
        )

    def test_joint_accessor_arity_checked(self):
        graph = build_multiapp_graph(["stentboost", "ultrasound"])
        with pytest.raises(ValueError):
            graph.active_tasks_joint([SwitchState.from_scenario_id(0)])

    def test_resolve_apps_accepts_every_spelling(self):
        by_count = resolve_apps(2)
        assert [n for n, _ in by_count] == ["stentboost", "stentboost"]
        by_name = resolve_apps(["ultrasound"])
        assert by_name[0][0] == "ultrasound"
        by_factory = resolve_apps([build_stentboost_graph])
        assert isinstance(by_factory[0][1], FlowGraph)
        prebuilt = build_stentboost_graph()
        by_graph = resolve_apps([prebuilt])
        assert by_graph[0][1] is prebuilt

    def test_resolve_apps_rejects_junk(self):
        with pytest.raises(ValueError):
            resolve_apps([])
        with pytest.raises(KeyError):
            resolve_apps(["no-such-workload"])
        with pytest.raises(TypeError):
            resolve_apps([42])

    def test_composite_type_and_prefixes(self):
        graph = build_multiapp_graph(
            ["stentboost", "ultrasound", "robotvision"]
        )
        assert isinstance(graph, CompositeGraph)
        assert graph.n_apps == 3
        assert graph.prefixes == ("A0__", "A1__", "A2__")

    def test_coschedule_accepts_registry_names(self):
        graph = build_coschedule_graph("ultrasound")
        assert BACKGROUND_TASK in graph.tasks
        findings = check_flowgraph(graph, blackford())
        assert _warnings_or_worse(findings) == []


class TestOrderingStability:
    def test_findings_sort_is_deterministic(self):
        weak = dataclasses.replace(
            blackford(), dram_stream_bw=1e6, l2_bus_bw=1e6
        )
        a = sorted(check_flowgraph(build_multiapp_graph(2), weak), key=sort_key)
        b = sorted(
            reversed(check_flowgraph(build_multiapp_graph(2), weak)),
            key=sort_key,
        )
        assert [f.render() for f in a] == [f.render() for f in b]
