"""Graph checks against the composite (multi-app / co-schedule) graphs.

Satellite coverage for :mod:`repro.analysis.graphcheck`: the checks
must accept the paper's Section-7 composite workloads on the reference
platform and must object when the aggregate load cannot fit.
"""

from __future__ import annotations

import dataclasses

from repro.analysis.findings import Severity, sort_key
from repro.analysis.graphcheck import (
    check_flowgraph,
    check_scenarios,
    check_topology,
)
from repro.graph.composite import (
    BACKGROUND_TASK,
    app_prefix,
    build_coschedule_graph,
    build_multiapp_graph,
)
from repro.graph.flowgraph import Edge, FlowGraph
from repro.hw.spec import blackford


def _warnings_or_worse(findings):
    return [f for f in findings if f.severity >= Severity.WARNING]


class TestMultiApp:
    def test_two_apps_pass_on_blackford(self):
        findings = check_flowgraph(build_multiapp_graph(2), blackford())
        assert _warnings_or_worse(findings) == [], [
            f.render() for f in findings
        ]

    def test_three_apps_pass_on_blackford(self):
        findings = check_flowgraph(build_multiapp_graph(3), blackford())
        assert _warnings_or_worse(findings) == []

    def test_task_names_are_prefixed_per_app(self):
        graph = build_multiapp_graph(2)
        assert all(
            name.startswith((app_prefix(0), app_prefix(1)))
            for name in graph.tasks
        )
        # Both instances contribute the same task count.
        a0 = [n for n in graph.tasks if n.startswith(app_prefix(0))]
        a1 = [n for n in graph.tasks if n.startswith(app_prefix(1))]
        assert len(a0) == len(a1) > 0

    def test_aggregate_bandwidth_busts_a_weak_platform(self):
        # Shrink the DRAM stream budget until two concurrent apps
        # cannot fit; the bandwidth check has to say so.
        weak = dataclasses.replace(
            blackford(), dram_stream_bw=1e6, l2_bus_bw=1e6
        )
        findings = check_flowgraph(build_multiapp_graph(2), weak)
        rules = {f.rule for f in _warnings_or_worse(findings)}
        assert "graph/bandwidth-budget" in rules

    def test_rejects_zero_apps(self):
        try:
            build_multiapp_graph(0)
        except ValueError:
            pass
        else:
            raise AssertionError("n_apps=0 must be rejected")


class TestCoschedule:
    def test_coschedule_passes_on_blackford(self):
        findings = check_flowgraph(build_coschedule_graph(), blackford())
        assert _warnings_or_worse(findings) == []

    def test_background_task_active_in_every_scenario(self):
        graph = build_coschedule_graph()
        from repro.imaging.pipeline import SwitchState

        for sid in range(8):
            order = graph.execution_order(SwitchState.from_scenario_id(sid))
            assert BACKGROUND_TASK in order

    def test_starved_background_task_is_reported(self):
        # Rebuild the co-schedule graph but drop the INPUT feed of the
        # background task: it is active yet never fed.
        graph = build_coschedule_graph()
        edges = [e for e in graph.edges if e.dst != BACKGROUND_TASK]
        starved = FlowGraph(dict(graph.tasks), edges, graph.active_tasks)
        findings = check_scenarios(starved)
        starved_rules = {
            f.rule for f in findings if BACKGROUND_TASK in f.location
        }
        assert "graph/starved-task" in starved_rules

    def test_dangling_edge_is_reported(self):
        graph = build_coschedule_graph()
        edges = list(graph.edges) + [Edge("NOT_A_TASK", BACKGROUND_TASK, 1.0)]
        findings = check_topology(graph.tasks, edges)
        assert any(f.rule == "graph/dangling" for f in findings)


class TestOrderingStability:
    def test_findings_sort_is_deterministic(self):
        weak = dataclasses.replace(
            blackford(), dram_stream_bw=1e6, l2_bus_bw=1e6
        )
        a = sorted(check_flowgraph(build_multiapp_graph(2), weak), key=sort_key)
        b = sorted(
            reversed(check_flowgraph(build_multiapp_graph(2), weak)),
            key=sort_key,
        )
        assert [f.render() for f in a] == [f.render() for f in b]
