"""Unit-inference pass: dimension algebra + the seeded bad_units fixture."""

from __future__ import annotations

from pathlib import Path

from repro.analysis.dataflow import build_symbol_table, check_units
from repro.analysis.dataflow.dims import (
    DIMENSIONLESS,
    dim_div,
    dim_mul,
    dim_str,
    dims_conflict,
    is_canonical,
    parse_dim,
)
from repro.analysis.findings import Severity

FIXTURES = Path(__file__).resolve().parent / "fixtures"
BAD_UNITS = FIXTURES / "bad_units.py"


def _findings(path: Path):
    return check_units(build_symbol_table([path]))


class TestDimAlgebra:
    def test_parse_roundtrip(self):
        assert dim_str(parse_dim("MB/s")) == "MB/s"
        assert dim_str(parse_dim("1/s")) == "1/s"
        assert dim_str(parse_dim("1")) == "1"
        assert parse_dim("1") == DIMENSIONLESS

    def test_conversion_constant_cancels(self):
        # KiB count times the KIB constant (B/KiB) is bytes.
        kib = parse_dim("KiB")
        factor = parse_dim("B/KiB")
        assert dim_mul(kib, factor) == parse_dim("B")

    def test_seconds_times_ms_per_s_is_ms(self):
        assert dim_mul(parse_dim("s"), parse_dim("ms/s")) == parse_dim("ms")

    def test_bytes_over_bandwidth_is_seconds(self):
        assert dim_div(parse_dim("B"), parse_dim("B/s")) == parse_dim("s")

    def test_residual_compounds_never_conflict(self):
        # 72 * GB where 72 is a bare count leaves B/GB -- not canonical,
        # so it cannot conflict with anything.
        residual = parse_dim("B/GB")
        assert not is_canonical(residual)
        assert not dims_conflict(residual, parse_dim("B/s"))

    def test_canonical_dims_conflict(self):
        assert dims_conflict(parse_dim("ms"), parse_dim("KiB"))
        assert dims_conflict(parse_dim("ms"), parse_dim("s"))
        assert not dims_conflict(parse_dim("ms"), parse_dim("ms"))
        assert not dims_conflict(parse_dim("ms"), DIMENSIONLESS)
        assert not dims_conflict(parse_dim("ms"), None)


class TestSeededFixture:
    def test_catches_every_seeded_violation(self):
        findings = _findings(BAD_UNITS)
        got = {(f.rule, int(f.location.rsplit(":", 1)[1])) for f in findings}
        assert got == {
            ("dataflow/unit-mix", 15),       # ms + KiB addition
            ("dataflow/unit-return", 19),    # returns ms, annotated KiB
            ("dataflow/unit-assign", 23),    # KiB into *_ms name
            ("dataflow/unitless-return", 27),
            ("dataflow/unit-arg", 32),       # ms into KiB parameter
            ("dataflow/unitless-return", 35),
            ("dataflow/unit-mix", 40),       # ms vs KiB comparison
            ("dataflow/unitless-return", 43),
            ("dataflow/unit-mix", 45),       # KiB += into ms accumulator
        }

    def test_severities(self):
        findings = _findings(BAD_UNITS)
        by_rule = {f.rule: f.severity for f in findings}
        assert by_rule["dataflow/unit-mix"] == Severity.ERROR
        assert by_rule["dataflow/unit-arg"] == Severity.ERROR
        assert by_rule["dataflow/unit-return"] == Severity.ERROR
        assert by_rule["dataflow/unit-assign"] == Severity.ERROR
        assert by_rule["dataflow/unitless-return"] == Severity.INFO


class TestInterprocedural:
    def _check_source(self, tmp_path: Path, source: str):
        f = tmp_path / "mod.py"
        f.write_text(source)
        return check_units(build_symbol_table([f]))

    def test_return_dim_propagates_through_calls(self, tmp_path):
        findings = self._check_source(
            tmp_path,
            "from repro.util.quantity import Milliseconds, KBytes\n"
            "def cost() -> Milliseconds:\n"
            "    return 2.5\n"
            "def use(buffer_kb: KBytes) -> float:\n"
            "    return cost() + buffer_kb\n",
        )
        assert [f.rule for f in findings] == ["dataflow/unit-mix"]

    def test_inferred_return_reaches_callers(self, tmp_path):
        # No annotation on helper(): its ms return is *inferred* from
        # the annotated parameter, then flagged at the call site.
        findings = self._check_source(
            tmp_path,
            "from repro.util.quantity import Milliseconds, KBytes\n"
            "def helper(latency_ms: Milliseconds):\n"
            "    return latency_ms\n"
            "def use(buffer_kb: KBytes) -> None:\n"
            "    bad_kb = helper(1.0)\n",
        )
        assert ("dataflow/unit-assign" in {f.rule for f in findings})

    def test_conversion_helpers_are_sanctioned(self, tmp_path):
        findings = self._check_source(
            tmp_path,
            "from repro.util.quantity import Bytes, KBytes\n"
            "from repro.util.units import table_kb_to_bytes\n"
            "def total(payload_kb: KBytes, header_bytes: float) -> Bytes:\n"
            "    return table_kb_to_bytes(payload_kb) + header_bytes\n",
        )
        assert findings == []

    def test_ms_per_s_constant_converts(self, tmp_path):
        findings = self._check_source(
            tmp_path,
            "from repro.util.quantity import BytesPerSecond\n"
            "from repro.util.units import MS_PER_S\n"
            "def stall(n_bytes: float, link_bw: BytesPerSecond) -> None:\n"
            "    stall_ms = n_bytes / link_bw * MS_PER_S\n"
            "    del stall_ms\n",
        )
        assert findings == []

    def test_bare_1e3_conversion_is_flagged(self, tmp_path):
        findings = self._check_source(
            tmp_path,
            "from repro.util.quantity import BytesPerSecond, Bytes\n"
            "def stall(nb_bytes: Bytes, link_bw: BytesPerSecond) -> None:\n"
            "    stall_ms = nb_bytes / link_bw * 1e3\n"
            "    del stall_ms\n",
        )
        assert [f.rule for f in findings] == ["dataflow/unit-assign"]

    def test_real_repo_is_unit_clean(self):
        src = Path(__file__).resolve().parents[2] / "src" / "repro"
        findings = check_units(build_symbol_table([src]))
        assert findings == [], [f.render() for f in findings]
