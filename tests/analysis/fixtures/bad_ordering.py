"""Fixture: ordering hazards feeding committed artifacts."""

from __future__ import annotations

import json
from pathlib import Path


def total(values: set[float]) -> float:
    acc = 0.0
    for v in values:
        acc += v
    return acc


def total_sum() -> float:
    weights = {0.1, 0.2, 0.3}
    return sum(weights)


def listing(root: Path) -> list[Path]:
    return [p for p in root.glob("*.json")]


def listing_ok(root: Path) -> list[Path]:
    return sorted(root.glob("*.json"))


def write(path: Path, doc: dict) -> None:
    path.write_text(json.dumps(doc))


def write_ok(path: Path, doc: dict) -> None:
    path.write_text(json.dumps(doc, sort_keys=True))
