"""Fixture: StentBoost hard-wired into an application layer (flagged)."""

from repro.graph.stentboost import build_stentboost_graph


def make_graph():
    return build_stentboost_graph()
