"""Fixture: shared-state hazards crossing the map_sequences pool seam.

The determinism audit must catch: a worker mutating module globals
(directly and through a helper), a worker reading mutable shared
state, and lambda / nested-function workers.
"""

from __future__ import annotations

from repro.parallel import map_sequences

_cache: dict[str, int] = {}
results: list[int] = []


def _helper(item: int) -> None:
    results.append(item)


def worker(item: int) -> int:
    _cache[str(item)] = item
    _helper(item)
    return len(_cache)


def run(items: list[int]) -> list[int]:
    return map_sequences(worker, items)


def run_lambda(items: list[int]) -> list[int]:
    return map_sequences(lambda x: x + 1, items)


def run_nested(items: list[int]) -> list[int]:
    def local(x: int) -> int:
        return x

    return map_sequences(local, items)
