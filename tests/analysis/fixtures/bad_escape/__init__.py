"""Seeded fixtures for the pool-seam argument-escape audit."""
