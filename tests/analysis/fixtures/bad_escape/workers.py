"""Pool workers whose arguments or effects escape the seam.

``scale_inplace`` mutates its pickled argument directly;
``mutate_via_helper`` does it through a callee (the interprocedural
summary must fold ``_bump``'s parameter mutation back into the
worker); ``impure_worker`` prints.  ``clean_worker`` is the control:
a pure function of its argument.
"""

from repro.parallel import map_sequences


def scale_inplace(frames):
    frames["scale"] = 2.0
    return frames


def _bump(d):
    d["n"] = d.get("n", 0) + 1


def mutate_via_helper(d):
    _bump(d)
    return d


def impure_worker(item):
    print(item)
    return item


def clean_worker(item):
    return {"value": item, "ok": True}


def run_inplace(batch):
    return map_sequences(scale_inplace, batch)


def run_helper(batch):
    return map_sequences(mutate_via_helper, batch)


def run_impure(batch):
    return map_sequences(impure_worker, batch)


def run_clean(batch):
    return map_sequences(clean_worker, batch)
