"""Lint fixture: wall-clock read inside a ``core`` directory (banned)."""

import time


def stamp():
    return time.perf_counter()  # lint/wall-clock should flag this call
