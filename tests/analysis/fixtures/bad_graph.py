"""Graph fixtures for the analysis CLI and graphcheck unit tests.

Each factory returns a deliberately broken
:class:`~repro.graph.flowgraph.FlowGraph`; the CLI loads them via
``--graph tests/analysis/fixtures/bad_graph.py:<factory>``.
"""

from __future__ import annotations

from repro.graph.flowgraph import Edge, FlowGraph
from repro.graph.task import TaskSpec
from repro.imaging.pipeline import SwitchState


def _task(name: str, out_kb: float = 64.0) -> TaskSpec:
    return TaskSpec(
        name, kind="stream", input_kb=64.0, intermediate_kb=64.0, output_kb=out_kb
    )


def build_cyclic_graph() -> FlowGraph:
    """A -> B -> A: violates the DAG invariant of Fig. 2."""
    tasks = {"A": _task("A"), "B": _task("B")}
    edges = [
        Edge(FlowGraph.INPUT, "A", 64.0),
        Edge("A", "B", 64.0),
        Edge("B", "A", 64.0),
        Edge("B", FlowGraph.OUTPUT, 64.0),
    ]

    def activation(state: SwitchState) -> list[str]:
        return ["A", "B"]

    return FlowGraph(tasks, edges, activation)


def build_uncovered_graph() -> FlowGraph:
    """Activation has a hole: registration-success states are undefined."""
    tasks = {"A": _task("A"), "B": _task("B")}
    edges = [
        Edge(FlowGraph.INPUT, "A", 64.0),
        Edge("A", "B", 64.0),
        Edge("B", FlowGraph.OUTPUT, 64.0),
    ]

    def activation(state: SwitchState) -> list[str]:
        if state.reg_success:
            raise KeyError(f"no schedule defined for scenario {state.scenario_id}")
        return ["A", "B"]

    return FlowGraph(tasks, edges, activation)
