"""Lint fixture: stopwatch read outside obs/ and bench/ (banned)."""

import time


def elapsed():
    t0 = time.monotonic()  # lint/direct-time-call should flag this call
    return time.monotonic() - t0  # and this one
