"""Lint fixture: direct numpy.random use outside util/rng (banned)."""

import numpy as np


def jitter(n):
    return np.random.rand(n)  # lint/banned-random should flag this call
