"""Fixture: unit-discipline violations the dataflow pass must catch.

Each function seeds exactly one class of violation; the tests assert
rule ids and line numbers against this file, so keep the layout
stable (append new cases at the bottom).
"""

from __future__ import annotations

from repro.util.quantity import KBytes, Milliseconds


def frame_budget(latency_ms: Milliseconds, payload_kb: KBytes) -> float:
    # The canonical seeded bug: milliseconds + binary kilobytes.
    return latency_ms + payload_kb


def annotated_return(latency_ms: Milliseconds) -> KBytes:
    return latency_ms


def misnamed(buffer_kb: KBytes) -> None:
    total_ms = buffer_kb
    del total_ms


def consume_kb(payload: KBytes) -> float:
    return payload * 2.0


def caller(latency_ms: Milliseconds) -> None:
    consume_kb(latency_ms)


def drops_unit(latency_ms: Milliseconds):
    return latency_ms * 2.0


def compares(latency_ms: Milliseconds, payload_kb: KBytes) -> bool:
    return latency_ms > payload_kb


def accumulates(latency_ms: Milliseconds, payload_kb: KBytes) -> float:
    total = latency_ms
    total += payload_kb
    return total
