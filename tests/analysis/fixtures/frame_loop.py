"""Fixture: ad-hoc per-frame simulate_frame loop (must be flagged)."""


def drive(sim, frames, mapping):
    results = []
    for k, reports in enumerate(frames):
        results.append(sim.simulate_frame(reports, mapping, frame_key=("fx", k)))
    return results
