"""Declared-vs-inferred contract mismatches, seeded.

``not_pure`` claims ``@pure`` but appends to a module global (a
``writes-global`` mismatch); ``over_declared`` claims ``env`` it never
exercises (an unused declaration); ``honest`` declares exactly what it
does.
"""

from repro.util.effects import effects, pure

totals = []


@pure
def not_pure(x):
    totals.append(x)
    return x


@effects("io", "env")
def over_declared():
    print("hi")


@effects("io")
def honest(msg):
    print(msg)
