"""Mutually recursive call cycle whose impurity enters via a helper.

``even`` and ``odd`` form one SCC; neither touches the outside world
directly, but ``odd`` calls ``log_call`` which calls ``emit`` which
prints -- so the whole cycle must infer ``io``.  ``double`` stays pure.
"""


def emit(msg):
    print(msg)


def log_call():
    emit("call")


def even(n):
    if n <= 0:
        return True
    return odd(n - 1)


def odd(n):
    if n <= 0:
        return False
    log_call()
    return even(n - 1)


def double(n):
    return add(n, n)


def add(a, b):
    return a + b
