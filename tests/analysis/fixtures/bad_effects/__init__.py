"""Seeded fixtures for effect/purity inference and contract checks."""
