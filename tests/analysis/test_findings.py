"""Tests for the shared findings model."""

from __future__ import annotations

import json

import pytest

from repro.analysis.findings import (
    Finding,
    Severity,
    count_at_least,
    findings_to_json,
    format_findings,
    max_severity,
)


def _f(rule: str, sev: Severity, loc: str = "x:1", msg: str = "m") -> Finding:
    return Finding(rule=rule, severity=sev, location=loc, message=msg)


class TestSeverity:
    def test_ordering(self):
        assert Severity.INFO < Severity.WARNING < Severity.ERROR

    @pytest.mark.parametrize("name", ["error", "ERROR", "Error"])
    def test_parse(self, name):
        assert Severity.parse(name) is Severity.ERROR

    def test_parse_unknown(self):
        with pytest.raises(ValueError, match="unknown severity"):
            Severity.parse("fatal")


class TestAggregation:
    def test_max_severity_empty(self):
        assert max_severity([]) is None

    def test_max_severity(self):
        fs = [_f("a", Severity.INFO), _f("b", Severity.ERROR)]
        assert max_severity(fs) is Severity.ERROR

    def test_count_at_least(self):
        fs = [
            _f("a", Severity.INFO),
            _f("b", Severity.WARNING),
            _f("c", Severity.ERROR),
        ]
        assert count_at_least(fs, Severity.INFO) == 3
        assert count_at_least(fs, Severity.WARNING) == 2
        assert count_at_least(fs, Severity.ERROR) == 1


class TestRendering:
    def test_render_line(self):
        f = _f("graph/cycle", Severity.ERROR, "graph", "has a cycle")
        assert f.render() == "graph: error [graph/cycle] has a cycle"

    def test_format_sorts_by_path_line_rule(self):
        # Deterministic (path, line, rule) order -- byte-stable output
        # across runs regardless of discovery order.
        fs = [
            _f("b", Severity.ERROR, "y.py:2"),
            _f("z", Severity.INFO, "x.py:10"),
            _f("a", Severity.INFO, "x.py:2"),
            _f("a", Severity.ERROR, "x.py:2"),
        ]
        text = format_findings(fs)
        assert (
            text.index("x.py:2")
            < text.index("x.py:10")
            < text.index("y.py:2")
        )
        assert "4 finding(s): 2 error, 2 info" in text

    def test_format_empty_is_clean(self):
        assert format_findings([]) == "clean"

    def test_json_roundtrip(self):
        fs = [_f("lint/unit-mix", Severity.WARNING, "f.py:3", "mix")]
        payload = json.loads(findings_to_json(fs))
        assert payload == [
            {
                "rule": "lint/unit-mix",
                "severity": "warning",
                "location": "f.py:3",
                "message": "mix",
            }
        ]
