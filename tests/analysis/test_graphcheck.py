"""Tests for the flow-graph static checks."""

from __future__ import annotations

from types import SimpleNamespace

from repro.analysis.findings import Severity
from repro.analysis.graphcheck import (
    check_bandwidth,
    check_buffers,
    check_flowgraph,
    check_scenarios,
    check_topology,
)
from repro.graph.flowgraph import Edge, FlowGraph
from repro.graph.stentboost import build_stentboost_graph
from repro.graph.task import PhaseSpec, TaskSpec
from repro.hw.spec import blackford
from repro.imaging.pipeline import SwitchState

from tests.analysis.fixtures.bad_graph import (
    build_cyclic_graph,
    build_uncovered_graph,
)


def _task(name: str, **kw) -> TaskSpec:
    base = dict(kind="stream", input_kb=64.0, intermediate_kb=64.0, output_kb=64.0)
    base.update(kw)
    return TaskSpec(name, **base)


def rules_of(findings) -> set[str]:
    return {f.rule for f in findings}


class TestTopology:
    def test_cycle_detected(self):
        g = build_cyclic_graph()
        findings = check_topology(g.tasks, g.edges)
        (cycle,) = [f for f in findings if f.rule == "graph/cycle"]
        assert cycle.severity is Severity.ERROR
        assert "A" in cycle.message and "B" in cycle.message

    def test_dangling_endpoint(self):
        findings = check_topology(["A"], [Edge("A", "GHOST", 1.0)])
        (dangling,) = [f for f in findings if f.rule == "graph/dangling"]
        assert "GHOST" in dangling.message

    def test_clean_chain(self):
        edges = [
            Edge(FlowGraph.INPUT, "A", 1.0),
            Edge("A", "B", 1.0),
            Edge("B", FlowGraph.OUTPUT, 1.0),
        ]
        assert check_topology(["A", "B"], edges) == []


class TestScenarios:
    def test_uncovered_switch_state(self):
        findings = check_scenarios(build_uncovered_graph())
        holes = [f for f in findings if f.rule == "graph/switch-coverage"]
        # reg_success is bit 0: odd scenario ids are the uncovered ones.
        assert {f.location for f in holes} == {
            f"scenario {i}" for i in (1, 3, 5, 7)
        }
        assert all(f.severity is Severity.ERROR for f in holes)

    def test_empty_activation_is_a_hole(self):
        g = build_uncovered_graph()
        g._activation = lambda state: []
        findings = check_scenarios(g, scenario_ids=[0])
        # The empty activation is the hole; it also leaves every task dead.
        assert rules_of(findings) == {"graph/switch-coverage", "graph/dead-task"}
        (hole,) = [f for f in findings if f.rule == "graph/switch-coverage"]
        assert "no tasks" in hole.message

    def test_starved_task(self):
        tasks = {"A": _task("A"), "B": _task("B"), "C": _task("C")}
        edges = [
            Edge(FlowGraph.INPUT, "A", 64.0),
            Edge("A", "B", 64.0),
            Edge("B", "C", 64.0),
        ]
        # B inactive: C keeps running but nothing feeds it.
        g = FlowGraph(tasks, edges, lambda state: ["A", "C"])
        findings = check_scenarios(g, scenario_ids=[0])
        starved = [f for f in findings if f.rule == "graph/starved-task"]
        assert len(starved) == 1 and "task C" in starved[0].location

    def test_dead_task_warning(self):
        tasks = {"A": _task("A"), "UNUSED": _task("UNUSED")}
        edges = [Edge(FlowGraph.INPUT, "A", 64.0)]
        g = FlowGraph(tasks, edges, lambda state: ["A"])
        findings = check_scenarios(g)
        (dead,) = [f for f in findings if f.rule == "graph/dead-task"]
        assert dead.severity is Severity.WARNING
        assert "UNUSED" in dead.location

    def test_edge_over_producer_capacity(self):
        tasks = {"A": _task("A", output_kb=32.0), "B": _task("B")}
        edges = [
            Edge(FlowGraph.INPUT, "A", 64.0),
            Edge("A", "B", 48.0),  # producer only outputs 32 KiB
        ]
        g = FlowGraph(tasks, edges, lambda state: ["A", "B"])
        findings = check_scenarios(g, scenario_ids=[0])
        caps = [f for f in findings if f.rule == "graph/edge-capacity"]
        assert len(caps) == 1 and "outputs only 32" in caps[0].message

    def test_edge_over_consumer_capacity(self):
        tasks = {"A": _task("A"), "B": _task("B", input_kb=16.0)}
        edges = [
            Edge(FlowGraph.INPUT, "A", 64.0),
            Edge("A", "B", 64.0),  # consumer only accepts 16 KiB
        ]
        g = FlowGraph(tasks, edges, lambda state: ["A", "B"])
        findings = check_scenarios(g, scenario_ids=[0])
        caps = [f for f in findings if f.rule == "graph/edge-capacity"]
        assert len(caps) == 1 and "accepts only 16" in caps[0].message


class TestBudgets:
    def test_phase_exceeding_table1_total_is_error(self):
        big_phase = PhaseSpec("huge", (("buf", 1024.0),))
        t = TaskSpec(
            "T",
            kind="stream",
            input_kb=64.0,
            intermediate_kb=64.0,
            output_kb=64.0,
            phases=(big_phase,),
        )
        g = FlowGraph(
            {"T": t}, [Edge(FlowGraph.INPUT, "T", 64.0)], lambda state: ["T"]
        )
        findings = check_buffers(g, blackford())
        assert "graph/phase-budget" in rules_of(findings)

    def test_l2_overflow_reported_as_info(self):
        findings = check_buffers(build_stentboost_graph(), blackford())
        overflow = [f for f in findings if f.rule == "graph/buffer-budget"]
        assert {f.location for f in overflow} >= {"task RDG_FULL", "task ENH"}
        assert all(f.severity is Severity.INFO for f in overflow)

    def test_bandwidth_budget_error_on_tiny_link(self):
        g = build_stentboost_graph()
        platform = SimpleNamespace(
            l2_bus_bw=1.0,  # one byte per second
            total_dram_stream_bw=1.0,
        )
        findings = check_bandwidth(g, platform)
        assert all(f.rule == "graph/bandwidth-budget" for f in findings)
        assert any(f.severity is Severity.ERROR for f in findings)

    def test_bandwidth_fits_blackford(self):
        findings = check_bandwidth(build_stentboost_graph(), blackford())
        assert findings == []


class TestFullGraph:
    def test_stentboost_has_no_errors(self):
        findings = check_flowgraph(build_stentboost_graph(), blackford())
        assert [f for f in findings if f.severity >= Severity.WARNING] == []
        # ... but the expected L2 overflows are reported for audit.
        assert "graph/buffer-budget" in rules_of(findings)

    def test_worst_case_scenario_is_heaviest(self):
        """Sanity: the Section 5.2 worst case carries the most bandwidth."""
        g = build_stentboost_graph()
        totals = {
            sid: g.total_bandwidth_mbps(SwitchState.from_scenario_id(sid))
            for sid in range(8)
        }
        worst = SwitchState(rdg_on=True, roi_mode=False, reg_success=True)
        assert max(totals, key=totals.__getitem__) == worst.scenario_id
