"""Determinism audit: the seeded pool/ordering fixtures + exemptions.

The pool-seam audit itself moved to the effect engine
(:mod:`repro.analysis.effects.races`); the ``TestPoolSeam`` cases here
pin that the *same rule ids, locations, and severities* still come out
of the new pass for the seeded fixture -- the migration must not change
the user-visible contract.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.dataflow import build_symbol_table, check_determinism
from repro.analysis.effects import check_races, infer_effects
from repro.analysis.findings import Severity

FIXTURES = Path(__file__).resolve().parent / "fixtures"
REPO = Path(__file__).resolve().parents[2]


def _findings(*paths: Path):
    return check_determinism(build_symbol_table(list(paths)))


def _race_findings(*paths: Path):
    table = build_symbol_table(list(paths))
    return check_races(table, infer_effects(table))


class TestPoolSeam:
    def test_catches_seeded_shared_global(self):
        findings = _race_findings(FIXTURES / "bad_pool.py")
        got = {(f.rule, int(f.location.rsplit(":", 1)[1])) for f in findings}
        assert got == {
            ("dataflow/pool-global-mutation", 17),  # _helper appends
            ("dataflow/pool-global-mutation", 21),  # worker subscript-writes
            ("dataflow/pool-shared-state", 23),     # worker reads _cache
            ("dataflow/pool-worker-closure", 31),   # lambda worker
            ("dataflow/pool-worker-closure", 38),   # nested-def worker
        }

    def test_mutation_is_error_read_is_warning(self):
        by_rule = {
            f.rule: f.severity for f in _race_findings(FIXTURES / "bad_pool.py")
        }
        assert by_rule["dataflow/pool-global-mutation"] == Severity.ERROR
        assert by_rule["dataflow/pool-worker-closure"] == Severity.ERROR
        assert by_rule["dataflow/pool-shared-state"] == Severity.WARNING

    def test_transitive_reach_through_helpers(self):
        # line 17 is inside _helper, which worker() calls -- the audit
        # must walk the call graph, not just the worker body.
        findings = _race_findings(FIXTURES / "bad_pool.py")
        helper = [f for f in findings if f.location.endswith(":17")]
        assert helper and "_helper" in helper[0].message

    def test_determinism_pass_no_longer_owns_pool_rules(self):
        # check_determinism is ordering-only now; the pool audit lives
        # in the effect engine.
        findings = _findings(FIXTURES / "bad_pool.py")
        assert [f for f in findings if f.rule.startswith("dataflow/pool-")] == []

    def test_sanctioned_modules_are_exempt(self):
        # The real profiling worker crosses the seam via repro.obs /
        # repro.util.rng state, which is sanctioned plumbing: the audit
        # of src/repro must raise no pool findings.
        findings = _race_findings(REPO / "src" / "repro")
        pool = [f for f in findings if f.rule.startswith("dataflow/pool-")]
        assert pool == [], [f.render() for f in pool]


class TestOrderingHazards:
    def test_seeded_ordering_fixture(self):
        findings = _findings(FIXTURES / "bad_ordering.py")
        got = {(f.rule, int(f.location.rsplit(":", 1)[1])) for f in findings}
        assert got == {
            ("dataflow/unordered-accumulation", 11),  # set param iterated
            ("dataflow/unordered-accumulation", 18),  # sum(set literal)
            ("dataflow/unsorted-listing", 22),        # bare .glob()
            ("dataflow/json-sort-keys", 30),          # dumps w/o sort_keys
        }

    def test_sorted_wrappers_pass(self):
        findings = _findings(FIXTURES / "bad_ordering.py")
        lines = {int(f.location.rsplit(":", 1)[1]) for f in findings}
        assert 26 not in lines  # sorted(root.glob(...))
        assert 34 not in lines  # dumps(..., sort_keys=True)

    def test_real_repo_only_suppressed_probe_remains(self):
        # The one json.dumps without sort_keys in src/repro is the
        # serializability probe in traces.py, suppressed inline; the
        # raw pass (no suppression layer) sees exactly that one.
        findings = check_determinism(
            build_symbol_table([REPO / "src" / "repro"])
        )
        assert [f.rule for f in findings] == ["dataflow/json-sort-keys"]
        assert "traces.py" in findings[0].location
