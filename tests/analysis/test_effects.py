"""Effect/purity inference: lattice, SCC fixpoint, contract checks."""

from __future__ import annotations

from pathlib import Path

from repro.analysis.dataflow import build_symbol_table
from repro.analysis.effects import check_contracts, infer_effects
from repro.analysis.effects.lattice import PURE, effect_str, join
from repro.analysis.findings import Severity

FIXTURES = Path(__file__).resolve().parent / "fixtures"
REPO = Path(__file__).resolve().parents[2]

HELPERS = "tests.analysis.fixtures.bad_effects.helpers"
CONTRACTS = "tests.analysis.fixtures.bad_effects.contracts_bad"


def _infer(*paths: Path):
    table = build_symbol_table(list(paths))
    return table, infer_effects(table)


class TestLattice:
    def test_bottom_renders_as_pure(self):
        assert effect_str(PURE) == "pure"

    def test_join_is_union_and_order_insensitive(self):
        a = frozenset({"io"})
        b = frozenset({"env", "io"})
        assert join(a, b) == join(b, a) == frozenset({"io", "env"})
        assert join() == PURE
        assert effect_str(join(a, b)) == "env+io"


class TestRecursiveInference:
    def test_mutual_recursion_converges_to_helper_effect(self):
        # even <-> odd form one SCC; io enters only via odd -> log_call
        # -> emit, and must propagate to every member of the cycle.
        _, inf = _infer(FIXTURES / "bad_effects" / "helpers.py")
        assert inf.effects_of(f"{HELPERS}.even") == frozenset({"io"})
        assert inf.effects_of(f"{HELPERS}.odd") == frozenset({"io"})
        assert inf.effects_of(f"{HELPERS}.emit") == frozenset({"io"})

    def test_pure_chain_stays_pure(self):
        _, inf = _infer(FIXTURES / "bad_effects" / "helpers.py")
        assert inf.effects_of(f"{HELPERS}.double") == PURE
        assert inf.effects_of(f"{HELPERS}.add") == PURE

    def test_witness_chain_names_the_evidence_site(self):
        # The chain from even must bottom out at emit's print call.
        _, inf = _infer(FIXTURES / "bad_effects" / "helpers.py")
        chain = inf.witness_chain(f"{HELPERS}.even", "io")
        assert chain is not None
        owner, witness = chain
        assert owner == f"{HELPERS}.emit"
        assert "print" in witness.detail


class TestContractChecks:
    def _findings(self):
        table, inf = _infer(FIXTURES / "bad_effects" / "contracts_bad.py")
        return check_contracts(table, inf)

    def test_pure_claim_with_global_write_is_a_mismatch(self):
        mismatches = [
            f for f in self._findings() if f.rule == "effects/contract-mismatch"
        ]
        assert len(mismatches) == 1
        f = mismatches[0]
        assert f.severity == Severity.ERROR
        assert "not_pure" in f.message
        assert "writes-global" in f.message

    def test_over_declared_effect_is_flagged_unused(self):
        unused = [
            f for f in self._findings() if f.rule == "effects/contract-unused"
        ]
        assert len(unused) == 1
        f = unused[0]
        assert f.severity == Severity.INFO
        assert "over_declared" in f.message
        assert "env" in f.message

    def test_honest_contract_is_silent(self):
        assert not any("honest" in f.message for f in self._findings())

    def test_uncontracted_pool_worker_is_reported_missing(self):
        table, inf = _infer(FIXTURES / "bad_escape" / "workers.py")
        missing = {
            f.message.split()[0]
            for f in check_contracts(table, inf)
            if f.rule == "effects/missing-contract"
        }
        assert any(name.endswith(".clean_worker") for name in missing)

    def test_real_repo_contracts_all_verified(self):
        # Every map_sequences worker, registered backend fit, and
        # policy step in src/repro carries a contract that matches its
        # inferred effects -- the acceptance bar for this analysis.
        table, inf = _infer(REPO / "src" / "repro")
        findings = [
            f
            for f in check_contracts(table, inf)
            if f.rule in ("effects/contract-mismatch", "effects/missing-contract")
        ]
        assert findings == [], [f.render() for f in findings]
