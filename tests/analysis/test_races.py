"""Pool-seam race detector: argument escape and impure workers."""

from __future__ import annotations

from pathlib import Path

from repro.analysis.dataflow import build_symbol_table
from repro.analysis.effects import check_races, infer_effects
from repro.analysis.findings import Severity

FIXTURES = Path(__file__).resolve().parent / "fixtures"

WORKERS = "tests.analysis.fixtures.bad_escape.workers"


def _findings():
    table = build_symbol_table([FIXTURES / "bad_escape" / "workers.py"])
    return check_races(table, infer_effects(table))


class TestArgMutation:
    def test_direct_mutation_is_an_error_with_the_site(self):
        hits = [
            f
            for f in _findings()
            if f.rule == "dataflow/pool-arg-mutation"
            and "scale_inplace" in f.message
        ]
        assert len(hits) == 1
        f = hits[0]
        assert f.severity == Severity.ERROR
        assert "'frames'" in f.message
        # Location points at the mutation site, not the def line.
        assert f.location.endswith(":14")

    def test_mutation_through_a_callee_is_folded_in(self):
        # mutate_via_helper never writes d itself; _bump does.  The
        # interprocedural parameter-alias propagation must surface it
        # on the worker.
        hits = [
            f
            for f in _findings()
            if f.rule == "dataflow/pool-arg-mutation"
            and "mutate_via_helper" in f.message
        ]
        assert len(hits) == 1
        assert "via a callee" in hits[0].message

    def test_clean_worker_is_silent(self):
        assert not any("clean_worker" in f.message for f in _findings())


class TestImpureWorker:
    def test_io_worker_is_flagged_with_its_witness(self):
        hits = [f for f in _findings() if f.rule == "dataflow/pool-impure-worker"]
        assert len(hits) == 1
        f = hits[0]
        assert f.severity == Severity.WARNING
        assert "impure_worker" in f.message
        assert "io" in f.message
        assert "print" in f.message  # witness chain names the evidence

    def test_findings_are_deduplicated_and_sorted_stable(self):
        a = [(f.rule, f.location) for f in _findings()]
        b = [(f.rule, f.location) for f in _findings()]
        assert a == b
        assert len(set(a)) == len(a)
