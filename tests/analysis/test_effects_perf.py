"""Perf-smell rules: scalar predict, invariant lookups, hot allocs."""

from __future__ import annotations

import textwrap

from repro.analysis.dataflow.symbols import SymbolTable
from repro.analysis.effects import check_perf
from repro.analysis.findings import Severity

HOT = "repro.runtime.fake"
COLD = "experiments.fake"


def _findings(source: str, modname: str = HOT):
    table = SymbolTable()
    path = modname.replace(".", "/") + ".py"
    table.add_module(path, modname, textwrap.dedent(source))
    return check_perf(table)


PREDICT_SRC = """
    class Model:
        def predict(self, x):
            return x

        def predict_series(self, xs):
            return list(xs)

    class ScalarOnly:
        def predict(self, x):
            return x

    def eval_model(xs):
        m = Model()
        out = []
        for x in xs:
            out.append(m.predict(x))
        return out

    def eval_scalar_only(xs):
        s = ScalarOnly()
        return [s.predict(x) for x in xs]

    def eval_rebound(models, xs):
        out = []
        for x in xs:
            m = Model()
            out.append(m.predict(x))
        return out
"""


class TestScalarPredict:
    def test_flags_loop_invariant_receiver_with_batch_path(self):
        hits = [
            f for f in _findings(PREDICT_SRC)
            if f.rule == "perf/scalar-predict-in-loop"
        ]
        assert len(hits) == 1
        assert hits[0].severity == Severity.WARNING
        assert "predict_series" in hits[0].message
        assert hits[0].location.endswith(":17")  # the m.predict call

    def test_runs_repo_wide_not_just_hot_modules(self):
        # An evaluation loop in experiments costs wall-clock time too.
        hits = [
            f for f in _findings(PREDICT_SRC, modname=COLD)
            if f.rule == "perf/scalar-predict-in-loop"
        ]
        assert len(hits) == 1

    def test_silent_without_a_batch_method_or_with_rebinding(self):
        # ScalarOnly has no predict_series; eval_rebound rebinds m in
        # the loop.  Exactly the one eval_model hit remains.
        hits = [
            f for f in _findings(PREDICT_SRC)
            if f.rule == "perf/scalar-predict-in-loop"
        ]
        assert len(hits) == 1


INSTRUMENT_SRC = """
    def frame_loop(obs, frames):
        for frame in frames:
            obs.metrics.counter("frames_total").inc()
"""

CHAIN_SRC = """
    def simulate(self, tasks):
        total = 0.0
        for task in tasks:
            total += self.platform.bus.bandwidth
        return total
"""

REBOUND_CHAIN_SRC = """
    def simulate(self, tasks):
        total = 0.0
        for task in tasks:
            self = next(iter(tasks))
            total += self.platform.bus.bandwidth
        return total
"""


class TestInvariantAttr:
    def test_instrument_lookup_in_hot_loop(self):
        hits = [
            f for f in _findings(INSTRUMENT_SRC)
            if f.rule == "perf/invariant-attr-in-loop"
        ]
        assert len(hits) == 1
        assert "obs.metrics.counter" in hits[0].message
        assert "hoist" in hits[0].message

    def test_cold_modules_are_not_scanned_for_instruments(self):
        assert not any(
            f.rule == "perf/invariant-attr-in-loop"
            for f in _findings(INSTRUMENT_SRC, modname=COLD)
        )

    def test_deep_chain_flagged_once_per_chain(self):
        hits = [
            f for f in _findings(CHAIN_SRC)
            if f.rule == "perf/invariant-attr-in-loop"
        ]
        assert len(hits) == 1
        assert "self.platform.bus.bandwidth" in hits[0].message

    def test_rebound_root_is_not_invariant(self):
        assert not any(
            f.rule == "perf/invariant-attr-in-loop"
            for f in _findings(REBOUND_CHAIN_SRC)
        )


ALLOC_SRC = """
    def frame_loop(frames):
        out = []
        for frame in frames:
            defaults = {"quality": 1.0, "degraded": False}
            pair = (1, 2)
            out.append((frame, defaults, pair))
        return out
"""


class TestHotAlloc:
    def test_constant_dict_in_hot_loop_is_info(self):
        hits = [
            f for f in _findings(ALLOC_SRC) if f.rule == "perf/alloc-in-hot-loop"
        ]
        assert len(hits) == 1
        assert hits[0].severity == Severity.INFO
        assert "dict" in hits[0].message

    def test_constant_tuples_are_exempt(self):
        # CPython folds constant tuples into co_consts: no allocation.
        hits = [
            f for f in _findings(ALLOC_SRC) if f.rule == "perf/alloc-in-hot-loop"
        ]
        assert all("tuple" not in f.message for f in hits)


CHURN_SRC = """
    from dataclasses import dataclass

    @dataclass
    class FrameRecord:
        index: int
        latency_ms: float

    class Plain:
        def __init__(self, index):
            self.index = index

    def collect(frames):
        out = []
        for k, frame in enumerate(frames):
            out.append(FrameRecord(index=k, latency_ms=frame))
        return out

    def collect_plain(frames):
        out = []
        for k, frame in enumerate(frames):
            out.append(Plain(k))
        return out

    def collect_store(store, frames):
        for k, frame in enumerate(frames):
            store.append(FrameRecord(index=k, latency_ms=frame))

    def collect_comprehension(frames):
        return [FrameRecord(index=k, latency_ms=f) for k, f in enumerate(frames)]
"""

CHURN_MOD = "repro.profiling.fake"


class TestFrameObjectChurn:
    def _hits(self, modname):
        return [
            f
            for f in _findings(CHURN_SRC, modname=modname)
            if f.rule == "perf/frame-object-churn"
        ]

    def test_dataclass_append_in_churn_module_flagged(self):
        hits = self._hits(CHURN_MOD)
        assert len(hits) == 1
        assert hits[0].severity == Severity.WARNING
        assert "FrameRecord" in hits[0].message
        assert "columnar" in hits[0].message

    def test_plain_class_is_not_flagged(self):
        # collect_plain appends a non-dataclass: allocation churn too,
        # but without generated field machinery it is usually a
        # deliberate object; only dataclass records are flagged.
        hits = self._hits(CHURN_MOD)
        assert all("Plain" not in f.message for f in hits)

    def test_append_on_non_list_receiver_is_not_flagged(self):
        # collect_store appends to a parameter -- a TraceSet's own
        # append() is that type's API, not list churn (this is the
        # profiler's JSON-fallback `ts.append(TraceRecord(**r))`).
        hits = self._hits(CHURN_MOD)
        assert all("'store'" not in f.message for f in hits)

    def test_comprehension_is_not_flagged(self):
        # One-shot materialization (the TraceSet.records property) is
        # exactly the replacement idiom; no append call, no finding.
        hits = self._hits(CHURN_MOD)
        assert len(hits) == 1  # only collect's explicit append

    def test_engine_module_is_in_scope(self):
        assert len(self._hits("repro.runtime.engine")) == 1

    def test_hw_and_generic_runtime_are_out_of_scope(self):
        # repro.hw's timings.append(TaskTiming(...)) is the golden
        # scalar path; repro.runtime.frametable/tape hold the columnar
        # machinery itself.  Neither is nagged.
        assert self._hits("repro.hw.simulator") == []
        assert self._hits("repro.runtime.fake") == []
        assert self._hits(COLD) == []


HELPER_SRC = """
    def record(obs, latency):
        obs.metrics.histogram("frame_latency_ms").observe(latency)

    def run(obs, frames):
        for frame in frames:
            record(obs, frame)
"""


class TestHotCallee:
    def test_straight_line_helper_called_from_hot_loop_is_scanned(self):
        # record() has no loop of its own, but runs per frame.
        hits = [
            f for f in _findings(HELPER_SRC)
            if f.rule == "perf/invariant-attr-in-loop"
        ]
        assert len(hits) == 1
        assert "called from a hot loop" in hits[0].message
        assert "record" in hits[0].message
