"""Smoke tests for the runnable examples.

The heavyweight examples (quickstart, latency_control) train models
and are exercised by the experiment benchmarks; here we run the fast
ones end-to-end and validate the slow ones at least import and expose
a main().
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import numpy as np
import pytest

EXAMPLES = Path(__file__).resolve().parents[1] / "examples"


def load_example(name: str):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    mod = importlib.util.module_from_spec(spec)
    sys.modules[name] = mod
    spec.loader.exec_module(mod)
    return mod


class TestCapacityPlanning:
    def test_runs(self, capsys):
        mod = load_example("capacity_planning")
        mod.main()
        out = capsys.readouterr().out
        assert "per-scenario bandwidth" in out
        assert "RDG_FULL" in out
        assert "more functions" in out


class TestStentEnhancement:
    def test_writes_images(self, tmp_path, capsys):
        mod = load_example("stent_enhancement")
        mod.main(str(tmp_path))
        out = capsys.readouterr().out
        assert "noise" in out
        for name in ("out_raw.pgm", "out_enhanced.pgm", "out_zoomed.pgm"):
            p = tmp_path / name
            assert p.exists() and p.stat().st_size > 1000
        header = (tmp_path / "out_raw.pgm").read_bytes()[:2]
        assert header == b"P5"

    def test_pgm_writer(self, tmp_path):
        mod = load_example("stent_enhancement")
        img = np.linspace(0, 1, 64 * 32).reshape(32, 64).astype(np.float32)
        mod.write_pgm(tmp_path / "t.pgm", img)
        raw = (tmp_path / "t.pgm").read_bytes()
        assert raw.startswith(b"P5\n64 32\n255\n")
        assert len(raw) == len(b"P5\n64 32\n255\n") + 64 * 32


class TestOtherExamplesImportable:
    @pytest.mark.parametrize(
        "name", ["quickstart", "latency_control", "online_adaptation"]
    )
    def test_has_main(self, name):
        mod = load_example(name)
        assert callable(mod.main)


class TestAsciiPlot:
    def test_plot_geometry(self):
        mod = load_example("latency_control")
        lines = mod.ascii_plot(np.linspace(10, 90, 32), lo=0.0, hi=100.0, width=40)
        assert len(lines) == 16
        assert all(line.startswith("|") for line in lines)
        # The star moves monotonically right for an increasing series.
        positions = [line.index("*") for line in lines]
        assert positions == sorted(positions)
