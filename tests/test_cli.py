"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["profile"])
        assert args.sequences == 8 and args.frames == 400

    def test_experiments_names(self):
        args = build_parser().parse_args(["experiments", "fig2", "fig4"])
        assert args.names == ["fig2", "fig4"]


class TestWorkflow:
    def test_profile_train_evaluate(self, tmp_path, capsys):
        traces = tmp_path / "t.json"
        model = tmp_path / "m.json"
        rc = main(
            [
                "profile",
                "--sequences", "2",
                "--frames", "30",
                "--seed", "11",
                "--out", str(traces),
            ]
        )
        assert rc == 0 and traces.exists()

        rc = main(["train", "--traces", str(traces), "--out", str(model)])
        assert rc == 0 and model.exists()
        out = capsys.readouterr().out
        assert "REG" in out

        rc = main(
            ["evaluate", "--model", str(model), "--seed", "5", "--frames", "25"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "mean accuracy" in out

    def test_profile_evaluate_other_workload(self, tmp_path, capsys):
        traces = tmp_path / "rv.json"
        model = tmp_path / "rv-model.json"
        rc = main(
            [
                "profile",
                "--workload", "robotvision",
                "--sequences", "1",
                "--frames", "16",
                "--seed", "9",
                "--out", str(traces),
            ]
        )
        assert rc == 0
        assert "robotvision" in capsys.readouterr().out

        assert main(["train", "--traces", str(traces), "--out", str(model)]) == 0
        capsys.readouterr()
        rc = main(
            [
                "evaluate",
                "--model", str(model),
                "--workload", "robotvision",
                "--seed", "5",
                "--frames", "16",
            ]
        )
        assert rc == 0
        assert "mean accuracy" in capsys.readouterr().out

        # The model carries its workload; evaluating it under another
        # registered workload is refused instead of scoring garbage.
        rc = main(
            ["evaluate", "--model", str(model), "--workload", "ultrasound"]
        )
        assert rc == 2
        assert "different" in capsys.readouterr().out

    def test_unknown_workload_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["profile", "--workload", "mri"])

    def test_experiments_unknown_name(self, capsys):
        rc = main(["experiments", "nope"])
        assert rc == 2
        assert "unknown experiments" in capsys.readouterr().out

    def test_export_writes_artifacts(self, tmp_path, capsys, monkeypatch):
        # Use the tiny session cache dir + fast corpus so the export
        # stays quick; the CSV/SVG writers are tested in depth in
        # tests/experiments.
        monkeypatch.setenv("REPRO_FAST", "1")
        out = tmp_path / "figs"
        rc = main(["export", "--out", str(out)])
        assert rc == 0
        names = {p.name for p in out.iterdir()}
        assert {"fig3.csv", "fig6.csv", "fig7.csv", "fig3.svg", "fig6.svg", "fig7.svg"} <= names
