"""Tests for adaptive quantization and Markov chains (Eq. 2)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.markov import (
    AdaptiveQuantizer,
    MarkovChain,
    MarkovChain2,
    product_chain,
)

value_lists = st.lists(
    st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
    min_size=10,
    max_size=300,
)


class TestAdaptiveQuantizer:
    def test_paper_state_count_rule(self):
        """M = C_max / sigma, refined by the factor ~2 (Section 4)."""
        rng = np.random.default_rng(0)
        v = rng.normal(50, 10, 5000)
        m = v.max() / v.std()
        n = AdaptiveQuantizer.paper_state_count(v, states_factor=2.0, max_states=64)
        assert n == int(np.clip(round(2 * m), 2, 64))

    def test_constant_series_min_states(self):
        assert AdaptiveQuantizer.paper_state_count(np.full(100, 5.0)) == 2

    def test_equal_mass_intervals(self):
        """Each interval must hold ~ the same sample mass (Section 4)."""
        rng = np.random.default_rng(1)
        v = rng.exponential(10, 20_000)
        q = AdaptiveQuantizer.fit(v, n_states=8)
        states = q.states(v)
        counts = np.bincount(states, minlength=q.n_states)
        assert counts.min() > 0.8 * v.size / q.n_states
        assert counts.max() < 1.2 * v.size / q.n_states

    def test_equal_width_alternative(self):
        rng = np.random.default_rng(2)
        v = rng.uniform(0, 80, 10_000)
        q = AdaptiveQuantizer.fit(v, n_states=8, equal_mass=False)
        widths = np.diff(np.concatenate([[v.min()], q.edges, [v.max()]]))
        assert np.allclose(widths, widths[0], rtol=0.05)

    def test_edges_sorted_centers_monotone(self):
        v = np.random.default_rng(3).normal(0, 1, 2000)
        q = AdaptiveQuantizer.fit(v, n_states=10)
        assert np.all(np.diff(q.edges) >= 0)
        assert np.all(np.diff(q.centers) >= 0)

    def test_state_center_round_trip(self):
        v = np.random.default_rng(4).normal(10, 2, 2000)
        q = AdaptiveQuantizer.fit(v, n_states=6)
        for x in (5.0, 10.0, 15.0):
            s = q.state(x)
            assert 0 <= s < q.n_states
            # The center of x's bin is the bin's training mean.
            assert q.edges.size == q.n_states - 1

    def test_needs_two_samples(self):
        with pytest.raises(ValueError):
            AdaptiveQuantizer.fit([1.0])

    @given(value_lists)
    @settings(max_examples=40, deadline=None)
    def test_property_states_in_range(self, values):
        q = AdaptiveQuantizer.fit(values, n_states=5)
        states = q.states(values)
        assert np.all((0 <= states) & (states < q.n_states))


class TestMarkovChain:
    def test_eq2_transition_estimation(self):
        """P_ij = n_ij / sum_k n_ik on a hand-built series."""
        q = AdaptiveQuantizer(edges=np.array([0.5]), centers=np.array([0.0, 1.0]))
        # states 0,0,1,0,1,1 -> transitions: 00, 01, 10, 01, 11
        chain = MarkovChain.fit([np.array([0, 0, 1, 0, 1, 1.0])], quantizer=q)
        np.testing.assert_allclose(chain.transition[0], [1 / 3, 2 / 3])
        np.testing.assert_allclose(chain.transition[1], [0.5, 0.5])
        assert chain.counts.sum() == 5

    def test_rows_stochastic(self, traces):
        series = traces.task_series("CPLS_SEL")
        chain = MarkovChain.fit(series)
        np.testing.assert_allclose(chain.transition.sum(axis=1), 1.0, atol=1e-9)

    def test_series_boundaries_not_counted(self):
        q = AdaptiveQuantizer(edges=np.array([0.5]), centers=np.array([0.0, 1.0]))
        chain = MarkovChain.fit([np.array([0.0, 0.0]), np.array([1.0, 1.0])], quantizer=q)
        # No cross-series 0->1 transition.
        assert chain.counts[0, 1] == 0
        assert chain.counts[0, 0] == 1 and chain.counts[1, 1] == 1

    def test_prediction_in_value_hull(self):
        rng = np.random.default_rng(5)
        v = rng.normal(40, 5, 3000)
        chain = MarkovChain.fit([v])
        for x in (30.0, 40.0, 50.0):
            p = chain.predict_next(x)
            assert v.min() <= p <= v.max()

    def test_ar1_prediction_beats_mean(self):
        """On an AR(1) process the chain must beat the constant-mean
        predictor -- the reason the paper uses it."""
        rng = np.random.default_rng(6)
        phi, n = 0.9, 20_000
        x = np.empty(n)
        x[0] = 0
        for i in range(1, n):
            x[i] = phi * x[i - 1] + rng.normal()
        train, test = x[: n // 2], x[n // 2 :]
        chain = MarkovChain.fit([train])
        preds = np.array([chain.predict_next(v) for v in test[:-1]])
        err_markov = np.mean((preds - test[1:]) ** 2)
        err_mean = np.mean((train.mean() - test[1:]) ** 2)
        assert err_markov < 0.65 * err_mean

    def test_stationary_distribution(self):
        rng = np.random.default_rng(7)
        chain = MarkovChain.fit([rng.normal(0, 1, 5000)])
        pi = chain.stationary()
        np.testing.assert_allclose(pi.sum(), 1.0, atol=1e-9)
        np.testing.assert_allclose(pi @ chain.transition, pi, atol=1e-8)

    def test_sample_path_values_are_centers(self):
        rng = np.random.default_rng(8)
        chain = MarkovChain.fit([rng.normal(0, 1, 2000)])
        path = chain.sample_path(50, np.random.default_rng(0))
        assert all(v in chain.quantizer.centers for v in path)

    def test_online_observe_transition(self):
        q = AdaptiveQuantizer(edges=np.array([0.5]), centers=np.array([0.0, 1.0]))
        # Transitions 0->0 and 0->1 once each: P[0,1] starts at 0.5.
        chain = MarkovChain.fit([np.array([0.0, 0.0, 1.0])], quantizer=q)
        before = chain.transition[0, 1]
        for _ in range(20):
            chain.observe_transition(0.0, 1.0)
        assert chain.transition[0, 1] > before
        np.testing.assert_allclose(chain.transition.sum(axis=1), 1.0)

    def test_unseen_row_uniform(self):
        q = AdaptiveQuantizer(
            edges=np.array([1.0, 2.0]), centers=np.array([0.5, 1.5, 2.5])
        )
        chain = MarkovChain.fit([np.array([0.0, 0.0, 0.0])], quantizer=q)
        np.testing.assert_allclose(chain.transition[2], 1.0 / 3.0)

    def test_empty_training_rejected(self):
        with pytest.raises(ValueError):
            MarkovChain.fit([])


class TestMarkovChain2:
    def test_occupancy_sparser_than_order1(self):
        """The paper's argument against higher orders: sample counts
        per state collapse."""
        rng = np.random.default_rng(9)
        v = rng.normal(0, 1, 200)
        q = AdaptiveQuantizer.fit(v, n_states=12)
        chain1 = MarkovChain.fit([v], quantizer=q)
        chain2 = MarkovChain2.fit([v], quantizer=q)
        frac2, mean_samples2 = chain2.occupancy()
        rows1 = (chain1.counts.sum(axis=1) > 0).mean()
        mean_samples1 = chain1.counts.sum() / max(
            (chain1.counts.sum(axis=1) > 0).sum(), 1
        )
        assert frac2 < 1.0
        assert mean_samples2 < mean_samples1

    def test_prediction_finite(self):
        rng = np.random.default_rng(10)
        chain = MarkovChain2.fit([rng.normal(0, 1, 500)])
        assert np.isfinite(chain.predict_next(0.0, 0.5))


class TestVectorizedPrediction:
    def test_predict_next_many_matches_scalar(self):
        rng = np.random.default_rng(12)
        chain = MarkovChain.fit([rng.normal(10, 2, 3000)])
        values = rng.normal(10, 2, 500)
        batch = chain.predict_next_many(values)
        scalar = np.array([chain.predict_next(v) for v in values])
        np.testing.assert_array_equal(batch, scalar)

    def test_expected_next_values_cached(self):
        rng = np.random.default_rng(13)
        chain = MarkovChain.fit([rng.normal(0, 1, 1000)])
        assert chain.expected_next_values() is chain.expected_next_values()

    def test_cache_invalidated_by_observe_transition(self):
        rng = np.random.default_rng(14)
        chain = MarkovChain.fit([rng.normal(0, 1, 1000)])
        before = chain.expected_next_values().copy()
        for _ in range(50):
            chain.observe_transition(-2.0, 2.0)
        after = chain.expected_next_values()
        assert not np.array_equal(before, after)
        # The cache must agree with a from-scratch evaluation.
        np.testing.assert_array_equal(
            after, chain.transition @ chain.quantizer.centers
        )

    def test_sample_path_deterministic_given_seed(self):
        rng = np.random.default_rng(15)
        chain = MarkovChain.fit([rng.normal(5, 1, 2000)])
        a = chain.sample_path(200, np.random.default_rng(3), start_state=0)
        b = chain.sample_path(200, np.random.default_rng(3), start_state=0)
        np.testing.assert_array_equal(a, b)

    def test_sample_path_visits_follow_transition_matrix(self):
        # A near-deterministic 2-state flip-flop chain must alternate.
        q = AdaptiveQuantizer(edges=np.array([0.5]), centers=np.array([0.0, 1.0]))
        t = np.array([[0.01, 0.99], [0.99, 0.01]])
        chain = MarkovChain(q, t)
        path = chain.sample_path(400, np.random.default_rng(4), start_state=0)
        flips = np.mean(path[1:] != path[:-1])
        assert flips > 0.9

    def test_chain2_expected_next_values_shape(self):
        rng = np.random.default_rng(16)
        chain2 = MarkovChain2.fit([rng.normal(0, 1, 2000)])
        n = chain2.quantizer.n_states
        expected = chain2.expected_next_values()
        assert expected.shape == (n, n)
        assert expected[1, 1] == pytest.approx(
            chain2.predict_next(
                chain2.quantizer.centers[1], chain2.quantizer.centers[1]
            )
        )


class TestLabeledChains:
    """Chains over labeled finite state spaces (scenario ids)."""

    def test_from_transition_states_are_integers(self):
        t = [[0.9, 0.1], [0.3, 0.7]]
        chain = MarkovChain.from_transition(t)
        assert chain.n_states == 2
        assert chain.quantizer.state(0.0) == 0
        assert chain.quantizer.state(1.0) == 1
        np.testing.assert_allclose(chain.transition, t)

    def test_from_transition_rejects_non_square(self):
        with pytest.raises(ValueError):
            MarkovChain.from_transition([[0.5, 0.5]])

    def test_two_state_stationary_closed_form(self):
        # stay probabilities (a, b): pi_on = (1-a) / ((1-a) + (1-b)).
        a, b = 0.9, 0.7
        chain = MarkovChain.from_transition(
            [[a, 1.0 - a], [1.0 - b, b]]
        )
        pi = chain.stationary()
        assert pi[1] == pytest.approx((1 - a) / ((1 - a) + (1 - b)))

    def test_product_chain_is_kronecker(self):
        ta = np.array([[0.9, 0.1], [0.3, 0.7]])
        tb = np.array([[0.5, 0.5], [0.2, 0.8]])
        joint = product_chain(
            [MarkovChain.from_transition(ta), MarkovChain.from_transition(tb)]
        )
        assert joint.n_states == 4
        np.testing.assert_allclose(joint.transition, np.kron(ta, tb))
        # First chain most significant: joint state 2 is (a=1, b=0).
        pa = MarkovChain.from_transition(ta).stationary()
        pb = MarkovChain.from_transition(tb).stationary()
        np.testing.assert_allclose(
            joint.stationary(), np.kron(pa, pb), atol=1e-9
        )

    def test_product_chain_single_is_identity(self):
        ta = np.array([[0.9, 0.1], [0.3, 0.7]])
        joint = product_chain([MarkovChain.from_transition(ta)])
        np.testing.assert_allclose(joint.transition, ta)

    def test_product_chain_rejects_empty(self):
        with pytest.raises(ValueError):
            product_chain([])
