"""Tests for online model training (Section 6, "Profiling").

"The application can be profiled to gather statistical information of
the differences between the actually consumed resources and the
predicted values.  The information can be used for on-line model
training."
"""

from __future__ import annotations

import numpy as np

from repro.core.computation import (
    EwmaMarkovPredictor,
    MarkovPredictor,
    PredictionContext,
)

CTX = PredictionContext()


def ar1(phi: float, n: int, seed: int, mean: float = 20.0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    x = np.empty(n)
    x[0] = 0.0
    for i in range(1, n):
        x[i] = phi * x[i - 1] + rng.normal()
    return x + mean


def walk(predictor, series) -> float:
    """Walk-forward MSE."""
    errs = []
    for v in series:
        errs.append((predictor.predict(CTX) - v) ** 2)
        predictor.observe(float(v), CTX)
    return float(np.mean(errs[5:]))


class TestOnlineMarkovUpdate:
    def test_adapts_to_changed_dynamics(self):
        """Train on weakly correlated data, test on strongly
        correlated data: online updating must shrink the error."""
        train = [ar1(0.2, 2000, seed=1)]
        test = ar1(0.95, 4000, seed=2)
        static = MarkovPredictor.fit(train, online_update=False)
        online = MarkovPredictor.fit(train, online_update=True)
        assert walk(online, test) < walk(static, test)

    def test_counts_grow_only_when_enabled(self):
        train = [ar1(0.5, 500, seed=3)]
        static = MarkovPredictor.fit(train, online_update=False)
        online = MarkovPredictor.fit(train, online_update=True)
        c_static = static.chain.counts.sum()
        c_online = online.chain.counts.sum()
        for v in ar1(0.5, 50, seed=4):
            static.observe(float(v), CTX)
            online.observe(float(v), CTX)
        assert static.chain.counts.sum() == c_static
        assert online.chain.counts.sum() > c_online


class TestOnlineEwmaMarkov:
    def test_online_flag_updates_residual_chain(self):
        train = [ar1(0.3, 800, seed=5)]
        p = EwmaMarkovPredictor.fit(train, online_update=True)
        before = p.chain.counts.sum()
        for v in ar1(0.3, 60, seed=6):
            p.observe(float(v), CTX)
        assert p.chain.counts.sum() > before

    def test_transition_rows_stay_stochastic(self):
        train = [ar1(0.3, 800, seed=7)]
        p = EwmaMarkovPredictor.fit(train, online_update=True)
        for v in ar1(0.8, 200, seed=8):
            p.observe(float(v), CTX)
        np.testing.assert_allclose(
            p.chain.transition.sum(axis=1), 1.0, atol=1e-9
        )
