"""Tests for model persistence."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import TripleC
from repro.core.computation import PredictionContext
from repro.core.serialize import FORMAT_VERSION, load_model, save_model


@pytest.fixture()
def saved(traces, tmp_path):
    model = TripleC.fit(traces)
    path = tmp_path / "model.json"
    save_model(model, path)
    return model, path


class TestRoundTrip:
    def test_predictions_identical(self, saved):
        model, path = saved
        loaded = load_model(path)
        model.start_sequence(initial_scenario=3)
        loaded.start_sequence(initial_scenario=3)
        for roi in (50.0, 150.0, 1048.0):
            a = model.predict(roi)
            b = loaded.predict(roi)
            assert a.scenario_id == b.scenario_id
            assert a.frame_ms == pytest.approx(b.frame_ms, rel=1e-12)
            assert a.task_ms == pytest.approx(b.task_ms, rel=1e-12)
            assert a.external_bytes == b.external_bytes

    def test_observe_then_predict_identical(self, saved):
        model, path = saved
        loaded = load_model(path)
        for m in (model, loaded):
            m.start_sequence(initial_scenario=3)
            m.observe(7, {"RDG_ROI": 5.0, "REG": 2.0, "CPLS_SEL": 0.6}, 150.0)
            m.observe(7, {"RDG_ROI": 5.5, "REG": 2.0, "CPLS_SEL": 0.5}, 150.0)
        assert model.predict(150.0).frame_ms == pytest.approx(
            loaded.predict(150.0).frame_ms, rel=1e-12
        )

    def test_scenario_table_preserved(self, saved):
        model, path = saved
        loaded = load_model(path)
        np.testing.assert_array_equal(
            model.scenarios.counts, loaded.scenarios.counts
        )

    def test_train_means_preserved(self, saved):
        model, path = saved
        loaded = load_model(path)
        assert loaded.computation.train_mean_ms == pytest.approx(
            model.computation.train_mean_ms
        )

    def test_online_state_not_persisted(self, saved):
        """Saved models start cold: EWMA/Markov state is per-sequence."""
        model, path = saved
        model.start_sequence(initial_scenario=3)
        model.observe(3, {"CPLS_SEL": 99.0}, 100.0)
        save_model(model, path)  # overwrite after observing
        loaded = load_model(path)
        loaded.start_sequence(initial_scenario=3)
        p = loaded.computation.predictors["CPLS_SEL"]
        # A cold predictor falls back to the training mean, far from 99.
        assert p.predict(PredictionContext()) < 50.0


class TestPredictorRoundTrips:
    def test_random_chains_round_trip(self, tmp_path):
        """Property-style: chains built from random data survive the
        dict round-trip exactly."""
        import numpy as np

        from repro.core.markov import MarkovChain
        from repro.core.serialize import _chain_from_dict, _chain_to_dict

        for seed in range(12):
            rng = np.random.default_rng(seed)
            series = rng.gamma(2.0, 3.0, size=rng.integers(20, 400))
            chain = MarkovChain.fit([series])
            back = _chain_from_dict(_chain_to_dict(chain))
            np.testing.assert_array_equal(back.transition, chain.transition)
            np.testing.assert_array_equal(back.counts, chain.counts)
            np.testing.assert_array_equal(
                back.quantizer.edges, chain.quantizer.edges
            )
            for v in (series.min(), float(np.median(series)), series.max()):
                assert back.predict_next(v) == chain.predict_next(v)

    def test_every_predictor_kind_serializes(self, tmp_path):
        import numpy as np

        from repro.core.computation import (
            ConstantPredictor,
            EwmaMarkovPredictor,
            LastValuePredictor,
            MarkovPredictor,
            PredictionContext,
            RoiLinearMarkovPredictor,
        )
        from repro.core.serialize import (
            _predictor_from_dict,
            _predictor_to_dict,
        )

        rng = np.random.default_rng(3)
        series = [rng.normal(10, 1, 200)]
        roi = rng.uniform(50, 300, 200)
        preds = [
            ConstantPredictor.fit(series),
            LastValuePredictor.fit(series),
            MarkovPredictor.fit(series),
            EwmaMarkovPredictor.fit(series),
            RoiLinearMarkovPredictor.fit([(roi, 0.05 * roi + 2)]),
        ]
        ctx = PredictionContext(roi_kpixels=120.0)
        for p in preds:
            q = _predictor_from_dict(_predictor_to_dict(p))
            assert q.predict(ctx) == pytest.approx(p.predict(ctx), rel=1e-12)

    def test_unknown_predictor_type_rejected(self):
        from repro.core.serialize import _predictor_from_dict

        with pytest.raises(ValueError):
            _predictor_from_dict({"type": "wizard"})

    def test_scenario_conditioned_round_trips(self, traces):
        from repro.core.computation import (
            PredictionContext,
            ScenarioConditionedPredictor,
        )
        from repro.core.serialize import (
            _predictor_from_dict,
            _predictor_to_dict,
        )

        p = ScenarioConditionedPredictor.fit(traces, "CPLS_SEL")
        q = _predictor_from_dict(_predictor_to_dict(p))
        assert set(q.inner) == set(p.inner)
        for sid in (3, 5, None):
            ctx = PredictionContext(roi_kpixels=100.0, scenario_id=sid)
            assert q.predict(ctx) == pytest.approx(p.predict(ctx), rel=1e-12)


class TestFormat:
    def test_version_checked(self, saved, tmp_path):
        _, path = saved
        doc = json.loads(path.read_text())
        doc["format_version"] = FORMAT_VERSION + 1
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps(doc))
        with pytest.raises(ValueError):
            load_model(bad)

    def test_json_is_plain(self, saved):
        _, path = saved
        doc = json.loads(path.read_text())
        assert set(doc) == {
            "format_version",
            "graph",
            "platform",
            "rate_hz",
            "predictors",
            "train_mean_ms",
            "scenario_counts",
        }

    def test_identifiers_recorded(self, saved):
        from repro.core.serialize import GRAPH_NAME
        from repro.hw.spec import blackford

        _, path = saved
        doc = json.loads(path.read_text())
        assert doc["format_version"] == FORMAT_VERSION
        assert doc["graph"] == GRAPH_NAME
        assert doc["platform"] == blackford().name

    def test_v1_document_still_loads(self, saved, tmp_path):
        """A pre-identifier (v1) document loads and predicts
        identically to its v2 form."""
        _, path = saved
        doc = json.loads(path.read_text())
        doc["format_version"] = 1
        del doc["graph"]
        del doc["platform"]
        v1 = tmp_path / "v1.json"
        v1.write_text(json.dumps(doc))
        old = load_model(v1)
        new = load_model(path)
        old.start_sequence(initial_scenario=3)
        new.start_sequence(initial_scenario=3)
        for roi in (50.0, 150.0, 1048.0):
            a, b = old.predict(roi), new.predict(roi)
            assert a.scenario_id == b.scenario_id
            assert a.frame_ms == b.frame_ms
            assert a.task_ms == b.task_ms

    def test_graph_mismatch_rejected(self, saved, tmp_path):
        _, path = saved
        doc = json.loads(path.read_text())
        doc["graph"] = "other-pipeline"
        bad = tmp_path / "bad_graph.json"
        bad.write_text(json.dumps(doc))
        with pytest.raises(ValueError, match="other-pipeline"):
            load_model(bad)

    def test_platform_mismatch_rejected(self, saved, tmp_path):
        _, path = saved
        doc = json.loads(path.read_text())
        doc["platform"] = "epyc-1x-64"
        bad = tmp_path / "bad_platform.json"
        bad.write_text(json.dumps(doc))
        with pytest.raises(ValueError, match="epyc-1x-64"):
            load_model(bad)


class TestWorkloadInference:
    """``save_model`` stamps the workload the model's graph belongs to."""

    def _fit(self, name):
        from repro.profiling import ProfileConfig, profile_corpus
        from repro.synthetic import CorpusSpec, XRaySequence
        from repro.workloads import get_workload

        wl = get_workload(name)
        spec = CorpusSpec(n_sequences=1, total_frames=12, base_seed=17)
        seqs = [XRaySequence(c) for c in wl.corpus_configs(spec)]
        return TripleC.fit(profile_corpus(seqs, ProfileConfig(workload=name)))

    def test_fit_resolves_graph_from_trace_provenance(self):
        from repro.workloads import get_workload

        model = self._fit("ultrasound")
        assert set(model.graph.tasks) == set(
            get_workload("ultrasound").build_graph().tasks
        )

    def test_round_trip_keeps_workload_graph(self, tmp_path):
        model = self._fit("ultrasound")
        path = tmp_path / "us.json"
        save_model(model, path)
        assert json.loads(path.read_text())["graph"] == "ultrasound"
        loaded = load_model(path)
        assert set(loaded.graph.tasks) == set(model.graph.tasks)
        model.start_sequence(initial_scenario=3)
        loaded.start_sequence(initial_scenario=3)
        assert loaded.predict(100.0).frame_ms == pytest.approx(
            model.predict(100.0).frame_ms, rel=1e-12
        )

    def test_unregistered_graph_needs_explicit_name(self, traces, tmp_path):
        import dataclasses

        model = TripleC.fit(traces)
        foreign = dataclasses.replace(model, graph=_empty_graph())
        with pytest.raises(ValueError, match="pass"):
            save_model(foreign, tmp_path / "nope.json")


def _empty_graph():
    from repro.graph.flowgraph import FlowGraph

    return FlowGraph({}, [], lambda state: [])
