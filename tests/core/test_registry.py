"""Tests for the predictor-backend registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.computation import (
    ComputationModel,
    ConstantPredictor,
    EwmaMarkovPredictor,
    PredictionContext,
    ScenarioConditionedPredictor,
)
from repro.core.registry import (
    PredictorBackend,
    get_predictor,
    predictor_from_dict,
    predictor_to_dict,
    register_predictor,
    registered_kinds,
)


class TestLookup:
    def test_builtin_kinds_registered(self):
        kinds = registered_kinds()
        for k in (
            "constant",
            "last-value",
            "markov",
            "ewma+markov",
            "roi+markov",
            "scenario-conditioned",
        ):
            assert k in kinds

    def test_alias_resolves_to_same_backend(self):
        canonical = get_predictor("scenario-conditioned")
        assert get_predictor("scenario+ewma+markov") is canonical
        assert canonical.cls is ScenarioConditionedPredictor

    def test_unknown_kind_raises_value_error(self):
        with pytest.raises(ValueError, match="unknown predictor kind"):
            get_predictor("wizard")

    def test_unknown_kind_rejected_at_fit(self, traces):
        with pytest.raises(ValueError, match="unknown predictor kind"):
            ComputationModel.fit(traces, predictor_kinds={"RDG_FULL": "wizard"})


class TestBackendFit:
    def test_fit_matches_direct_class_fit(self, traces):
        backend = get_predictor("constant")
        p = backend.fit(traces, "REG", alpha=0.3, online_update=False)
        q = ConstantPredictor.fit(traces.task_series("REG"))
        assert p.value_ms == q.value_ms

    def test_ewma_markov_fit_threads_options(self, traces):
        backend = get_predictor("ewma+markov")
        p = backend.fit(traces, "RDG_FULL", alpha=0.5, online_update=True)
        assert isinstance(p, EwmaMarkovPredictor)
        assert p.alpha == 0.5
        assert p.online_update is True

    def test_model_fit_resolves_through_registry(self, traces):
        model = ComputationModel.fit(
            traces, predictor_kinds={"REG": "last-value"}
        )
        assert model.predictors["REG"].kind == "last-value"


class TestCustomBackend:
    def test_registered_backend_usable_end_to_end(self, traces):
        class MedianPredictor:
            kind = "median"

            def __init__(self, value_ms: float) -> None:
                self.value_ms = float(value_ms)

            def predict(self, ctx: PredictionContext) -> float:
                return self.value_ms

            def observe(self, ms: float, ctx: PredictionContext) -> None:
                return None

            def reset(self) -> None:
                return None

        register_predictor(
            PredictorBackend(
                name="median-test",
                cls=MedianPredictor,
                fit=lambda tr, task, **opts: MedianPredictor(
                    float(np.median(np.concatenate(tr.task_series(task))))
                ),
                to_dict=lambda p: {"type": "median-test", "value_ms": p.value_ms},
                from_dict=lambda d: MedianPredictor(float(d["value_ms"])),
            )
        )
        model = ComputationModel.fit(
            traces, predictor_kinds={"REG": "median-test"}
        )
        p = model.predictors["REG"]
        assert isinstance(p, MedianPredictor)
        doc = predictor_to_dict(p)
        q = predictor_from_dict(doc)
        assert q.predict(PredictionContext()) == p.predict(PredictionContext())

    def test_unregistered_class_cannot_serialize(self):
        class Rogue:
            pass

        with pytest.raises(TypeError, match="cannot serialize"):
            predictor_to_dict(Rogue())


class TestFallbackProperty:
    def test_public_fallback_matches_training_mean(self, traces):
        series = traces.task_series("RDG_FULL")
        p = EwmaMarkovPredictor.fit(series)
        mean = float(np.concatenate([np.asarray(s) for s in series]).mean())
        assert p.fallback_ms == pytest.approx(mean)
        # Serialization reads the public property, not private state.
        assert predictor_to_dict(p)["fallback_ms"] == p.fallback_ms
