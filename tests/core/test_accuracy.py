"""Tests for the prediction-accuracy metric."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.accuracy import prediction_accuracy


class TestPredictionAccuracy:
    def test_perfect_prediction(self):
        a = np.array([10.0, 20.0, 30.0])
        rep = prediction_accuracy(a, a)
        assert rep.mean_accuracy == 1.0
        assert rep.excursion_fraction == 0.0
        assert rep.max_relative_error == 0.0

    def test_known_errors(self):
        rep = prediction_accuracy(
            np.array([11.0, 30.0]), np.array([10.0, 20.0])
        )
        # errors: 10% and 50% -> accuracies 0.9, 0.5.
        assert rep.mean_accuracy == pytest.approx(0.7)
        assert rep.excursion_fraction == pytest.approx(0.5)
        assert rep.max_relative_error == pytest.approx(0.5)

    def test_excursion_threshold(self):
        rep = prediction_accuracy(
            np.array([1.25]), np.array([1.0]), excursion_threshold=0.3
        )
        assert rep.excursion_fraction == 0.0

    def test_accuracy_clipped_at_zero(self):
        rep = prediction_accuracy(np.array([100.0]), np.array([1.0]))
        assert rep.mean_accuracy == 0.0

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            prediction_accuracy(np.zeros(3), np.zeros(4))
        with pytest.raises(ValueError):
            prediction_accuracy(np.empty(0), np.empty(0))

    @given(
        st.lists(
            st.floats(min_value=0.1, max_value=1e4),
            min_size=1,
            max_size=50,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_property_bounds(self, actual):
        a = np.asarray(actual)
        rng = np.random.default_rng(0)
        p = a * rng.uniform(0.5, 1.5, a.size)
        rep = prediction_accuracy(p, a)
        assert 0.0 <= rep.mean_accuracy <= 1.0
        assert 0.0 <= rep.excursion_fraction <= 1.0
        assert rep.max_relative_error >= 0.0
        assert rep.n == a.size
