"""Tests for the analytic cache-memory model (Table 1 / Fig. 5)."""

from __future__ import annotations

import pytest

from repro.core.cachemodel import CacheMemoryModel, table1_rows
from repro.graph import build_stentboost_graph
from repro.hw.spec import blackford
from repro.imaging.pipeline import SwitchState
from repro.util.units import KIB, MIB


@pytest.fixture(scope="module")
def cm():
    return CacheMemoryModel(build_stentboost_graph(), blackford())


class TestTable1Rows:
    def test_contains_all_stream_tasks(self):
        rows = table1_rows(build_stentboost_graph())
        names = {r[0] for r in rows}
        assert {"RDG_FULL", "RDG_ROI", "ENH", "ZOOM"} <= names
        assert "CPLS_SEL" not in names  # feature tasks excluded
        assert "RDG_DETECT" not in names  # pre-check excluded


class TestPredictTask:
    def test_rdg_full_overflows(self, cm):
        pred = cm.predict_task("RDG_FULL")
        assert not pred.fits
        assert pred.eviction_bytes > 0
        assert pred.working_set_bytes == (2048 + 7168 + 5120) * KIB

    def test_paper_overflow_set(self, cm):
        """Section 5.2 names RDG FULL, ENH and ZOOM as overflowing."""
        overflow = set(cm.overflow_tasks())
        assert {"RDG_FULL", "ENH", "ZOOM"} <= overflow

    def test_feature_task_fits(self, cm):
        pred = cm.predict_task("REG")
        assert pred.fits
        assert pred.eviction_bytes == 0

    def test_roi_scaling_reduces_footprint(self, cm):
        full = cm.predict_task("RDG_ROI", roi_kpixels=1048.0)
        small = cm.predict_task("RDG_ROI", roi_kpixels=100.0)
        assert small.working_set_bytes < full.working_set_bytes
        assert small.eviction_bytes <= full.eviction_bytes

    def test_roi_oblivious_mode(self):
        cm2 = CacheMemoryModel(
            build_stentboost_graph(), blackford(), roi_aware=False
        )
        a = cm2.predict_task("RDG_ROI", roi_kpixels=1048.0)
        b = cm2.predict_task("RDG_ROI", roi_kpixels=50.0)
        assert a.working_set_bytes == b.working_set_bytes

    def test_full_tasks_never_roi_scaled(self, cm):
        a = cm.predict_task("RDG_FULL", roi_kpixels=50.0)
        b = cm.predict_task("RDG_FULL", roi_kpixels=1048.0)
        assert a.working_set_bytes == b.working_set_bytes


class TestPredictFrame:
    def test_active_tasks_only(self, cm):
        state = SwitchState(False, False, False)
        preds = cm.predict_frame(state)
        assert set(preds) == set(
            build_stentboost_graph().active_tasks(state)
        )

    def test_success_scenario_more_traffic(self, cm):
        fail = cm.frame_external_bytes(SwitchState(True, False, False))
        ok = cm.frame_external_bytes(SwitchState(True, False, True))
        assert ok > fail

    def test_eviction_subset_of_external(self, cm):
        state = SwitchState(True, False, True)
        assert cm.frame_eviction_bytes(state) < cm.frame_external_bytes(state)

    def test_worst_case_scenario_magnitude(self, cm):
        """Worst scenario moves tens of MB per frame (all big tasks)."""
        ext = cm.frame_external_bytes(SwitchState(True, False, True))
        assert 20 * MIB < ext < 120 * MIB
