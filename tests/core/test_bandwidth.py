"""Tests for the analytic bandwidth model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bandwidth import BandwidthModel
from repro.graph import build_stentboost_graph
from repro.hw.spec import blackford
from repro.imaging.pipeline import SwitchState


@pytest.fixture(scope="module")
def bw():
    return BandwidthModel(build_stentboost_graph(), blackford())


class TestScenarioBandwidth:
    def test_worst_beats_best(self, bw):
        worst, best = bw.worst_best_case()
        assert worst.total_mbps > 3 * best.total_mbps
        assert worst.scenario_id == SwitchState(True, False, True).scenario_id

    def test_decomposition_adds_up(self, bw):
        sb = bw.scenario_bandwidth(SwitchState(True, False, True))
        assert sb.total_mbps == pytest.approx(sb.inter_task_mbps + sb.swap_mbps)
        assert sb.swap_mbps > 0  # RDG FULL / ENH / ZOOM overflow

    def test_edge_labels_delegate_to_graph(self, bw):
        labels = bw.edge_labels(SwitchState(True, False, True))
        assert labels[("INPUT", "RDG_FULL")] == pytest.approx(62.9, abs=0.1)

    def test_frame_external_scales_with_scenario(self, bw):
        lo = bw.frame_external_bytes(SwitchState(False, True, False), roi_kpixels=80.0)
        hi = bw.frame_external_bytes(SwitchState(True, False, True))
        assert hi > 10 * lo


class TestTraceValidation:
    def test_predicted_vs_measured_shapes(self, bw, traces):
        p = bw.predicted_trace_bytes(traces)
        m = bw.measured_trace_bytes(traces)
        assert p.shape == m.shape == (len(traces),)
        assert np.all(p >= 0) and np.all(m >= 0)

    def test_accuracy_near_paper(self, bw, traces):
        """Section 7: ~90 % bandwidth/cache prediction accuracy."""
        from repro.core import prediction_accuracy

        rep = prediction_accuracy(
            bw.predicted_trace_bytes(traces), bw.measured_trace_bytes(traces)
        )
        assert rep.mean_accuracy > 0.70  # loose bound on the tiny corpus
