"""Tests for the scenario state table."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.scenario import N_SCENARIOS, ScenarioTable
from repro.imaging.pipeline import SwitchState


class TestScenarioTable:
    def test_fit_counts_transitions(self):
        table = ScenarioTable.fit([np.array([3, 3, 7, 3])])
        assert table.counts[3, 3] == 1
        assert table.counts[3, 7] == 1
        assert table.counts[7, 3] == 1

    def test_chains_do_not_cross_sequences(self):
        table = ScenarioTable.fit([np.array([1, 1]), np.array([2, 2])])
        assert table.counts[1, 2] == 0

    def test_rows_stochastic(self, traces):
        table = ScenarioTable.fit(traces.scenario_chains())
        np.testing.assert_allclose(table.transition.sum(axis=1), 1.0, atol=1e-9)

    def test_unseen_rows_uniform(self):
        table = ScenarioTable.fit([np.array([0, 0, 0])])
        np.testing.assert_allclose(table.transition[5], 1.0 / N_SCENARIOS)

    def test_sticky_prediction(self):
        """Steady-state scenarios predict themselves (persistence)."""
        chain = np.array([3] * 50 + [7] + [3] * 50)
        table = ScenarioTable.fit([chain])
        assert table.predict_next(3) == 3

    def test_tie_breaks_to_current(self):
        table = ScenarioTable(np.zeros((8, 8)))
        # Uniform row: prediction must stay at the current scenario.
        assert table.predict_next(5) == 5

    def test_predict_state_wrapper(self):
        table = ScenarioTable.fit([np.array([3, 3, 3])])
        nxt = table.predict_state(SwitchState.from_scenario_id(3))
        assert nxt.scenario_id == 3

    def test_observe_online(self):
        table = ScenarioTable()
        table.observe(2, 5)
        assert table.counts[2, 5] == 1
        with pytest.raises(ValueError):
            table.observe(8, 0)

    def test_invalid_chain_values(self):
        with pytest.raises(ValueError):
            ScenarioTable.fit([np.array([0, 9])])

    def test_stationary_sums_to_one(self, traces):
        table = ScenarioTable.fit(traces.scenario_chains())
        pi = table.stationary()
        assert pi.sum() == pytest.approx(1.0)
        assert np.all(pi >= 0)
