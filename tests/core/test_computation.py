"""Tests for the per-task computation-time predictors (Table 2b)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.computation import (
    ComputationModel,
    ConstantPredictor,
    EwmaMarkovPredictor,
    MarkovPredictor,
    PredictionContext,
    RoiLinearMarkovPredictor,
    predict_series_loop,
)

CTX = PredictionContext(roi_kpixels=100.0)


class TestConstantPredictor:
    def test_predicts_training_mean(self):
        p = ConstantPredictor.fit([np.array([2.0, 2.2, 1.8])])
        assert p.predict(CTX) == pytest.approx(2.0)

    def test_observe_is_noop(self):
        p = ConstantPredictor(value_ms=5.0)
        p.observe(100.0, CTX)
        assert p.predict(CTX) == 5.0


class TestMarkovPredictor:
    def test_fallback_before_first_observation(self):
        rng = np.random.default_rng(0)
        p = MarkovPredictor.fit([rng.normal(10, 1, 1000)])
        assert p.predict(CTX) == pytest.approx(10.0, abs=0.5)

    def test_tracks_after_observation(self):
        rng = np.random.default_rng(1)
        phi, n = 0.9, 10_000
        x = np.empty(n)
        x[0] = 0
        for i in range(1, n):
            x[i] = phi * x[i - 1] + rng.normal()
        x += 20.0
        p = MarkovPredictor.fit([x])
        p.observe(x.max(), CTX)
        high = p.predict(CTX)
        p.reset()
        p.observe(x.min(), CTX)
        low = p.predict(CTX)
        assert high > low  # conditional expectation moves with state

    def test_reset(self):
        p = MarkovPredictor.fit([np.random.default_rng(2).normal(5, 1, 500)])
        p.observe(9.0, CTX)
        p.reset()
        assert p.predict(CTX) == pytest.approx(5.0, abs=0.3)


class TestEwmaMarkovPredictor:
    def test_causal_residuals_definition(self):
        x = np.array([10.0, 12.0, 11.0])
        res = EwmaMarkovPredictor.causal_residuals(x, alpha=0.5)
        # y0=10 -> r1 = 12-10 = 2; y1 = 11 -> r2 = 11-11 = 0.
        np.testing.assert_allclose(res, [2.0, 0.0])

    def test_tracks_level_shift(self):
        """The EWMA part must follow a structural level change."""
        p = EwmaMarkovPredictor.fit(
            [np.random.default_rng(3).normal(40, 1, 500)], alpha=0.3
        )
        for _ in range(30):
            p.observe(60.0, CTX)
        assert p.predict(CTX) == pytest.approx(60.0, abs=2.0)

    def test_prediction_positive(self):
        p = EwmaMarkovPredictor.fit(
            [np.random.default_rng(4).normal(5, 2, 500)]
        )
        p.observe(0.1, CTX)
        p.observe(0.1, CTX)
        assert p.predict(CTX) > 0

    def test_beats_constant_on_drifting_series(self):
        """On slow drift + noise, EWMA+Markov must beat the constant
        model -- the motivation of Section 4's decomposition."""
        rng = np.random.default_rng(5)
        n = 2000
        drift = 40 + 8 * np.sin(np.arange(n) / 150)
        x = drift + rng.normal(0, 0.8, n)
        train, test = x[:1000], x[1000:]
        p = EwmaMarkovPredictor.fit([train], alpha=0.3)
        const = ConstantPredictor.fit([train])
        err_p, err_c = [], []
        for v in test:
            err_p.append((p.predict(CTX) - v) ** 2)
            err_c.append((const.predict(CTX) - v) ** 2)
            p.observe(v, CTX)
            const.observe(v, CTX)
        assert np.mean(err_p) < 0.2 * np.mean(err_c)

    def test_degenerate_training_falls_back_to_mean(self):
        p = EwmaMarkovPredictor.fit([np.array([3.0])])
        assert p.predict(CTX) == pytest.approx(3.0)

    def test_reset_clears_state(self):
        p = EwmaMarkovPredictor.fit([np.random.default_rng(6).normal(10, 1, 300)])
        p.observe(50.0, CTX)
        p.reset()
        assert p.predict(CTX) == pytest.approx(10.0, abs=1.0)


class TestRoiLinearMarkovPredictor:
    def _roi_series(self, slope=0.05, intercept=4.0, n=400, seed=7):
        rng = np.random.default_rng(seed)
        roi = rng.uniform(20, 300, n)
        ms = slope * roi + intercept + rng.normal(0, 0.1, n)
        return [(roi, ms)]

    def test_recovers_linear_growth(self):
        p = RoiLinearMarkovPredictor.fit(self._roi_series())
        assert p.slope == pytest.approx(0.05, abs=0.005)
        assert p.intercept == pytest.approx(4.0, abs=0.5)

    def test_prediction_uses_roi(self):
        p = RoiLinearMarkovPredictor.fit(self._roi_series())
        small = p.predict(PredictionContext(roi_kpixels=50.0))
        large = p.predict(PredictionContext(roi_kpixels=250.0))
        assert large - small == pytest.approx(0.05 * 200.0, rel=0.15)

    def test_constant_roi_degenerates_gracefully(self):
        roi = np.full(100, 80.0)
        ms = np.full(100, 8.0)
        p = RoiLinearMarkovPredictor.fit([(roi, ms)])
        assert p.slope == 0.0
        assert p.predict(PredictionContext(roi_kpixels=80.0)) == pytest.approx(8.0, abs=0.2)

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValueError):
            RoiLinearMarkovPredictor.fit([(np.array([1.0]), np.array([1.0]))])


class TestComputationModel:
    def test_fit_assigns_table2b_kinds(self, traces):
        model = ComputationModel.fit(traces)
        kinds = dict(model.summary())
        assert kinds["REG"] == "constant"
        assert kinds["CPLS_SEL"] == "<Eq. 1> + Markov"
        assert kinds["GW_EXT"] == "<Eq. 1> + Markov"
        if "RDG_FULL" in kinds:
            assert kinds["RDG_FULL"] == "<Eq. 1> + Markov"
        if "RDG_ROI" in kinds:
            assert kinds["RDG_ROI"] == "<Eq. 3> + Markov"

    def test_train_means_recorded(self, traces):
        model = ComputationModel.fit(traces)
        assert model.train_mean_ms["REG"] == pytest.approx(2.0, abs=0.1)

    def test_predict_tasks_unknown_task_zero(self, traces):
        model = ComputationModel.fit(traces)
        out = model.predict_tasks(["REG", "UNKNOWN"], CTX)
        assert out["UNKNOWN"] == 0.0
        assert out["REG"] > 0

    def test_override_kinds(self, traces):
        model = ComputationModel.fit(
            traces, predictor_kinds={"CPLS_SEL": "markov"}
        )
        assert dict(model.summary())["CPLS_SEL"] == "Markov"

    def test_unknown_kind_rejected(self, traces):
        with pytest.raises(ValueError):
            ComputationModel.fit(traces, predictor_kinds={"REG": "magic"})

    def test_observe_then_reset(self, traces):
        model = ComputationModel.fit(traces)
        model.observe_frame({"CPLS_SEL": 1.0}, CTX)
        model.reset()  # must not raise and must clear online state


class TestPredictSeries:
    """Batch predict_series must replay the scalar protocol exactly."""

    @staticmethod
    def _series(seed: int, n: int = 400) -> np.ndarray:
        rng = np.random.default_rng(seed)
        return np.abs(rng.normal(10, 2, n)) + 0.5

    def test_constant_batch_matches_loop(self):
        x = self._series(20)
        p = ConstantPredictor.fit([x])
        np.testing.assert_array_equal(
            p.predict_series(x), predict_series_loop(p, x)
        )

    def test_last_value_batch_matches_loop(self):
        from repro.core.computation import LastValuePredictor

        x = self._series(21)
        p = LastValuePredictor.fit([x])
        np.testing.assert_array_equal(
            p.predict_series(x), predict_series_loop(p, x)
        )

    def test_markov_batch_matches_loop(self):
        x = self._series(22)
        p = MarkovPredictor.fit([x[:200], x[200:]])
        np.testing.assert_array_equal(
            p.predict_series(x), predict_series_loop(p, x)
        )

    def test_ewma_markov_batch_matches_loop(self):
        x = self._series(23)
        p = EwmaMarkovPredictor.fit([x[:200], x[200:]])
        np.testing.assert_array_equal(
            p.predict_series(x), predict_series_loop(p, x)
        )

    def test_roi_linear_batch_matches_loop(self):
        rng = np.random.default_rng(24)
        roi = np.abs(rng.normal(50, 10, 400))
        t = 0.1 * roi + 2.0 + rng.normal(0, 0.3, 400)
        p = RoiLinearMarkovPredictor.fit([(roi[:200], t[:200]), (roi[200:], t[200:])])
        np.testing.assert_array_equal(
            p.predict_series(t, roi), predict_series_loop(p, t, roi)
        )

    def test_online_update_falls_back_to_loop(self):
        x = self._series(25)
        p = EwmaMarkovPredictor.fit([x[:200]], online_update=True)
        # With online updates the chain mutates during evaluation; the
        # batch API must still agree because it IS the loop then.
        a = p.predict_series(x)
        p2 = EwmaMarkovPredictor.fit([x[:200]], online_update=True)
        b = predict_series_loop(p2, x)
        np.testing.assert_array_equal(a, b)

    def test_series_leaves_online_state_reset(self):
        x = self._series(26)
        p = EwmaMarkovPredictor.fit([x])
        p.observe(5.0, CTX)
        before = p.predict(CTX)
        p.predict_series(x)
        # Batch evaluation must not perturb streaming state...
        assert p.predict(CTX) == before
        # ...and the loop fallback resets it.
        predict_series_loop(p, x)
        assert p._ewma.value is None

    def test_short_series_edge_cases(self):
        x = self._series(27)
        p = EwmaMarkovPredictor.fit([x])
        for n in (0, 1, 2, 3):
            np.testing.assert_array_equal(
                p.predict_series(x[:n]), predict_series_loop(p, x[:n])
            )

    def test_model_predict_task_series(self, traces):
        model = ComputationModel.fit(traces)
        task = "CPLS_SEL"
        series = np.concatenate(
            [np.asarray(s) for s in traces.task_series(task)]
        )
        batch = model.predict_task_series(task, series)
        loop = predict_series_loop(model.predictors[task], series)
        np.testing.assert_array_equal(batch, loop)

    def test_model_predict_task_series_unknown_task(self, traces):
        model = ComputationModel.fit(traces)
        out = model.predict_task_series("UNKNOWN", np.ones(5))
        np.testing.assert_array_equal(out, np.zeros(5))
