"""Tests for the Triple-C facade (predict/observe loop)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import prediction_accuracy
from repro.hw import Mapping
from repro.imaging.pipeline import PipelineConfig, StentBoostPipeline, SwitchState
from repro.synthetic.sequence import SequenceConfig, XRaySequence


class TestFitAndPredict:
    def test_cold_start_assumes_worst_case(self, trained_model):
        trained_model.start_sequence()
        pred = trained_model.predict(roi_kpixels=1048.0)
        assert pred.scenario_id == SwitchState(True, False, True).scenario_id
        assert pred.frame_ms > 0
        assert pred.external_bytes > 0

    def test_prediction_tasks_match_scenario(self, trained_model):
        trained_model.start_sequence(initial_scenario=3)
        pred = trained_model.predict(roi_kpixels=100.0)
        state = SwitchState.from_scenario_id(pred.scenario_id)
        assert set(pred.task_ms) == set(
            trained_model.graph.active_tasks(state)
        )

    def test_frame_ms_is_sum(self, trained_model):
        trained_model.start_sequence(initial_scenario=3)
        pred = trained_model.predict(roi_kpixels=100.0)
        assert pred.frame_ms == pytest.approx(sum(pred.task_ms.values()))

    def test_observe_advances_scenario_state(self, trained_model):
        trained_model.start_sequence(initial_scenario=3)
        trained_model.observe(7, {"REG": 2.0}, 100.0)
        pred = trained_model.predict(roi_kpixels=100.0)
        # After observing scenario 7 the prediction conditions on it.
        assert pred.scenario_id in range(8)
        assert trained_model._current_scenario == 7

    def test_plausible_predictions_include_most_likely(self, trained_model):
        trained_model.start_sequence(initial_scenario=3)
        plaus = trained_model.plausible_predictions(100.0)
        most_likely = trained_model.scenarios.predict_next(3)
        assert most_likely in plaus
        for sid, task_ms in plaus.items():
            state = SwitchState.from_scenario_id(sid)
            assert set(task_ms) == set(trained_model.graph.active_tasks(state))

    def test_expected_frame_ms_positive(self, trained_model):
        e = trained_model.expected_frame_ms()
        assert 5.0 < e < 150.0
        worst = trained_model.expected_frame_ms(
            SwitchState(True, False, True).scenario_id
        )
        best = trained_model.expected_frame_ms(
            SwitchState(False, True, False).scenario_id
        )
        assert worst > best


class TestHeldOutAccuracy:
    def test_accuracy_above_90_percent(self, trained_model, profile_config):
        """The Section 7 headline (97 %) -- loose bound for the small
        training corpus used in tests."""
        sim = profile_config.make_simulator()
        seq = XRaySequence(SequenceConfig(n_frames=60, seed=5150, visibility_dips=1))
        pipe = StentBoostPipeline(
            PipelineConfig(
                expected_distance=seq.config.resolved_phantom().marker_separation
            )
        )
        trained_model.start_sequence()
        preds, actuals = [], []
        for img, _ in seq.iter_frames():
            roi_px = pipe.roi.pixels if pipe.roi is not None else img.size
            roi_kpx = roi_px / 1000.0 * profile_config.pixel_scale
            pred = trained_model.predict(roi_kpx)
            fa = pipe.process(img)
            res = sim.simulate_frame(
                fa.reports, Mapping.serial(), frame_key=("acc", fa.index)
            )
            if fa.index >= 3:
                preds.append(pred.frame_ms)
                actuals.append(sum(res.task_ms.values()))
            trained_model.observe(fa.scenario_id, res.task_ms, roi_kpx)
        rep = prediction_accuracy(np.asarray(preds), np.asarray(actuals))
        assert rep.mean_accuracy > 0.90
