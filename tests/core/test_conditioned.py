"""Tests for scenario-conditioned predictors."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.computation import (
    ComputationModel,
    PredictionContext,
    ScenarioConditionedPredictor,
    granularity_group,
)
from repro.profiling.traces import TraceRecord, TraceSet


class TestGranularityGroup:
    def test_roi_bit(self):
        # bit 1 of the scenario id is the ROI-mode switch.
        for sid in (0, 1, 4, 5):
            assert granularity_group(sid) == 0
        for sid in (2, 3, 6, 7):
            assert granularity_group(sid) == 1


def synthetic_traces() -> TraceSet:
    """A task with two clean regimes: 10 ms full-frame, 1 ms ROI."""
    ts = TraceSet()
    rng = np.random.default_rng(0)
    frame = 0
    for seq in range(4):
        for block, (sid, level) in enumerate([(5, 10.0), (7, 1.0), (5, 10.0)]):
            for _ in range(20):
                ts.append(
                    TraceRecord(
                        seq=seq,
                        frame=frame,
                        scenario_id=sid,
                        task_ms={"X": float(level + rng.normal(0, 0.05))},
                        roi_kpixels=100.0,
                        latency_ms=level,
                        eviction_bytes=0,
                        external_bytes=0,
                    )
                )
                frame += 1
    return ts


class TestScenarioConditionedPredictor:
    @pytest.fixture(scope="class")
    def predictor(self):
        return ScenarioConditionedPredictor.fit(synthetic_traces(), "X")

    def test_groups_trained(self, predictor):
        assert set(predictor.inner) == {0, 1}
        assert "per-granularity" in predictor.kind

    def test_predicts_per_regime(self, predictor):
        predictor.reset()
        full = PredictionContext(scenario_id=5)
        roi = PredictionContext(scenario_id=7)
        assert predictor.predict(full) == pytest.approx(10.0, abs=0.5)
        assert predictor.predict(roi) == pytest.approx(1.0, abs=0.5)

    def test_no_scenario_falls_back_to_pooled(self, predictor):
        predictor.reset()
        p = predictor.predict(PredictionContext(scenario_id=None))
        # Pooled model: somewhere between the regimes.
        assert 0.5 < p < 11.0

    def test_observe_routes_to_group(self, predictor):
        predictor.reset()
        ctx = PredictionContext(scenario_id=5)
        for _ in range(20):
            predictor.observe(12.0, ctx)
        assert predictor.predict(ctx) == pytest.approx(12.0, abs=0.5)
        # The other regime is untouched.
        assert predictor.predict(PredictionContext(scenario_id=7)) == pytest.approx(
            1.0, abs=0.5
        )
        predictor.reset()

    def test_regime_switch_beats_pooled(self):
        """On regime switches the conditioned model reacts instantly
        (the pooled EWMA must slew across the gap)."""
        from repro.core.computation import EwmaMarkovPredictor

        traces = synthetic_traces()
        cond = ScenarioConditionedPredictor.fit(traces, "X")
        pooled = EwmaMarkovPredictor.fit(traces.task_series("X"))
        # Walk a fresh regime-switching stream.
        rng = np.random.default_rng(1)
        stream = [(5, 10.0)] * 15 + [(7, 1.0)] * 15 + [(5, 10.0)] * 15
        errs_c, errs_p = [], []
        cond.reset()
        pooled.reset()
        for sid, level in stream:
            value = level + rng.normal(0, 0.05)
            ctx = PredictionContext(scenario_id=sid)
            errs_c.append(abs(cond.predict(ctx) - value))
            errs_p.append(abs(pooled.predict(ctx) - value))
            cond.observe(value, ctx)
            pooled.observe(value, ctx)
        assert np.mean(errs_c) < 0.5 * np.mean(errs_p)


class TestComputationModelIntegration:
    def test_fit_kind(self):
        traces = synthetic_traces()
        model = ComputationModel.fit(
            traces, predictor_kinds={"X": "scenario+ewma+markov"}
        )
        assert "per-granularity" in dict(model.summary())["X"]
        out = model.predict_tasks(["X"], PredictionContext(scenario_id=7))
        assert out["X"] == pytest.approx(1.0, abs=0.5)
