"""Tests for the fit_series_predictor estimate adapter."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.computation import (
    ConstantPredictor,
    EwmaMarkovPredictor,
    PredictionContext,
)
from repro.core.registry import fit_series_predictor


def series(n: int = 60) -> np.ndarray:
    # Two alternating regimes, the structure EWMA+Markov keys on.
    return np.array([100.0 if i % 6 < 3 else 300.0 for i in range(n)])


class TestFitSeriesPredictor:
    def test_constant_backend(self):
        p = fit_series_predictor("constant", series())
        assert isinstance(p, ConstantPredictor)
        assert p.predict(PredictionContext()) > 0

    def test_ewma_markov_threads_options(self):
        p = fit_series_predictor(
            "ewma+markov", series(), alpha=0.4, online_update=True
        )
        assert isinstance(p, EwmaMarkovPredictor)
        assert p.alpha == 0.4
        assert p.online_update is True

    def test_online_loop_tracks_series(self):
        p = fit_series_predictor(
            "ewma+markov", series(), alpha=0.3, online_update=True
        )
        ctx = PredictionContext()
        err = 0.0
        vals = series(120)
        for v in vals:
            err += abs(p.predict(ctx) - v)
            p.observe(float(v), ctx)
        # Mean error well under the series' own spread (200 ms swing).
        assert err / len(vals) < 120.0

    def test_rejects_empty_series(self):
        with pytest.raises(ValueError, match="non-empty"):
            fit_series_predictor("constant", np.array([]))

    def test_rejects_2d_series(self):
        with pytest.raises(ValueError, match="1-D"):
            fit_series_predictor("constant", np.zeros((3, 3)))

    def test_trace_needing_backend_rejected(self):
        with pytest.raises(ValueError, match="full profiling traces"):
            fit_series_predictor("roi+markov", series())
