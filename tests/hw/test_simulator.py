"""Tests for the discrete-event platform simulator."""

from __future__ import annotations

import pytest

from repro.graph import build_stentboost_graph
from repro.hw.cost import CostModel, TaskCostSpec
from repro.hw.mapping import Mapping
from repro.hw.simulator import PlatformSimulator
from repro.hw.spec import blackford
from repro.imaging.common import BufferAccess, WorkReport


def make_sim(**kwargs):
    plat = blackford()
    costs = {
        "A": TaskCostSpec(fixed_ms=10.0),
        "B": TaskCostSpec(fixed_ms=20.0),
        "C": TaskCostSpec(fixed_ms=5.0),
    }
    cm = CostModel(plat, pixel_scale=1.0, jitter_sigma=1e-9, spike_prob=0.0, task_costs=costs)
    return PlatformSimulator(plat, cm, **kwargs)


def chain_reports(out_bytes=0):
    return {
        "A": WorkReport(task="A", bytes_out=out_bytes),
        "B": WorkReport(task="B", bytes_out=out_bytes),
        "C": WorkReport(task="C"),
    }


class TestSerialChain:
    def test_latency_is_sum(self):
        sim = make_sim()
        res = sim.simulate_frame(chain_reports(), Mapping.serial())
        assert res.latency_ms == pytest.approx(35.0, abs=0.01)
        assert list(res.task_ms) == ["A", "B", "C"]

    def test_timings_sequential(self):
        sim = make_sim()
        res = sim.simulate_frame(chain_reports(), Mapping.serial())
        for prev, cur in zip(res.timings, res.timings[1:]):
            assert cur.start_ms >= prev.end_ms - 1e-9

    def test_start_offset(self):
        sim = make_sim()
        res = sim.simulate_frame(chain_reports(), Mapping.serial(), start_ms=100.0)
        assert res.timings[0].start_ms == pytest.approx(100.0)
        assert res.latency_ms == pytest.approx(35.0, abs=0.01)


class TestPartitioning:
    def test_two_way_split_halves_compute(self):
        sim = make_sim()
        mapping = Mapping.serial().with_partition("B", (0, 1))
        res = sim.simulate_frame(chain_reports(), mapping)
        # B now costs ~10 + fork/join instead of 20.
        assert res.latency_ms < 35.0
        assert res.latency_ms == pytest.approx(
            10 + (20 / 2 + sim.fork_ms + sim.join_ms) + 5, abs=0.05
        )

    def test_graph_validation_rejects_indivisible(self):
        graph = build_stentboost_graph()
        plat = blackford()
        cm = CostModel(plat, pixel_scale=1.0)
        sim = PlatformSimulator(plat, cm, graph=graph)
        reports = {"REG": WorkReport(task="REG")}
        mapping = Mapping.serial().with_partition("REG", (0, 1))
        with pytest.raises(ValueError):
            sim.simulate_frame(reports, mapping)

    def test_graph_allows_divisible(self):
        graph = build_stentboost_graph()
        plat = blackford()
        cm = CostModel(plat, pixel_scale=1.0)
        sim = PlatformSimulator(plat, cm, graph=graph)
        reports = {"ENH": WorkReport(task="ENH", pixels=1000)}
        mapping = Mapping.serial().with_partition("ENH", (0, 1, 2, 3))
        res = sim.simulate_frame(reports, mapping)
        assert res.latency_ms > 0

    def test_mapping_beyond_core_count_rejected(self):
        sim = make_sim()
        mapping = Mapping.serial().with_partition("A", tuple(range(9)))
        with pytest.raises(ValueError):
            sim.simulate_frame(chain_reports(), mapping)


class TestCommunication:
    def test_cross_cluster_comm_charged(self):
        sim_same = make_sim()
        sim_cross = make_sim()
        nbytes = 50_000_000  # 50 MB so the transfer time is visible
        reports = chain_reports(out_bytes=nbytes)
        same = sim_same.simulate_frame(reports, Mapping.serial())
        cross_map = Mapping(assignments={"B": (4,)}, default_core=0)
        cross = sim_cross.simulate_frame(reports, cross_map)
        assert cross.latency_ms > same.latency_ms
        assert sim_cross.ledger.total_bytes("bus") > 0
        assert sim_same.ledger.total_bytes("bus") == 0

    def test_dram_traffic_recorded(self):
        sim = make_sim()
        reports = {
            "A": WorkReport(
                task="A",
                bytes_in=1000,
                bytes_out=500,
                buffers=(BufferAccess("x", 1000),),
            )
        }
        res = sim.simulate_frame(reports, Mapping.serial())
        assert res.external_bytes == 1500
        assert sim.ledger.total_bytes("dram") == 1500
        assert sim.ledger.frames == 1


class TestFrameResult:
    def test_busy_ms(self):
        sim = make_sim()
        res = sim.simulate_frame(chain_reports(), Mapping.serial())
        assert res.busy_ms() == pytest.approx(35.0, abs=0.01)

    def test_empty_frame(self):
        sim = make_sim()
        res = sim.simulate_frame({}, Mapping.serial())
        assert res.latency_ms == 0.0
        assert res.timings == []
