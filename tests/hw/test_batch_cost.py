"""Bit-exactness of the columnar cost path (``CostModel.time_ms_many``).

The batched frame engine leans on ``time_ms_many`` producing the very
same floats as per-execution ``time_ms`` calls; these tests pin that
over real pipeline-produced work reports (every task, jittered and
noise-free) and over synthetic cache-overflow reports.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.obs as obs
from repro.experiments.common import make_pipeline
from repro.experiments.fig7 import fig7_sequence
from repro.hw.cost import CostModel
from repro.hw.spec import blackford
from repro.imaging.common import BufferAccess, WorkReport


@pytest.fixture(scope="module")
def reports_by_task():
    """Real work reports from a 32-frame fig7 sequence, keyed by task."""
    seq = fig7_sequence(n_frames=32)
    pipeline = make_pipeline(seq)
    by_task: dict[str, list[tuple[WorkReport, tuple[object, ...]]]] = {}
    for k, (img, _truth) in enumerate(seq.iter_frames()):
        analysis = pipeline.process(img)
        for report in analysis.reports.values():
            by_task.setdefault(report.task, []).append((report, ("bc", k)))
    return by_task


@pytest.fixture()
def model():
    return CostModel(blackford(), pixel_scale=16.0, seed=11)


class TestTimeMsManyParity:
    def test_bit_identical_with_jitter(self, model, reports_by_task):
        assert len(reports_by_task) >= 5  # a real task mix
        for task, pairs in reports_by_task.items():
            reports = [r for r, _ in pairs]
            keys = [k for _, k in pairs]
            batch = model.time_ms_many(task, reports, keys)
            for i, (report, key) in enumerate(pairs):
                ref = model.time_ms(report, frame_key=key)
                assert batch.base_ms[i] == ref.base_ms
                assert batch.content_ms[i] == ref.content_ms
                assert batch.cache_stall_ms[i] == ref.cache_stall_ms
                assert batch.jitter_ms[i] == ref.jitter_ms
                assert batch.total_ms[i] == ref.total_ms
                assert batch.eviction_bytes[i] == ref.cache.eviction_bytes
                assert batch.external_bytes[i] == ref.cache.external_bytes

    def test_bit_identical_noise_free(self, model, reports_by_task):
        for task, pairs in reports_by_task.items():
            reports = [r for r, _ in pairs]
            keys = [k for _, k in pairs]
            batch = model.time_ms_many(task, reports, keys, with_jitter=False)
            for i, (report, key) in enumerate(pairs):
                ref = model.time_ms(report, frame_key=key, with_jitter=False)
                assert batch.jitter_ms[i] == 0.0
                assert batch.total_ms[i] == ref.total_ms

    def test_cache_overflow_reports(self, model):
        # Working sets straddling the L2 capacity exercise the eviction
        # branch (np.rint / masked divide) against int(round(...)).
        cap = model.platform.l2.capacity_bytes
        reports = [
            WorkReport(
                task="ENH",
                pixels=50_000,
                bytes_in=nbytes // 2,
                bytes_out=nbytes // 2,
                buffers=(
                    BufferAccess("a", nbytes // 2, passes=1.5),
                    BufferAccess("b", nbytes - nbytes // 2),
                ),
            )
            for nbytes in (0, cap // 32, cap // 16, cap // 8, cap, 3 * cap)
        ]
        keys = [("ovf", i) for i in range(len(reports))]
        batch = model.time_ms_many("ENH", reports, keys)
        assert batch.eviction_bytes.max() > 0
        assert batch.eviction_bytes.min() == 0
        for i, (report, key) in enumerate(zip(reports, keys)):
            ref = model.time_ms(report, frame_key=key)
            assert batch.cache_stall_ms[i] == ref.cache_stall_ms
            assert batch.total_ms[i] == ref.total_ms
            assert batch.eviction_bytes[i] == ref.cache.eviction_bytes
            assert batch.external_bytes[i] == ref.cache.external_bytes

    def test_empty_batch(self, model):
        batch = model.time_ms_many("REG", [], [])
        assert batch.total_ms.shape == (0,)

    def test_length_mismatch_raises(self, model):
        with pytest.raises(ValueError):
            model.time_ms_many("REG", [], [("k",)])

    def test_unknown_task_raises(self, model):
        with pytest.raises(KeyError):
            model.time_ms_many("NOPE", [], [])

    def test_metrics_match_scalar_loop(self, model, reports_by_task):
        task, pairs = max(reports_by_task.items(), key=lambda kv: len(kv[1]))
        reports = [r for r, _ in pairs]
        keys = [k for _, k in pairs]

        with obs.observed() as scalar_obs:
            for report, key in pairs:
                model.time_ms(report, frame_key=key)
        with obs.observed() as batch_obs:
            model.time_ms_many(task, reports, keys)

        assert (
            scalar_obs.metrics.snapshot() == batch_obs.metrics.snapshot()
        )
