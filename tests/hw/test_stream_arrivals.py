"""Tests for explicit-arrival stream simulation (multi-app support)."""

from __future__ import annotations

import pytest

from repro.hw.cost import CostModel, TaskCostSpec
from repro.hw.mapping import Mapping
from repro.hw.simulator import PlatformSimulator
from repro.hw.spec import blackford
from repro.imaging.common import WorkReport


def make_sim(task_ms: float = 20.0) -> PlatformSimulator:
    cm = CostModel(
        blackford(),
        pixel_scale=1.0,
        jitter_sigma=1e-12,
        spike_prob=0.0,
        task_costs={"T": TaskCostSpec(fixed_ms=task_ms)},
    )
    return PlatformSimulator(blackford(), cm)


def frame(core: int, key):
    return ({"T": WorkReport(task="T")}, Mapping.serial(core=core), key)


class TestExplicitArrivals:
    def test_simultaneous_arrivals_on_distinct_cores(self):
        sim = make_sim(20.0)
        frames = [frame(0, ("a",)), frame(1, ("b",))]
        res = sim.simulate_stream(frames, 33.3, arrivals=[0.0, 0.0])
        assert res[0].latency_ms == pytest.approx(20.0)
        assert res[1].latency_ms == pytest.approx(20.0)

    def test_simultaneous_arrivals_same_core_queue(self):
        sim = make_sim(20.0)
        frames = [frame(0, ("a",)), frame(0, ("b",))]
        res = sim.simulate_stream(frames, 33.3, arrivals=[0.0, 0.0])
        assert res[0].latency_ms == pytest.approx(20.0)
        assert res[1].latency_ms == pytest.approx(40.0)

    def test_length_mismatch_rejected(self):
        sim = make_sim()
        with pytest.raises(ValueError):
            sim.simulate_stream([frame(0, ("a",))], 33.3, arrivals=[0.0, 1.0])

    def test_decreasing_arrivals_rejected(self):
        sim = make_sim()
        frames = [frame(0, ("a",)), frame(0, ("b",))]
        with pytest.raises(ValueError):
            sim.simulate_stream(frames, 33.3, arrivals=[5.0, 1.0])

    def test_arrivals_override_period(self):
        sim = make_sim(5.0)
        frames = [frame(0, ("a",)), frame(0, ("b",))]
        res = sim.simulate_stream(frames, 1000.0, arrivals=[0.0, 7.0])
        # Second frame starts at its arrival (7.0 >= core free 5.0).
        assert res[1].latency_ms == pytest.approx(5.0)
