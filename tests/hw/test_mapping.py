"""Tests for task-to-core mappings."""

from __future__ import annotations

import pytest

from repro.hw.mapping import Mapping


class TestMapping:
    def test_serial_default(self):
        m = Mapping.serial(core=2)
        assert m.cores_for("ANY") == (2,)
        assert m.partitions("ANY") == 1
        assert m.max_core() == 2

    def test_with_partition(self):
        m = Mapping.serial().with_partition("RDG_FULL", (0, 1, 2))
        assert m.cores_for("RDG_FULL") == (0, 1, 2)
        assert m.partitions("RDG_FULL") == 3
        assert m.cores_for("ENH") == (0,)
        assert m.max_core() == 2

    def test_immutability(self):
        base = Mapping.serial()
        derived = base.with_partition("T", (0, 1))
        assert base.cores_for("T") == (0,)
        assert derived.cores_for("T") == (0, 1)

    def test_without(self):
        m = Mapping.serial().with_partition("T", (0, 1)).without("T")
        assert m.cores_for("T") == (0,)

    def test_validation(self):
        with pytest.raises(ValueError):
            Mapping(assignments={"T": ()})
        with pytest.raises(ValueError):
            Mapping(assignments={"T": (1, 1)})
