"""Tests for the platform specification (Fig. 4)."""

from __future__ import annotations

import pytest

from repro.hw.spec import CacheSpec, PlatformSpec, blackford
from repro.util.units import GB, KIB, MIB


class TestCacheSpec:
    def test_lines(self):
        c = CacheSpec(capacity_bytes=4 * MIB, line_bytes=64)
        assert c.lines == 4 * MIB // 64

    def test_validation(self):
        with pytest.raises(ValueError):
            CacheSpec(capacity_bytes=0)


class TestBlackford:
    def test_paper_parameters(self):
        p = blackford()
        assert p.n_cores == 8
        assert p.core_hz == pytest.approx(2.327e9)
        assert p.l1.capacity_bytes == 32 * KIB
        assert p.l2.capacity_bytes == 4 * MIB
        assert p.n_l2 == 4
        assert p.l2.sharers == 2
        assert p.l2_bus_bw == 29 * GB
        assert p.dram_channels == 4
        assert p.dram_stream_bw == pytest.approx(3.83 * GB)

    def test_l2_clustering(self):
        p = blackford()
        assert p.l2_cluster(0) == p.l2_cluster(1) == 0
        assert p.l2_cluster(2) == 1
        assert p.share_l2(0, 1)
        assert not p.share_l2(1, 2)

    def test_cluster_bounds(self):
        p = blackford()
        with pytest.raises(ValueError):
            p.l2_cluster(8)

    def test_cycle_conversions_roundtrip(self):
        p = blackford()
        assert p.cycles_to_ms(p.ms_to_cycles(12.5)) == pytest.approx(12.5)

    def test_invalid_core_sharer_combo(self):
        with pytest.raises(ValueError):
            PlatformSpec(
                name="bad",
                n_cores=7,
                core_hz=1e9,
                l1=CacheSpec(32 * KIB),
                l2=CacheSpec(4 * MIB, sharers=2),
                core_l1_bw=1e9,
                l1_l2_bw=1e9,
                l2_bus_bw=1e9,
                dram_channels=1,
                dram_random_bw=1e9,
                dram_stream_bw=1e9,
            )
