"""Property-style invariants of the platform simulator."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.cost import CostModel, TaskCostSpec
from repro.hw.mapping import Mapping
from repro.hw.simulator import PlatformSimulator
from repro.hw.spec import blackford
from repro.imaging.common import WorkReport


def sim_with_tasks(durations: dict[str, float]) -> PlatformSimulator:
    costs = {t: TaskCostSpec(fixed_ms=d) for t, d in durations.items()}
    cm = CostModel(
        blackford(), pixel_scale=1.0, jitter_sigma=1e-12, spike_prob=0.0,
        task_costs=costs,
    )
    return PlatformSimulator(blackford(), cm)


durations_st = st.dictionaries(
    st.sampled_from(["A", "B", "C", "D", "E"]),
    st.floats(min_value=0.1, max_value=80.0),
    min_size=1,
    max_size=5,
)


class TestInvariants:
    @given(durations_st)
    @settings(max_examples=40, deadline=None)
    def test_serial_latency_equals_busy_time(self, durations):
        sim = sim_with_tasks(durations)
        reports = {t: WorkReport(task=t) for t in durations}
        res = sim.simulate_frame(reports, Mapping.serial())
        assert res.latency_ms == pytest.approx(sum(durations.values()), rel=1e-9)
        assert res.busy_ms() == pytest.approx(res.latency_ms, rel=1e-9)

    @given(durations_st, st.integers(min_value=2, max_value=4))
    @settings(max_examples=40, deadline=None)
    def test_partition_never_beats_ideal_speedup(self, durations, k):
        """Splitting one task k ways saves at most (1 - 1/k) of it."""
        sim_serial = sim_with_tasks(durations)
        sim_split = sim_with_tasks(durations)
        reports = {t: WorkReport(task=t) for t in durations}
        task = max(durations, key=durations.get)
        serial = sim_serial.simulate_frame(reports, Mapping.serial())
        split = sim_split.simulate_frame(
            reports, Mapping.serial().with_partition(task, tuple(range(k)))
        )
        ideal_saving = durations[task] * (1.0 - 1.0 / k)
        actual_saving = serial.latency_ms - split.latency_ms
        assert actual_saving <= ideal_saving + 1e-9
        # And the split never *increases* latency by more than the
        # fork/join overhead.
        assert split.latency_ms <= serial.latency_ms + sim_split.fork_ms + sim_split.join_ms + 1e-9

    def test_ledger_accumulates_across_frames(self):
        sim = sim_with_tasks({"A": 1.0})
        reports = {
            "A": WorkReport(task="A", bytes_in=1000, bytes_out=500)
        }
        for _ in range(5):
            sim.simulate_frame(reports, Mapping.serial())
        assert sim.ledger.frames == 5
        assert sim.ledger.total_bytes("dram") == 5 * 1500

    def test_jitter_changes_latency_not_structure(self):
        cm = CostModel(blackford(), pixel_scale=1.0, seed=0)
        sim = PlatformSimulator(blackford(), cm)
        reports = {"REG": WorkReport(task="REG")}
        res1 = sim.simulate_frame(reports, Mapping.serial(), frame_key=(1,))
        res2 = sim.simulate_frame(reports, Mapping.serial(), frame_key=(2,))
        assert list(res1.task_ms) == list(res2.task_ms)
        assert res1.latency_ms != res2.latency_ms  # different jitter draw

    def test_deterministic_per_frame_key(self):
        def run():
            cm = CostModel(blackford(), pixel_scale=1.0, seed=0)
            sim = PlatformSimulator(blackford(), cm)
            reports = {"ENH": WorkReport(task="ENH", pixels=100_000)}
            return sim.simulate_frame(reports, Mapping.serial(), frame_key=("x", 3))

        assert run().latency_ms == run().latency_ms
