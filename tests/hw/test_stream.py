"""Tests for pipelined multi-frame simulation and mapping rotation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hw.cost import CostModel, TaskCostSpec
from repro.hw.mapping import Mapping
from repro.hw.simulator import PlatformSimulator
from repro.hw.spec import blackford
from repro.imaging.common import WorkReport


def make_sim(task_ms: float = 50.0) -> PlatformSimulator:
    cm = CostModel(
        blackford(),
        pixel_scale=1.0,
        jitter_sigma=1e-12,
        spike_prob=0.0,
        task_costs={"T": TaskCostSpec(fixed_ms=task_ms)},
    )
    return PlatformSimulator(blackford(), cm)


def frames(n: int, mapping_fn) -> list:
    return [
        ({"T": WorkReport(task="T")}, mapping_fn(k), ("s", k)) for k in range(n)
    ]


class TestMappingRotated:
    def test_rotation_shifts_cores(self):
        m = Mapping.serial().with_partition("T", (0, 1))
        r = m.rotated(3, 8)
        assert r.cores_for("T") == (3, 4)
        assert r.default_core == 3

    def test_rotation_wraps(self):
        m = Mapping.serial(core=6).with_partition("T", (6, 7))
        r = m.rotated(3, 8)
        assert r.cores_for("T") == (1, 2)
        assert r.default_core == 1

    def test_identity_rotation(self):
        m = Mapping.serial().with_partition("T", (0, 2))
        assert m.rotated(0, 8).cores_for("T") == (0, 2)
        assert m.rotated(8, 8).cores_for("T") == (0, 2)

    def test_invalid_n_cores(self):
        with pytest.raises(ValueError):
            Mapping.serial().rotated(1, 0)


class TestSimulateStream:
    def test_single_core_queues(self):
        """Task 50 ms, period 33 ms, one core: latency grows ~17 ms/frame."""
        sim = make_sim(50.0)
        res = sim.simulate_stream(frames(20, lambda k: Mapping.serial()), 100.0 / 3)
        lat = np.array([r.latency_ms for r in res])
        diffs = np.diff(lat)
        assert np.all(diffs > 10.0)  # unbounded queueing
        assert lat[0] == pytest.approx(50.0)

    def test_rotation_sustains_throughput(self):
        """Task 50 ms, period 33 ms, 8 cores round-robin: stable."""
        sim = make_sim(50.0)
        res = sim.simulate_stream(
            frames(24, lambda k: Mapping.serial(core=k % 8)), 100.0 / 3
        )
        lat = np.array([r.latency_ms for r in res])
        np.testing.assert_allclose(lat, 50.0, atol=1e-6)

    def test_underloaded_stream_matches_isolated(self):
        """Period longer than the task: every frame sees idle cores."""
        sim = make_sim(10.0)
        res = sim.simulate_stream(frames(5, lambda k: Mapping.serial()), 20.0)
        for r in res:
            assert r.latency_ms == pytest.approx(10.0)

    def test_invalid_period(self):
        sim = make_sim()
        with pytest.raises(ValueError):
            sim.simulate_stream([], 0.0)

    def test_latency_includes_queueing_delay(self):
        sim = make_sim(40.0)
        res = sim.simulate_stream(frames(2, lambda k: Mapping.serial()), 10.0)
        # Frame 1 arrives at t=10 but core frees at t=40.
        assert res[1].latency_ms == pytest.approx(40.0 - 10.0 + 40.0)

    def test_stream_ledger_counts_all_frames(self):
        sim = make_sim(5.0)
        sim.simulate_stream(frames(7, lambda k: Mapping.serial()), 50.0)
        assert sim.ledger.frames == 7
