"""Tests for the space-time cache-occupancy model (Fig. 5)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.task import PhaseSpec
from repro.hw.cache import analyze_report, phase_occupancy
from repro.imaging.common import BufferAccess, WorkReport
from repro.util.units import KIB, MIB


def report(buffers, bytes_in=0, bytes_out=0, task="T"):
    return WorkReport(
        task=task,
        bytes_in=bytes_in,
        bytes_out=bytes_out,
        buffers=tuple(buffers),
    )


class TestPhaseOccupancy:
    def test_fitting_phase_no_eviction(self):
        phases = [PhaseSpec("p", (("a", 1024), ("b", 1024)))]
        occ = phase_occupancy(phases, capacity_bytes=4 * MIB)
        assert occ[0].evicted_bytes == 0
        assert occ[0].resident_bytes == occ[0].active_bytes

    def test_overflow_phase_evicts_excess(self):
        phases = [PhaseSpec("p", (("a", 6144),))]  # 6 MB vs 4 MB L2
        occ = phase_occupancy(phases, capacity_bytes=4 * MIB)
        assert occ[0].evicted_bytes == 2 * MIB
        assert occ[0].resident_bytes == 4 * MIB
        assert occ[0].overflows

    def test_rdg_full_phases_overflow(self):
        """The Fig. 5 headline: RDG FULL's middle phases evict."""
        from repro.graph import build_stentboost_graph

        graph = build_stentboost_graph()
        occ = phase_occupancy(graph.tasks["RDG_FULL"].phases, 4 * MIB)
        assert any(p.overflows for p in occ)
        assert occ[0].evicted_bytes <= occ[2].evicted_bytes  # ramps up

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            phase_occupancy([], 0)

    @given(
        st.lists(
            st.floats(min_value=1.0, max_value=20_000.0), min_size=1, max_size=6
        ),
        st.integers(min_value=1 * KIB, max_value=16 * MIB),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_conservation(self, sizes, capacity):
        phases = [PhaseSpec("p", tuple((f"b{i}", s) for i, s in enumerate(sizes)))]
        occ = phase_occupancy(phases, capacity)[0]
        assert occ.resident_bytes + occ.evicted_bytes == occ.active_bytes
        assert occ.resident_bytes <= capacity


class TestAnalyzeReport:
    def test_fitting_working_set(self):
        rep = report([BufferAccess("a", 1 * MIB), BufferAccess("b", 2 * MIB)])
        usage = analyze_report(rep, 4 * MIB)
        assert usage.fits
        assert usage.eviction_bytes == 0

    def test_overflow_generates_eviction(self):
        rep = report(
            [BufferAccess("a", 6 * MIB, passes=2.0)],
            bytes_in=1 * MIB,
            bytes_out=1 * MIB,
        )
        usage = analyze_report(rep, 4 * MIB)
        assert not usage.fits
        # lost fraction = 2/6; touched = 12 MiB -> eviction = 4 MiB.
        assert usage.eviction_bytes == pytest.approx(4 * MIB, rel=1e-6)
        assert usage.external_bytes == usage.compulsory_bytes + usage.eviction_bytes

    def test_pixel_scale_rescales(self):
        rep = report([BufferAccess("a", 512 * KIB)])
        small = analyze_report(rep, 4 * MIB, pixel_scale=1.0)
        scaled = analyze_report(rep, 4 * MIB, pixel_scale=16.0)
        assert small.fits
        assert scaled.working_set_bytes == 16 * small.working_set_bytes
        assert not scaled.fits

    def test_compulsory_traffic(self):
        rep = report([], bytes_in=100, bytes_out=50)
        usage = analyze_report(rep, 4 * MIB)
        assert usage.compulsory_bytes == 150

    @given(
        st.integers(min_value=1, max_value=64 * MIB),
        st.integers(min_value=1 * KIB, max_value=64 * MIB),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_more_capacity_less_eviction(self, size, capacity):
        rep = report([BufferAccess("a", size, passes=2.0)])
        small_cap = analyze_report(rep, capacity)
        big_cap = analyze_report(rep, capacity * 2)
        assert big_cap.eviction_bytes <= small_cap.eviction_bytes
        assert small_cap.eviction_bytes >= 0
