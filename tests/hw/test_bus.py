"""Tests for the bandwidth ledger."""

from __future__ import annotations

import pytest

from repro.hw.bus import BandwidthLedger
from repro.util.units import MB


class TestBandwidthLedger:
    def test_record_and_totals(self):
        led = BandwidthLedger()
        led.record("bus", 100)
        led.record("bus", 50)
        led.record("dram", 25)
        assert led.total_bytes("bus") == 150
        assert led.total_bytes() == 175

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            BandwidthLedger().record("x", -1)

    def test_bandwidth_per_frame(self):
        led = BandwidthLedger()
        for _ in range(10):
            led.record("dram", 2 * MB)
            led.frame_done()
        assert led.bytes_per_frame("dram") == pytest.approx(2 * MB)
        assert led.bandwidth_mbps("dram", rate_hz=30) == pytest.approx(60.0)

    def test_no_frames_zero_rate(self):
        led = BandwidthLedger()
        led.record("dram", 100)
        assert led.bandwidth_mbps("dram") == 0.0

    def test_links_sorted(self):
        led = BandwidthLedger()
        led.record("z", 1)
        led.record("a", 1)
        assert led.links() == ["a", "z"]

    def test_merge(self):
        a, b = BandwidthLedger(), BandwidthLedger()
        a.record("bus", 10)
        a.frame_done()
        b.record("bus", 20)
        b.record("dram", 5)
        b.frame_done()
        a.merge(b)
        assert a.total_bytes("bus") == 30
        assert a.total_bytes("dram") == 5
        assert a.frames == 2
