"""Tests for the calibrated cost model."""

from __future__ import annotations

import pytest

from repro.hw.cost import DEFAULT_TASK_COSTS, CostModel, TaskCostSpec
from repro.hw.spec import blackford
from repro.imaging.common import BufferAccess, WorkReport


def rep(task="REG", pixels=0, counts=None, buffers=(), bytes_in=0, bytes_out=0):
    return WorkReport(
        task=task,
        pixels=pixels,
        bytes_in=bytes_in,
        bytes_out=bytes_out,
        buffers=tuple(buffers),
        counts=dict(counts or {}),
    )


@pytest.fixture()
def model():
    return CostModel(blackford(), pixel_scale=16.0, seed=0)


class TestCostModel:
    def test_fixed_only_task(self, model):
        b = model.time_ms(rep("REG"), with_jitter=False)
        assert b.total_ms == pytest.approx(DEFAULT_TASK_COSTS["REG"].fixed_ms)

    def test_pixel_term_scales_linearly(self, model):
        a = model.time_ms(rep("ENH", pixels=10_000), with_jitter=False)
        b = model.time_ms(rep("ENH", pixels=20_000), with_jitter=False)
        fixed = DEFAULT_TASK_COSTS["ENH"].fixed_ms
        assert (b.total_ms - fixed) == pytest.approx(2 * (a.total_ms - fixed))

    def test_count_scaling_modes(self, model):
        # 'none' count: unaffected by pixel_scale.
        b16 = model.time_ms(
            rep("CPLS_SEL", counts={"pairs_tested": 100}), with_jitter=False
        )
        m1 = CostModel(blackford(), pixel_scale=1.0, seed=0)
        b1 = m1.time_ms(
            rep("CPLS_SEL", counts={"pairs_tested": 100}), with_jitter=False
        )
        assert b16.total_ms == pytest.approx(b1.total_ms)
        # 'area' count: scales with pixel_scale.
        r = rep("RDG_FULL", counts={"ridge_pixels": 1000})
        assert model.time_ms(r, with_jitter=False).content_ms == pytest.approx(
            16 * m1.time_ms(r, with_jitter=False).content_ms
        )

    def test_unknown_task_raises(self, model):
        with pytest.raises(KeyError):
            model.time_ms(rep("NOPE"))

    def test_jitter_deterministic_per_key(self, model):
        r = rep("ENH", pixels=100_000)
        a = model.time_ms(r, frame_key=(1, 2))
        b = model.time_ms(r, frame_key=(1, 2))
        c = model.time_ms(r, frame_key=(1, 3))
        assert a.jitter_ms == b.jitter_ms
        assert a.jitter_ms != c.jitter_ms

    def test_jitter_small_relative(self, model):
        r = rep("ENH", pixels=131_072 * 2)
        vals = [
            model.time_ms(r, frame_key=(k,)).jitter_ms
            / model.time_ms(r, frame_key=(k,)).noise_free_ms
            for k in range(200)
        ]
        assert max(abs(v) for v in vals) < 0.30  # spikes bounded
        assert sum(abs(v) < 0.05 for v in vals) > 150  # mostly small

    def test_cache_stall_included(self, model):
        big = rep(
            "ENH",
            pixels=131_072,
            buffers=[BufferAccess("acc", 12 * 2**20, passes=2.0)],
        )
        b = model.time_ms(big, with_jitter=False)
        assert b.cache_stall_ms > 0
        assert b.total_ms == pytest.approx(
            b.base_ms + b.content_ms + b.cache_stall_ms
        )

    def test_invalid_pixel_scale(self):
        with pytest.raises(ValueError):
            CostModel(blackford(), pixel_scale=0.0)

    def test_custom_task_costs(self):
        m = CostModel(
            blackford(),
            task_costs={"X": TaskCostSpec(fixed_ms=7.0)},
        )
        assert m.time_ms(rep("X"), with_jitter=False).total_ms == 7.0


class TestCalibration:
    """Mean simulated times must match Table 2(b) (native geometry)."""

    @pytest.fixture(scope="class")
    def task_means(self, traces):
        import numpy as np

        return {
            t: float(np.mean(traces.task_values(t)))
            for t in traces.tasks()
        }

    @pytest.mark.parametrize(
        "task,expected,tol",
        [
            ("REG", 2.0, 0.1),
            ("ROI_EST", 1.0, 0.1),
            ("ENH", 24.0, 2.0),
            ("ZOOM", 12.5, 1.0),
        ],
    )
    def test_constant_tasks(self, task_means, task, expected, tol):
        assert task_means[task] == pytest.approx(expected, abs=tol)

    def test_mkx_near_paper(self, task_means):
        # Table 2(b): MKX EXT = 2.5 ms (full-frame granularity).
        assert 2.0 <= task_means.get("MKX_FULL", 2.5) <= 3.5

    def test_rdg_full_in_fig3_band(self, traces):
        import numpy as np

        vals = traces.task_values("RDG_FULL")
        if vals.size == 0:
            pytest.skip("no RDG_FULL executions in the small corpus")
        assert 30.0 <= float(np.mean(vals)) <= 60.0
