"""Tests for the optional DRAM-contention model."""

from __future__ import annotations

import pytest

from repro.hw.cost import CostModel, TaskCostSpec
from repro.hw.mapping import Mapping
from repro.hw.simulator import PlatformSimulator
from repro.hw.spec import blackford
from repro.imaging.common import BufferAccess, WorkReport
from repro.util.units import MIB


def heavy_report(task="T"):
    """A task whose working set evicts hard (memory-bound)."""
    return WorkReport(
        task=task,
        bytes_in=8 * MIB,
        bytes_out=8 * MIB,
        buffers=(BufferAccess("big", 64 * MIB, passes=3.0),),
    )


def make_sim(dram_contention: bool) -> PlatformSimulator:
    cm = CostModel(
        blackford(),
        pixel_scale=1.0,
        jitter_sigma=1e-12,
        spike_prob=0.0,
        task_costs={"T": TaskCostSpec(fixed_ms=5.0)},
    )
    return PlatformSimulator(blackford(), cm, dram_contention=dram_contention)


def frames(n, core_fn):
    return [
        ({"T": heavy_report()}, Mapping.serial(core=core_fn(k)), ("c", k))
        for k in range(n)
    ]


class TestDramContention:
    def test_single_task_unaffected(self):
        """One task alone never oversubscribes the channels."""
        off = make_sim(False).simulate_frame({"T": heavy_report()}, Mapping.serial())
        on = make_sim(True).simulate_frame({"T": heavy_report()}, Mapping.serial())
        assert on.latency_ms == pytest.approx(off.latency_ms)

    def test_overlapping_heavy_tasks_slow_down(self):
        """Several memory-bound tasks in flight stretch each other."""
        n = 8
        no_cont = make_sim(False).simulate_stream(
            frames(n, lambda k: k), period_ms=0.5
        )
        with_cont = make_sim(True).simulate_stream(
            frames(n, lambda k: k), period_ms=0.5
        )
        # Later frames overlap earlier ones: contention inflates them.
        assert with_cont[-1].latency_ms > no_cont[-1].latency_ms
        # The first frame sees an empty platform either way.
        assert with_cont[0].latency_ms == pytest.approx(no_cont[0].latency_ms)

    def test_serialized_tasks_do_not_contend(self):
        """Far-apart frames never overlap: no inflation."""
        no_cont = make_sim(False).simulate_stream(
            frames(4, lambda k: k), period_ms=500.0
        )
        with_cont = make_sim(True).simulate_stream(
            frames(4, lambda k: k), period_ms=500.0
        )
        for a, b in zip(no_cont, with_cont):
            assert b.latency_ms == pytest.approx(a.latency_ms)

    def test_reset_contention(self):
        sim = make_sim(True)
        sim.simulate_stream(frames(4, lambda k: k), period_ms=0.5)
        assert sim._dram_demand
        sim.reset_contention()
        assert not sim._dram_demand

    def test_slowdown_factor_bounds(self):
        sim = make_sim(True)
        assert sim._dram_slowdown(0.0, 10.0, own_rate=1.0) == 1.0
        assert sim._dram_slowdown(5.0, 5.0, own_rate=1e12) == 1.0  # empty window
        capacity = blackford().total_dram_stream_bw / 1e3
        assert sim._dram_slowdown(0.0, 10.0, own_rate=2 * capacity) == pytest.approx(2.0)
