"""Every dynamic count the imaging code emits must have an explicit
resolution-scaling rule.

A count missing from ``COUNT_SCALING`` silently defaults to "none";
for a pixel-like count that would make simulated times depend on the
rendering resolution -- exactly the bug class the ``pixel_scale``
design exists to prevent.  This test runs the real pipeline and
cross-checks the counts it produces against the scaling table.
"""

from __future__ import annotations

from repro.hw.cost import COUNT_SCALING, DEFAULT_TASK_COSTS


class TestCountScalingCoverage:
    def test_all_emitted_counts_have_rules(self, short_sequence, pipeline):
        emitted: set[str] = set()
        for k in range(10):
            img, _ = short_sequence.frame(k)
            fa = pipeline.process(img)
            for rep in fa.reports.values():
                emitted.update(rep.counts)
        # Bookkeeping-only counts that never carry a cost term.
        bookkeeping = {
            "scales",
            "with_ridge",
            "strong_gradient_fraction",
            "attempted",
            "failure",
            "motion",
            "support",
        }
        uncovered = emitted - set(COUNT_SCALING) - bookkeeping
        assert not uncovered, f"counts without scaling rule: {uncovered}"

    def test_all_costed_counts_have_rules(self):
        """Any count with a per-unit cost must have a scaling rule."""
        for task, spec in DEFAULT_TASK_COSTS.items():
            for count in spec.per_count_ms:
                assert count in COUNT_SCALING, (task, count)

    def test_scaling_modes_valid(self):
        assert set(COUNT_SCALING.values()) <= {"area", "linear", "none"}
