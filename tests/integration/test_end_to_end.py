"""End-to-end integration: the full Triple-C story in one test file.

synthesize -> analyze -> simulate -> profile -> train -> predict ->
repartition -> control latency.
"""

from __future__ import annotations

import numpy as np

from repro import (
    Mapping,
    ResourceManager,
    StentBoostPipeline,
    TripleC,
    prediction_accuracy,
    run_straightforward,
)
from repro.imaging.pipeline import PipelineConfig
from repro.synthetic.sequence import SequenceConfig, XRaySequence


class TestFullStack:
    def test_public_api_round_trip(self, traces, profile_config):
        """Everything needed for the paper's workflow is reachable
        from the top-level package namespace."""
        model = TripleC.fit(traces)
        seq = XRaySequence(SequenceConfig(n_frames=30, seed=31415))
        pipe = StentBoostPipeline(
            PipelineConfig(
                expected_distance=seq.config.resolved_phantom().marker_separation
            )
        )
        sim = profile_config.make_simulator()
        model.start_sequence()
        preds, actuals = [], []
        for img, _ in seq.iter_frames():
            roi_px = pipe.roi.pixels if pipe.roi is not None else img.size
            roi_kpx = roi_px / 1000.0 * profile_config.pixel_scale
            pred = model.predict(roi_kpx)
            fa = pipe.process(img)
            res = sim.simulate_frame(fa.reports, Mapping.serial(), frame_key=("e2e", fa.index))
            if fa.index >= 3:
                preds.append(pred.frame_ms)
                actuals.append(sum(res.task_ms.values()))
            model.observe(fa.scenario_id, res.task_ms, roi_kpx)
        rep = prediction_accuracy(np.asarray(preds), np.asarray(actuals))
        assert rep.mean_accuracy > 0.85

    def test_managed_run_reproducible(self, traces, profile_config):
        """The whole managed pipeline is bit-for-bit deterministic."""

        def one_run():
            model = TripleC.fit(traces)
            seq = XRaySequence(SequenceConfig(n_frames=25, seed=2718))
            pipe = StentBoostPipeline(
                PipelineConfig(
                    expected_distance=seq.config.resolved_phantom().marker_separation
                )
            )
            mgr = ResourceManager(model, profile_config.make_simulator())
            return mgr.run_sequence(seq, pipe, seq_key="det")

        a, b = one_run(), one_run()
        np.testing.assert_array_equal(a.latency(), b.latency())
        np.testing.assert_array_equal(a.output_latency(), b.output_latency())
        assert [f.parts for f in a.frames] == [f.parts for f in b.frames]

    def test_headline_story(self, traces, profile_config):
        """The paper's bottom line, end to end: Triple-C management
        stabilizes latency relative to the straightforward mapping."""
        seq_cfg = SequenceConfig(
            n_frames=90, seed=777, visibility_dips=1, clutter_level=0.9
        )

        def pipe():
            s = XRaySequence(seq_cfg)
            return s, StentBoostPipeline(
                PipelineConfig(
                    expected_distance=s.config.resolved_phantom().marker_separation
                )
            )

        s1, p1 = pipe()
        sw = run_straightforward(s1, p1, profile_config.make_simulator(), seq_key="h-sw")
        s2, p2 = pipe()
        mgr = ResourceManager(TripleC.fit(traces), profile_config.make_simulator())
        mg = mgr.run_sequence(s2, p2, seq_key="h-mg")

        assert np.std(mg.output_latency()) < 0.4 * np.std(sw.latency())
        assert mg.jitter().worst_over_avg < sw.jitter().worst_over_avg
        # The managed run also keeps average *completion* latency at or
        # below the straightforward mapping (parallelism helps, never
        # hurts, modulo fork/join overhead on cheap frames).
        assert mg.latency().mean() < sw.latency().mean() * 1.05
