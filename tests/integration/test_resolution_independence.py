"""Resolution independence of the imaging + cost stack.

The library claims to be resolution-agnostic: frames may render at
any size, with the cost model's ``pixel_scale`` mapping work back to
native geometry.  These tests run the pipeline at 128x128 and 384x384
and check that (a) the application still tracks the markers and
(b) the *simulated native-equivalent* task times agree across
resolutions to within the content/discretization noise.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.hw import CostModel, Mapping, PlatformSimulator, blackford
from repro.imaging.pipeline import PipelineConfig, StentBoostPipeline
from repro.synthetic.sequence import SequenceConfig, XRaySequence


def run_at(width: int, n_frames: int = 12, seed: int = 42):
    """Pipeline + simulation at one resolution; returns task means."""
    seq = XRaySequence(
        SequenceConfig(
            width=width, height=width, n_frames=n_frames, seed=seed,
            visibility_dips=0,
        )
    )
    pipe = StentBoostPipeline(
        PipelineConfig(
            expected_distance=seq.config.resolved_phantom().marker_separation
        )
    )
    pixel_scale = (1024.0 / width) ** 2
    cm = CostModel(
        blackford(), pixel_scale=pixel_scale, jitter_sigma=1e-12, spike_prob=0.0
    )
    sim = PlatformSimulator(blackford(), cm)
    sums: dict[str, list[float]] = {}
    found = 0
    for img, _truth in seq.iter_frames():
        fa = pipe.process(img)
        if fa.couple is not None and fa.couple.found:
            found += 1
        res = sim.simulate_frame(fa.reports, Mapping.serial(), frame_key=(width, fa.index))
        for t, ms in res.task_ms.items():
            sums.setdefault(t, []).append(ms)
    return {t: float(np.mean(v)) for t, v in sums.items()}, found, n_frames


class TestResolutionIndependence:
    @pytest.mark.parametrize("width", [128, 384])
    def test_detection_survives_resolution(self, width):
        _, found, n = run_at(width)
        assert found > 0.7 * n

    def test_constant_tasks_agree_across_resolutions(self):
        means_lo, _, _ = run_at(128)
        means_hi, _, _ = run_at(384)
        # Pixel-proportional tasks must land on the same native cost.
        for task, tol in (("ENH", 0.10), ("ZOOM", 0.10), ("REG", 0.05)):
            if task in means_lo and task in means_hi:
                assert means_lo[task] == pytest.approx(
                    means_hi[task], rel=tol
                ), task

    def test_rdg_same_magnitude(self):
        """Content-dependent RDG varies more, but the native-equivalent
        magnitude must match across resolutions (no unscaled term)."""
        means_lo, _, _ = run_at(128)
        means_hi, _, _ = run_at(384)
        for task in ("RDG_FULL", "RDG_ROI"):
            lo, hi = means_lo.get(task), means_hi.get(task)
            if lo is not None and hi is not None:
                assert lo == pytest.approx(hi, rel=0.45), task
