"""The partitioner's analytic timing must match the simulator.

The resource manager decides *before* the frame runs, using
`Partitioner.task_latency_ms`; the platform then executes the frame
through `PlatformSimulator`.  If the two models diverged, the manager
would systematically over- or under-partition.  These tests pin their
agreement for serial tasks, every supported split width, and whole
frame chains.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import build_stentboost_graph
from repro.hw.cost import CostModel, TaskCostSpec
from repro.hw.mapping import Mapping
from repro.hw.simulator import PlatformSimulator
from repro.hw.spec import blackford
from repro.imaging.common import WorkReport
from repro.runtime.partition import Partitioner


@pytest.fixture(scope="module")
def rig():
    graph = build_stentboost_graph()
    platform = blackford()
    costs = {
        name: TaskCostSpec(fixed_ms=float(5 + 7 * i))
        for i, name in enumerate(graph.tasks)
    }
    cm = CostModel(
        platform, pixel_scale=1.0, jitter_sigma=1e-12, spike_prob=0.0,
        task_costs=costs,
    )
    sim = PlatformSimulator(platform, cm, graph=graph)
    part = Partitioner(
        platform,
        graph,
        fork_ms=sim.fork_ms,
        join_ms=sim.join_ms,
        halo_fraction=sim.halo_fraction,
    )
    return graph, sim, part, costs


class TestTaskLevelAgreement:
    @pytest.mark.parametrize("k", [1, 2, 3, 4])
    def test_split_task_duration_matches(self, rig, k):
        graph, sim, part, costs = rig
        task = "RDG_FULL"
        # Report input bytes matching the graph spec so the halo cost
        # agrees between the analytic and the executed model.
        report = WorkReport(task=task, bytes_in=graph.tasks[task].input_kb * 1024)
        mapping = (
            Mapping.serial()
            if k == 1
            else Mapping.serial().with_partition(task, tuple(range(k)))
        )
        res = sim.simulate_frame({task: report}, mapping)
        analytic = part.task_latency_ms(task, costs[task].fixed_ms, k)
        assert res.latency_ms == pytest.approx(analytic, rel=1e-9)


class TestFrameLevelAgreement:
    @given(
        st.dictionaries(
            st.sampled_from(["RDG_FULL", "ENH", "ZOOM", "CPLS_SEL", "GW_EXT"]),
            st.integers(min_value=1, max_value=4),
            min_size=1,
            max_size=5,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_chain_latency_matches(self, rig, parts):
        graph, _, part, costs = rig
        # Fresh simulator per example: the shared ledger is irrelevant
        # but core timelines must start clean.
        platform = blackford()
        cm = CostModel(
            platform, pixel_scale=1.0, jitter_sigma=1e-12, spike_prob=0.0,
            task_costs=costs,
        )
        sim = PlatformSimulator(platform, cm, graph=graph)

        reports = {
            t: WorkReport(task=t, bytes_in=graph.tasks[t].input_kb * 1024)
            for t in parts
        }
        mapping = Mapping.serial()
        for t, k in parts.items():
            if k > 1:
                mapping = mapping.with_partition(t, tuple(range(k)))
        res = sim.simulate_frame(reports, mapping)
        task_ms = {t: costs[t].fixed_ms for t in parts}
        analytic = part.frame_latency_ms(task_ms, parts)
        assert res.latency_ms == pytest.approx(analytic, rel=1e-9)
