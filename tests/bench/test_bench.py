"""Smoke tests for the benchmark harness."""

from __future__ import annotations

import json

import pytest

from repro.bench import SCHEMA, machine_info, run_bench


class TestMachineInfo:
    def test_keys(self):
        info = machine_info()
        assert {"platform", "python", "numpy", "cpu_count"} <= info.keys()
        assert info["cpu_count"] >= 1


@pytest.fixture(scope="module")
def bench_doc(tmp_path_factory):
    out = tmp_path_factory.mktemp("bench") / "BENCH_smoke.json"
    doc = run_bench(smoke=True, jobs=2, out=out)
    return doc, out


class TestRunBench:
    def test_writes_valid_json(self, bench_doc):
        doc, out = bench_doc
        assert out.exists()
        assert json.loads(out.read_text()) == doc

    def test_schema_and_structure(self, bench_doc):
        doc, _ = bench_doc
        assert doc["schema"] == SCHEMA
        assert doc["corpus"]["smoke"] is True
        assert doc["jobs"] == 2
        results = doc["results"]
        expected = {
            "profile_serial_s",
            "profile_parallel_s",
            "parallel_speedup",
            "byte_identical",
            "cache_cold_s",
            "cache_warm_s",
            "fit_s",
            "predict_task",
            "predict_frames",
            "predict_scalar_fps",
            "predict_batch_fps",
            "predict_batch_speedup",
        }
        assert expected <= results.keys()

    def test_parallel_profiling_byte_identical(self, bench_doc):
        doc, _ = bench_doc
        assert doc["results"]["byte_identical"] is True

    def test_timings_positive(self, bench_doc):
        doc, _ = bench_doc
        r = doc["results"]
        for key in ("profile_serial_s", "profile_parallel_s", "cache_cold_s"):
            assert r[key] > 0
        # Warm cache reads shards instead of re-profiling.
        assert r["cache_warm_s"] < r["cache_cold_s"]
        assert r["predict_batch_fps"] > 0
