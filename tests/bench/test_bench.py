"""Smoke tests for the benchmark harness."""

from __future__ import annotations

import json

import pytest

from repro.bench import SCHEMA, SCHEMAS, machine_info, run_bench
from repro.parallel import available_cpus


class TestMachineInfo:
    def test_keys(self):
        info = machine_info()
        assert {
            "platform",
            "python",
            "numpy",
            "cpu_count",
            "cpu_affinity",
            "available_cpus",
        } <= info.keys()
        assert info["cpu_count"] >= 1

    def test_records_pool_sizing_value(self):
        # What the pool actually sizes itself by, next to the raw
        # machine count -- a speedup of 1.0 on a 1-affinity container
        # must be legible from the JSON alone.
        info = machine_info()
        assert info["available_cpus"] == available_cpus()
        if info["cpu_affinity"] is not None:
            assert info["available_cpus"] == info["cpu_affinity"]


class TestSchemas:
    def test_current_schema_is_accepted(self):
        assert SCHEMA in SCHEMAS

    def test_v1_still_accepted(self):
        assert "repro-bench/1" in SCHEMAS


@pytest.fixture(scope="module")
def bench_doc(tmp_path_factory):
    out = tmp_path_factory.mktemp("bench") / "BENCH_smoke.json"
    doc = run_bench(smoke=True, jobs=2, out=out, jobs_matrix=[1, 2, 4])
    return doc, out


class TestRunBench:
    def test_writes_valid_json(self, bench_doc):
        doc, out = bench_doc
        assert out.exists()
        assert json.loads(out.read_text()) == doc

    def test_schema_and_structure(self, bench_doc):
        doc, _ = bench_doc
        assert doc["schema"] == SCHEMA
        assert doc["corpus"]["smoke"] is True
        assert doc["jobs"] == 2
        results = doc["results"]
        expected = {
            "profile_serial_s",
            "profile_parallel_s",
            "parallel_speedup",
            "byte_identical",
            "cache_cold_s",
            "cache_warm_s",
            "fit_s",
            "predict_task",
            "predict_frames",
            "predict_scalar_fps",
            "predict_batch_fps",
            "predict_batch_speedup",
            "engine_frames",
            "engine_scalar_fps",
            "engine_batched_fps",
            "engine_batch_speedup",
            "engine_byte_identical",
            "replay_profile_s",
            "replay_sim_s",
            "replay_jobs",
            "replay_workloads",
            "replay_deterministic",
            "replay_p99_wait_gain",
            "jobs_matrix",
        }
        assert expected <= results.keys()

    def test_parallel_profiling_byte_identical(self, bench_doc):
        doc, _ = bench_doc
        assert doc["results"]["byte_identical"] is True

    def test_timings_positive(self, bench_doc):
        doc, _ = bench_doc
        r = doc["results"]
        for key in ("profile_serial_s", "profile_parallel_s", "cache_cold_s"):
            assert r[key] > 0
        # Warm cache reads shards instead of re-profiling.
        assert r["cache_warm_s"] < r["cache_cold_s"]
        assert r["predict_batch_fps"] > 0

    def test_engine_stage_identical_and_faster(self, bench_doc):
        doc, _ = bench_doc
        r = doc["results"]
        assert r["engine_byte_identical"] is True
        assert r["engine_scalar_fps"] > 0
        assert r["engine_batched_fps"] > 0
        # The batched walk must actually beat the scalar loop, not
        # just match it (the ISSUE's headline claim is >=5x; the gate
        # in compare enforces the committed ratio, this test only
        # pins the direction so it stays robust on loaded runners).
        assert r["engine_batch_speedup"] > 1.0

    def test_replay_stage_covers_registry_deterministically(self, bench_doc):
        from repro.workloads import workload_names

        doc, _ = bench_doc
        r = doc["results"]
        assert r["replay_workloads"] == len(workload_names())
        assert r["replay_jobs"] > 0
        assert r["replay_deterministic"] is True
        assert r["replay_p99_wait_gain"] > 0

    def test_jobs_matrix_clamped_and_anchored(self, bench_doc):
        doc, _ = bench_doc
        rows = doc["results"]["jobs_matrix"]
        counts = [row["jobs"] for row in rows]
        # Requested [1, 2, 4]; whatever survives clamping is an
        # ascending dedup that always starts at the jobs=1 anchor.
        assert counts == sorted(set(counts))
        assert counts[0] == 1
        assert all(1 <= j <= available_cpus() for j in counts)
        assert rows[0]["speedup"] == 1.0
        assert all(row["elapsed_s"] > 0 for row in rows)

class TestJobsMatrixStage:
    def test_clamps_dedups_and_anchors(self):
        from repro.bench.harness import _bench_jobs_matrix
        from repro.profiling import ProfileConfig
        from repro.synthetic import CorpusSpec

        spec = CorpusSpec(n_sequences=1, total_frames=8)
        # Duplicates and over-asking collapse; the jobs=1 anchor is
        # always prepended even when not requested.
        rows = _bench_jobs_matrix(spec, ProfileConfig(), [8, 8, 2])
        counts = [row["jobs"] for row in rows]
        assert counts == sorted(set(counts))
        assert counts[0] == 1
        assert counts[-1] <= available_cpus()


class TestCli:
    def test_jobs_matrix_garbage_rejected(self):
        from repro.bench.harness import main

        with pytest.raises(SystemExit):
            main(["--smoke", "--jobs-matrix", "two,four"])

    def test_jobs_matrix_nonpositive_rejected(self):
        from repro.bench.harness import main

        with pytest.raises(SystemExit):
            main(["--smoke", "--jobs-matrix", "0,2"])
