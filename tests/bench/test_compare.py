"""Tests for the bench regression gate (``python -m repro.bench.compare``)."""

from __future__ import annotations

import json

import pytest

from repro.bench.compare import compare_docs, main
from repro.bench.harness import SCHEMA


def doc(corpus=None, **results):
    base = {
        "parallel_speedup": 2.0,
        "predict_batch_speedup": 10.0,
        "byte_identical": True,
        "profile_serial_s": 1.5,
    }
    base.update(results)
    out = {"schema": SCHEMA, "results": base}
    out["corpus"] = (
        corpus
        if corpus is not None
        else {"n_sequences": 2, "total_frames": 60, "smoke": True}
    )
    return out


class TestCompareDocs:
    def test_identical_docs_pass(self):
        failures, notes = compare_docs(doc(), doc(), tolerance=0.5)
        assert failures == []
        assert any("parallel_speedup: ok" in n for n in notes)

    def test_ratio_below_floor_fails(self):
        failures, _ = compare_docs(
            doc(), doc(parallel_speedup=0.9), tolerance=0.5
        )
        assert len(failures) == 1
        assert "parallel_speedup" in failures[0]

    def test_ratio_at_floor_passes(self):
        failures, _ = compare_docs(
            doc(), doc(parallel_speedup=1.0), tolerance=0.5
        )
        assert failures == []

    def test_tighter_tolerance_catches_smaller_drop(self):
        cur = doc(parallel_speedup=1.7)
        assert compare_docs(doc(), cur, tolerance=0.5)[0] == []
        assert compare_docs(doc(), cur, tolerance=0.9)[0] != []

    def test_ratio_improvement_passes(self):
        failures, _ = compare_docs(
            doc(), doc(predict_batch_speedup=50.0), tolerance=0.5
        )
        assert failures == []

    def test_byte_identity_regression_always_fails(self):
        failures, _ = compare_docs(
            doc(), doc(byte_identical=False), tolerance=0.5
        )
        assert any("byte_identical" in f for f in failures)

    def test_byte_identity_false_baseline_tolerated(self):
        failures, _ = compare_docs(
            doc(byte_identical=False), doc(byte_identical=False), tolerance=0.5
        )
        assert failures == []

    def test_metric_missing_from_baseline_skipped(self):
        base = doc()
        del base["results"]["predict_batch_speedup"]
        failures, notes = compare_docs(base, doc(), tolerance=0.5)
        assert failures == []
        assert any("not in baseline" in n for n in notes)

    def test_metric_missing_from_current_fails(self):
        cur = doc()
        del cur["results"]["parallel_speedup"]
        failures, _ = compare_docs(doc(), cur, tolerance=0.5)
        assert any("missing from current" in f for f in failures)

    def test_absolute_timings_never_gate(self):
        failures, notes = compare_docs(
            doc(), doc(profile_serial_s=999.0), tolerance=0.5
        )
        assert failures == []
        assert any("profile_serial_s: informational" in n for n in notes)

    @pytest.mark.parametrize("tolerance", [0.0, -0.5, 1.5])
    def test_tolerance_out_of_range_rejected(self, tolerance):
        with pytest.raises(ValueError, match="tolerance"):
            compare_docs(doc(), doc(), tolerance)

    def test_corpus_mismatch_fails_and_skips_ratios(self):
        full = doc(corpus={"n_sequences": 8, "total_frames": 400, "smoke": False})
        # The ratio would regress too, but the corpus mismatch is the
        # reported failure -- incomparable numbers are never judged.
        failures, notes = compare_docs(
            full, doc(parallel_speedup=0.1), tolerance=0.5
        )
        assert len(failures) == 1
        assert "not comparable" in failures[0]
        assert any("parallel_speedup: skipped (corpus mismatch)" in n for n in notes)

    def test_corpus_mismatch_still_gates_booleans(self):
        full = doc(corpus={"n_sequences": 8, "total_frames": 400, "smoke": False})
        failures, _ = compare_docs(full, doc(byte_identical=False), tolerance=0.5)
        assert any("byte_identical" in f for f in failures)

    def test_missing_corpus_sections_assumed_comparable(self):
        base, cur = doc(), doc()
        del base["corpus"]
        failures, notes = compare_docs(base, cur, tolerance=0.5)
        assert failures == []
        assert any("assumed comparable" in n for n in notes)

    def test_engine_metrics_gate_like_the_others(self):
        base = doc(engine_batch_speedup=6.0, engine_byte_identical=True)
        failures, _ = compare_docs(
            base,
            doc(engine_batch_speedup=1.5, engine_byte_identical=True),
            tolerance=0.5,
        )
        assert any("engine_batch_speedup" in f for f in failures)
        failures, _ = compare_docs(
            base,
            doc(engine_batch_speedup=6.0, engine_byte_identical=False),
            tolerance=0.5,
        )
        assert any("engine_byte_identical" in f for f in failures)

    def test_fleet_metrics_gate_like_the_others(self):
        base = doc(fleet_p99_wait_gain=1.3, fleet_deterministic=True)
        failures, _ = compare_docs(
            base,
            doc(fleet_p99_wait_gain=0.4, fleet_deterministic=True),
            tolerance=0.5,
        )
        assert any("fleet_p99_wait_gain" in f for f in failures)
        failures, _ = compare_docs(
            base,
            doc(fleet_p99_wait_gain=1.3, fleet_deterministic=False),
            tolerance=0.5,
        )
        assert any("fleet_deterministic" in f for f in failures)

    def test_replay_metrics_gate_like_the_others(self):
        base = doc(replay_p99_wait_gain=1.4, replay_deterministic=True)
        failures, _ = compare_docs(
            base,
            doc(replay_p99_wait_gain=0.4, replay_deterministic=True),
            tolerance=0.5,
        )
        assert any("replay_p99_wait_gain" in f for f in failures)
        failures, _ = compare_docs(
            base,
            doc(replay_p99_wait_gain=1.4, replay_deterministic=False),
            tolerance=0.5,
        )
        assert any("replay_deterministic" in f for f in failures)

    def test_v3_baseline_without_replay_metrics_skipped(self):
        base = dict(doc(), schema="repro-bench/3")
        cur = doc(replay_p99_wait_gain=1.4, replay_deterministic=True)
        failures, notes = compare_docs(base, cur, tolerance=0.5)
        assert failures == []
        assert any(
            "replay_p99_wait_gain: not in baseline" in n for n in notes
        )

    def test_v2_baseline_without_fleet_metrics_skipped(self):
        base = dict(doc(), schema="repro-bench/2")
        cur = doc(fleet_p99_wait_gain=1.3, fleet_deterministic=True)
        failures, notes = compare_docs(base, cur, tolerance=0.5)
        assert failures == []
        assert any(
            "fleet_p99_wait_gain: not in baseline" in n for n in notes
        )

    def test_fleet_wait_ms_values_informational(self):
        base = doc(fleet_fcfs_p99_wait_ms=100.0)
        cur = doc(fleet_fcfs_p99_wait_ms=9999.0)
        failures, notes = compare_docs(base, cur, tolerance=0.5)
        assert failures == []
        assert any(
            "fleet_fcfs_p99_wait_ms: informational" in n for n in notes
        )

    def test_v1_baseline_without_engine_metrics_skipped(self):
        # A committed repro-bench/1 baseline predates the engine
        # stage; its absence must not fail a v2 current run.
        base = dict(doc(), schema="repro-bench/1")
        cur = doc(engine_batch_speedup=6.0, engine_byte_identical=True)
        failures, notes = compare_docs(base, cur, tolerance=0.5)
        assert failures == []
        assert any(
            "engine_batch_speedup: not in baseline" in n for n in notes
        )


def matrix(*pairs):
    return [{"jobs": j, "elapsed_s": s, "speedup": pairs[0][1] / s} for j, s in pairs]


class TestJobsMatrixGate:
    def test_monotone_matrix_passes(self):
        cur = doc(jobs_matrix=matrix((1, 4.0), (2, 2.1), (4, 1.2)))
        failures, notes = compare_docs(doc(), cur, tolerance=0.5)
        assert failures == []
        assert any("jobs_matrix: ok" in n for n in notes)

    def test_single_entry_passes_trivially(self):
        # A single-core runner clamps the matrix to [1]; nothing to
        # degrade against, so the gate passes.
        cur = doc(jobs_matrix=matrix((1, 4.0)))
        failures, _ = compare_docs(doc(), cur, tolerance=0.5)
        assert failures == []

    def test_degradation_beyond_tolerance_fails(self):
        # jobs=4 takes >2x the best earlier time at tolerance 0.5.
        cur = doc(jobs_matrix=matrix((1, 4.0), (2, 2.0), (4, 4.5)))
        failures, _ = compare_docs(doc(), cur, tolerance=0.5)
        assert any("jobs_matrix" in f and "jobs=4" in f for f in failures)

    def test_mild_degradation_within_tolerance_passes(self):
        # jobs=4 slower than jobs=2 but within the 1/tolerance band.
        cur = doc(jobs_matrix=matrix((1, 4.0), (2, 2.0), (4, 2.8)))
        failures, _ = compare_docs(doc(), cur, tolerance=0.5)
        assert failures == []

    def test_unsorted_counts_fail(self):
        cur = doc(jobs_matrix=matrix((2, 2.0), (1, 4.0)))
        failures, _ = compare_docs(doc(), cur, tolerance=0.5)
        assert any("not ascending" in f for f in failures)

    def test_empty_matrix_fails(self):
        cur = doc(jobs_matrix=[])
        failures, _ = compare_docs(doc(), cur, tolerance=0.5)
        assert any("jobs_matrix" in f for f in failures)

    def test_absent_matrix_skipped_with_note(self):
        failures, notes = compare_docs(doc(), doc(), tolerance=0.5)
        assert failures == []
        assert any("jobs_matrix: not in current run" in n for n in notes)


class TestMain:
    def _write(self, path, document):
        path.write_text(json.dumps(document), encoding="utf-8")
        return str(path)

    def test_pass_exits_0(self, tmp_path, capsys):
        base = self._write(tmp_path / "base.json", doc())
        cur = self._write(tmp_path / "cur.json", doc())
        assert main(["--baseline", base, "--current", cur]) == 0
        assert "bench compare: ok" in capsys.readouterr().out

    def test_regression_exits_1(self, tmp_path, capsys):
        base = self._write(tmp_path / "base.json", doc())
        cur = self._write(tmp_path / "cur.json", doc(parallel_speedup=0.1))
        assert main(["--baseline", base, "--current", cur]) == 1
        assert "FAIL" in capsys.readouterr().err

    def test_missing_file_exits_2(self, tmp_path, capsys):
        base = self._write(tmp_path / "base.json", doc())
        assert (
            main(["--baseline", base, "--current", str(tmp_path / "nope.json")])
            == 2
        )
        assert "bench compare:" in capsys.readouterr().err

    def test_v1_document_loads_fine(self, tmp_path, capsys):
        base = self._write(
            tmp_path / "base.json", dict(doc(), schema="repro-bench/1")
        )
        cur = self._write(tmp_path / "cur.json", doc())
        assert main(["--baseline", base, "--current", cur]) == 0
        assert "bench compare: ok" in capsys.readouterr().out

    def test_wrong_schema_exits_2(self, tmp_path, capsys):
        base = self._write(tmp_path / "base.json", doc())
        bad = dict(doc(), schema="other/9")
        cur = self._write(tmp_path / "cur.json", bad)
        assert main(["--baseline", base, "--current", cur]) == 2
        assert "schema" in capsys.readouterr().err

    def test_not_an_object_exits_2(self, tmp_path):
        base = self._write(tmp_path / "base.json", doc())
        cur = tmp_path / "cur.json"
        cur.write_text("[1, 2, 3]")
        assert main(["--baseline", base, "--current", str(cur)]) == 2

    def test_missing_results_exits_2(self, tmp_path):
        base = self._write(tmp_path / "base.json", doc())
        cur = self._write(tmp_path / "cur.json", {"schema": SCHEMA})
        assert main(["--baseline", base, "--current", cur]) == 2

    def test_committed_baseline_compares_against_itself(self, capsys):
        from pathlib import Path

        baseline = Path(__file__).resolve().parents[2] / "BENCH_parallel.json"
        assert baseline.exists()
        code = main(["--baseline", str(baseline), "--current", str(baseline)])
        assert code == 0
        assert "byte_identical: ok" in capsys.readouterr().out
