"""Shared test fixtures.

Expensive artefacts (profiled corpus, trained model) are built once
per session from a deliberately small corpus; tests needing richer
statistics build their own.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import ExperimentContext
from repro.imaging.pipeline import PipelineConfig, StentBoostPipeline
from repro.profiling import ProfileConfig, profile_corpus
from repro.synthetic import CorpusSpec, SequenceConfig, XRaySequence, generate_corpus


@pytest.fixture(scope="session")
def small_corpus_spec() -> CorpusSpec:
    """A small but scenario-diverse training corpus."""
    return CorpusSpec(n_sequences=5, total_frames=220, base_seed=7)


@pytest.fixture(scope="session")
def profile_config() -> ProfileConfig:
    return ProfileConfig()


@pytest.fixture(scope="session")
def traces(small_corpus_spec, profile_config):
    """Profiled traces of the small corpus (built once per session)."""
    return profile_corpus(generate_corpus(small_corpus_spec), profile_config)


@pytest.fixture(scope="session")
def trained_model(traces):
    """A Triple-C model trained on the session traces."""
    from repro.core import TripleC

    return TripleC.fit(traces)


@pytest.fixture(scope="session")
def tiny_context(small_corpus_spec):
    """Experiment context over the small corpus (for experiment smoke
    tests); shares the on-disk cache with the traces fixture."""
    return ExperimentContext(corpus_spec=small_corpus_spec)


@pytest.fixture(scope="session")
def short_sequence() -> XRaySequence:
    """A 40-frame sequence with stable markers."""
    return XRaySequence(SequenceConfig(n_frames=40, seed=11, visibility_dips=0))


@pytest.fixture()
def pipeline(short_sequence) -> StentBoostPipeline:
    sep = short_sequence.config.resolved_phantom().marker_separation
    return StentBoostPipeline(PipelineConfig(expected_distance=sep))


@pytest.fixture(scope="session")
def sample_frame(short_sequence):
    """One rendered frame + truth (frame 5: markers fully visible)."""
    return short_sequence.frame(5)
