"""Tests for Histogram.quantile and Gauge.set_max."""

from __future__ import annotations

import pytest

from repro.obs.metrics import MetricsRegistry, _NullGauge


class TestGaugeSetMax:
    def test_high_water_mark(self):
        g = MetricsRegistry().gauge("depth")
        g.set_max(3.0)
        g.set_max(7.0)
        g.set_max(5.0)
        assert g.value == 7.0

    def test_null_gauge_has_set_max(self):
        g = _NullGauge("null")
        g.set_max(9.0)  # no-op
        assert g.value == 0.0


class TestHistogramQuantile:
    def make(self):
        return MetricsRegistry().histogram("x", buckets=(10.0, 20.0, 40.0))

    def test_empty_returns_zero(self):
        assert self.make().quantile(0.5) == 0.0

    def test_interpolates_within_bucket(self):
        h = self.make()
        for v in (5.0, 15.0, 15.0, 35.0):
            h.observe(v)
        # p50 rank = 2 -> halfway into the (10, 20] bucket.
        assert h.quantile(0.5) == pytest.approx(15.0)
        # p25 rank = 1 -> end of the first bucket.
        assert h.quantile(0.25) == pytest.approx(10.0)

    def test_overflow_bucket_clamps_to_last_bound(self):
        h = self.make()
        h.observe(999.0)
        assert h.quantile(0.99) == 40.0

    def test_monotone_in_q(self):
        h = self.make()
        for v in (1.0, 12.0, 18.0, 25.0, 39.0, 50.0):
            h.observe(v)
        qs = [h.quantile(q) for q in (0.1, 0.3, 0.5, 0.7, 0.9, 1.0)]
        assert qs == sorted(qs)

    def test_invalid_q_rejected(self):
        h = self.make()
        with pytest.raises(ValueError):
            h.quantile(-0.1)
        with pytest.raises(ValueError):
            h.quantile(1.5)
