"""Tests for span nesting, events, and the cross-process trace merge."""

from __future__ import annotations

from repro.obs.clock import ManualClock
from repro.obs.spans import Tracer


def span_records(tracer):
    return [r for r in tracer.records if r["kind"] == "span"]


def event_records(tracer):
    return [r for r in tracer.records if r["kind"] == "event"]


class TestSpans:
    def test_timing_from_injected_clock(self):
        clock = ManualClock(start_ms=100.0)
        tracer = Tracer(clock)
        with tracer.span("work"):
            clock.advance(12.5)
        (rec,) = tracer.records
        assert rec["start_ms"] == 100.0
        assert rec["end_ms"] == 112.5

    def test_nesting_sets_parent_ids(self):
        tracer = Tracer(ManualClock())
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = span_records(tracer)
        assert inner["name"] == "inner"  # children finish first
        assert outer["parent"] is None
        assert inner["parent"] == outer["id"]

    def test_sibling_spans_share_parent(self):
        tracer = Tracer(ManualClock())
        with tracer.span("seq"):
            with tracer.span("frame"):
                pass
            with tracer.span("frame"):
                pass
        frames = [r for r in span_records(tracer) if r["name"] == "frame"]
        parents = {r["parent"] for r in frames}
        ids = {r["id"] for r in frames}
        assert len(ids) == 2
        assert len(parents) == 1

    def test_set_attaches_attrs(self):
        tracer = Tracer(ManualClock())
        with tracer.span("frame") as sp:
            sp.set(frame=3, task_ms={"ENH": 2.0})
        (rec,) = tracer.records
        assert rec["attrs"] == {"frame": 3, "task_ms": {"ENH": 2.0}}

    def test_span_event_attached_to_span(self):
        clock = ManualClock()
        tracer = Tracer(clock)
        with tracer.span("frame") as sp:
            clock.advance(3.0)
            sp.event("repartition", parts={"RDG": 2})
        (ev,) = event_records(tracer)
        (rec,) = span_records(tracer)
        assert ev["span"] == rec["id"]
        assert ev["at_ms"] == 3.0
        assert ev["attrs"] == {"parts": {"RDG": 2}}

    def test_tracer_event_uses_open_span(self):
        tracer = Tracer(ManualClock())
        with tracer.span("outer"):
            tracer.event("inside")
        tracer.event("outside")
        inside, outside = event_records(tracer)
        assert inside["span"] == span_records(tracer)[0]["id"]
        assert outside["span"] is None


class TestMerge:
    def _worker_trace(self) -> Tracer:
        """A worker-local trace whose span ids start at 0."""
        clock = ManualClock()
        worker = Tracer(clock)
        with worker.span("shard") as sh:
            sh.set(seq=7)
            with worker.span("frame"):
                clock.advance(1.0)
            worker.event("loose")
        return worker

    def test_ids_remapped_to_fresh_range(self):
        host = Tracer(ManualClock())
        with host.span("burn"):  # consume host ids 0..
            pass
        worker = self._worker_trace()
        host.merge(worker.records)
        merged = span_records(host)[1:]
        host_ids = {r["id"] for r in span_records(host)}
        assert len(host_ids) == 3  # no collisions
        # Child/parent linkage survives the remap.
        frame = next(r for r in merged if r["name"] == "frame")
        shard = next(r for r in merged if r["name"] == "shard")
        assert frame["parent"] == shard["id"]

    def test_top_level_reparented_under_open_host_span(self):
        host = Tracer(ManualClock())
        worker = self._worker_trace()
        with host.span("parallel.map") as sp:
            host.merge(worker.records)
            host_span_id = sp.span_id
        shard = next(r for r in span_records(host) if r["name"] == "shard")
        assert shard["parent"] == host_span_id

    def test_merge_without_open_span_keeps_roots(self):
        host = Tracer(ManualClock())
        host.merge(self._worker_trace().records)
        shard = next(r for r in span_records(host) if r["name"] == "shard")
        assert shard["parent"] is None

    def test_merge_attrs_stamped_on_every_span(self):
        host = Tracer(ManualClock())
        host.merge(self._worker_trace().records, pool_item=3)
        for rec in span_records(host):
            assert rec["attrs"]["pool_item"] == 3
        # ...and original attrs survive.
        shard = next(r for r in span_records(host) if r["name"] == "shard")
        assert shard["attrs"]["seq"] == 7

    def test_event_span_reference_remapped(self):
        host = Tracer(ManualClock())
        with host.span("parallel.map"):
            host.merge(self._worker_trace().records)
        (ev,) = event_records(host)
        shard = next(r for r in span_records(host) if r["name"] == "shard")
        assert ev["span"] == shard["id"]

    def test_merge_does_not_mutate_source_records(self):
        worker = self._worker_trace()
        before = [dict(r) for r in worker.records]
        host = Tracer(ManualClock())
        host.merge(worker.records, pool_item=0)
        assert worker.records == before

    def test_two_workers_merge_disjoint(self):
        host = Tracer(ManualClock())
        with host.span("parallel.map"):
            host.merge(self._worker_trace().records, pool_item=0)
            host.merge(self._worker_trace().records, pool_item=1)
        ids = [r["id"] for r in span_records(host)]
        assert len(ids) == len(set(ids))
        shards = [r for r in span_records(host) if r["name"] == "shard"]
        assert sorted(r["attrs"]["pool_item"] for r in shards) == [0, 1]
