"""Tests for the metric instruments and their registry."""

from __future__ import annotations

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS_MS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("frames_total")
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError, match="only go up"):
            MetricsRegistry().counter("x").inc(-1.0)

    def test_same_name_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")

    def test_labels_key_distinct_instruments(self):
        reg = MetricsRegistry()
        a = reg.counter("split_total", task="RDG_FULL")
        b = reg.counter("split_total", task="ENH")
        assert a is not b
        a.inc()
        assert b.value == 0.0

    def test_label_order_does_not_matter(self):
        reg = MetricsRegistry()
        a = reg.counter("x", task="T", link="bus")
        b = reg.counter("x", link="bus", task="T")
        assert a is b


class TestGauge:
    def test_set_inc_dec(self):
        g = MetricsRegistry().gauge("cores_in_use")
        g.set(4)
        g.inc()
        g.dec(2.0)
        assert g.value == 3.0


class TestHistogram:
    def test_default_buckets(self):
        h = MetricsRegistry().histogram("latency_ms")
        assert h.bounds == DEFAULT_BUCKETS_MS
        assert len(h.counts) == len(DEFAULT_BUCKETS_MS) + 1

    def test_observe_places_in_le_bucket(self):
        # Prometheus semantics: a value equal to a bound lands in that
        # bucket (le = "less than or equal").
        h = MetricsRegistry().histogram("x", buckets=(1.0, 10.0))
        h.observe(0.5)
        h.observe(1.0)
        h.observe(5.0)
        h.observe(99.0)
        assert h.counts == [2, 1, 1]
        assert h.count == 4
        assert h.sum == pytest.approx(105.5)

    def test_mean(self):
        h = MetricsRegistry().histogram("x", buckets=(0.0, 100.0))
        assert h.mean() == 0.0
        h.observe(2.0)
        h.observe(4.0)
        assert h.mean() == pytest.approx(3.0)

    def test_unsorted_bounds_rejected(self):
        with pytest.raises(ValueError, match="ascending"):
            Histogram("x", bounds=(10.0, 1.0))

    def test_duplicate_bounds_rejected(self):
        with pytest.raises(ValueError, match="ascending"):
            Histogram("x", bounds=(1.0, 1.0, 2.0))


class TestRegistry:
    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError, match="already registered"):
            reg.gauge("x")
        with pytest.raises(TypeError, match="already registered"):
            reg.histogram("x")

    def test_len_counts_instruments(self):
        reg = MetricsRegistry()
        reg.counter("a")
        reg.counter("a")  # same key, no growth
        reg.gauge("b")
        reg.histogram("c", task="T")
        assert len(reg) == 3

    def test_instruments_sorted_for_stable_output(self):
        reg = MetricsRegistry()
        reg.counter("zz")
        reg.counter("aa", task="B")
        reg.counter("aa", task="A")
        keys = [(i.name, i.labels) for i in reg.instruments()]
        assert keys == sorted(keys)


class TestSnapshotMerge:
    def _populated(self) -> MetricsRegistry:
        reg = MetricsRegistry()
        reg.counter("frames_total").inc(3)
        reg.counter("bytes_total", link="bus").inc(100.0)
        reg.gauge("cores").set(2)
        h = reg.histogram("lat_ms", buckets=(1.0, 10.0))
        h.observe(0.5)
        h.observe(5.0)
        return reg

    def test_snapshot_is_jsonable_roundtrip(self):
        import json

        snap = self._populated().snapshot()
        assert json.loads(json.dumps(snap)) == snap

    def test_merge_into_empty_reproduces(self):
        src = self._populated()
        dst = MetricsRegistry()
        dst.merge(src.snapshot())
        assert dst.counter("frames_total").value == 3
        assert dst.counter("bytes_total", link="bus").value == 100.0
        assert dst.gauge("cores").value == 2
        h = dst.histogram("lat_ms", buckets=(1.0, 10.0))
        assert h.counts == [1, 1, 0]
        assert h.count == 2

    def test_counters_and_histograms_add(self):
        dst = self._populated()
        dst.merge(self._populated().snapshot())
        assert dst.counter("frames_total").value == 6
        h = dst.histogram("lat_ms", buckets=(1.0, 10.0))
        assert h.counts == [2, 2, 0]
        assert h.sum == pytest.approx(11.0)

    def test_gauge_last_writer_wins(self):
        dst = self._populated()
        src = MetricsRegistry()
        src.gauge("cores").set(7)
        dst.merge(src.snapshot())
        assert dst.gauge("cores").value == 7

    def test_histogram_layout_mismatch_rejected(self):
        dst = MetricsRegistry()
        dst.histogram("lat_ms", buckets=(1.0, 2.0))
        src = MetricsRegistry()
        src.histogram("lat_ms", buckets=(1.0, 10.0)).observe(5.0)
        with pytest.raises(ValueError, match="bucket layout"):
            dst.merge(src.snapshot())

    def test_kinds_survive_snapshot(self):
        dst = MetricsRegistry()
        dst.merge(self._populated().snapshot())
        assert isinstance(dst.counter("frames_total"), Counter)
        assert isinstance(dst.gauge("cores"), Gauge)
