"""The disabled path must be free: no state, no allocation, no effect.

The acceptance property of the whole layer: running instrumented code
with observability off is indistinguishable -- byte-identical
serialized TraceSets -- from running the same code before the
instrumentation existed, and costs only no-op calls on shared
singletons.
"""

from __future__ import annotations

import os
from unittest import mock

import pytest

import repro.obs as obs
from repro.obs.metrics import NULL_COUNTER, NULL_GAUGE, NULL_HISTOGRAM
from repro.obs.spans import NULL_SPAN
from repro.profiling import ProfileConfig, profile_corpus
from repro.synthetic import CorpusSpec, generate_corpus


@pytest.fixture(scope="module")
def tiny_corpus():
    return generate_corpus(CorpusSpec(n_sequences=2, total_frames=16, base_seed=55))


class TestNullSingletons:
    def test_get_obs_defaults_to_null(self):
        o = obs.get_obs()
        assert o is obs.NULL_OBS
        assert not o.enabled
        assert not obs.is_enabled()

    def test_null_tracer_hands_out_shared_span(self):
        tracer = obs.NULL_OBS.tracer
        assert tracer.span("anything") is NULL_SPAN
        assert tracer.span("other") is NULL_SPAN

    def test_null_span_is_inert(self):
        with NULL_SPAN as sp:
            assert sp is NULL_SPAN
            assert sp.set(seq=1, task_ms={"X": 1.0}) is NULL_SPAN
            sp.event("repartition", parts={})
        assert obs.NULL_OBS.tracer.records == []

    def test_null_registry_hands_out_shared_instruments(self):
        m = obs.NULL_OBS.metrics
        assert m.counter("a") is NULL_COUNTER
        assert m.counter("b", task="T") is NULL_COUNTER
        assert m.gauge("g") is NULL_GAUGE
        assert m.histogram("h", buckets=(1.0,)) is NULL_HISTOGRAM

    def test_null_instruments_never_mutate(self):
        NULL_COUNTER.inc(5.0)
        NULL_GAUGE.set(3.0)
        NULL_GAUGE.inc()
        NULL_GAUGE.dec()
        NULL_HISTOGRAM.observe(42.0)
        assert NULL_COUNTER.value == 0.0
        assert NULL_GAUGE.value == 0.0
        assert NULL_HISTOGRAM.count == 0

    def test_null_merge_is_noop(self):
        obs.NULL_OBS.tracer.merge([{"kind": "span", "id": 0}])
        assert obs.NULL_OBS.tracer.records == []

    def test_null_clock_never_moves(self):
        assert obs.NULL_OBS.clock.now_ms() == 0.0


class TestEnableDisable:
    def test_enable_installs_live_handle(self):
        try:
            handle = obs.enable()
            assert obs.get_obs() is handle
            assert handle.enabled
            assert obs.is_enabled()
        finally:
            obs.disable()
        assert obs.get_obs() is obs.NULL_OBS

    def test_disable_returns_handle_with_telemetry(self):
        handle = obs.enable(obs.ManualClock())
        handle.metrics.counter("x").inc()
        with handle.tracer.span("s"):
            pass
        returned = obs.disable()
        assert returned is handle
        assert returned.metrics.counter("x").value == 1
        assert len(returned.tracer.records) == 1

    def test_disable_when_off_returns_none(self):
        assert obs.disable() is None

    def test_observed_restores_previous_state(self):
        assert not obs.is_enabled()
        with obs.observed() as o:
            assert obs.get_obs() is o
        assert not obs.is_enabled()

    def test_observed_nests(self):
        with obs.observed() as outer:
            with obs.observed() as inner:
                assert obs.get_obs() is inner
            assert obs.get_obs() is outer

    def test_observed_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with obs.observed():
                raise RuntimeError("boom")
        assert not obs.is_enabled()

    def test_dump_writes_both_artifacts(self, tmp_path):
        with obs.observed(obs.ManualClock()) as o:
            o.metrics.counter("frames_total").inc()
            with o.tracer.span("s"):
                pass
            trace_path, prom_path = obs.dump(o, tmp_path / "out")
        assert '"name": "s"' in trace_path.read_text()
        assert "repro_frames_total 1" in prom_path.read_text()


class TestEnableFromEnv:
    def test_unset_returns_none(self):
        with mock.patch.dict(os.environ, {}, clear=False):
            os.environ.pop(obs.ENV_OBS_DIR, None)
            assert obs.maybe_enable_from_env() is None
        assert not obs.is_enabled()

    def test_blank_returns_none(self):
        with mock.patch.dict(os.environ, {obs.ENV_OBS_DIR: "  "}):
            assert obs.maybe_enable_from_env() is None
        assert not obs.is_enabled()

    def test_set_enables_and_returns_dir(self):
        try:
            with mock.patch.dict(os.environ, {obs.ENV_OBS_DIR: "obs-out"}):
                out = obs.maybe_enable_from_env()
            assert str(out) == "obs-out"
            assert obs.is_enabled()
        finally:
            obs.disable()


class TestByteIdentity:
    """Observability on/off must not perturb the instrumented code."""

    def test_profiled_traceset_identical_on_off(self, tiny_corpus, tmp_path):
        config = ProfileConfig()
        plain = profile_corpus(tiny_corpus, config, jobs=1)
        with obs.observed() as o:
            instrumented = profile_corpus(tiny_corpus, config, jobs=1)
            assert o.metrics.counter("profile_frames_total").value > 0

        p_plain = tmp_path / "plain.json"
        p_instr = tmp_path / "instrumented.json"
        plain.save(p_plain)
        instrumented.save(p_instr)
        assert p_plain.read_bytes() == p_instr.read_bytes()

    def test_pooled_profiling_identical_under_obs(self, tiny_corpus, tmp_path):
        config = ProfileConfig()
        plain = profile_corpus(tiny_corpus, config, jobs=1)
        with obs.observed():
            pooled = profile_corpus(tiny_corpus, config, jobs=2)

        p_plain = tmp_path / "plain.json"
        p_pooled = tmp_path / "pooled.json"
        plain.save(p_plain)
        pooled.save(p_pooled)
        assert p_plain.read_bytes() == p_pooled.read_bytes()
