"""Telemetry emitted by the instrumented seams (profiler, engine, pool).

These tests run real code paths under a scoped ``obs.observed()`` and
assert the trace/metric shape the ISSUE promises: per-frame spans,
prediction-residual histograms, repartition counters, and worker span
merges from the process pool.
"""

from __future__ import annotations

import pytest

import repro.obs as obs
from repro.imaging.pipeline import PipelineConfig, StentBoostPipeline
from repro.parallel import map_sequences
from repro.profiling import ProfileConfig, profile_corpus
from repro.runtime import ResourceManager
from repro.synthetic import CorpusSpec, SequenceConfig, XRaySequence, generate_corpus


def spans_named(o, name):
    return [
        r
        for r in o.tracer.records
        if r.get("kind") == "span" and r.get("name") == name
    ]


def instruments_named(o, name):
    return [i for i in o.metrics.instruments() if i.name == name]


@pytest.fixture(scope="module")
def managed_obs(traces, profile_config):
    """One managed run captured under observability."""
    from repro.core import TripleC

    seq = XRaySequence(
        SequenceConfig(n_frames=40, seed=777, visibility_dips=1, clutter_level=0.9)
    )
    pipe = StentBoostPipeline(
        PipelineConfig(
            expected_distance=seq.config.resolved_phantom().marker_separation
        )
    )
    mgr = ResourceManager(TripleC.fit(traces), profile_config.make_simulator())
    with obs.observed() as o:
        result = mgr.run_sequence(seq, pipe, seq_key="t-obs")
    return o, result, seq


class TestManagerTelemetry:
    def test_one_frame_span_per_frame(self, managed_obs):
        o, _result, seq = managed_obs
        frames = spans_named(o, "engine.frame")
        assert len(frames) == len(seq)
        (seq_span,) = spans_named(o, "engine.sequence")
        assert all(r["parent"] == seq_span["id"] for r in frames)
        assert seq_span["attrs"]["seq"] == "t-obs"

    def test_frame_span_attrs_match_log(self, managed_obs):
        o, result, _seq = managed_obs
        frames = spans_named(o, "engine.frame")
        for rec, log in zip(frames, result.frames):
            attrs = rec["attrs"]
            assert attrs["frame"] == log.index
            assert attrs["scenario"] == log.actual_scenario
            assert attrs["latency_ms"] == log.latency_ms
            assert sum(attrs["task_ms"].values()) == pytest.approx(log.serial_ms)
            assert attrs["cores"] == log.cores_used

    def test_frame_counter_matches(self, managed_obs):
        o, _result, seq = managed_obs
        assert o.metrics.counter("runtime_frames_total").value == len(seq)

    def test_scenario_hit_miss_partition(self, managed_obs):
        o, result, seq = managed_obs
        hits = o.metrics.counter("runtime_scenario_hit_total").value
        misses = o.metrics.counter("runtime_scenario_miss_total").value
        assert hits + misses == len(seq)
        expected_hits = sum(
            1 for f in result.frames if f.predicted_scenario == f.actual_scenario
        )
        assert hits == expected_hits

    def test_repartition_counter_matches_events(self, managed_obs):
        o, result, _seq = managed_obs
        switches = sum(
            1
            for a, b in zip(result.frames, result.frames[1:])
            if a.parts != b.parts
        )
        assert o.metrics.counter("runtime_repartition_total").value == switches
        events = [
            r
            for r in o.tracer.records
            if r.get("kind") == "event" and r.get("name") == "repartition"
        ]
        assert len(events) == switches

    def test_residual_histograms_per_task(self, managed_obs):
        o, _result, seq = managed_obs
        per_task = instruments_named(o, "predict_residual_ms")
        assert per_task, "model residual histograms missing"
        tasks = {dict(h.labels)["task"] for h in per_task}
        # Residuals exist only for tasks that were predicted *and*
        # executed on the same frame, so the label set is a subset of
        # the executed tasks.
        executed = set().union(*(f.parts.keys() for f in managed_obs[1].frames))
        assert tasks and tasks <= executed
        assert all(h.count > 0 for h in per_task)
        frame_hist = o.metrics.histogram("runtime_frame_residual_ms")
        assert frame_hist.count == len(seq)

    def test_latency_histogram_sums_match_log(self, managed_obs):
        o, result, _seq = managed_obs
        hist = o.metrics.histogram("runtime_frame_latency_ms")
        assert hist.sum == pytest.approx(
            sum(f.latency_ms for f in result.frames)
        )


def _span_worker(x: int) -> int:
    """Module-level pool worker that emits its own telemetry."""
    o = obs.get_obs()
    with o.tracer.span("worker.item") as sp:
        if o.enabled:
            sp.set(item=x)
            o.metrics.counter("worker_items_total").inc()
    return 2 * x


class TestPoolTelemetry:
    def test_worker_spans_merge_into_parent_trace(self):
        with obs.observed() as o:
            results = map_sequences(_span_worker, list(range(4)), jobs=2)
        assert results == [0, 2, 4, 6]
        (map_span,) = spans_named(o, "parallel.map")
        assert map_span["attrs"] == {"n_items": 4, "jobs": 2, "chunksize": 1}
        items = spans_named(o, "worker.item")
        assert len(items) == 4
        # Re-parented under the fan-out span, stamped with their slot,
        # ids all distinct after the remap.
        assert all(r["parent"] == map_span["id"] for r in items)
        assert sorted(r["attrs"]["pool_item"] for r in items) == [0, 1, 2, 3]
        ids = [r["id"] for r in o.tracer.records if r["kind"] == "span"]
        assert len(ids) == len(set(ids))

    def test_worker_counters_sum_across_processes(self):
        with obs.observed() as o:
            map_sequences(_span_worker, list(range(6)), jobs=3)
        assert o.metrics.counter("worker_items_total").value == 6

    def test_inline_path_records_directly(self):
        with obs.observed() as o:
            map_sequences(_span_worker, [1, 2], jobs=1)
        (map_span,) = spans_named(o, "parallel.map")
        assert map_span["attrs"] == {"n_items": 2, "jobs": 1}
        items = spans_named(o, "worker.item")
        assert len(items) == 2
        assert all("pool_item" not in r["attrs"] for r in items)

    def test_disabled_pool_path_collects_nothing(self):
        results = map_sequences(_span_worker, list(range(4)), jobs=2)
        assert results == [0, 2, 4, 6]
        assert obs.NULL_OBS.tracer.records == []


class TestProfilerTelemetry:
    def test_pooled_corpus_profile_collects_all_frames(self):
        corpus = generate_corpus(
            CorpusSpec(n_sequences=2, total_frames=16, base_seed=55)
        )
        total = sum(len(s) for s in corpus)
        with obs.observed() as o:
            profile_corpus(corpus, ProfileConfig(), jobs=2)
        assert o.metrics.counter("profile_frames_total").value == total
        frames = spans_named(o, "profile.frame")
        assert len(frames) == total
        seqs = spans_named(o, "profile.sequence")
        assert len(seqs) == len(corpus)
        assert o.metrics.histogram("profile_frame_latency_ms").count == total
        # Bus traffic counters merged from the workers.
        links = instruments_named(o, "bus_traffic_bytes_total")
        assert links and all(c.value > 0 for c in links)
