"""Tests for the JSONL / Prometheus exporters and the report renderer."""

from __future__ import annotations

import pytest

from repro.obs.clock import ManualClock
from repro.obs.export import prometheus_text, read_jsonl, write_jsonl
from repro.obs.metrics import MetricsRegistry
from repro.obs.report import main, render_report, selftest
from repro.obs.spans import Tracer


class TestJsonl:
    def test_round_trip(self, tmp_path):
        clock = ManualClock()
        tracer = Tracer(clock)
        with tracer.span("frame") as sp:
            clock.advance(4.0)
            sp.set(seq=1, task_ms={"ENH": 2.0})
            sp.event("evt", n=3)
        path = write_jsonl(tracer.records, tmp_path / "trace.jsonl")
        assert read_jsonl(path) == tracer.records

    def test_blank_lines_tolerated(self, tmp_path):
        p = tmp_path / "t.jsonl"
        p.write_text('{"kind": "span"}\n\n{"kind": "event"}\n')
        assert len(read_jsonl(p)) == 2

    def test_non_object_line_rejected(self, tmp_path):
        p = tmp_path / "t.jsonl"
        p.write_text("[1, 2]\n")
        with pytest.raises(ValueError, match="not an object"):
            read_jsonl(p)


class TestPrometheusText:
    def test_empty_registry_renders_empty(self):
        assert prometheus_text(MetricsRegistry()) == ""

    def test_counter_and_gauge_lines(self):
        reg = MetricsRegistry()
        reg.counter("frames_total").inc(3)
        reg.gauge("cores").set(2.5)
        text = prometheus_text(reg)
        assert "# TYPE repro_frames_total counter" in text
        assert "repro_frames_total 3" in text
        assert "# TYPE repro_cores gauge" in text
        assert "repro_cores 2.5" in text

    def test_labels_rendered_and_escaped(self):
        reg = MetricsRegistry()
        reg.counter("split_total", task='R"D\\G').inc()
        text = prometheus_text(reg)
        assert 'repro_split_total{task="R\\"D\\\\G"} 1' in text

    def test_histogram_cumulative_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat_ms", buckets=(1.0, 10.0), task="ENH")
        h.observe(0.5)
        h.observe(5.0)
        h.observe(50.0)
        text = prometheus_text(reg)
        assert "# TYPE repro_lat_ms histogram" in text
        assert 'repro_lat_ms_bucket{task="ENH",le="1"} 1' in text
        assert 'repro_lat_ms_bucket{task="ENH",le="10"} 2' in text
        assert 'repro_lat_ms_bucket{task="ENH",le="+Inf"} 3' in text
        assert 'repro_lat_ms_sum{task="ENH"} 55.5' in text
        assert 'repro_lat_ms_count{task="ENH"} 3' in text

    def test_one_type_header_per_metric_name(self):
        reg = MetricsRegistry()
        reg.counter("x_total", task="A").inc()
        reg.counter("x_total", task="B").inc()
        text = prometheus_text(reg)
        assert text.count("# TYPE repro_x_total counter") == 1

    def test_custom_namespace(self):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        assert "myapp_x 1" in prometheus_text(reg, namespace="myapp_")


class TestReport:
    def _trace(self):
        clock = ManualClock()
        tracer = Tracer(clock)
        with tracer.span("profile.sequence"):
            for frame in range(4):
                with tracer.span("profile.frame") as sp:
                    clock.advance(10.0)
                    sp.set(
                        seq="s0",
                        frame=frame,
                        scenario=frame // 2,
                        latency_ms=10.0,
                        task_ms={"RDG_FULL": 8.0, "ENH": 2.0},
                        residual_ms={"RDG_FULL": 0.5},
                    )
        return tracer.records

    def test_span_summary_present(self):
        report = render_report(self._trace())
        assert "trace: 5 spans, 0 events" in report
        assert "profile.frame" in report
        assert "profile.sequence" in report

    def test_task_table_aggregates_attrs(self):
        report = render_report(self._trace())
        assert "RDG_FULL" in report and "ENH" in report
        assert "+0.500" in report  # mean signed residual

    def test_sequence_table_counts_scenario_switches(self):
        lines = render_report(self._trace()).splitlines()
        row = next(line for line in lines if line.startswith("s0"))
        cells = row.split()
        assert cells[1] == "4"  # frames
        assert cells[-1] == "1"  # one scenario switch (0 -> 1)

    def test_empty_trace_renders(self):
        assert "trace: 0 spans" in render_report([])

    def test_selftest_passes(self, capsys):
        assert selftest() == 0
        assert "obs selftest ok" in capsys.readouterr().out


class TestReportMain:
    def test_selftest_flag(self, capsys):
        assert main(["--selftest"]) == 0
        assert "obs selftest ok" in capsys.readouterr().out

    def test_reads_trace_file(self, tmp_path, capsys):
        path = write_jsonl(self._records(), tmp_path / "trace.jsonl")
        assert main([str(path)]) == 0
        assert "profile.frame" in capsys.readouterr().out

    def test_directory_resolves_to_trace_jsonl(self, tmp_path, capsys):
        write_jsonl(self._records(), tmp_path / "trace.jsonl")
        assert main([str(tmp_path)]) == 0
        assert "spans" in capsys.readouterr().out

    def test_missing_trace_exits_2(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope.jsonl")]) == 2
        assert "no such trace" in capsys.readouterr().err

    @staticmethod
    def _records():
        clock = ManualClock()
        tracer = Tracer(clock)
        with tracer.span("profile.frame"):
            clock.advance(1.0)
        return tracer.records
