#!/usr/bin/env python
"""Online model training: adapting to a mid-procedure content change.

Section 6 ("Profiling"): the differences between consumed and
predicted resources "can be used for on-line model training".  This
demo trains Triple-C on normal-dose content, then runs a procedure
whose X-ray dose drops sharply halfway through (more quantum noise →
more ridge pixels and marker candidates → higher task times).  The
EWMA state always adapts; with ``online_update=True`` the Markov
transition counts retrain too, and the prediction error after the
change shrinks further.

Run:  python examples/online_adaptation.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    CorpusSpec,
    Mapping,
    ProfileConfig,
    SequenceConfig,
    StentBoostPipeline,
    TripleC,
    XRaySequence,
    generate_corpus,
    profile_corpus,
)
from repro.imaging.pipeline import PipelineConfig
from repro.synthetic.noise import NoiseSpec


def run_procedure(model: TripleC, config: ProfileConfig, n_frames: int = 120):
    """Two half-procedures: normal dose, then low dose (seed shared)."""
    halves = [
        SequenceConfig(n_frames=n_frames // 2, seed=9001, noise=NoiseSpec(dose=1.2)),
        SequenceConfig(n_frames=n_frames // 2, seed=9001, noise=NoiseSpec(dose=0.35)),
    ]
    sim = config.make_simulator()
    model.start_sequence()
    errors = []
    for half_idx, cfg in enumerate(halves):
        seq = XRaySequence(cfg)
        pipe = StentBoostPipeline(
            PipelineConfig(
                expected_distance=seq.config.resolved_phantom().marker_separation
            )
        )
        for img, _ in seq.iter_frames():
            roi_px = pipe.roi.pixels if pipe.roi is not None else img.size
            roi_kpx = roi_px / 1000.0 * config.pixel_scale
            pred = model.predict(roi_kpx)
            fa = pipe.process(img)
            res = sim.simulate_frame(
                fa.reports, Mapping.serial(), frame_key=(half_idx, fa.index)
            )
            actual = sum(res.task_ms.values())
            if fa.index >= 3:
                errors.append(abs(pred.frame_ms - actual) / max(actual, 1e-9))
            model.observe(fa.scenario_id, res.task_ms, roi_kpx)
    return np.asarray(errors)


def main() -> None:
    print("training on normal-dose corpus ...")
    config = ProfileConfig()
    traces = profile_corpus(
        generate_corpus(CorpusSpec(n_sequences=8, total_frames=400)), config
    )

    static = TripleC.fit(traces)
    online = TripleC.fit(traces, online_update=True)

    err_static = run_procedure(static, config)
    err_online = run_procedure(online, config)

    half = len(err_static) // 2
    print("\nmedian relative prediction error:")
    print(f"{'phase':22s} {'static model':>13s} {'online update':>14s}")
    for name, sl in (("normal dose", slice(0, half)), ("after dose drop", slice(half, None))):
        print(
            f"{name:22s} {np.median(err_static[sl]) * 100:12.1f}% "
            f"{np.median(err_online[sl]) * 100:13.1f}%"
        )
    print(
        "\nthe EWMA keeps both models tracking after the change; online "
        "transition retraining additionally re-fits the short-term "
        "fluctuation statistics to the new noise regime."
    )


if __name__ == "__main__":
    main()
