#!/usr/bin/env python
"""The clinical application itself: motion-compensated stent boost.

Runs the full Fig. 2 pipeline over a synthetic angiography sequence
and writes three PGM images (viewable everywhere, no plotting deps):

* ``out_raw.pgm``        -- one noisy input frame;
* ``out_enhanced.pgm``   -- the temporally integrated (StentBoost) view;
* ``out_zoomed.pgm``     -- the zoomed ROI presented to the physician.

It also prints the noise statistics before/after enhancement -- the
Fig. 1 effect: the stent and markers reinforce while quantum noise
averages out.

Run:  python examples/stent_enhancement.py [output-dir]
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np

from repro import SequenceConfig, StentBoostPipeline, XRaySequence
from repro.imaging.pipeline import PipelineConfig


def write_pgm(path: Path, img: np.ndarray) -> None:
    """Write a float image in [0,1] as a binary 8-bit PGM."""
    data = np.clip(img * 255.0, 0, 255).astype(np.uint8)
    h, w = data.shape
    with open(path, "wb") as fh:
        fh.write(f"P5\n{w} {h}\n255\n".encode())
        fh.write(data.tobytes())


def main(out_dir: str = ".") -> None:
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)

    seq = XRaySequence(
        SequenceConfig(n_frames=60, seed=2024, visibility_dips=0, injection_frame=5)
    )
    pipeline = StentBoostPipeline(
        PipelineConfig(
            expected_distance=seq.config.resolved_phantom().marker_separation
        )
    )

    last_raw = None
    last_output = None
    enhanced_roi_stats = []
    for img, truth in seq.iter_frames():
        analysis = pipeline.process(img)
        last_raw = img
        if analysis.output is not None:
            last_output = analysis.output
            roi = analysis.roi_next
            # Noise proxy: local std-dev inside the ROI, away from edges.
            patch_raw = img[roi.slices]
            enhanced_roi_stats.append(
                (float(np.std(np.diff(patch_raw, axis=0))), analysis.index)
            )

    if last_output is None:
        print("pipeline never locked onto the markers -- try another seed")
        return

    # Reconstruct the enhanced full frame from the integrator state.
    enhanced = pipeline.enhancer._acc  # noqa: SLF001 (demo introspection)
    write_pgm(out / "out_raw.pgm", last_raw)
    write_pgm(out / "out_enhanced.pgm", enhanced)
    write_pgm(out / "out_zoomed.pgm", last_output)

    roi = pipeline.roi
    region = roi.slices if roi is not None else (slice(None), slice(None))
    noise_before = float(np.std(np.diff(last_raw[region], axis=0)))
    noise_after = float(np.std(np.diff(enhanced[region], axis=0)))
    print(f"frames integrated: {pipeline.enhancer.integrated_frames}")
    print(
        f"high-frequency noise in ROI: {noise_before:.4f} (raw) -> "
        f"{noise_after:.4f} (enhanced), "
        f"{noise_before / max(noise_after, 1e-9):.1f}x reduction"
    )
    print(f"wrote {out/'out_raw.pgm'}, {out/'out_enhanced.pgm'}, {out/'out_zoomed.pgm'}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else ".")
