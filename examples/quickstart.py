#!/usr/bin/env python
"""Quickstart: train Triple-C and predict per-frame resource usage.

The 60-second tour of the library:

1. generate a synthetic angiography training corpus;
2. profile it (run the real image analysis, simulate the platform);
3. fit the Triple-C model (EWMA + Markov chains + scenario table);
4. run the strict predict-then-observe loop on an unseen sequence
   and score the predictions.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    CorpusSpec,
    Mapping,
    ProfileConfig,
    SequenceConfig,
    StentBoostPipeline,
    TripleC,
    XRaySequence,
    generate_corpus,
    prediction_accuracy,
    profile_corpus,
)
from repro.imaging.pipeline import PipelineConfig


def main() -> None:
    # 1 + 2. Profile a small training corpus (the paper uses
    # 37 sequences / 1,921 frames; this demo shrinks it for speed).
    print("profiling training corpus ...")
    config = ProfileConfig()
    corpus = generate_corpus(CorpusSpec(n_sequences=8, total_frames=400))
    traces = profile_corpus(corpus, config)
    print(f"  {len(traces)} frames, tasks: {', '.join(traces.tasks())}")

    # 3. Fit the model.
    model = TripleC.fit(traces)
    print("\nper-task prediction models (paper Table 2b):")
    for task, kind in model.computation.summary():
        mean = model.computation.train_mean_ms[task]
        print(f"  {task:14s} {kind:20s} (train mean {mean:5.1f} ms)")

    # 4. Predict-then-observe on an unseen sequence.
    seq = XRaySequence(SequenceConfig(n_frames=80, seed=12345))
    pipeline = StentBoostPipeline(
        PipelineConfig(
            expected_distance=seq.config.resolved_phantom().marker_separation
        )
    )
    simulator = config.make_simulator()
    model.start_sequence()

    predicted, measured = [], []
    for img, _truth in seq.iter_frames():
        roi_px = pipeline.roi.pixels if pipeline.roi is not None else img.size
        roi_kpx = roi_px / 1000.0 * config.pixel_scale

        pred = model.predict(roi_kpx)  # BEFORE the frame runs
        analysis = pipeline.process(img)  # the real image analysis
        result = simulator.simulate_frame(
            analysis.reports, Mapping.serial(), frame_key=("demo", analysis.index)
        )
        model.observe(analysis.scenario_id, result.task_ms, roi_kpx)

        if analysis.index >= 3:  # skip model warm-up
            predicted.append(pred.frame_ms)
            measured.append(sum(result.task_ms.values()))

    report = prediction_accuracy(np.asarray(predicted), np.asarray(measured))
    print(
        f"\nheld-out frame-time prediction: "
        f"mean accuracy {report.mean_accuracy * 100:.1f}% "
        f"(paper reports 97%), "
        f"excursions >20%: {report.excursion_fraction * 100:.1f}% of frames"
    )


if __name__ == "__main__":
    main()
