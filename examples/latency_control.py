#!/usr/bin/env python
"""Latency control demo: the Fig. 7 experiment with an ASCII plot.

Runs the same test sequence under (a) the straightforward static
serial mapping and (b) Triple-C-managed semi-automatic parallelization
and renders both latency traces side by side in the terminal.

Run:  python examples/latency_control.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    CorpusSpec,
    ProfileConfig,
    ResourceManager,
    SequenceConfig,
    StentBoostPipeline,
    TripleC,
    XRaySequence,
    generate_corpus,
    profile_corpus,
    run_straightforward,
)
from repro.imaging.pipeline import PipelineConfig
from repro.util.stats import jitter_metrics


def ascii_plot(series: np.ndarray, lo: float, hi: float, width: int = 64) -> list[str]:
    """Render a latency trace as one ASCII bar row per frame bucket."""
    n_rows = 16
    buckets = np.array_split(series, min(len(series), n_rows))
    lines = []
    for b in buckets:
        v = float(np.mean(b))
        pos = int((v - lo) / max(hi - lo, 1e-9) * (width - 1))
        pos = int(np.clip(pos, 0, width - 1))
        lines.append("|" + " " * pos + "*" + " " * (width - 1 - pos) + f"| {v:6.1f} ms")
    return lines


def make_pipeline(seq: XRaySequence) -> StentBoostPipeline:
    return StentBoostPipeline(
        PipelineConfig(
            expected_distance=seq.config.resolved_phantom().marker_separation
        )
    )


def main() -> None:
    print("training Triple-C ...")
    config = ProfileConfig()
    traces = profile_corpus(
        generate_corpus(CorpusSpec(n_sequences=8, total_frames=400)), config
    )
    model = TripleC.fit(traces)

    seq_cfg = SequenceConfig(
        n_frames=160, seed=777, visibility_dips=1, clutter_level=0.9, injection_frame=40
    )

    sw = run_straightforward(
        XRaySequence(seq_cfg),
        make_pipeline(XRaySequence(seq_cfg)),
        config.make_simulator(),
        seq_key="demo-sw",
    )
    manager = ResourceManager(model, config.make_simulator())
    mg = manager.run_sequence(
        XRaySequence(seq_cfg), make_pipeline(XRaySequence(seq_cfg)), seq_key="demo-mg"
    )

    lat_sw = sw.latency()
    lat_out = mg.output_latency()
    lo = 0.0
    hi = float(max(lat_sw.max(), lat_out.max())) * 1.05

    print("\nstraightforward mapping (latency follows content):")
    for line in ascii_plot(lat_sw, lo, hi):
        print(line)
    print("\nTriple-C managed (output latency pinned to the budget):")
    for line in ascii_plot(lat_out, lo, hi):
        print(line)

    j_sw, j_out = jitter_metrics(lat_sw), jitter_metrics(lat_out)
    print(
        f"\nstraightforward: mean {j_sw.mean:.1f} ms, std {j_sw.std:.2f}, "
        f"worst/avg {j_sw.worst_over_avg * 100:.0f}%"
    )
    print(
        f"managed output:  mean {j_out.mean:.1f} ms, std {j_out.std:.2f}, "
        f"worst/avg {j_out.worst_over_avg * 100:.0f}% "
        f"(budget {mg.budget_ms:.1f} ms)"
    )
    print(
        f"jitter reduction: {100 * (1 - j_out.std / j_sw.std):.0f}% "
        f"(paper reports ~70%)"
    )


if __name__ == "__main__":
    main()
