#!/usr/bin/env python
"""Capacity planning with the analytic Triple-C models.

Uses only the *analysis* side of Triple-C -- no profiling, no
training -- to answer the platform-dimensioning questions Section 5
is about:

* what does each scenario cost in inter-task + swap bandwidth?
* which tasks overflow the L2, and by how much?
* how many concurrent StentBoost-class functions fit the platform?

Run:  python examples/capacity_planning.py
"""

from __future__ import annotations

from repro import blackford, get_workload
from repro.core.bandwidth import BandwidthModel
from repro.core.cachemodel import CacheMemoryModel
from repro.graph.scenarios import ALL_SCENARIOS, scenario_name
from repro.util.units import KIB, MB


def main() -> None:
    graph = get_workload("stentboost").build_graph()
    platform = blackford()
    bw = BandwidthModel(graph, platform)
    cache = CacheMemoryModel(graph, platform)

    print(f"platform: {platform.name}, {platform.n_cores} cores @ "
          f"{platform.core_hz / 1e9:.2f} GHz, {platform.n_l2} x "
          f"{platform.l2.capacity_bytes // (1024 * 1024)} MB L2")

    print("\nper-scenario bandwidth (analytic, MByte/s at 30 Hz):")
    print(f"  {'scenario':16s} {'inter-task':>10s} {'swap':>8s} {'total':>8s}")
    worst_total = 0.0
    for sc in ALL_SCENARIOS:
        s = bw.scenario_bandwidth(sc.state)
        worst_total = max(worst_total, s.total_mbps)
        print(
            f"  {scenario_name(sc.state):16s} {s.inter_task_mbps:10.0f} "
            f"{s.swap_mbps:8.0f} {s.total_mbps:8.0f}"
        )

    print("\nL2 overflow analysis (full-frame granularity):")
    for task in sorted(graph.tasks):
        spec = graph.tasks[task]
        if spec.kind != "stream" or not spec.phases:
            continue
        pred = cache.predict_task(task)
        status = (
            f"overflows, evicts {pred.eviction_bytes / KIB:.0f} KB/frame"
            if not pred.fits
            else "fits"
        )
        print(f"  {task:14s} working set {pred.working_set_bytes / KIB:6.0f} KB  {status}")

    # How many such applications fit?  Two hard resources: the system
    # bus (29 GB/s) and the DRAM streaming bandwidth (4 x 3.83 GB/s).
    dram_mbps = platform.total_dram_stream_bw / MB
    bus_mbps = platform.l2_bus_bw / MB
    fit_dram = int(dram_mbps // worst_total)
    fit_bus = int(bus_mbps // worst_total)
    print(
        f"\nworst-case scenario draws {worst_total:.0f} MByte/s; the "
        f"platform sustains {dram_mbps:.0f} MByte/s DRAM streaming and "
        f"{bus_mbps:.0f} MByte/s on the bus"
    )
    print(
        f"=> bandwidth headroom for ~{min(fit_dram, fit_bus)} concurrent "
        f"worst-case functions (compute permitting) -- the 'execute more "
        f"functions on the same platform' budget the paper targets"
    )


if __name__ == "__main__":
    main()
