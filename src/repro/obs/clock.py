"""The injectable time source of the observability layer.

Everything in ``repro.obs`` that needs a timestamp receives a
:class:`Clock`, so (a) span timing is monotonic and immune to NTP
steps, (b) tests drive time by hand with :class:`ManualClock`, and
(c) the rest of the codebase never reads the wall clock directly --
``lint/direct-time-call`` bans ``time.monotonic()`` /
``time.perf_counter()`` outside ``repro/obs/`` and ``repro/bench/``,
and ``lint/wall-clock`` keeps ``core/`` model code pure.  This module
is the one sanctioned call site outside the bench harness.
"""

from __future__ import annotations

import time
from typing import Protocol

__all__ = [
    "Clock",
    "MonotonicClock",
    "ManualClock",
    "ZeroClock",
    "default_clock",
    "monotonic_s",
]


class Clock(Protocol):
    """Time source: milliseconds since an arbitrary, fixed origin."""

    def now_ms(self) -> float:
        """Current monotonic time in milliseconds."""


class MonotonicClock:
    """The real monotonic clock (``time.perf_counter`` based).

    ``perf_counter`` is preferred over ``monotonic`` for its higher
    resolution; both share the properties spans need (never goes
    backwards, unaffected by wall-clock adjustments).
    """

    def now_ms(self) -> float:
        return time.perf_counter() * 1e3


class ManualClock:
    """A hand-driven clock for deterministic tests."""

    def __init__(self, start_ms: float = 0.0) -> None:
        self._now = float(start_ms)

    def now_ms(self) -> float:
        return self._now

    def advance(self, ms: float) -> float:
        """Move time forward; returns the new now."""
        if ms < 0:
            raise ValueError("time cannot go backwards")
        self._now += float(ms)
        return self._now


class ZeroClock:
    """The disabled-path clock: never touches the OS, always 0.

    The null observability singleton carries this so that code running
    with observability off performs no time syscalls at all.
    """

    def now_ms(self) -> float:
        return 0.0


_DEFAULT = MonotonicClock()


def default_clock() -> Clock:
    """The process-wide real clock instance."""
    return _DEFAULT


def monotonic_s() -> float:
    """Monotonic seconds -- the sanctioned stopwatch for non-bench code.

    Callers outside ``repro/obs`` and ``repro/bench`` that need a
    coarse duration (e.g. the experiment driver's per-experiment
    timing) route through this helper instead of calling ``time``
    directly, keeping ``lint/direct-time-call`` satisfied in one
    place.
    """
    return _DEFAULT.now_ms() / 1e3
