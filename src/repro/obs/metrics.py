"""Process-local metric instruments: counters, gauges, histograms.

The design follows the Prometheus data model (monotonic counters,
point-in-time gauges, cumulative-bucket histograms) without any
dependency: a :class:`MetricsRegistry` hands out instruments keyed by
``(name, labels)``, snapshots them into plain JSON-able dicts, and
merges snapshots from worker processes back in (the parallel
profiling fan-out returns one snapshot per worker).

Naming convention (rendered with a ``repro_`` prefix by
:func:`repro.obs.export.prometheus_text`):

* ``<area>_<quantity>_<unit>`` for gauges/histograms
  (``runtime_frame_latency_ms``),
* ``<area>_<quantity>_total`` for counters
  (``runtime_repartition_total``),
* label keys are static dimensions with low cardinality
  (``task``, ``link``, ``state``).

A :class:`NullRegistry` is what disabled observability hands out: its
instruments are shared no-op singletons, so the off path allocates
nothing and mutates nothing (pinned by ``tests/obs/test_nullpath``).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Mapping, Sequence

__all__ = [
    "DEFAULT_BUCKETS_MS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
]

#: Default histogram bucket upper bounds (milliseconds).  Symmetric
#: around zero so the same default serves latencies *and* signed
#: prediction residuals; the implicit +Inf bucket closes the range.
DEFAULT_BUCKETS_MS: tuple[float, ...] = (
    -250.0, -100.0, -50.0, -25.0, -10.0, -5.0, -2.5, -1.0, -0.5,
    0.0, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0,
)

_LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: Mapping[str, str]) -> _LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing count (events, bytes, frames)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: _LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """Point-in-time value (cores in use, budget, occupancy)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: _LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def set_max(self, value: float) -> None:
        """Keep the high-water mark (queue depth, fleet occupancy)."""
        v = float(value)
        if v > self.value:
            self.value = v

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Cumulative-bucket distribution (latencies, residuals).

    ``bounds`` are the finite bucket upper edges, ascending; an
    implicit +Inf bucket catches the tail, so ``counts`` has
    ``len(bounds) + 1`` cells.
    """

    __slots__ = ("name", "labels", "bounds", "counts", "sum", "count")

    def __init__(
        self,
        name: str,
        labels: _LabelKey = (),
        bounds: Sequence[float] = DEFAULT_BUCKETS_MS,
    ) -> None:
        b = tuple(float(x) for x in bounds)
        if list(b) != sorted(set(b)):
            raise ValueError("histogram bounds must be strictly ascending")
        self.name = name
        self.labels = labels
        self.bounds = b
        self.counts = [0] * (len(b) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        v = float(value)
        self.counts[bisect_left(self.bounds, v)] += 1
        self.sum += v
        self.count += 1

    def observe_many(self, values: Sequence[float]) -> None:
        """Observe a batch of values (one bucket walk per value).

        Equivalent to observing each value in turn; the batched
        engine/cost paths use this to keep telemetry totals identical
        to the scalar loop without a per-value instrument call.
        """
        bounds = self.bounds
        counts = self.counts
        total = self.sum
        n = 0
        for value in values:
            v = float(value)
            counts[bisect_left(bounds, v)] += 1
            total += v
            n += 1
        self.sum = total
        self.count += n

    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Bucket-interpolated quantile estimate (``q`` in [0, 1]).

        Walks the cumulative buckets to the one containing the
        ``q``-th observation and interpolates linearly inside it,
        the standard Prometheus ``histogram_quantile`` estimator.
        Observations in the +Inf bucket clamp to the last finite
        bound (there is no upper edge to interpolate toward).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for i, n in enumerate(self.counts):
            if n == 0:
                continue
            if cumulative + n >= rank:
                if i >= len(self.bounds):  # +Inf bucket: clamp
                    return self.bounds[-1] if self.bounds else 0.0
                upper = self.bounds[i]
                lower = self.bounds[i - 1] if i > 0 else min(0.0, upper)
                frac = (rank - cumulative) / n
                return lower + (upper - lower) * frac
            cumulative += n
        return self.bounds[-1] if self.bounds else 0.0


class MetricsRegistry:
    """Instrument factory + store, keyed by ``(name, labels)``.

    The same ``(name, labels)`` pair always returns the same
    instrument; requesting it as a different kind is an error (one
    name, one type -- the Prometheus exposition requires it).
    """

    def __init__(self) -> None:
        self._instruments: dict[
            tuple[str, _LabelKey], Counter | Gauge | Histogram
        ] = {}

    def _get(
        self,
        kind: type[Counter] | type[Gauge] | type[Histogram],
        name: str,
        labels: Mapping[str, str],
        bounds: Sequence[float] | None = None,
    ) -> Counter | Gauge | Histogram:
        key = (name, _label_key(labels))
        inst = self._instruments.get(key)
        if inst is None:
            if kind is Histogram:
                inst = Histogram(name, key[1], bounds or DEFAULT_BUCKETS_MS)
            else:
                inst = kind(name, key[1])
            self._instruments[key] = inst
        elif not isinstance(inst, kind):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(inst).__name__}, requested {kind.__name__}"
            )
        return inst

    def counter(self, name: str, **labels: str) -> Counter:
        inst = self._get(Counter, name, labels)
        assert isinstance(inst, Counter)
        return inst

    def gauge(self, name: str, **labels: str) -> Gauge:
        inst = self._get(Gauge, name, labels)
        assert isinstance(inst, Gauge)
        return inst

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] | None = None,
        **labels: str,
    ) -> Histogram:
        inst = self._get(Histogram, name, labels, buckets)
        assert isinstance(inst, Histogram)
        return inst

    def instruments(self) -> list[Counter | Gauge | Histogram]:
        """All instruments, sorted by (name, labels) for stable output."""
        return [self._instruments[k] for k in sorted(self._instruments)]

    def __len__(self) -> int:
        return len(self._instruments)

    # -- cross-process transport ----------------------------------------------

    def snapshot(self) -> dict[str, list[dict[str, object]]]:
        """JSON-able dump of every instrument (inverse of :meth:`merge`)."""
        out: dict[str, list[dict[str, object]]] = {
            "counters": [],
            "gauges": [],
            "histograms": [],
        }
        for inst in self.instruments():
            entry: dict[str, object] = {
                "name": inst.name,
                "labels": {k: v for k, v in inst.labels},
            }
            if isinstance(inst, Histogram):
                entry.update(
                    bounds=list(inst.bounds),
                    counts=list(inst.counts),
                    sum=inst.sum,
                    count=inst.count,
                )
                out["histograms"].append(entry)
            elif isinstance(inst, Counter):
                entry["value"] = inst.value
                out["counters"].append(entry)
            else:
                entry["value"] = inst.value
                out["gauges"].append(entry)
        return out

    def merge(self, snapshot: Mapping[str, list[dict[str, object]]]) -> None:
        """Fold a worker's :meth:`snapshot` into this registry.

        Counters and histogram cells add; gauges take the incoming
        value (last writer wins -- a gauge is a point-in-time reading,
        not an accumulator).  Histogram bucket layouts must match.
        """
        for entry in snapshot.get("counters", []):
            labels = dict(entry.get("labels", {}))  # type: ignore[arg-type]
            self.counter(str(entry["name"]), **labels).inc(
                float(entry["value"])  # type: ignore[arg-type]
            )
        for entry in snapshot.get("gauges", []):
            labels = dict(entry.get("labels", {}))  # type: ignore[arg-type]
            self.gauge(str(entry["name"]), **labels).set(
                float(entry["value"])  # type: ignore[arg-type]
            )
        for entry in snapshot.get("histograms", []):
            labels = dict(entry.get("labels", {}))  # type: ignore[arg-type]
            bounds = [float(b) for b in entry["bounds"]]  # type: ignore[union-attr]
            hist = self.histogram(str(entry["name"]), buckets=bounds, **labels)
            if list(hist.bounds) != bounds:
                raise ValueError(
                    f"histogram {entry['name']!r}: bucket layout mismatch "
                    "between processes"
                )
            counts = entry["counts"]
            assert isinstance(counts, list)
            for i, c in enumerate(counts):
                hist.counts[i] += int(c)
            hist.sum += float(entry["sum"])  # type: ignore[arg-type]
            hist.count += int(entry["count"])  # type: ignore[arg-type]


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        return None


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        return None

    def set_max(self, value: float) -> None:
        return None

    def inc(self, amount: float = 1.0) -> None:
        return None

    def dec(self, amount: float = 1.0) -> None:
        return None


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        return None

    def observe_many(self, values: Sequence[float]) -> None:
        return None


NULL_COUNTER = _NullCounter("null")
NULL_GAUGE = _NullGauge("null")
NULL_HISTOGRAM = _NullHistogram("null", bounds=(0.0,))


class NullRegistry(MetricsRegistry):
    """The disabled-path registry: shared no-op instruments, no state."""

    def counter(self, name: str, **labels: str) -> Counter:
        return NULL_COUNTER

    def gauge(self, name: str, **labels: str) -> Gauge:
        return NULL_GAUGE

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] | None = None,
        **labels: str,
    ) -> Histogram:
        return NULL_HISTOGRAM
