"""repro.obs -- structured tracing and metrics for the reproduction.

The runtime story of the paper is a *feedback loop*: predict, map,
execute, observe.  This package makes that loop observable while it
runs -- per-frame spans, prediction-residual histograms, repartition
and deadline-miss counters -- without adding a dependency and without
perturbing the instrumented code when it is off.

Usage::

    import repro.obs as obs

    with obs.observed() as o:          # scoped enable (tests, drivers)
        run_experiment()
        obs.dump(o, "obs-out")         # trace.jsonl + metrics.prom

    # or process-wide, driven by the environment:
    #   REPRO_OBS_DIR=obs-out python -m repro.experiments fig7

Instrumented code always goes through :func:`get_obs`::

    o = obs.get_obs()
    with o.tracer.span("profile.frame") as sp:
        ...
        if o.enabled:
            sp.set(frame=k)
            o.metrics.counter("profile_frames_total").inc()

When observability is disabled (the default), :func:`get_obs` returns
the shared :data:`NULL_OBS` singleton whose tracer and registry hand
out shared no-op instruments: the hot path performs no allocation, no
time syscalls, and no state mutation, so instrumented runs produce
byte-identical results (pinned by ``tests/obs/test_nullpath``).
Mutating telemetry (building attr dicts, diffing partitions) is
guarded behind ``if o.enabled:``.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator

from repro.obs.clock import (
    Clock,
    ManualClock,
    MonotonicClock,
    ZeroClock,
    default_clock,
    monotonic_s,
)
from repro.obs.export import prometheus_text, read_jsonl, write_jsonl
from repro.obs.metrics import (
    DEFAULT_BUCKETS_MS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)
from repro.obs.spans import NULL_SPAN, NullTracer, Span, Tracer

__all__ = [
    "Clock",
    "ManualClock",
    "MonotonicClock",
    "ZeroClock",
    "default_clock",
    "monotonic_s",
    "prometheus_text",
    "read_jsonl",
    "write_jsonl",
    "DEFAULT_BUCKETS_MS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_SPAN",
    "NullTracer",
    "Span",
    "Tracer",
    "Observability",
    "NULL_OBS",
    "ENV_OBS_DIR",
    "get_obs",
    "is_enabled",
    "enable",
    "disable",
    "observed",
    "dump",
    "maybe_enable_from_env",
]

#: Environment variable: when set, drivers enable observability and
#: dump ``trace.jsonl`` + ``metrics.prom`` into the named directory.
ENV_OBS_DIR = "REPRO_OBS_DIR"


class Observability:
    """One process's observability handle: registry + tracer + clock.

    ``enabled`` is the hot-path guard: instrumentation that must
    allocate (attr dicts, label kwargs) or keep state (previous
    partitioning) checks it explicitly; pure pass-through calls
    (``tracer.span``, ``counter().inc``) may go through the null
    singletons unguarded.
    """

    __slots__ = ("enabled", "metrics", "tracer", "clock")

    def __init__(
        self,
        enabled: bool,
        metrics: MetricsRegistry,
        tracer: Tracer,
        clock: Clock,
    ) -> None:
        self.enabled = enabled
        self.metrics = metrics
        self.tracer = tracer
        self.clock = clock


#: The disabled-path singleton: shared by every call site when
#: observability is off.  Never mutated.
NULL_OBS = Observability(False, NullRegistry(), NullTracer(), ZeroClock())

_active: Observability | None = None


def get_obs() -> Observability:
    """The active observability handle (:data:`NULL_OBS` when off)."""
    return _active if _active is not None else NULL_OBS


def is_enabled() -> bool:
    """Whether observability is currently on in this process."""
    return _active is not None


def enable(clock: Clock | None = None) -> Observability:
    """Turn observability on process-wide; returns the live handle.

    A fresh registry and tracer are installed (previous telemetry, if
    any, is dropped with the previous handle).  ``clock`` defaults to
    the real monotonic clock; tests pass a :class:`ManualClock`.
    """
    global _active
    clk: Clock = clock if clock is not None else default_clock()
    _active = Observability(True, MetricsRegistry(), Tracer(clk), clk)
    return _active


def disable() -> Observability | None:
    """Turn observability off; returns the handle that was active.

    The returned handle still holds all collected telemetry, so
    callers can :func:`dump` after disabling.
    """
    global _active
    previous = _active
    _active = None
    return previous


@contextmanager
def observed(clock: Clock | None = None) -> Iterator[Observability]:
    """Scoped :func:`enable`; restores the previous state on exit."""
    global _active
    previous = _active
    handle = enable(clock)
    try:
        yield handle
    finally:
        _active = previous


def dump(obs: Observability, out_dir: str | Path) -> tuple[Path, Path]:
    """Write ``trace.jsonl`` + ``metrics.prom`` under ``out_dir``."""
    directory = Path(out_dir)
    directory.mkdir(parents=True, exist_ok=True)
    trace_path = write_jsonl(obs.tracer.records, directory / "trace.jsonl")
    prom_path = directory / "metrics.prom"
    prom_path.write_text(prometheus_text(obs.metrics), encoding="utf-8")
    return trace_path, prom_path


def maybe_enable_from_env() -> Path | None:
    """Enable observability when :data:`ENV_OBS_DIR` is set.

    Returns the dump directory (for the driver to pass to
    :func:`dump` when the run finishes) or ``None`` when the variable
    is unset/empty.  Drivers -- ``python -m repro.experiments``, the
    bench harness -- call this once at startup.
    """
    raw = os.environ.get(ENV_OBS_DIR, "").strip()
    if not raw:
        return None
    enable()
    return Path(raw)
