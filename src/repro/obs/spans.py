"""Nestable spans over the injectable clock.

A :class:`Span` measures one timed region (a profiled frame, a
managed frame, an experiment, a worker's shard) as a context manager;
entering a span while another is open makes it a child, so traces are
trees.  Finished spans are plain dicts ready for the JSON-lines
exporter; :meth:`Tracer.merge` re-bases span ids so per-worker traces
from the process pool fold into one coherent parent trace.

The disabled path uses :data:`NULL_SPAN` / :class:`NullTracer`
singletons whose methods do nothing -- ``with tracer.span("x"):``
costs two no-op calls and zero allocations when observability is off.
"""

from __future__ import annotations

from types import TracebackType
from typing import Iterable, Mapping

from repro.obs.clock import Clock, ZeroClock

__all__ = ["Span", "Tracer", "NullTracer", "NULL_SPAN"]

_JsonScalar = object


class Span:
    """One timed region; context-manager protocol drives it."""

    __slots__ = ("_tracer", "name", "span_id", "parent_id", "start_ms", "attrs")

    def __init__(self, tracer: "Tracer", name: str) -> None:
        self._tracer = tracer
        self.name = name
        self.span_id = -1
        self.parent_id: int | None = None
        self.start_ms = 0.0
        self.attrs: dict[str, object] = {}

    def set(self, **attrs: object) -> "Span":
        """Attach attributes (JSON-serializable values)."""
        self.attrs.update(attrs)
        return self

    def event(self, name: str, **attrs: object) -> None:
        """Record an instantaneous event inside this span."""
        self._tracer._record_event(name, self.span_id, attrs)

    def __enter__(self) -> "Span":
        self._tracer._open(self)
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self._tracer._close(self)


class _NullSpan(Span):
    """Shared do-nothing span for the disabled path."""

    __slots__ = ()

    def __init__(self) -> None:  # no tracer back-reference needed
        pass

    def set(self, **attrs: object) -> "Span":
        return self

    def event(self, name: str, **attrs: object) -> None:
        return None

    def __enter__(self) -> "Span":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        return None


NULL_SPAN = _NullSpan()


class Tracer:
    """Collects finished span/event records of one process.

    Records are dicts::

        {"kind": "span", "id": 3, "parent": 1, "name": "profile.frame",
         "start_ms": 0.4, "end_ms": 12.9, "attrs": {...}}
        {"kind": "event", "span": 3, "name": "cache.evict",
         "at_ms": 3.2, "attrs": {...}}

    Children finish before parents, so records are in completion
    order; the report layer reconstructs nesting from ``parent``.
    """

    def __init__(self, clock: Clock | None = None) -> None:
        self.clock: Clock = clock if clock is not None else ZeroClock()
        self.records: list[dict[str, object]] = []
        self._stack: list[int] = []
        self._next_id = 0

    def span(self, name: str) -> Span:
        """A new span; time starts when the ``with`` block enters."""
        return Span(self, name)

    def event(self, name: str, **attrs: object) -> None:
        """An instantaneous event under the currently open span."""
        parent = self._stack[-1] if self._stack else None
        self._record_event(name, parent if parent is not None else -1, attrs)

    # -- span lifecycle (driven by Span.__enter__/__exit__) -------------------

    def _open(self, span: Span) -> None:
        span.span_id = self._next_id
        self._next_id += 1
        span.parent_id = self._stack[-1] if self._stack else None
        span.start_ms = self.clock.now_ms()
        self._stack.append(span.span_id)

    def _close(self, span: Span) -> None:
        end_ms = self.clock.now_ms()
        if self._stack and self._stack[-1] == span.span_id:
            self._stack.pop()
        self.records.append(
            {
                "kind": "span",
                "id": span.span_id,
                "parent": span.parent_id,
                "name": span.name,
                "start_ms": span.start_ms,
                "end_ms": end_ms,
                "attrs": span.attrs,
            }
        )

    def _record_event(
        self, name: str, span_id: int, attrs: Mapping[str, object]
    ) -> None:
        self.records.append(
            {
                "kind": "event",
                "span": span_id if span_id >= 0 else None,
                "name": name,
                "at_ms": self.clock.now_ms(),
                "attrs": dict(attrs),
            }
        )

    # -- cross-process merge --------------------------------------------------

    def merge(
        self,
        records: Iterable[Mapping[str, object]],
        **attrs: object,
    ) -> None:
        """Fold another tracer's records in, re-based onto fresh ids.

        Worker processes allocate span ids from 0, so ids collide
        across workers; the merge remaps every ``id``/``parent``/
        ``span`` reference through a private translation table.
        Top-level spans (and orphaned events) are re-parented under
        the currently open span, so a pooled profiling run shows its
        shards nested below the fan-out span.  ``attrs`` (e.g.
        ``worker=3``) are stamped onto every merged span.
        """
        idmap: dict[int, int] = {}
        host_parent = self._stack[-1] if self._stack else None
        incoming = [dict(rec) for rec in records]

        # Pass 1: allocate fresh ids.  Children finish (and thus
        # serialize) before their parents, so the full table must
        # exist before any reference is rewritten.
        for out in incoming:
            if out.get("kind") == "span":
                idmap[int(out["id"])] = self._next_id  # type: ignore[arg-type]
                self._next_id += 1

        def remap(old: object) -> int | None:
            if old is None:
                return host_parent
            new = idmap.get(int(old))  # type: ignore[arg-type]
            return new if new is not None else host_parent

        # Pass 2: rewrite references and stamp the merge attributes.
        for out in incoming:
            if out.get("kind") == "span":
                out["parent"] = remap(out.get("parent"))
                out["id"] = idmap[int(out["id"])]  # type: ignore[arg-type]
                merged_attrs = dict(out.get("attrs", {}))  # type: ignore[arg-type]
                merged_attrs.update(attrs)
                out["attrs"] = merged_attrs
            else:
                out["span"] = remap(out.get("span"))
            self.records.append(out)


class NullTracer(Tracer):
    """The disabled-path tracer: hands out the shared null span."""

    def __init__(self) -> None:
        super().__init__(None)

    def span(self, name: str) -> Span:
        return NULL_SPAN

    def event(self, name: str, **attrs: object) -> None:
        return None

    def merge(
        self,
        records: Iterable[Mapping[str, object]],
        **attrs: object,
    ) -> None:
        return None
