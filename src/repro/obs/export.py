"""Exporters: JSON-lines trace files and Prometheus text exposition.

Two formats, two consumers:

* ``trace.jsonl`` -- one record per line, exactly the dicts the
  :class:`~repro.obs.spans.Tracer` collected.  Consumed by
  ``python -m repro.obs.report`` and by anything that wants the
  per-frame timeline (span trees, events).
* ``metrics.prom`` -- Prometheus text exposition (version 0.0.4) of a
  :class:`~repro.obs.metrics.MetricsRegistry`.  Scrape-ready: the
  format a node-exporter-style endpoint would serve, so the same dump
  works for ad-hoc inspection and for a future HTTP exporter.

Metric names gain the ``repro_`` namespace prefix at render time;
registry code uses the bare ``<area>_<quantity>_<unit>`` names.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Iterable, Mapping

from repro.obs.metrics import Counter, Histogram, MetricsRegistry

__all__ = [
    "write_jsonl",
    "read_jsonl",
    "prometheus_text",
    "NAMESPACE",
]

#: Prefix applied to every metric name in the Prometheus exposition.
NAMESPACE = "repro_"


def write_jsonl(
    records: Iterable[Mapping[str, object]], path: str | Path
) -> Path:
    """Write trace records as JSON lines; returns the path."""
    p = Path(path)
    with p.open("w", encoding="utf-8") as fh:
        for rec in records:
            fh.write(json.dumps(rec, sort_keys=True))
            fh.write("\n")
    return p


def read_jsonl(path: str | Path) -> list[dict[str, object]]:
    """Inverse of :func:`write_jsonl` (blank lines tolerated)."""
    out: list[dict[str, object]] = []
    with Path(path).open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            if not isinstance(rec, dict):
                raise ValueError(f"trace line is not an object: {line[:80]}")
            out.append(rec)
    return out


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _label_str(labels: tuple[tuple[str, str], ...], extra: str = "") -> str:
    parts = [f'{k}="{_escape_label(v)}"' for k, v in labels]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _fmt(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def prometheus_text(registry: MetricsRegistry, namespace: str = NAMESPACE) -> str:
    """Render a registry in the Prometheus text exposition format.

    Instruments are grouped by metric name with one ``# TYPE`` header
    each; histogram buckets are cumulative with the mandatory ``+Inf``
    bucket and ``_sum``/``_count`` series.
    """
    by_name: dict[str, list[Counter | Histogram | object]] = {}
    order: list[str] = []
    for inst in registry.instruments():
        if inst.name not in by_name:
            by_name[inst.name] = []
            order.append(inst.name)
        by_name[inst.name].append(inst)

    lines: list[str] = []
    for name in order:
        insts = by_name[name]
        first = insts[0]
        full = namespace + name
        if isinstance(first, Histogram):
            kind = "histogram"
        elif isinstance(first, Counter):
            kind = "counter"
        else:
            kind = "gauge"
        lines.append(f"# TYPE {full} {kind}")
        for inst in insts:
            if isinstance(inst, Histogram):
                cum = 0
                for bound, n in zip(inst.bounds, inst.counts):
                    cum += n
                    le = _label_str(inst.labels, f'le="{_fmt(bound)}"')
                    lines.append(f"{full}_bucket{le} {cum}")
                le = _label_str(inst.labels, 'le="+Inf"')
                lines.append(f"{full}_bucket{le} {inst.count}")
                labels = _label_str(inst.labels)
                lines.append(f"{full}_sum{labels} {_fmt(inst.sum)}")
                lines.append(f"{full}_count{labels} {inst.count}")
            else:
                labels = _label_str(inst.labels)
                value = inst.value  # type: ignore[attr-defined]
                lines.append(f"{full}{labels} {_fmt(value)}")
    return "\n".join(lines) + ("\n" if lines else "")
