"""``python -m repro.obs.report`` -- render a trace into summary tables.

Consumes the ``trace.jsonl`` a run dumped (see
:func:`repro.obs.dump`) and prints:

* a span summary (count / mean / p50 / p95 / max duration per span
  name),
* a per-task table aggregated from frame-span ``task_ms`` attributes
  (execution count, mean/max single-core time, and -- when the run
  was managed -- mean signed and absolute prediction residual),
* a per-sequence frame summary (frames, mean frame latency, scenario
  switches).

``--selftest`` exercises the whole layer without touching the
repository state: it synthesizes a trace with a manual clock, round
trips it through the JSONL exporter, renders the report and the
Prometheus exposition, and exits nonzero on any mismatch -- the CI
step that proves the observability layer itself is alive.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path
from typing import Mapping, Sequence

from repro.obs.clock import ManualClock
from repro.obs.export import prometheus_text, read_jsonl, write_jsonl
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import Tracer

__all__ = ["render_report", "selftest", "main"]


def _percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of an ascending list (q in [0, 1])."""
    if not sorted_values:
        return 0.0
    idx = min(len(sorted_values) - 1, max(0, round(q * (len(sorted_values) - 1))))
    return sorted_values[idx]


def _table(header: Sequence[str], rows: list[Sequence[str]]) -> list[str]:
    widths = [len(h) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(row: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip()
    lines = [fmt(header), fmt(["-" * w for w in widths])]
    lines += [fmt(row) for row in rows]
    return lines


def render_report(records: list[dict[str, object]]) -> str:
    """Render the summary tables for a list of trace records."""
    spans = [r for r in records if r.get("kind") == "span"]
    events = [r for r in records if r.get("kind") == "event"]

    lines: list[str] = []
    lines.append(
        f"trace: {len(spans)} spans, {len(events)} events"
    )

    # -- span summary by name ------------------------------------------------
    durations: dict[str, list[float]] = {}
    for s in spans:
        d = float(s["end_ms"]) - float(s["start_ms"])  # type: ignore[arg-type]
        durations.setdefault(str(s["name"]), []).append(d)
    rows: list[Sequence[str]] = []
    for name in sorted(durations):
        ds = sorted(durations[name])
        rows.append(
            (
                name,
                str(len(ds)),
                f"{sum(ds) / len(ds):.3f}",
                f"{_percentile(ds, 0.5):.3f}",
                f"{_percentile(ds, 0.95):.3f}",
                f"{ds[-1]:.3f}",
            )
        )
    lines.append("")
    lines.append("spans (durations in clock ms)")
    lines += _table(("name", "count", "mean", "p50", "p95", "max"), rows)

    # -- per-task summary from frame-span attributes -------------------------
    task_ms: dict[str, list[float]] = {}
    residual_ms: dict[str, list[float]] = {}
    frame_spans: list[dict[str, object]] = []
    for s in spans:
        attrs = s.get("attrs")
        if not isinstance(attrs, Mapping):
            continue
        tm = attrs.get("task_ms")
        if isinstance(tm, Mapping):
            frame_spans.append(s)
            for task, ms in tm.items():
                task_ms.setdefault(str(task), []).append(float(ms))  # type: ignore[arg-type]
        rm = attrs.get("residual_ms")
        if isinstance(rm, Mapping):
            for task, ms in rm.items():
                residual_ms.setdefault(str(task), []).append(float(ms))  # type: ignore[arg-type]

    if task_ms:
        rows = []
        for task in sorted(task_ms):
            ts = task_ms[task]
            res = residual_ms.get(task)
            if res:
                mean_res = f"{sum(res) / len(res):+.3f}"
                mean_abs = f"{sum(abs(r) for r in res) / len(res):.3f}"
            else:
                mean_res, mean_abs = "-", "-"
            rows.append(
                (
                    task,
                    str(len(ts)),
                    f"{sum(ts) / len(ts):.3f}",
                    f"{max(ts):.3f}",
                    mean_res,
                    mean_abs,
                )
            )
        lines.append("")
        lines.append("tasks (simulated single-core ms; residual = measured - predicted)")
        lines += _table(
            ("task", "runs", "mean", "max", "mean_resid", "mean_|resid|"), rows
        )

    # -- per-sequence frame summary ------------------------------------------
    if frame_spans:
        by_seq: dict[str, list[dict[str, object]]] = {}
        for s in frame_spans:
            attrs = s["attrs"]
            assert isinstance(attrs, Mapping)
            by_seq.setdefault(str(attrs.get("seq", "-")), []).append(s)
        rows = []
        for seq in sorted(by_seq):
            group = by_seq[seq]
            lat = [
                float(s["attrs"].get("latency_ms", 0.0))  # type: ignore[union-attr]
                for s in group
            ]
            scenarios = [
                s["attrs"].get("scenario")  # type: ignore[union-attr]
                for s in group
            ]
            switches = sum(
                1
                for a, b in zip(scenarios, scenarios[1:])
                if a is not None and b is not None and a != b
            )
            rows.append(
                (
                    seq,
                    str(len(group)),
                    f"{sum(lat) / len(lat):.3f}",
                    f"{max(lat):.3f}",
                    str(switches),
                )
            )
        lines.append("")
        lines.append("frames per sequence (simulated latency ms)")
        lines += _table(
            ("seq", "frames", "mean_latency", "max_latency", "scenario_switches"),
            rows,
        )

    return "\n".join(lines)


def _synthetic_trace() -> tuple[Tracer, MetricsRegistry]:
    """A hand-built two-sequence trace with known numbers."""
    clock = ManualClock()
    tracer = Tracer(clock)
    metrics = MetricsRegistry()
    for seq in range(2):
        with tracer.span("profile.sequence") as seq_span:
            seq_span.set(seq=seq)
            for frame in range(3):
                with tracer.span("profile.frame") as sp:
                    clock.advance(10.0 + frame)
                    sp.set(
                        seq=seq,
                        frame=frame,
                        scenario=frame % 2,
                        latency_ms=10.0 + frame,
                        task_ms={"RDG_FULL": 8.0 + frame, "ENH": 2.0},
                        residual_ms={"RDG_FULL": 0.5 - frame * 0.25},
                    )
                    metrics.counter("profile_frames_total").inc()
                    metrics.histogram(
                        "predict_residual_ms", task="RDG_FULL"
                    ).observe(0.5 - frame * 0.25)
        metrics.counter("runtime_repartition_total").inc()
    return tracer, metrics


def selftest() -> int:
    """End-to-end check of spans -> export -> report -> exposition."""
    tracer, metrics = _synthetic_trace()
    with tempfile.TemporaryDirectory(prefix="repro-obs-selftest-") as tmp:
        path = write_jsonl(tracer.records, Path(tmp) / "trace.jsonl")
        records = read_jsonl(path)
    if records != tracer.records:
        print("selftest: JSONL round-trip mismatch", file=sys.stderr)
        return 1
    report = render_report(records)
    for needle in ("profile.frame", "RDG_FULL", "scenario_switches"):
        if needle not in report:
            print(f"selftest: report lacks {needle!r}", file=sys.stderr)
            return 1
    prom = prometheus_text(metrics)
    for needle in (
        "# TYPE repro_predict_residual_ms histogram",
        'repro_predict_residual_ms_bucket{task="RDG_FULL",le="+Inf"} 6',
        "repro_runtime_repartition_total 2",
        "repro_profile_frames_total 6",
    ):
        if needle not in prom:
            print(f"selftest: exposition lacks {needle!r}", file=sys.stderr)
            return 1
    print(report)
    print()
    print("obs selftest ok")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Render a repro.obs trace.jsonl into summary tables.",
    )
    parser.add_argument(
        "trace",
        nargs="?",
        type=Path,
        help="trace.jsonl file (or a directory containing one)",
    )
    parser.add_argument(
        "--selftest",
        action="store_true",
        help="synthesize a trace, exercise export + report, and exit",
    )
    args = parser.parse_args(argv)

    if args.selftest:
        return selftest()
    if args.trace is None:
        parser.error("a trace path is required unless --selftest is given")
    path: Path = args.trace
    if path.is_dir():
        path = path / "trace.jsonl"
    if not path.exists():
        print(f"no such trace: {path}", file=sys.stderr)
        return 2
    print(render_report(read_jsonl(path)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
