"""Entry point: ``python -m repro.workloads``."""

import sys

from repro.workloads.cli import main

if __name__ == "__main__":
    sys.exit(main())
