"""The workload registry: named application bundles.

The paper's claim (Section 7) is about *groups* of dynamic
image-processing applications, not one; a :class:`Workload` is the
unit that claim is exercised over.  It bundles everything the layers
above need to run one application end to end:

* a flow-graph builder (structure: tasks, switches, Table-1-style
  memory specs),
* a per-frame pipeline factory (behavior: the stateful executor
  producing :class:`~repro.imaging.pipeline.FrameAnalysis` objects),
* a synthetic corpus generator (the training-sequence dynamics),
* a task cost table for the platform cost model,
* human-readable switch names (each application reinterprets the
  three scenario bits), and
* fleet-level app-class parameters (how jobs of this application
  behave at cluster scale).

Profiling, experiments, the runtime and the fleet simulator resolve
applications *by name* through :func:`get_workload` instead of
importing StentBoost symbols -- the ``lint/app-hardcode`` rule
enforces exactly that.

This module deliberately imports only the structural layers
(``graph``, ``imaging``, ``synthetic``, ``hw``); ``core``,
``profiling``, ``runtime`` and ``fleet`` import *us*, never the
reverse.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Mapping

if TYPE_CHECKING:
    from repro.graph.flowgraph import FlowGraph
    from repro.hw.cost import TaskCostSpec
    from repro.imaging.pipeline import AnalysisPipeline, PipelineConfig
    from repro.synthetic.dataset import CorpusSpec
    from repro.synthetic.sequence import SequenceConfig, XRaySequence

__all__ = [
    "REGISTRY_VERSION",
    "DEFAULT_WORKLOAD",
    "FleetParams",
    "Workload",
    "register",
    "get_workload",
    "workload_names",
    "all_workloads",
]

#: Bump whenever a registered workload's *behavior* changes (graph
#: structure, pipeline logic, corpus dynamics, cost table): trace
#: provenance records it, so stale traces are identifiable.
REGISTRY_VERSION = "wl/1"

#: The registry entry every workload-less call site resolves.
DEFAULT_WORKLOAD = "stentboost"


@dataclass(frozen=True)
class FleetParams:
    """Cluster-scale job dynamics of one application class.

    The fields mirror :class:`repro.fleet.jobs.AppClass` (the fleet
    layer converts; this package must not import ``repro.fleet``):
    jobs of this workload draw a Markov load state per submission,
    multiply the state's base runtime by lognormal jitter, and request
    one of ``cores_choices`` cores.
    """

    cores_choices: tuple[int, ...]
    state_base_ms: tuple[float, ...]
    transition: tuple[tuple[float, ...], ...]
    jitter_sigma: float
    weight: float


@dataclass(frozen=True)
class Workload:
    """A named application: everything the stack needs to run it.

    Attributes
    ----------
    name:
        Registry key (also the fleet app-class name and the trace
        provenance identity).
    description:
        One-line summary of the application's dynamics.
    build_graph:
        Zero-argument flow-graph factory.
    make_pipeline:
        ``(sequence, pipeline_config) -> AnalysisPipeline`` factory;
        implementations may read per-sequence priors (StentBoost uses
        the phantom's marker separation) and must honor the tunables
        of a given ``pipeline_config``.
    corpus_configs:
        ``CorpusSpec -> list[SequenceConfig]`` synthetic corpus
        generator carrying this application's load dynamics.
    switch_names:
        Human-readable labels of the three scenario bits, most
        significant first (bit2, bit1, bit0).
    task_costs:
        Cost-model table for this graph's tasks (``None``: the
        StentBoost :data:`repro.hw.cost.DEFAULT_TASK_COSTS`).
    fleet:
        Cluster-scale job-class parameters.
    """

    name: str
    description: str
    build_graph: Callable[[], "FlowGraph"]
    make_pipeline: Callable[
        ["XRaySequence", "PipelineConfig | None"], "AnalysisPipeline"
    ]
    corpus_configs: Callable[["CorpusSpec"], "list[SequenceConfig]"]
    switch_names: tuple[str, str, str]
    fleet: FleetParams
    task_costs: "Mapping[str, TaskCostSpec] | None" = field(default=None)


_REGISTRY: dict[str, Workload] = {}


def register(workload: Workload) -> Workload:
    """Add a workload to the registry (name must be unused)."""
    if workload.name in _REGISTRY:
        raise ValueError(f"workload {workload.name!r} already registered")
    _REGISTRY[workload.name] = workload
    return workload


def get_workload(name: str) -> Workload:
    """Resolve a workload by registry name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; registered: {workload_names()}"
        ) from None


def workload_names() -> list[str]:
    """All registered names, in registration order."""
    return list(_REGISTRY)


def all_workloads() -> list[Workload]:
    """All registered workloads, in registration order."""
    return list(_REGISTRY.values())
