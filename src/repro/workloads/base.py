"""The workload registry: named application bundles.

The paper's claim (Section 7) is about *groups* of dynamic
image-processing applications, not one; a :class:`Workload` is the
unit that claim is exercised over.  It bundles everything the layers
above need to run one application end to end:

* a flow-graph builder (structure: tasks, switches, Table-1-style
  memory specs),
* a per-frame pipeline factory (behavior: the stateful executor
  producing :class:`~repro.imaging.pipeline.FrameAnalysis` objects),
* a synthetic corpus generator (the training-sequence dynamics),
* a task cost table for the platform cost model,
* human-readable switch names (each application reinterprets the
  three scenario bits), and
* fleet-level app-class parameters (how jobs of this application
  behave at cluster scale).

Profiling, experiments, the runtime and the fleet simulator resolve
applications *by name* through :func:`get_workload` instead of
importing StentBoost symbols -- the ``lint/app-hardcode`` rule
enforces exactly that.

This module deliberately imports only the structural layers
(``graph``, ``imaging``, ``synthetic``, ``hw``); ``core``,
``profiling``, ``runtime`` and ``fleet`` import *us*, never the
reverse.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Mapping

if TYPE_CHECKING:
    from repro.graph.flowgraph import FlowGraph
    from repro.hw.cost import TaskCostSpec
    from repro.imaging.pipeline import AnalysisPipeline, PipelineConfig
    from repro.synthetic.dataset import CorpusSpec
    from repro.synthetic.sequence import SequenceConfig, XRaySequence

__all__ = [
    "REGISTRY_VERSION",
    "DEFAULT_WORKLOAD",
    "FleetParams",
    "ScenarioDynamics",
    "Workload",
    "register",
    "get_workload",
    "workload_names",
    "all_workloads",
]

#: Bump whenever a registered workload's *behavior* changes (graph
#: structure, pipeline logic, corpus dynamics, cost table): trace
#: provenance records it, so stale traces are identifiable.
REGISTRY_VERSION = "wl/1"

#: The registry entry every workload-less call site resolves.
DEFAULT_WORKLOAD = "stentboost"


@dataclass(frozen=True)
class FleetParams:
    """Cluster-scale job dynamics of one application class.

    The fields mirror :class:`repro.fleet.jobs.AppClass` (the fleet
    layer converts; this package must not import ``repro.fleet``):
    jobs of this workload draw a Markov load state per submission,
    multiply the state's base runtime by lognormal jitter, and request
    one of ``cores_choices`` cores.
    """

    cores_choices: tuple[int, ...]
    state_base_ms: tuple[float, ...]
    transition: tuple[tuple[float, ...], ...]
    jitter_sigma: float
    weight: float


@dataclass(frozen=True)
class ScenarioDynamics:
    """First-order dynamics of an application's scenario switches.

    The scenario-space model checker (:mod:`repro.analysis.schedcheck`)
    needs to know not just *which* scenarios exist (that is graph
    structure) but how the application moves between them, so it can
    weight a violating joint scenario by its reachability.  Each switch
    bit is modeled as an independent two-state chain, described by its
    two *stay* probabilities; the full scenario chain over the
    ``2**n_switches`` scenario ids is their product.

    Attributes
    ----------
    stay:
        Per switch bit, most significant first (matching
        ``Workload.switch_names``), the pair ``(p_off_to_off,
        p_on_to_on)``: the probability the bit keeps its current value
        across one frame.  A stay probability of exactly 1.0 makes the
        opposite bit value unreachable from that side -- the checker
        downgrades violations in provably-unreachable scenarios.
    initial_scenario:
        Scenario id of frame 0 (every registered pipeline starts with
        all switches off, id 0, but fixtures may differ).
    """

    stay: tuple[tuple[float, float], ...]
    initial_scenario: int = 0

    def __post_init__(self) -> None:
        if not self.stay:
            raise ValueError("need at least one switch bit")
        for pair in self.stay:
            if len(pair) != 2 or not all(0.0 <= p <= 1.0 for p in pair):
                raise ValueError(f"stay probabilities must be in [0, 1]: {pair}")
        if not 0 <= self.initial_scenario < self.n_scenarios:
            raise ValueError(
                f"initial_scenario {self.initial_scenario} outside "
                f"[0, {self.n_scenarios})"
            )

    @property
    def n_switches(self) -> int:
        return len(self.stay)

    @property
    def n_scenarios(self) -> int:
        return 2 ** len(self.stay)

    def transition(self) -> tuple[tuple[float, ...], ...]:
        """Row-stochastic scenario-id transition matrix.

        The product of the per-bit chains, laid out so that row/column
        indices are scenario ids (bit 0 least significant -- the
        :attr:`~repro.imaging.pipeline.SwitchState.scenario_id`
        convention).  Pure-python nested tuples: this layer stays
        dependency-free; the analysis layer lifts it into a
        :class:`repro.core.markov.MarkovChain`.
        """
        n = self.n_scenarios
        bits = range(self.n_switches)
        rows = []
        for src in range(n):
            row = []
            for dst in range(n):
                p = 1.0
                for bit in bits:
                    # ``stay`` is most-significant-first; bit index k
                    # counts from the least significant end.
                    off_stay, on_stay = self.stay[self.n_switches - 1 - bit]
                    src_on = bool(src & (1 << bit))
                    dst_on = bool(dst & (1 << bit))
                    stay = on_stay if src_on else off_stay
                    p *= stay if src_on == dst_on else 1.0 - stay
                row.append(p)
            rows.append(tuple(row))
        return tuple(rows)


#: Memoryless default: every switch is a fair coin each frame, so all
#: scenarios are reachable and equally weighted.  Registered workloads
#: override this with their measured/modelled dynamics.
DEFAULT_SCENARIO_DYNAMICS = ScenarioDynamics(
    stay=((0.5, 0.5), (0.5, 0.5), (0.5, 0.5))
)


@dataclass(frozen=True)
class Workload:
    """A named application: everything the stack needs to run it.

    Attributes
    ----------
    name:
        Registry key (also the fleet app-class name and the trace
        provenance identity).
    description:
        One-line summary of the application's dynamics.
    build_graph:
        Zero-argument flow-graph factory.
    make_pipeline:
        ``(sequence, pipeline_config) -> AnalysisPipeline`` factory;
        implementations may read per-sequence priors (StentBoost uses
        the phantom's marker separation) and must honor the tunables
        of a given ``pipeline_config``.
    corpus_configs:
        ``CorpusSpec -> list[SequenceConfig]`` synthetic corpus
        generator carrying this application's load dynamics.
    switch_names:
        Human-readable labels of the three scenario bits, most
        significant first (bit2, bit1, bit0).
    task_costs:
        Cost-model table for this graph's tasks (``None``: the
        StentBoost :data:`repro.hw.cost.DEFAULT_TASK_COSTS`).
    fleet:
        Cluster-scale job-class parameters.
    scenarios:
        First-order switch dynamics (:class:`ScenarioDynamics`) used
        by the schedulability checker to weight joint scenarios by
        reachability; defaults to memoryless fair-coin switches.
    """

    name: str
    description: str
    build_graph: Callable[[], "FlowGraph"]
    make_pipeline: Callable[
        ["XRaySequence", "PipelineConfig | None"], "AnalysisPipeline"
    ]
    corpus_configs: Callable[["CorpusSpec"], "list[SequenceConfig]"]
    switch_names: tuple[str, str, str]
    fleet: FleetParams
    task_costs: "Mapping[str, TaskCostSpec] | None" = field(default=None)
    scenarios: ScenarioDynamics = field(default=DEFAULT_SCENARIO_DYNAMICS)


_REGISTRY: dict[str, Workload] = {}


def register(workload: Workload) -> Workload:
    """Add a workload to the registry (name must be unused)."""
    if workload.name in _REGISTRY:
        raise ValueError(f"workload {workload.name!r} already registered")
    _REGISTRY[workload.name] = workload
    return workload


def get_workload(name: str) -> Workload:
    """Resolve a workload by registry name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; registered: {workload_names()}"
        ) from None


def workload_names() -> list[str]:
    """All registered names, in registration order."""
    return list(_REGISTRY)


def all_workloads() -> list[Workload]:
    """All registered workloads, in registration order."""
    return list(_REGISTRY.values())
