"""``python -m repro.workloads`` -- inspect and profile workloads.

Two subcommands::

    python -m repro.workloads list
    python -m repro.workloads profile --workload all --out corpus.json

``list`` prints the registry (name, scenario-bit labels, description).
``profile`` profiles a synthetic corpus of each selected workload
through the standard profiler and writes a ``repro-workload-trace/1``
replay corpus -- the document ``python -m repro.fleet --trace``
converts into a job stream of *measured* frame latencies.  Everything
is seeded, so the written corpus is byte-identical across reruns.

This module is the one place the workload package touches the layers
above it (profiling, fleet); the package ``__init__`` never imports
it, so the no-upward-imports rule of :mod:`repro.workloads.base`
holds for every library consumer.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.workloads import all_workloads, get_workload, workload_names

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.workloads",
        description="workload registry: list entries, export replay corpora",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="print the registered workloads")

    prof = sub.add_parser(
        "profile",
        help="profile synthetic corpora into a repro-workload-trace/1 "
        "replay document",
    )
    prof.add_argument(
        "--workload",
        default="all",
        help="comma-separated registry names, or 'all' (default)",
    )
    prof.add_argument(
        "--sequences", type=int, default=2, help="sequences per workload"
    )
    prof.add_argument(
        "--frames", type=int, default=40, help="total frames per workload"
    )
    prof.add_argument(
        "--seed", type=int, default=11, help="corpus base seed"
    )
    prof.add_argument(
        "--jobs", type=int, default=1, help="profiler process-pool size"
    )
    prof.add_argument(
        "--out",
        type=Path,
        default=Path("workload-trace.json"),
        help="replay-corpus path (default: %(default)s)",
    )
    return parser


def _selected(names_arg: str) -> list[str]:
    if names_arg.strip() == "all":
        return workload_names()
    names = [n.strip() for n in names_arg.split(",") if n.strip()]
    for name in names:
        get_workload(name)  # fail loudly before any profiling work
    return names


def _cmd_list() -> int:
    for wl in all_workloads():
        bits = "/".join(wl.switch_names)
        print(f"{wl.name:14s} [{bits:14s}] {wl.description}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    # Deferred imports: the registry package must stay importable
    # without pulling the profiling and fleet layers in.
    from repro.fleet.replay import save_workload_trace, workload_trace_doc
    from repro.profiling import ProfileConfig, profile_corpus
    from repro.synthetic import CorpusSpec, XRaySequence

    spec = CorpusSpec(
        n_sequences=args.sequences,
        total_frames=args.frames,
        base_seed=args.seed,
    )
    tracesets = {}
    for name in _selected(args.workload):
        wl = get_workload(name)
        sequences = [XRaySequence(cfg) for cfg in wl.corpus_configs(spec)]
        traces = profile_corpus(
            sequences, ProfileConfig(workload=name), jobs=args.jobs
        )
        tracesets[name] = traces
        print(f"profiled {name}: {len(traces)} frames")
    out = save_workload_trace(workload_trace_doc(tracesets), args.out)
    print(f"wrote {out}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(
        list(argv) if argv is not None else None
    )
    if args.command == "list":
        return _cmd_list()
    return _cmd_profile(args)


if __name__ == "__main__":
    sys.exit(main())
