"""Robot-vision workload: slow navigation-driven load drift.

A humanoid-robot visual navigation pipeline in the spirit of the
resource-prediction-for-humanoid-robots line of work referenced by
PAPERS.md: acquisition, feature extraction, optical flow, obstacle
segmentation, localization, path planning and a visualization
overlay.  The three scenario bits are reinterpreted as

* **bit2 -- NAV**: navigation active; the optical-flow tasks run.
  Driven by a slowly-moving EWMA of inter-frame motion energy with
  hysteresis, so the bit flips on the *tens-of-frames* timescale --
  the "slow drift" dynamics this workload contributes (contrast the
  per-frame switching of the ultrasound workload).
* **bit1 -- WIN**: feature/flow tasks run on a tracked window
  instead of the full frame (granularity switch, like StentBoost's
  ROI bit), entered after a short lock streak.
* **bit0 -- LOCK**: a navigation target is locked this frame; the
  planner and the visualization overlay run.

All decisions are deterministic functions of the frame content --
there is no randomness in the pipeline, so profiled traces stay bit
reproducible.
"""

from __future__ import annotations

import numpy as np
from numpy.typing import NDArray

from repro.graph.flowgraph import Edge, FlowGraph
from repro.graph.task import PhaseSpec, TaskSpec
from repro.hw.cost import TaskCostSpec
from repro.imaging.common import BufferAccess, WorkReport
from repro.imaging.pipeline import FrameAnalysis, PipelineConfig, SwitchState
from repro.imaging.roi import Roi
from repro.synthetic.dataset import CorpusRanges, CorpusSpec, corpus_configs
from repro.synthetic.sequence import SequenceConfig, XRaySequence
from repro.workloads.base import FleetParams, ScenarioDynamics, Workload

__all__ = [
    "ROBOTVISION",
    "RobotVisionPipeline",
    "build_robotvision_graph",
    "ROBOTVISION_TASK_COSTS",
]

#: EWMA weight of the motion-energy tracker (small: slow drift).
_MOTION_ALPHA = 0.08

#: Hysteresis band around the long-run motion mean for the NAV bit.
#: The block-averaged motion signal swings roughly +-13% around its
#: mean on the synthetic corpora, so a +-2% band toggles a few times
#: per sequence -- slowly, because the EWMA has to cross it.
_NAV_ON_FACTOR = 1.02
_NAV_OFF_FACTOR = 0.98

#: Block edge for the denoised motion signal: per-pixel frame
#: differences are noise-dominated, block means are not.
_MOTION_BLOCK = 8

#: Consecutive locked frames before window mode engages.
_LOCK_STREAK_FOR_WINDOW = 3

#: Tracked-window half-edge in pixels.
_WINDOW_HALF = 48


def build_robotvision_graph() -> FlowGraph:
    """Construct the robot-vision flow graph.

    Buffer sizes follow the Table 1 convention: KB at the native
    1024x1024 x 2 B geometry, with the flow tasks reading two frames
    (current + previous) and the planner operating on token-sized
    feature data.
    """
    tasks: dict[str, TaskSpec] = {}

    def add(spec: TaskSpec) -> None:
        tasks[spec.name] = spec

    add(
        TaskSpec(
            "ACQ",
            kind="stream",
            input_kb=2048,
            intermediate_kb=512,
            output_kb=2048,
        )
    )
    add(
        TaskSpec(
            "FEAT_FULL",
            kind="stream",
            input_kb=2048,
            intermediate_kb=2048,
            output_kb=512,
            divisible=True,
            phases=(
                PhaseSpec("grad", (("input", 2048), ("gradients", 2048))),
                PhaseSpec("peaks", (("gradients", 2048), ("output", 512))),
            ),
        )
    )
    add(
        TaskSpec(
            "FEAT_WIN",
            kind="stream",
            input_kb=2048,
            intermediate_kb=1024,
            output_kb=512,
            divisible=True,
            phases=(
                PhaseSpec("grad", (("input", 2048), ("gradients", 1024))),
                PhaseSpec("peaks", (("gradients", 1024), ("output", 512))),
            ),
        )
    )
    add(
        TaskSpec(
            "FLOW_FULL",
            kind="stream",
            input_kb=4096,  # two frames
            intermediate_kb=6144,
            output_kb=1024,
            divisible=True,
            phases=(
                PhaseSpec("pyramid", (("input", 4096), ("pyramid", 3072))),
                PhaseSpec(
                    "match",
                    (("pyramid", 3072), ("vectors", 3072), ("output", 1024)),
                ),
            ),
        )
    )
    add(
        TaskSpec(
            "FLOW_WIN",
            kind="stream",
            input_kb=1024,
            intermediate_kb=1536,
            output_kb=256,
            divisible=True,
            phases=(
                PhaseSpec("pyramid", (("input", 1024), ("pyramid", 768))),
                PhaseSpec(
                    "match",
                    (("pyramid", 768), ("vectors", 768), ("output", 256)),
                ),
            ),
        )
    )
    add(
        TaskSpec(
            "OBST",
            kind="stream",
            input_kb=2048,
            intermediate_kb=2048,
            output_kb=256,
            divisible=True,
        )
    )
    add(
        TaskSpec(
            "LOC",
            kind="feature",
            input_kb=0.5,
            intermediate_kb=0.5,
            output_kb=0.5,
        )
    )
    add(
        TaskSpec(
            "PLAN",
            kind="feature",
            input_kb=0.5,
            intermediate_kb=0.5,
            output_kb=0.5,
            functional_parallel=True,
        )
    )
    add(
        TaskSpec(
            "VIS",
            kind="stream",
            input_kb=2048,
            intermediate_kb=1024,
            output_kb=2048,
        )
    )

    IN, OUT = FlowGraph.INPUT, FlowGraph.OUTPUT
    edges = [
        Edge(IN, "ACQ", 2048),
        Edge("ACQ", "FEAT_FULL", 2048),
        Edge("ACQ", "FEAT_WIN", 2048),
        # Flow reads the current frame plus the previous one.
        Edge("ACQ", "FLOW_FULL", 2048),
        Edge(IN, "FLOW_FULL", 2048),
        Edge("ACQ", "FLOW_WIN", 1024),
        Edge("ACQ", "OBST", 2048),
        # Feature-domain stream (token-sized).
        Edge("FEAT_FULL", "LOC", 0.5),
        Edge("FEAT_WIN", "LOC", 0.5),
        Edge("FLOW_FULL", "LOC", 0.5),
        Edge("FLOW_WIN", "LOC", 0.5),
        Edge("OBST", "PLAN", 0.25),
        Edge("LOC", "PLAN", 0.5),
        Edge("PLAN", "VIS", 0.5),
        Edge("ACQ", "VIS", 2048),
        Edge("VIS", OUT, 2048),
    ]

    def activation(state: SwitchState) -> list[str]:
        nav, win, locked = state.rdg_on, state.roi_mode, state.reg_success
        names = ["ACQ", "FEAT_WIN" if win else "FEAT_FULL"]
        if nav:
            names.append("FLOW_WIN" if win else "FLOW_FULL")
        names += ["OBST", "LOC"]
        if locked:
            names += ["PLAN", "VIS"]
        return names

    return FlowGraph(tasks, edges, activation)


#: Calibrated so full-frame feature+flow frames land in the tens of
#: milliseconds at native geometry -- the same order as StentBoost.
ROBOTVISION_TASK_COSTS: dict[str, TaskCostSpec] = {
    "ACQ": TaskCostSpec(fixed_ms=0.3, per_kpixel_ms=0.002),
    "FEAT_FULL": TaskCostSpec(
        fixed_ms=0.8, per_kpixel_ms=0.008, per_count_ms={"candidates": 0.008}
    ),
    "FEAT_WIN": TaskCostSpec(
        fixed_ms=0.8, per_kpixel_ms=0.008, per_count_ms={"candidates": 0.008}
    ),
    "FLOW_FULL": TaskCostSpec(
        fixed_ms=1.4,
        per_kpixel_ms=0.011,
        per_count_ms={"flow_vectors": 0.00009},
    ),
    "FLOW_WIN": TaskCostSpec(
        fixed_ms=1.4,
        per_kpixel_ms=0.011,
        per_count_ms={"flow_vectors": 0.00009},
    ),
    "OBST": TaskCostSpec(
        fixed_ms=0.6, per_kpixel_ms=0.004, per_count_ms={"detections": 0.05}
    ),
    "LOC": TaskCostSpec(fixed_ms=1.1, per_count_ms={"track_points": 0.004}),
    "PLAN": TaskCostSpec(fixed_ms=0.7, per_count_ms={"plan_cells": 0.0012}),
    "VIS": TaskCostSpec(fixed_ms=0.9, per_kpixel_ms=0.0042),
}


class RobotVisionPipeline:
    """Stateful per-frame executor of the robot-vision flow graph.

    Deterministic content-driven switching: the NAV bit follows a
    slow EWMA of inter-frame motion energy with hysteresis, the WIN
    bit engages after a short lock streak (and tracks the strongest
    feature), and the LOCK bit is the per-frame peak test.
    """

    def __init__(self, config: PipelineConfig | None = None) -> None:
        self.config = config or PipelineConfig()
        #: QoS quality level slot (runtime quality controller).
        self.quality = None
        self._window: Roi | None = None
        self._prev: NDArray[np.float32] | None = None
        self._prev_blocks: NDArray[np.float32] | None = None
        self._motion_ewma = 0.0
        self._motion_mean = 0.0
        self._n_energy = 0
        self._peak_ratio_mean = 0.0
        self._n_frames_seen = 0
        self._nav_active = False
        self._locked = False
        self._raw_lock_streak = 0
        self._raw_unlock_streak = 0
        self._lock_streak = 0
        self._frame_index = 0

    @property
    def roi(self) -> Roi | None:
        """Tracked window the *next* frame will process (or None)."""
        return self._window

    def reset(self) -> None:
        self._window = None
        self._prev = None
        self._prev_blocks = None
        self._motion_ewma = 0.0
        self._motion_mean = 0.0
        self._n_energy = 0
        self._peak_ratio_mean = 0.0
        self._n_frames_seen = 0
        self._nav_active = False
        self._locked = False
        self._raw_lock_streak = 0
        self._raw_unlock_streak = 0
        self._lock_streak = 0
        self._frame_index = 0

    # -- internals ----------------------------------------------------------

    @staticmethod
    def _block_mean(img: NDArray[np.float32]) -> NDArray[np.float32]:
        b = _MOTION_BLOCK
        h, w = img.shape
        trimmed = img[: h // b * b, : w // b * b]
        return trimmed.reshape(h // b, b, w // b, b).mean(axis=(1, 3))

    def _update_motion(self, img: NDArray[np.float32]) -> float:
        """Advance the slow motion-energy trackers; return raw energy."""
        blocks = self._block_mean(img)
        prev_blocks = self._prev_blocks
        self._prev_blocks = blocks
        self._n_frames_seen += 1
        if prev_blocks is None or prev_blocks.shape != blocks.shape:
            # No motion sample yet: leave the trackers untouched (a
            # zero sample would permanently bias the long-run mean).
            return 0.0
        energy = float(np.mean(np.abs(blocks - prev_blocks)))
        self._n_energy += 1
        n = self._n_energy
        # Long-run mean (normalizer) and short-run EWMA (the signal).
        self._motion_mean += (energy - self._motion_mean) / n
        if n == 1:
            self._motion_ewma = energy
        else:
            self._motion_ewma += _MOTION_ALPHA * (energy - self._motion_ewma)
        # Hysteresis around the long-run mean: slow, sticky switching.
        if self._nav_active:
            if self._motion_ewma < _NAV_OFF_FACTOR * self._motion_mean:
                self._nav_active = False
        elif self._motion_ewma > _NAV_ON_FACTOR * self._motion_mean:
            self._nav_active = True
        return energy

    # -- execution ----------------------------------------------------------

    def process(self, img: NDArray[np.float32]) -> FrameAnalysis:
        img = np.asarray(img, dtype=np.float32)
        h, w = img.shape
        frame_bytes = img.nbytes
        reports: dict[str, WorkReport] = {}

        self._update_motion(img)
        nav = self._nav_active

        window = self._window
        win_mode = window is not None
        region = img[window.slices] if window is not None else img
        suffix = "WIN" if win_mode else "FULL"
        region_bytes = region.nbytes

        # ACQ: debayer/normalize the full frame.
        reports["ACQ"] = WorkReport(
            task="ACQ",
            pixels=img.size,
            bytes_in=frame_bytes,
            bytes_out=frame_bytes,
            buffers=(
                BufferAccess("input", frame_bytes),
                BufferAccess("output", frame_bytes),
            ),
        )

        # FEAT: gradient response + peak screening at the granularity.
        # The gradient is evaluated on the full frame so the lock
        # statistic below means the same thing in both granularities;
        # the FEAT task itself only *processes* the active region.
        gy, gx = np.gradient(img)
        mag_full = np.abs(gx) + np.abs(gy)
        magnitude = mag_full[window.slices] if window is not None else mag_full
        mag_mean = float(magnitude.mean())
        threshold = 3.0 * mag_mean
        n_candidates = int(np.count_nonzero(magnitude > threshold))
        reports[f"FEAT_{suffix}"] = WorkReport(
            task=f"FEAT_{suffix}",
            pixels=region.size * 2,
            bytes_in=region_bytes,
            bytes_out=region_bytes // 4,
            buffers=(
                BufferAccess("input", region_bytes),
                BufferAccess("gradients", region_bytes * 2),
                BufferAccess("output", region_bytes // 4),
            ),
            counts={"candidates": float(n_candidates)},
        )

        # FLOW (navigation only): block matching against the previous
        # frame; the vector count is the moving-pixel population.
        if nav:
            prev = self._prev if self._prev is not None else img
            prev_region = (
                prev[window.slices] if window is not None else prev
            )
            if prev_region.shape != region.shape:
                prev_region = region
            moving = np.abs(region - prev_region)
            n_vectors = int(np.count_nonzero(moving > 2.0 * moving.mean()))
            reports[f"FLOW_{suffix}"] = WorkReport(
                task=f"FLOW_{suffix}",
                pixels=region.size * 2,
                bytes_in=region_bytes * 2,
                bytes_out=region_bytes // 2,
                buffers=(
                    BufferAccess("input", region_bytes * 2),
                    BufferAccess("pyramid", int(region_bytes * 1.5)),
                    BufferAccess("vectors", int(region_bytes * 1.5)),
                    BufferAccess("output", region_bytes // 2),
                ),
                counts={"flow_vectors": float(n_vectors)},
            )

        # OBST: full-frame obstacle segmentation (row-band proxy).
        row_energy = np.abs(np.diff(img, axis=0)).mean(axis=1)
        n_detections = int(np.count_nonzero(row_energy > 1.5 * row_energy.mean()))
        reports["OBST"] = WorkReport(
            task="OBST",
            pixels=img.size,
            bytes_in=frame_bytes,
            bytes_out=frame_bytes // 8,
            buffers=(
                BufferAccess("input", frame_bytes),
                BufferAccess("labels", frame_bytes),
                BufferAccess("output", frame_bytes // 8),
            ),
            counts={"detections": float(n_detections)},
        )

        # LOC: pose update over the tracked features.
        n_track = min(n_candidates, 256)
        reports["LOC"] = WorkReport(
            task="LOC",
            counts={"track_points": float(n_track)},
        )

        # Lock state: the full-frame dominant-peak ratio beats its own
        # running mean (self-normalizing), debounced by a two-frame
        # streak in both directions -- the bit is sticky, in keeping
        # with this workload's slow dynamics.
        full_mean = float(mag_full.mean())
        peak_ratio = (
            float(mag_full.max()) / full_mean if full_mean > 0.0 else 0.0
        )
        self._peak_ratio_mean += (
            peak_ratio - self._peak_ratio_mean
        ) / self._n_frames_seen
        if peak_ratio > self._peak_ratio_mean:
            self._raw_lock_streak += 1
            self._raw_unlock_streak = 0
        else:
            self._raw_unlock_streak += 1
            self._raw_lock_streak = 0
        if not self._locked and self._raw_lock_streak >= 2:
            self._locked = True
        elif self._locked and self._raw_unlock_streak >= 2:
            self._locked = False
        locked = self._locked
        self._lock_streak = self._lock_streak + 1 if locked else 0

        roi_next: Roi | None = None
        if locked and self._lock_streak >= _LOCK_STREAK_FOR_WINDOW:
            # Track the strongest feature with a fixed-size window.
            flat = int(np.argmax(mag_full))
            r_loc, c_loc = divmod(flat, w)
            r0 = min(max(r_loc - _WINDOW_HALF, 0), max(h - 2 * _WINDOW_HALF, 0))
            c0 = min(max(c_loc - _WINDOW_HALF, 0), max(w - 2 * _WINDOW_HALF, 0))
            roi_next = Roi(
                row0=r0,
                col0=c0,
                row1=min(r0 + 2 * _WINDOW_HALF, h),
                col1=min(c0 + 2 * _WINDOW_HALF, w),
            )

        if locked:
            # PLAN: occupancy-grid path search over the obstacle map.
            n_cells = (h // 8) * (w // 8) + 16 * n_detections
            reports["PLAN"] = WorkReport(
                task="PLAN",
                counts={"plan_cells": float(n_cells)},
            )
            # VIS: overlay rendering at full frame.
            reports["VIS"] = WorkReport(
                task="VIS",
                pixels=img.size,
                bytes_in=frame_bytes,
                bytes_out=frame_bytes,
                buffers=(
                    BufferAccess("input", frame_bytes),
                    BufferAccess("overlay", frame_bytes // 2),
                    BufferAccess("output", frame_bytes),
                ),
            )

        self._prev = img
        self._window = roi_next
        switches = SwitchState(
            rdg_on=nav, roi_mode=win_mode, reg_success=bool(locked)
        )
        analysis = FrameAnalysis(
            index=self._frame_index,
            switches=switches,
            reports=reports,
            candidates=None,
            couple=None,
            transform=None,
            guidewire=None,
            roi_used=window,
            roi_next=roi_next,
            output=None,
            extras={
                "roi_kpixels": (
                    (window.pixels / 1000.0) if window else img.size / 1000.0
                ),
                "lock_streak": float(self._lock_streak),
            },
        )
        self._frame_index += 1
        return analysis


#: Slow-drift corpus dynamics: long clutter/washout periods, gentle
#: motion -- load changes unfold over many frames.
ROBOTVISION_RANGES = CorpusRanges(
    cardiac_period=(40.0, 70.0),
    cardiac_amp=(1.0, 3.0),
    resp_period=(150.0, 260.0),
    resp_amp=(4.0, 10.0),
    tremor_sigma=(0.1, 0.3),
    rotation_amp=(0.01, 0.05),
    dose=(0.8, 1.6),
    contrast_base=(0.3, 0.5),
    washout_frames=(160.0, 320.0),
    clutter_period=(150.0, 300.0),
    clutter_level=(0.4, 0.9),
    visibility_dips=(0, 2),
)


def _make_pipeline(
    sequence: XRaySequence, config: PipelineConfig | None = None
) -> RobotVisionPipeline:
    del sequence  # no per-sequence prior
    return RobotVisionPipeline(config)


def _corpus_configs(spec: CorpusSpec) -> list[SequenceConfig]:
    return corpus_configs(spec, ranges=ROBOTVISION_RANGES)


#: Fleet dynamics: navigation epochs drift slowly, so the Markov
#: states are very sticky and runtimes sit between the live and
#: batch StentBoost classes.
_FLEET = FleetParams(
    cores_choices=(2, 3, 4),
    state_base_ms=(320.0, 520.0),
    transition=(
        (0.90, 0.10),
        (0.12, 0.88),
    ),
    jitter_sigma=0.08,
    weight=0.30,
)

#: Switch dynamics: navigation drifts slowly -- the NAV bit follows
#: a hysteretic EWMA, windowed tracking engages after a lock streak,
#: and the LOCK bit, once achieved, is very persistent.
_SCENARIOS = ScenarioDynamics(
    stay=(
        (0.95, 0.95),  # NAV: slow drift between navigation regimes
        (0.90, 0.93),  # WIN: windowed mode engages after a streak
        (0.60, 0.97),  # LOCK: locks on within frames, then holds
    ),
    initial_scenario=0,
)

ROBOTVISION = Workload(
    name="robotvision",
    description=(
        "robot visual navigation: slow EWMA-driven load drift with "
        "window-tracked features and lock-gated planning"
    ),
    build_graph=build_robotvision_graph,
    make_pipeline=_make_pipeline,
    corpus_configs=_corpus_configs,
    switch_names=("NAV", "WIN", "LOCK"),
    fleet=_FLEET,
    task_costs=ROBOTVISION_TASK_COSTS,
    scenarios=_SCENARIOS,
)
