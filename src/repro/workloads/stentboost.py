"""The StentBoost workload: the paper's reference application.

This entry wraps the pre-registry code paths *verbatim* -- the graph
builder from :mod:`repro.graph.stentboost`, the pipeline from
:mod:`repro.imaging.pipeline`, the default corpus dynamics of
:func:`repro.synthetic.corpus_configs` and the default cost table --
so resolving ``"stentboost"`` through the registry is bit-identical
to the old direct imports (pinned by
``tests/workloads/test_workload_parity.py``).
"""

from __future__ import annotations

from repro.graph.stentboost import build_stentboost_graph
from repro.imaging.pipeline import PipelineConfig, StentBoostPipeline
from repro.synthetic.dataset import CorpusSpec, corpus_configs
from repro.synthetic.sequence import SequenceConfig, XRaySequence
from repro.workloads.base import FleetParams, ScenarioDynamics, Workload

__all__ = ["STENTBOOST"]


def _make_pipeline(
    sequence: XRaySequence, config: PipelineConfig | None = None
) -> StentBoostPipeline:
    """Pipeline configured with the sequence's clinical prior.

    ``expected_distance`` comes from the phantom's marker separation
    (the a-priori balloon-marker distance a clinical deployment
    knows); the remaining tunables come from ``config``.
    """
    base = config or PipelineConfig()
    sep = sequence.config.resolved_phantom().marker_separation
    return StentBoostPipeline(
        PipelineConfig(
            expected_distance=sep,
            max_candidates=base.max_candidates,
            enhancer_decay=base.enhancer_decay,
            roi_margin_factor=base.roi_margin_factor,
            reset_after_lost=base.reset_after_lost,
        )
    )


def _corpus_configs(spec: CorpusSpec) -> list[SequenceConfig]:
    return corpus_configs(spec)


#: Fleet dynamics: interventional live streams -- moderate runtimes,
#: sticky load states (a procedure stays in one phase for a while).
_FLEET = FleetParams(
    cores_choices=(1, 2),
    state_base_ms=(90.0, 140.0, 230.0),
    transition=(
        (0.85, 0.12, 0.03),
        (0.15, 0.75, 0.10),
        (0.08, 0.22, 0.70),
    ),
    jitter_sigma=0.06,
    weight=0.60,
)

#: Switch dynamics: interventional procedures are *sticky* -- the
#: ridge pre-filter and ROI mode persist for stretches of a procedure
#: phase, and registration, once locked, rarely drops out (Fig. 3's
#: long scenario dwell times).  All stay probabilities are strictly
#: inside (0, 1): every scenario is reachable.
_SCENARIOS = ScenarioDynamics(
    stay=(
        (0.90, 0.85),  # RDG: pre-filter engages/disengages slowly
        (0.70, 0.92),  # ROI: once estimated, the ROI mode persists
        (0.40, 0.95),  # REG: registration locks and stays locked
    ),
    initial_scenario=0,
)

STENTBOOST = Workload(
    name="stentboost",
    description=(
        "interventional X-ray stent enhancement (Fig. 2): ROI-driven "
        "granularity switching with registration-gated enhancement"
    ),
    build_graph=build_stentboost_graph,
    make_pipeline=_make_pipeline,
    corpus_configs=_corpus_configs,
    switch_names=("RDG", "ROI", "REG"),
    fleet=_FLEET,
    task_costs=None,
    scenarios=_SCENARIOS,
)
