"""Ultrasound/surveillance workload: abrupt heavy scenario switching.

A cardiac-ultrasound style pipeline -- beamforming, speckle
reduction, optional Doppler velocity estimation, structure tracking
and an anomaly detector -- whose scenario bits flip on *per-frame*
content thresholds with no hysteresis.  Where the robot-vision
workload drifts slowly between load levels, this one jumps: the
Doppler stage (the heaviest task in the graph) switches on and off
abruptly, which is exactly the regime where the paper's
scenario-conditioned Markov predictors beat global averages.

Bit reinterpretation:

* **bit2 -- DOP**: Doppler processing active (raw motion-energy
  threshold, evaluated fresh every frame).
* **bit1 -- SECT**: narrow-sector mode; speckle/Doppler run on the
  central sector only (the granularity switch).
* **bit0 -- HIT**: the detector fired this frame; the classification
  stage runs.

Deterministic and RNG-free, like every registered pipeline.
"""

from __future__ import annotations

import numpy as np
from numpy.typing import NDArray

from repro.graph.flowgraph import Edge, FlowGraph
from repro.graph.task import PhaseSpec, TaskSpec
from repro.hw.cost import TaskCostSpec
from repro.imaging.common import BufferAccess, WorkReport
from repro.imaging.pipeline import FrameAnalysis, PipelineConfig, SwitchState
from repro.imaging.roi import Roi
from repro.synthetic.dataset import CorpusRanges, CorpusSpec, corpus_configs
from repro.synthetic.sequence import SequenceConfig, XRaySequence
from repro.workloads.base import FleetParams, ScenarioDynamics, Workload

__all__ = [
    "ULTRASOUND",
    "UltrasoundPipeline",
    "build_ultrasound_graph",
    "ULTRASOUND_TASK_COSTS",
]

#: Every bit compares a per-frame content statistic against its own
#: running mean -- self-normalizing (any corpus splits into both bit
#: values) and maximally abrupt (no smoothing, no hysteresis: a bit
#: can flip every frame).  The factors bias how often each bit is on.
_DOPPLER_FACTOR = 1.0
_SECTOR_FACTOR = 1.0
_DETECT_FACTOR = 1.0

#: Block edge for the denoised motion signal (per-pixel differences
#: are noise-dominated; block means expose the scene motion).
_MOTION_BLOCK = 8


def build_ultrasound_graph() -> FlowGraph:
    """Construct the ultrasound flow graph (Table-1-style specs)."""
    tasks: dict[str, TaskSpec] = {}

    def add(spec: TaskSpec) -> None:
        tasks[spec.name] = spec

    add(
        TaskSpec(
            "BEAMFORM",
            kind="stream",
            input_kb=2048,
            intermediate_kb=4096,
            output_kb=2048,
            divisible=True,
            phases=(
                PhaseSpec("delay", (("input", 2048), ("delayed", 4096))),
                PhaseSpec("sum", (("delayed", 4096), ("output", 2048))),
            ),
        )
    )
    add(
        TaskSpec(
            "SPECKLE_FULL",
            kind="stream",
            input_kb=2048,
            intermediate_kb=2048,
            output_kb=2048,
            divisible=True,
        )
    )
    add(
        TaskSpec(
            "SPECKLE_SECT",
            kind="stream",
            input_kb=2048,
            intermediate_kb=1024,
            output_kb=1024,
            divisible=True,
        )
    )
    add(
        TaskSpec(
            "DOPPLER_FULL",
            kind="stream",
            input_kb=2048,
            intermediate_kb=6144,
            output_kb=1024,
            divisible=True,
            phases=(
                PhaseSpec("ensemble", (("input", 2048), ("ensemble", 4096))),
                PhaseSpec(
                    "autocorr",
                    (("ensemble", 4096), ("phase", 2048), ("output", 1024)),
                ),
            ),
        )
    )
    add(
        TaskSpec(
            "DOPPLER_SECT",
            kind="stream",
            input_kb=1024,
            intermediate_kb=3072,
            output_kb=512,
            divisible=True,
            phases=(
                PhaseSpec("ensemble", (("input", 1024), ("ensemble", 2048))),
                PhaseSpec(
                    "autocorr",
                    (("ensemble", 2048), ("phase", 1024), ("output", 512)),
                ),
            ),
        )
    )
    add(
        TaskSpec(
            "TRACK",
            kind="feature",
            input_kb=0.5,
            intermediate_kb=0.5,
            output_kb=0.5,
        )
    )
    add(
        TaskSpec(
            "DETECT",
            kind="feature",
            input_kb=0.5,
            intermediate_kb=0.5,
            output_kb=0.5,
            functional_parallel=True,
        )
    )
    add(
        TaskSpec(
            "RENDER",
            kind="stream",
            input_kb=2048,
            intermediate_kb=2048,
            output_kb=4096,
        )
    )

    IN, OUT = FlowGraph.INPUT, FlowGraph.OUTPUT
    edges = [
        Edge(IN, "BEAMFORM", 2048),
        Edge("BEAMFORM", "SPECKLE_FULL", 2048),
        Edge("BEAMFORM", "SPECKLE_SECT", 2048),
        Edge("BEAMFORM", "DOPPLER_FULL", 2048),
        Edge("BEAMFORM", "DOPPLER_SECT", 1024),
        Edge("SPECKLE_FULL", "RENDER", 2048),
        Edge("SPECKLE_SECT", "RENDER", 1024),
        Edge("SPECKLE_FULL", "TRACK", 0.5),
        Edge("SPECKLE_SECT", "TRACK", 0.5),
        Edge("DOPPLER_FULL", "TRACK", 0.5),
        Edge("DOPPLER_SECT", "TRACK", 0.5),
        Edge("TRACK", "DETECT", 0.5),
        Edge("DETECT", "RENDER", 0.5),
        Edge("DOPPLER_FULL", "RENDER", 1024),
        Edge("DOPPLER_SECT", "RENDER", 512),
        Edge("RENDER", OUT, 4096),
    ]

    def activation(state: SwitchState) -> list[str]:
        doppler, sect, hit = state.rdg_on, state.roi_mode, state.reg_success
        names = ["BEAMFORM", "SPECKLE_SECT" if sect else "SPECKLE_FULL"]
        if doppler:
            names.append("DOPPLER_SECT" if sect else "DOPPLER_FULL")
        names.append("TRACK")
        if hit:
            names.append("DETECT")
        names.append("RENDER")
        return names

    return FlowGraph(tasks, edges, activation)


ULTRASOUND_TASK_COSTS: dict[str, TaskCostSpec] = {
    "BEAMFORM": TaskCostSpec(fixed_ms=0.5, per_kpixel_ms=0.006),
    "SPECKLE_FULL": TaskCostSpec(fixed_ms=0.7, per_kpixel_ms=0.007),
    "SPECKLE_SECT": TaskCostSpec(fixed_ms=0.7, per_kpixel_ms=0.007),
    "DOPPLER_FULL": TaskCostSpec(
        fixed_ms=1.6,
        per_kpixel_ms=0.010,
        per_count_ms={"echo_samples": 0.00006},
    ),
    "DOPPLER_SECT": TaskCostSpec(
        fixed_ms=1.6,
        per_kpixel_ms=0.010,
        per_count_ms={"echo_samples": 0.00006},
    ),
    "TRACK": TaskCostSpec(fixed_ms=0.9, per_count_ms={"track_points": 0.005}),
    "DETECT": TaskCostSpec(
        fixed_ms=0.8, per_count_ms={"detections": 0.08}
    ),
    "RENDER": TaskCostSpec(fixed_ms=1.0, per_kpixel_ms=0.005),
}


class UltrasoundPipeline:
    """Stateful per-frame executor of the ultrasound flow graph.

    All three bits are raw per-frame content thresholds -- no EWMA, no
    hysteresis, no streak counters -- so scenarios jump abruptly as the
    sequence's clutter/visibility schedule flips frame to frame.
    """

    def __init__(self, config: PipelineConfig | None = None) -> None:
        self.config = config or PipelineConfig()
        #: QoS quality level slot (runtime quality controller).
        self.quality = None
        self._sector: Roi | None = None
        self._prev: NDArray[np.float32] | None = None
        self._prev_blocks: NDArray[np.float32] | None = None
        self._motion_mean = 0.0
        self._conc_mean = 0.0
        self._peak_ratio_mean = 0.0
        self._n_frames_seen = 0
        self._frame_index = 0

    @property
    def roi(self) -> Roi | None:
        """Central sector the *next* frame will process (or None)."""
        return self._sector

    def reset(self) -> None:
        self._sector = None
        self._prev = None
        self._prev_blocks = None
        self._motion_mean = 0.0
        self._conc_mean = 0.0
        self._peak_ratio_mean = 0.0
        self._n_frames_seen = 0
        self._frame_index = 0

    @staticmethod
    def _central_sector(h: int, w: int) -> Roi:
        return Roi(row0=h // 4, col0=w // 4, row1=h - h // 4, col1=w - w // 4)

    @staticmethod
    def _block_mean(img: NDArray[np.float32]) -> NDArray[np.float32]:
        b = _MOTION_BLOCK
        h, w = img.shape
        trimmed = img[: h // b * b, : w // b * b]
        return trimmed.reshape(h // b, b, w // b, b).mean(axis=(1, 3))

    def _running(self, attr: str, value: float) -> float:
        """Update running mean ``attr`` with ``value``; return it."""
        mean = getattr(self, attr)
        mean += (value - mean) / self._n_frames_seen
        setattr(self, attr, mean)
        return mean

    def process(self, img: NDArray[np.float32]) -> FrameAnalysis:
        img = np.asarray(img, dtype=np.float32)
        h, w = img.shape
        frame_bytes = img.nbytes
        reports: dict[str, WorkReport] = {}
        self._n_frames_seen += 1

        # Per-frame block-motion energy against the previous frame:
        # the abrupt Doppler switch (raw comparison, no smoothing).
        blocks = self._block_mean(img)
        if self._prev_blocks is None or self._prev_blocks.shape != blocks.shape:
            motion = 0.0
        else:
            motion = float(np.mean(np.abs(blocks - self._prev_blocks)))
        self._prev_blocks = blocks
        doppler = motion > _DOPPLER_FACTOR * self._running(
            "_motion_mean", motion
        )

        sector_roi = self._sector
        sect_mode = sector_roi is not None
        region = img[sector_roi.slices] if sector_roi is not None else img
        suffix = "SECT" if sect_mode else "FULL"
        region_bytes = region.nbytes

        # BEAMFORM: always full frame.
        reports["BEAMFORM"] = WorkReport(
            task="BEAMFORM",
            pixels=img.size * 2,
            bytes_in=frame_bytes,
            bytes_out=frame_bytes,
            buffers=(
                BufferAccess("input", frame_bytes),
                BufferAccess("delayed", frame_bytes * 2),
                BufferAccess("output", frame_bytes),
            ),
        )

        # SPECKLE: despeckle at the current granularity.
        reports[f"SPECKLE_{suffix}"] = WorkReport(
            task=f"SPECKLE_{suffix}",
            pixels=region.size,
            bytes_in=region_bytes,
            bytes_out=region_bytes,
            buffers=(
                BufferAccess("input", region_bytes),
                BufferAccess("filtered", region_bytes),
                BufferAccess("output", region_bytes),
            ),
        )

        if doppler:
            # Echo ensemble over the moving pixels of the region.
            prev = self._prev if self._prev is not None else img
            prev_region = (
                prev[sector_roi.slices] if sector_roi is not None else prev
            )
            if prev_region.shape != region.shape:
                prev_region = region
            diff = np.abs(region - prev_region)
            n_echo = int(np.count_nonzero(diff > diff.mean())) * 4
            reports[f"DOPPLER_{suffix}"] = WorkReport(
                task=f"DOPPLER_{suffix}",
                pixels=region.size * 3,
                bytes_in=region_bytes,
                bytes_out=region_bytes // 2,
                buffers=(
                    BufferAccess("input", region_bytes),
                    BufferAccess("ensemble", region_bytes * 2),
                    BufferAccess("phase", region_bytes),
                    BufferAccess("output", region_bytes // 2),
                ),
                counts={"echo_samples": float(n_echo)},
            )

        # TRACK: wall/valve structure tracking over strong edges.
        gy, gx = np.gradient(region)
        magnitude = np.abs(gx) + np.abs(gy)
        mag_mean = float(magnitude.mean()) or 1.0
        n_track = int(np.count_nonzero(magnitude > 3.5 * mag_mean))
        reports["TRACK"] = WorkReport(
            task="TRACK",
            counts={"track_points": float(min(n_track, 512))},
        )

        # Per-frame detector: the dominant-peak ratio beats its own
        # running mean.
        peak_ratio = float(magnitude.max()) / mag_mean
        hit = peak_ratio > _DETECT_FACTOR * self._running(
            "_peak_ratio_mean", peak_ratio
        )
        if hit:
            n_det = max(1, n_track // 64)
            reports["DETECT"] = WorkReport(
                task="DETECT",
                counts={"detections": float(n_det)},
            )

        # RENDER: scan conversion always back to the full display.
        reports["RENDER"] = WorkReport(
            task="RENDER",
            pixels=img.size,
            bytes_in=region_bytes,
            bytes_out=frame_bytes * 2,
            buffers=(
                BufferAccess("input", region_bytes),
                BufferAccess("geometry", frame_bytes),
                BufferAccess("output", frame_bytes * 2),
            ),
        )

        # Next-frame sector decision: raw concentration test against
        # its own running mean, fresh every frame (enters *and*
        # leaves narrow-sector abruptly).
        central = self._central_sector(h, w)
        gy_f, gx_f = np.gradient(img)
        full_energy = float((np.abs(gx_f) + np.abs(gy_f)).sum()) or 1.0
        central_mag = (
            np.abs(gx_f[central.slices]) + np.abs(gy_f[central.slices])
        )
        concentration = float(central_mag.sum()) / full_energy
        sector_next = (
            central
            if concentration
            > _SECTOR_FACTOR * self._running("_conc_mean", concentration)
            else None
        )

        self._prev = img
        self._sector = sector_next
        switches = SwitchState(
            rdg_on=doppler, roi_mode=sect_mode, reg_success=bool(hit)
        )
        analysis = FrameAnalysis(
            index=self._frame_index,
            switches=switches,
            reports=reports,
            candidates=None,
            couple=None,
            transform=None,
            guidewire=None,
            roi_used=sector_roi,
            roi_next=sector_next,
            output=None,
            extras={
                "roi_kpixels": (
                    (sector_roi.pixels / 1000.0)
                    if sector_roi
                    else img.size / 1000.0
                ),
                "doppler_motion": motion,
            },
        )
        self._frame_index += 1
        return analysis


#: Abrupt corpus dynamics: short clutter periods, fast motion, many
#: visibility dips -- scenario flips happen within a handful of frames.
ULTRASOUND_RANGES = CorpusRanges(
    cardiac_period=(8.0, 16.0),
    cardiac_amp=(3.0, 8.0),
    resp_period=(40.0, 90.0),
    resp_amp=(2.0, 6.0),
    tremor_sigma=(0.4, 0.9),
    rotation_amp=(0.03, 0.12),
    dose=(0.4, 1.8),
    contrast_base=(0.2, 0.45),
    washout_frames=(30.0, 90.0),
    clutter_period=(20.0, 60.0),
    clutter_level=(0.5, 1.4),
    visibility_dips=(2, 6),
)


def _make_pipeline(
    sequence: XRaySequence, config: PipelineConfig | None = None
) -> UltrasoundPipeline:
    del sequence  # no per-sequence prior
    return UltrasoundPipeline(config)


def _corpus_configs(spec: CorpusSpec) -> list[SequenceConfig]:
    return corpus_configs(spec, ranges=ULTRASOUND_RANGES)


#: Fleet dynamics: screening/surveillance bursts -- short jobs whose
#: load state flips often (weak self-transition probabilities).
_FLEET = FleetParams(
    cores_choices=(1, 2, 4),
    state_base_ms=(60.0, 180.0, 420.0),
    transition=(
        (0.45, 0.40, 0.15),
        (0.35, 0.40, 0.25),
        (0.30, 0.40, 0.30),
    ),
    jitter_sigma=0.12,
    weight=0.10,
)

#: Switch dynamics: maximally abrupt -- every bit is a raw per-frame
#: threshold with no hysteresis, so stay probabilities sit near a
#: coin flip and the scenario can jump anywhere within a few frames.
_SCENARIOS = ScenarioDynamics(
    stay=(
        (0.55, 0.50),  # DOP: raw motion threshold, flips freely
        (0.60, 0.55),  # SECT: fresh concentration test every frame
        (0.70, 0.45),  # HIT: detector fires in short bursts
    ),
    initial_scenario=0,
)

ULTRASOUND = Workload(
    name="ultrasound",
    description=(
        "cardiac ultrasound screening: abrupt per-frame Doppler and "
        "sector switching with detector-gated classification"
    ),
    build_graph=build_ultrasound_graph,
    make_pipeline=_make_pipeline,
    corpus_configs=_corpus_configs,
    switch_names=("DOP", "SECT", "HIT"),
    fleet=_FLEET,
    task_costs=ULTRASOUND_TASK_COSTS,
    scenarios=_SCENARIOS,
)
