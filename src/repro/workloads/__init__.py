"""Workload registry: named application bundles (see :mod:`.base`).

Importing this package registers the built-in applications; every
layer above the imaging/graph layers resolves applications by name
through :func:`get_workload` rather than importing StentBoost
symbols directly.
"""

from repro.workloads.base import (
    DEFAULT_WORKLOAD,
    REGISTRY_VERSION,
    FleetParams,
    ScenarioDynamics,
    Workload,
    all_workloads,
    get_workload,
    register,
    workload_names,
)
from repro.workloads.robotvision import ROBOTVISION
from repro.workloads.stentboost import STENTBOOST
from repro.workloads.ultrasound import ULTRASOUND

__all__ = [
    "DEFAULT_WORKLOAD",
    "REGISTRY_VERSION",
    "FleetParams",
    "ScenarioDynamics",
    "Workload",
    "all_workloads",
    "get_workload",
    "register",
    "workload_names",
    "STENTBOOST",
    "ROBOTVISION",
    "ULTRASOUND",
]

register(STENTBOOST)
register(ROBOTVISION)
register(ULTRASOUND)
