"""Fig. 5 reproduction: RDG FULL space-time cache occupancy.

The paper draws the per-phase buffer occupancy of the RDG FULL task
against the 4 MB L2 and the eviction traffic the overflow phases
generate.  We reproduce the phase table and the derived intra-task
swap bandwidth, and list which tasks overflow at all (the paper names
RDG FULL, ENH and ZOOM).
"""

from __future__ import annotations

from repro.core.cachemodel import CacheMemoryModel
from repro.experiments.common import ExperimentContext
from repro.util.units import HZ_VIDEO, KIB, MB

__all__ = ["run", "PAPER_OVERFLOW_TASKS"]

#: "the RDG FULL, ENH and ZOOM tasks have an intra-task memory
#: requirement that is higher than the level-2 cache capacity"
PAPER_OVERFLOW_TASKS = {"RDG_FULL", "ENH", "ZOOM"}


def run(ctx: ExperimentContext) -> dict:
    """Phase occupancy of RDG FULL + the overflow-task inventory."""
    cm = CacheMemoryModel(ctx.graph, ctx.platform)
    pred = cm.predict_task("RDG_FULL")
    capacity_kb = ctx.platform.l2.capacity_bytes / KIB

    lines = ["Fig. 5 -- RDG FULL space-time cache occupancy", ""]
    lines.append(f"L2 capacity: {capacity_kb:.0f} KB")
    lines.append(f"{'phase':12s} {'active KB':>10s} {'resident KB':>12s} {'evicted KB':>11s}")
    phases = []
    for ph in pred.phases:
        lines.append(
            f"{ph.phase:12s} {ph.active_bytes / KIB:10.0f} "
            f"{ph.resident_bytes / KIB:12.0f} {ph.evicted_bytes / KIB:11.0f}"
        )
        phases.append(
            (ph.phase, ph.active_bytes, ph.resident_bytes, ph.evicted_bytes)
        )
    swap_mbps = pred.eviction_bytes * HZ_VIDEO / MB
    lines.append("")
    lines.append(
        f"RDG FULL eviction: {pred.eviction_bytes / KIB:.0f} KB/frame "
        f"= {swap_mbps:.0f} MByte/s intra-task swap bandwidth at 30 Hz"
    )

    overflow = set(cm.overflow_tasks())
    lines.append(
        f"tasks overflowing L2 (full-frame): {sorted(overflow)} "
        f"(paper names: {sorted(PAPER_OVERFLOW_TASKS)})"
    )
    return {
        "phases": phases,
        "eviction_bytes": pred.eviction_bytes,
        "swap_mbps": swap_mbps,
        "overflow_tasks": sorted(overflow),
        "paper_overflow_named_ok": PAPER_OVERFLOW_TASKS <= overflow,
        "text": "\n".join(lines),
    }
