"""Shared experiment state: corpus, traces, trained model, caching.

The paper's training setup is 37 sequences / 1,921 frames; profiling
that corpus takes ~40 s on a laptop, so the resulting traces are
cached on disk under ``.cache/``.  The cache is *sharded per
sequence*: each shard is keyed by (calibration version, sequence
index, the sequence's full config, the profiling configuration
including pipeline tunables), so changing the corpus only re-profiles
the sequences whose shard keys changed, and missing shards are
profiled in parallel (``REPRO_JOBS`` / ``jobs=``).  A legacy
monolithic ``traces-<key>.json`` file, when present, is split into
shards once and then ignored.

Set ``REPRO_FAST=1`` to use a small corpus for smoke runs;
``REPRO_CACHE_DIR`` moves the cache.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.core.triplec import TripleC
from repro.graph.flowgraph import FlowGraph
from repro.hw.bus import BandwidthLedger
from repro.hw.spec import PlatformSpec
from repro.imaging.pipeline import AnalysisPipeline, PipelineConfig
from repro.profiling import (
    ProfileConfig,
    TraceSet,
    merge_shards,
    profile_shards,
)
from repro.synthetic import CorpusSpec
from repro.synthetic.sequence import SequenceConfig, XRaySequence
from repro.workloads import DEFAULT_WORKLOAD, get_workload

__all__ = ["ExperimentContext", "default_context", "make_pipeline"]

#: Bump when cost-model calibration or pipeline behaviour changes, so
#: stale cached traces are never reused.
CALIBRATION_VERSION = "v3"


def _cache_dir() -> Path:
    root = os.environ.get("REPRO_CACHE_DIR", "")
    path = Path(root) if root else Path(__file__).resolve().parents[3] / ".cache"
    path.mkdir(parents=True, exist_ok=True)
    return path


def make_pipeline(
    sequence: XRaySequence, workload: str = DEFAULT_WORKLOAD
) -> AnalysisPipeline:
    """Default-tunables pipeline of a workload for one sequence.

    Delegates to the registry entry's pipeline factory, which may
    read per-sequence priors (StentBoost derives its
    ``expected_distance`` from the phantom's marker separation).
    """
    return get_workload(workload).make_pipeline(sequence, None)


def _sequence_blob(config: SequenceConfig) -> str:
    """Stable serialization of a sequence config (nested dataclasses)."""
    return json.dumps(asdict(config), sort_keys=True)


@dataclass
class ExperimentContext:
    """Everything the experiment modules share.

    Attributes
    ----------
    corpus_spec:
        The training corpus parameters.
    profile_config:
        Platform + cost-model + pipeline configuration.
    jobs:
        Worker count for profiling fan-out (``None`` -> ``REPRO_JOBS``
        -> ``os.cpu_count()``; see :func:`repro.parallel.resolve_jobs`).
    traces:
        Profiled training traces (lazily computed, shard-cached on
        disk per sequence).
    model:
        Triple-C trained on ``traces`` (lazily computed).
    """

    corpus_spec: CorpusSpec = field(default_factory=CorpusSpec)
    profile_config: ProfileConfig = field(default_factory=ProfileConfig)
    jobs: int | None = None
    _traces: TraceSet | None = field(default=None, repr=False)
    _model: TripleC | None = field(default=None, repr=False)
    _graph: FlowGraph | None = field(default=None, repr=False)

    @property
    def platform(self) -> PlatformSpec:
        return self.profile_config.platform

    @property
    def workload(self) -> str:
        """Registry name of the application this context studies."""
        return self.profile_config.workload

    @property
    def graph(self) -> FlowGraph:
        """The workload's flow graph (built once, memoized)."""
        if self._graph is None:
            self._graph = get_workload(self.workload).build_graph()
        return self._graph

    # -- cache keys -----------------------------------------------------------

    def _profile_fingerprint(self) -> str:
        """Everything in the profiling config that shapes a trace.

        Includes the pipeline tunables: a tuned run (e.g. an
        ``expected_distance`` override or a different candidate cap)
        may never reuse traces profiled under other tunables.
        """
        pipe = self.profile_config.pipeline
        return (
            f"{CALIBRATION_VERSION}|{self.workload}|"
            f"{self.profile_config.pixel_scale}|"
            f"{self.profile_config.seed}|{self.platform.name}|"
            f"{pipe.expected_distance}|{pipe.max_candidates}|"
            f"{pipe.enhancer_decay}|{pipe.roi_margin_factor}|"
            f"{pipe.reset_after_lost}"
        )

    def _cache_key(self) -> str:
        """Corpus-level cache key (fingerprint + corpus parameters)."""
        spec = self.corpus_spec
        blob = (
            f"{self._profile_fingerprint()}|{spec.n_sequences}|"
            f"{spec.total_frames}|{spec.width}|{spec.height}|{spec.base_seed}"
        )
        return hashlib.sha256(blob.encode()).hexdigest()[:16]

    def _shard_key(self, seq_id: int, config: SequenceConfig) -> str:
        """Per-sequence shard key.

        The sequence index participates because execution jitter is
        keyed by ``(seq_id, frame)``: the same sequence config
        profiled at a different corpus position yields different
        times, so a shard is only reusable at its own index.
        """
        blob = (
            f"{self._profile_fingerprint()}|{seq_id}|{_sequence_blob(config)}"
        )
        return hashlib.sha256(blob.encode()).hexdigest()[:16]

    def _legacy_cache_key(self) -> str:
        """Key of the pre-shard monolithic cache file (migration read)."""
        spec = self.corpus_spec
        blob = (
            f"{CALIBRATION_VERSION}|{spec.n_sequences}|{spec.total_frames}|"
            f"{spec.width}|{spec.height}|{spec.base_seed}|"
            f"{self.profile_config.pixel_scale}|{self.profile_config.seed}|"
            f"{self.platform.name}"
        )
        return hashlib.sha256(blob.encode()).hexdigest()[:16]

    # -- the sharded trace cache ----------------------------------------------

    def _shard_paths(
        self, configs: list[SequenceConfig]
    ) -> list[Path]:
        shard_dir = _cache_dir() / "trace-shards"
        shard_dir.mkdir(parents=True, exist_ok=True)
        return [
            shard_dir / f"shard-{self._shard_key(i, cfg)}.json"
            for i, cfg in enumerate(configs)
        ]

    def _migrate_legacy(self, paths: list[Path]) -> None:
        """One-shot split of a legacy monolithic cache into shards.

        The legacy key ignored the pipeline tunables (that was the
        stale-cache bug), so the monolith is only trusted when this
        context runs the default pipeline -- the only configuration
        legacy files can have described.
        """
        if self.profile_config.pipeline != PipelineConfig():
            return
        legacy = _cache_dir() / f"traces-{self._legacy_cache_key()}.json"
        if not legacy.exists():
            return
        monolith = TraceSet.load(legacy)
        by_seq: dict[int, TraceSet] = {}
        for record in monolith.records:
            shard = by_seq.setdefault(
                record.seq,
                TraceSet(
                    pixel_scale=monolith.pixel_scale,
                    platform=monolith.platform,
                ),
            )
            shard.append(record)
        if sorted(by_seq) != list(range(len(paths))):
            return  # monolith does not describe this corpus; ignore it
        for seq_id, path in enumerate(paths):
            if not path.exists():
                # The monolith never stored per-sequence ledgers; the
                # shard carries records only (merge_shards copes).
                by_seq[seq_id].save(path)

    def _load_or_profile_traces(self) -> TraceSet:
        configs = get_workload(self.workload).corpus_configs(self.corpus_spec)
        paths = self._shard_paths(configs)
        if any(not p.exists() for p in paths):
            self._migrate_legacy(paths)

        missing = [i for i, p in enumerate(paths) if not p.exists()]
        fresh: dict[int, TraceSet] = {}
        if missing:
            computed = profile_shards(
                [(i, configs[i]) for i in missing],
                self.profile_config,
                jobs=self.jobs,
            )
            for i, shard in zip(missing, computed):
                fresh[i] = shard
                ledger = shard.meta.get("ledger")
                if isinstance(ledger, BandwidthLedger):
                    shard.meta["ledger_state"] = ledger.state_dict()
                shard.save(paths[i])

        shards: list[TraceSet] = []
        for i, path in enumerate(paths):
            shard = fresh.get(i)
            if shard is None:
                shard = TraceSet.load(path)
                state = shard.meta.get("ledger_state")
                if isinstance(state, dict):
                    shard.meta["ledger"] = BandwidthLedger.from_state(state)
            shards.append(shard)
        return merge_shards(shards, self.profile_config)

    @property
    def traces(self) -> TraceSet:
        """Training traces (profiled once, shard-cached on disk)."""
        if self._traces is None:
            self._traces = self._load_or_profile_traces()
        return self._traces

    @property
    def model(self) -> TripleC:
        """Triple-C trained on the training traces."""
        if self._model is None:
            self._model = TripleC.fit(
                self.traces,
                graph=self.graph,
                platform=self.platform,
            )
        return self._model

    def fresh_model(self, **fit_kwargs) -> TripleC:
        """An independently fitted model (for ablations)."""
        return TripleC.fit(
            self.traces, graph=self.graph, platform=self.platform, **fit_kwargs
        )


def default_context() -> ExperimentContext:
    """The standard experiment context.

    Paper-scale corpus (37 sequences / 1,921 frames) unless
    ``REPRO_FAST=1``, which shrinks it to 8 / 400 for smoke runs.
    ``REPRO_WORKLOAD`` selects the application (default
    ``stentboost``).
    """
    if os.environ.get("REPRO_FAST", "") == "1":
        spec = CorpusSpec(n_sequences=8, total_frames=400)
    else:
        spec = CorpusSpec()
    workload = os.environ.get("REPRO_WORKLOAD", DEFAULT_WORKLOAD)
    return ExperimentContext(
        corpus_spec=spec,
        profile_config=ProfileConfig(workload=workload),
    )
