"""Shared experiment state: corpus, traces, trained model, caching.

The paper's training setup is 37 sequences / 1,921 frames; profiling
that corpus takes ~40 s on a laptop, so the resulting traces are
cached as JSON under ``.cache/`` (keyed by the corpus parameters and
the cost-model calibration version).  Set ``REPRO_FAST=1`` to use a
small corpus for smoke runs; ``REPRO_CACHE_DIR`` moves the cache.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.triplec import TripleC
from repro.graph import build_stentboost_graph
from repro.graph.flowgraph import FlowGraph
from repro.hw.spec import PlatformSpec
from repro.imaging.pipeline import PipelineConfig, StentBoostPipeline
from repro.profiling import ProfileConfig, TraceSet, profile_corpus
from repro.synthetic import CorpusSpec, generate_corpus
from repro.synthetic.sequence import XRaySequence

__all__ = ["ExperimentContext", "default_context", "make_pipeline"]

#: Bump when cost-model calibration or pipeline behaviour changes, so
#: stale cached traces are never reused.
CALIBRATION_VERSION = "v3"


def _cache_dir() -> Path:
    root = os.environ.get("REPRO_CACHE_DIR", "")
    path = Path(root) if root else Path(__file__).resolve().parents[3] / ".cache"
    path.mkdir(parents=True, exist_ok=True)
    return path


def make_pipeline(sequence: XRaySequence) -> StentBoostPipeline:
    """Pipeline configured with the sequence's clinical prior."""
    sep = sequence.config.resolved_phantom().marker_separation
    return StentBoostPipeline(PipelineConfig(expected_distance=sep))


@dataclass
class ExperimentContext:
    """Everything the experiment modules share.

    Attributes
    ----------
    corpus_spec:
        The training corpus parameters.
    profile_config:
        Platform + cost-model configuration.
    traces:
        Profiled training traces (lazily computed, disk-cached).
    model:
        Triple-C trained on ``traces`` (lazily computed).
    """

    corpus_spec: CorpusSpec = field(default_factory=CorpusSpec)
    profile_config: ProfileConfig = field(default_factory=ProfileConfig)
    _traces: TraceSet | None = field(default=None, repr=False)
    _model: TripleC | None = field(default=None, repr=False)

    @property
    def platform(self) -> PlatformSpec:
        return self.profile_config.platform

    @property
    def graph(self) -> FlowGraph:
        return build_stentboost_graph()

    def _cache_key(self) -> str:
        spec = self.corpus_spec
        blob = (
            f"{CALIBRATION_VERSION}|{spec.n_sequences}|{spec.total_frames}|"
            f"{spec.width}|{spec.height}|{spec.base_seed}|"
            f"{self.profile_config.pixel_scale}|{self.profile_config.seed}|"
            f"{self.platform.name}"
        )
        return hashlib.sha256(blob.encode()).hexdigest()[:16]

    @property
    def traces(self) -> TraceSet:
        """Training traces (profiled once, cached on disk)."""
        if self._traces is None:
            cache = _cache_dir() / f"traces-{self._cache_key()}.json"
            if cache.exists():
                self._traces = TraceSet.load(cache)
            else:
                corpus = generate_corpus(self.corpus_spec)
                self._traces = profile_corpus(corpus, self.profile_config)
                self._traces.save(cache)
        return self._traces

    @property
    def model(self) -> TripleC:
        """Triple-C trained on the training traces."""
        if self._model is None:
            self._model = TripleC.fit(
                self.traces,
                graph=self.graph,
                platform=self.platform,
            )
        return self._model

    def fresh_model(self, **fit_kwargs) -> TripleC:
        """An independently fitted model (for ablations)."""
        return TripleC.fit(
            self.traces, graph=self.graph, platform=self.platform, **fit_kwargs
        )


def default_context() -> ExperimentContext:
    """The standard experiment context.

    Paper-scale corpus (37 sequences / 1,921 frames) unless
    ``REPRO_FAST=1``, which shrinks it to 8 / 400 for smoke runs.
    """
    if os.environ.get("REPRO_FAST", "") == "1":
        spec = CorpusSpec(n_sequences=8, total_frames=400)
    else:
        spec = CorpusSpec()
    return ExperimentContext(corpus_spec=spec)
