"""Fig. 6 reproduction: effective latency vs ROI size.

The paper sweeps the ROI size to ~300 Kpixels, fits the linear
growth function ``y = 0.067 t_k + 20.6`` (Eq. 3) and shows the
2-stripe data-parallel partitioning roughly halving the ROI-dependent
part.  We sweep the ROI by cropping windows of controlled size around
the tracked markers, run the ROI-granularity success-path pipeline on
each crop, and simulate both the serial and the 2-stripe mapping.

Our calibration is anchored to Fig. 3 / Table 2(b) (see DESIGN.md),
so the fitted slope differs from Eq. 3's 0.067 in absolute value;
the *shape* -- linearity and the ~2x stripe speedup of the
ROI-dependent part -- is the reproduction target.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentContext
from repro.hw import Mapping
from repro.imaging.couples import select_couple
from repro.imaging.guidewire import extract_guidewire
from repro.imaging.markers import extract_markers
from repro.imaging.registration import register_couples
from repro.imaging.ridge import ridge_filter
from repro.runtime import simulate_report_sweep
from repro.synthetic.sequence import SequenceConfig, XRaySequence
from repro.util.stats import linear_fit

__all__ = ["run", "PAPER_EQ3"]

#: Eq. 3 of the paper: y = 0.067 * t_k + 20.6 (ms, t_k in Kpixels).
PAPER_EQ3 = (0.067, 20.6)


def _frame_reports(seq: XRaySequence, frame_idx: int, edge_px: int, ctx: ExperimentContext):
    """Build the ROI-scenario task reports for one forced ROI size."""
    img, truth = seq.frame(frame_idx)
    h, w = img.shape
    cy = int((truth.marker_a[0] + truth.marker_b[0]) / 2)
    cx = int((truth.marker_a[1] + truth.marker_b[1]) / 2)
    half = edge_px // 2
    r0 = int(np.clip(cy - half, 0, max(0, h - edge_px)))
    c0 = int(np.clip(cx - half, 0, max(0, w - edge_px)))
    crop = img[r0 : r0 + edge_px, c0 : c0 + edge_px]

    reports = {}
    ridge, rep = ridge_filter(crop, task="RDG_ROI")
    reports[rep.task] = rep
    cands, rep = extract_markers(crop, ridge=ridge, task="MKX_ROI_RDG")
    reports[rep.task] = rep
    sep = seq.config.resolved_phantom().marker_separation
    couple, rep = select_couple(cands, sep)
    reports[rep.task] = rep
    transform, rep = register_couples(couple, couple, sep)
    reports[rep.task] = rep
    if couple.found:
        gw_a, gw_b = couple.marker_a, couple.marker_b
    else:
        gw_a, gw_b = truth.marker_a, truth.marker_b
        gw_a = (gw_a[0] - r0, gw_a[1] - c0)
        gw_b = (gw_b[0] - r0, gw_b[1] - c0)
    _, rep = extract_guidewire(crop, gw_a, gw_b)
    reports[rep.task] = rep
    return reports, crop.size


def run(
    ctx: ExperimentContext,
    n_frames_per_size: int = 6,
    seed: int = 60606,
) -> dict:
    """Sweep the ROI size; fit the linear growth; compare mappings."""
    seq = XRaySequence(
        SequenceConfig(
            n_frames=64,
            seed=seed,
            clutter_level=1.0,
            contrast_base=0.45,
            injection_frame=0,
            visibility_dips=0,
        )
    )
    scale = ctx.profile_config.pixel_scale
    sim_serial = ctx.profile_config.make_simulator()
    sim_striped = ctx.profile_config.make_simulator()
    two_stripe = (
        Mapping.serial()
        .with_partition("RDG_ROI", (0, 1))
    )

    frame_edge = seq.config.width
    edges = np.linspace(32, frame_edge - 8, 8).astype(int)
    n_points = edges.size * n_frames_per_size
    roi = np.empty(n_points)
    serial_frames = []
    striped_frames = []
    for i, (edge, k) in enumerate(
        (e, k) for e in edges for k in range(n_frames_per_size)
    ):
        frame_idx = (int(edge) * 7 + k * 5) % len(seq)
        reports, px = _frame_reports(seq, frame_idx, int(edge), ctx)
        key = ("fig6", int(edge), k)
        serial_frames.append((reports, Mapping.serial(), key))
        striped_frames.append((reports, two_stripe, key))
        roi[i] = px * scale / 1000.0
    ser = np.asarray(
        [r.latency_ms for r in simulate_report_sweep(sim_serial, serial_frames)]
    )
    par = np.asarray(
        [r.latency_ms for r in simulate_report_sweep(sim_striped, striped_frames)]
    )
    slope_s, icpt_s = linear_fit(roi, ser)
    slope_p, icpt_p = linear_fit(roi, par)

    lines = ["Fig. 6 -- effective latency vs ROI size", ""]
    lines.append(
        f"serial:    y = {slope_s:.4f} * t_k + {icpt_s:.1f} ms "
        f"(paper Eq. 3: y = {PAPER_EQ3[0]} * t_k + {PAPER_EQ3[1]})"
    )
    lines.append(f"2-stripe:  y = {slope_p:.4f} * t_k + {icpt_p:.1f} ms")
    ratio = slope_s / slope_p if slope_p > 0 else float("inf")
    lines.append(
        f"slope ratio serial / 2-stripe = {ratio:.2f} "
        f"(ideal data-parallel split: 2.0)"
    )
    return {
        "roi_kpixels": roi,
        "serial_ms": ser,
        "striped_ms": par,
        "serial_fit": (slope_s, icpt_s),
        "striped_fit": (slope_p, icpt_p),
        "slope_ratio": ratio,
        "text": "\n".join(lines),
    }
