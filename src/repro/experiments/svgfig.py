"""Minimal SVG line charts: regenerate the paper's figures as images.

No plotting dependency is available offline, so this module renders
the three data figures (Fig. 3, Fig. 6, Fig. 7) as self-contained SVG
files with a small hand-rolled chart builder -- axes, ticks, series
polylines / scatter marks and a legend.  The visual layout mirrors
the paper's figures so a side-by-side comparison is direct.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.experiments import fig3, fig6, fig7
from repro.experiments.common import ExperimentContext

__all__ = ["LineChart", "export_svg"]

#: Brand-neutral series colors (colorblind-safe).
PALETTE = ("#3b6fb6", "#d1495b", "#66a182", "#edae49", "#8d6a9f")


@dataclass
class Series:
    """One plotted series."""

    label: str
    x: np.ndarray
    y: np.ndarray
    color: str
    mode: str = "line"  # "line" | "dots"


@dataclass
class LineChart:
    """A tiny SVG line/scatter chart.

    >>> chart = LineChart(title="t", x_label="x", y_label="y")
    >>> chart.add("series", [0, 1], [0, 1])
    >>> svg = chart.render()
    """

    title: str
    x_label: str
    y_label: str
    width: int = 640
    height: int = 400
    margin: int = 56
    series: list[Series] = field(default_factory=list)

    def add(
        self,
        label: str,
        x: Sequence[float],
        y: Sequence[float],
        mode: str = "line",
        color: str | None = None,
    ) -> None:
        """Add a series; colors cycle through the palette."""
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        if x.shape != y.shape or x.ndim != 1 or x.size == 0:
            raise ValueError("series must be matching non-empty 1-D arrays")
        c = color or PALETTE[len(self.series) % len(PALETTE)]
        self.series.append(Series(label, x, y, c, mode))

    # -- scaling ---------------------------------------------------------------

    def _limits(self) -> tuple[float, float, float, float]:
        xs = np.concatenate([s.x for s in self.series])
        ys = np.concatenate([s.y for s in self.series])
        x0, x1 = float(xs.min()), float(xs.max())
        y0, y1 = float(ys.min()), float(ys.max())
        if x1 == x0:
            x1 = x0 + 1.0
        pad = 0.06 * (y1 - y0) or 1.0
        return x0, x1, y0 - pad, y1 + pad

    def _ticks(self, lo: float, hi: float, n: int = 5) -> list[float]:
        raw = np.linspace(lo, hi, n)
        step = (hi - lo) / (n - 1)
        digits = max(0, int(-np.floor(np.log10(step))) + 1) if step > 0 else 0
        return [round(v, digits) for v in raw]

    # -- rendering ---------------------------------------------------------------

    def render(self) -> str:
        """Produce the SVG document as a string."""
        if not self.series:
            raise ValueError("no series to plot")
        w, h, m = self.width, self.height, self.margin
        x0, x1, y0, y1 = self._limits()

        def sx(v: float) -> float:
            return m + (v - x0) / (x1 - x0) * (w - 2 * m)

        def sy(v: float) -> float:
            return h - m - (v - y0) / (y1 - y0) * (h - 2 * m)

        parts: list[str] = []
        parts.append(
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" '
            f'viewBox="0 0 {w} {h}" font-family="sans-serif" font-size="12">'
        )
        parts.append(f'<rect width="{w}" height="{h}" fill="white"/>')
        parts.append(
            f'<text x="{w / 2}" y="20" text-anchor="middle" font-size="14" '
            f'font-weight="bold">{self.title}</text>'
        )

        # Axes + ticks + grid.
        parts.append(
            f'<line x1="{m}" y1="{h - m}" x2="{w - m}" y2="{h - m}" stroke="#333"/>'
        )
        parts.append(f'<line x1="{m}" y1="{m}" x2="{m}" y2="{h - m}" stroke="#333"/>')
        for tv in self._ticks(x0, x1):
            px = sx(tv)
            parts.append(
                f'<line x1="{px:.1f}" y1="{h - m}" x2="{px:.1f}" y2="{h - m + 4}" stroke="#333"/>'
            )
            parts.append(
                f'<text x="{px:.1f}" y="{h - m + 18}" text-anchor="middle">{tv:g}</text>'
            )
        for tv in self._ticks(y0, y1):
            py = sy(tv)
            parts.append(
                f'<line x1="{m - 4}" y1="{py:.1f}" x2="{m}" y2="{py:.1f}" stroke="#333"/>'
            )
            parts.append(
                f'<line x1="{m}" y1="{py:.1f}" x2="{w - m}" y2="{py:.1f}" '
                f'stroke="#ddd" stroke-dasharray="3,3"/>'
            )
            parts.append(
                f'<text x="{m - 8}" y="{py + 4:.1f}" text-anchor="end">{tv:g}</text>'
            )
        parts.append(
            f'<text x="{w / 2}" y="{h - 12}" text-anchor="middle">{self.x_label}</text>'
        )
        parts.append(
            f'<text x="16" y="{h / 2}" text-anchor="middle" '
            f'transform="rotate(-90 16 {h / 2})">{self.y_label}</text>'
        )

        # Series.
        for s in self.series:
            if s.mode == "line":
                pts = " ".join(
                    f"{sx(xv):.1f},{sy(yv):.1f}" for xv, yv in zip(s.x, s.y)
                )
                parts.append(
                    f'<polyline points="{pts}" fill="none" stroke="{s.color}" '
                    f'stroke-width="1.5"/>'
                )
            else:
                for xv, yv in zip(s.x, s.y):
                    parts.append(
                        f'<circle cx="{sx(xv):.1f}" cy="{sy(yv):.1f}" r="2.4" '
                        f'fill="{s.color}" fill-opacity="0.65"/>'
                    )

        # Legend (top-right, one row per series).
        lx = w - m - 170
        ly = m + 6
        for i, s in enumerate(self.series):
            yy = ly + i * 17
            parts.append(
                f'<line x1="{lx}" y1="{yy}" x2="{lx + 22}" y2="{yy}" '
                f'stroke="{s.color}" stroke-width="3"/>'
            )
            parts.append(f'<text x="{lx + 28}" y="{yy + 4}">{s.label}</text>')

        parts.append("</svg>")
        return "\n".join(parts)

    def save(self, path: str | Path) -> Path:
        p = Path(path)
        p.write_text(self.render())
        return p


def export_svg(
    ctx: ExperimentContext,
    out_dir: str | Path,
    n_frames_fig3: int = 400,
    n_frames_fig7: int = 200,
) -> list[Path]:
    """Render Fig. 3, Fig. 6 and Fig. 7 as SVG files."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []

    r3 = fig3.run(ctx, n_frames=n_frames_fig3)
    chart = LineChart(
        title="Fig. 3 - RDG FULL computation time",
        x_label="frame",
        y_label="computation time (ms)",
    )
    frames = np.arange(len(r3["series"]))
    chart.add("Ridge detection", frames, r3["series"])
    chart.add("LPF (EWMA)", frames, r3["lpf"])
    chart.add("HPF (residual + mean)", frames, r3["hpf"] + r3["series"].mean())
    written.append(chart.save(out / "fig3.svg"))

    r6 = fig6.run(ctx)
    chart = LineChart(
        title="Fig. 6 - effective latency vs ROI size",
        x_label="ROI size (Kpixels, native)",
        y_label="effective latency (ms)",
    )
    chart.add("serial", r6["roi_kpixels"], r6["serial_ms"], mode="dots")
    chart.add("2-stripe parallel", r6["roi_kpixels"], r6["striped_ms"], mode="dots")
    slope, icpt = r6["serial_fit"]
    xs = np.linspace(r6["roi_kpixels"].min(), r6["roi_kpixels"].max(), 32)
    chart.add("linear fit (serial)", xs, slope * xs + icpt)
    written.append(chart.save(out / "fig6.svg"))

    r7 = fig7.run(ctx, n_frames=n_frames_fig7)
    chart = LineChart(
        title="Fig. 7 - prediction model vs actual computation time",
        x_label="frame",
        y_label="effective latency (ms)",
    )
    sw = r7["straightforward"].latency()
    frames = np.arange(len(sw))
    chart.add("straightforward mapping", frames, sw)
    chart.add("semi-auto parallel (output)", frames, r7["managed"].output_latency())
    chart.add("prediction model", frames, r7["predicted"])
    written.append(chart.save(out / "fig7.svg"))

    return written
