"""Table 2 reproduction: RDG Markov transition matrix + model summary.

(a) The paper prints a 10-state transition matrix for the
ridge-detection task, estimated from the training corpus with
adaptive equal-mass quantization (Section 4).  We reproduce the
construction on our profiled RDG series -- the state count follows
the ``2M = 2 C_max/sigma_C`` rule, so it need not be exactly 10 --
and verify its structural properties (row-stochastic, diagonally
dominant tendency, heavier mass near the diagonal).

(b) The per-task model summary of Table 2(b).
"""

from __future__ import annotations

import numpy as np

from repro.core.computation import EwmaMarkovPredictor, PAPER_EWMA_ALPHA
from repro.core.markov import MarkovChain
from repro.experiments.common import ExperimentContext

__all__ = ["run", "PAPER_TABLE2B", "rdg_markov_chain"]

#: Table 2(b) verbatim: task -> prediction model.
PAPER_TABLE2B: dict[str, str] = {
    "RDG_FULL": "<Eq. 1> + Markov",
    "RDG_ROI": "<Eq. 3> + Markov",
    "MKX": "2.5 ms",
    "CPLS_SEL": "<Eq. 1> + Markov",
    "REG": "2 ms",
    "ROI_EST": "1 ms",
    "GW_EXT": "<Eq. 1> + Markov",
    "ENH": "24 ms",
    "ZOOM": "12.5 ms",
}


def rdg_markov_chain(ctx: ExperimentContext, task: str = "RDG_ROI") -> MarkovChain:
    """Build the RDG Markov chain the way Section 4 describes.

    The chain is estimated on the short-term residuals after the
    long-term component is removed (EWMA for RDG FULL, the ROI linear
    growth for RDG ROI); the state space uses the adaptive equal-mass
    quantizer with the 2M rule.
    """
    series = ctx.traces.task_series(task)
    residuals = [
        EwmaMarkovPredictor.causal_residuals(s, PAPER_EWMA_ALPHA)
        for s in series
        if s.size >= 3
    ]
    residuals = [r for r in residuals if r.size >= 2]
    if not residuals:
        raise RuntimeError(f"no usable {task} series in the traces")
    return MarkovChain.fit(residuals)


def run(ctx: ExperimentContext) -> dict:
    """Produce Table 2(a) and 2(b)."""
    chain = rdg_markov_chain(ctx)
    t = chain.transition
    n = chain.n_states

    lines = ["Table 2(a) -- RDG Markov transition matrix", ""]
    lines.append(f"states: {n} (paper: 10; rule: ~2*C_max/sigma)")
    header = "      " + " ".join(f"s{j:<4d}" for j in range(n))
    lines.append(header)
    for i in range(n):
        row = " ".join(f"{t[i, j]:.2f}" for j in range(n))
        lines.append(f"s{i:<4d} {row}")

    # Structural diagnostics mirroring the paper's matrix shape.
    diag_heavy = float(np.mean(np.argmax(t, axis=1) == np.arange(n)))
    corner_persist = float((t[0, 0] + t[-1, -1]) / 2.0)
    lines.append("")
    lines.append(
        f"rows argmax on diagonal: {diag_heavy * 100:.0f}% ; corner "
        f"self-transition mean {corner_persist:.2f} (paper: s0->s0 0.51, "
        f"s9->s9 0.60)"
    )

    model = ctx.model
    lines.append("")
    lines.append("Table 2(b) -- model summary")
    lines.append(f"{'task':14s} {'ours':24s} {'paper':s}")
    summary = dict(model.computation.summary())
    for task, paper_model in PAPER_TABLE2B.items():
        if task == "MKX":
            ours = summary.get("MKX_FULL", summary.get("MKX_ROI", "-"))
            mean = model.computation.train_mean_ms.get(
                "MKX_FULL", model.computation.train_mean_ms.get("MKX_ROI", 0.0)
            )
        else:
            ours = summary.get(task, "-")
            mean = model.computation.train_mean_ms.get(task, 0.0)
        if ours == "constant":
            ours = f"constant ({mean:.1f} ms)"
        lines.append(f"{task:14s} {ours:24s} {paper_model}")

    return {
        "chain": chain,
        "transition": t,
        "n_states": n,
        "diag_heavy": diag_heavy,
        "summary": model.computation.summary(),
        "text": "\n".join(lines),
    }
