"""Consolidated ablation report (design-choice justification).

Runs every ablation of :mod:`repro.experiments.ablation` and formats
one report: EWMA alpha, Markov state count, quantization scheme,
predictor classes, higher-order sparsity, N-stripe scaling, partition
policy and scenario awareness.
"""

from __future__ import annotations

from repro.experiments.ablation import (
    alpha_sweep,
    conditioning_comparison,
    held_out_traces,
    order2_sparsity,
    order_comparison,
    partition_policy_comparison,
    predictor_comparison,
    quantization_comparison,
    scenario_awareness_comparison,
    state_factor_sweep,
    stripe_scaling,
)
from repro.experiments.common import ExperimentContext

__all__ = ["run"]


def run(ctx: ExperimentContext) -> dict:
    """Execute all ablations; returns their raw results + a report."""
    test = held_out_traces(ctx)
    lines: list[str] = ["Ablations of Triple-C design choices", ""]

    alphas = alpha_sweep(ctx.traces, test, "RDG_ROI")
    lines.append("EWMA alpha (Eq. 1), RDG ROI held-out accuracy:")
    lines.append("  " + "  ".join(f"a={a:.2f}:{r.mean_accuracy * 100:.1f}%" for a, r in alphas))

    factors = state_factor_sweep(ctx.traces, test, "CPLS_SEL")
    lines.append("state-count factor (paper: ~2M), CPLS SEL:")
    lines.append(
        "  " + "  ".join(f"{f:.1f}x->{n}st:{r.mean_accuracy * 100:.1f}%" for f, n, r in factors)
    )

    quant = quantization_comparison(ctx.traces, test, "RDG_ROI")
    lines.append("quantization (RDG ROI): " + "  ".join(
        f"{k}:{v.mean_accuracy * 100:.1f}%" for k, v in quant.items()
    ))

    preds = predictor_comparison(ctx.traces, test, "RDG_ROI")
    lines.append("predictor classes (RDG ROI): " + "  ".join(
        f"{k}:{v.mean_accuracy * 100:.1f}%" for k, v in preds.items()
    ))

    sparsity = order2_sparsity(ctx.traces, "CPLS_SEL")
    lines.append(
        f"order-2 sparsity: row coverage "
        f"{sparsity['order1_row_coverage'] * 100:.0f}% -> "
        f"{sparsity['order2_row_coverage'] * 100:.0f}%, samples/row "
        f"{sparsity['order1_samples_per_row']:.1f} -> "
        f"{sparsity['order2_samples_per_row']:.1f} "
        f"(the paper's case against higher orders)"
    )

    stripes = stripe_scaling(ctx)
    lines.append("N-stripe scaling of RDG FULL (speedup@efficiency):")
    lines.append("  " + "  ".join(
        f"{p.parts}:{p.speedup:.2f}@{p.efficiency:.2f}" for p in stripes
    ))

    policy = partition_policy_comparison(ctx, n_frames=120)
    lines.append("partition policy (violations / latency max):")
    for name, stats in policy.items():
        lines.append(
            f"  {name:12s} {stats['violation_rate'] * 100:5.1f}% / "
            f"{stats['latency_max']:6.1f} ms (cores {stats['mean_cores']:.2f})"
        )

    scen = scenario_awareness_comparison(ctx, test=test)
    lines.append("scenario-based vs oblivious frame prediction:")
    for name, rep in scen.items():
        lines.append(
            f"  {name:16s} mean {rep.mean_accuracy * 100:5.1f}%  "
            f"excursions {rep.excursion_fraction * 100:4.1f}%"
        )

    orders = order_comparison(ctx.traces, test, "CPLS_SEL")
    lines.append("Markov order (CPLS SEL): " + "  ".join(
        f"{k}:{v.mean_accuracy * 100:.1f}%" for k, v in orders.items()
    ))

    cond = conditioning_comparison(ctx.traces, test, "CPLS_SEL")
    lines.append("granularity conditioning (CPLS SEL): " + "  ".join(
        f"{k}:{v.mean_accuracy * 100:.1f}%" for k, v in cond.items()
    ))

    return {
        "orders": orders,
        "conditioning": cond,
        "alpha": alphas,
        "state_factors": factors,
        "quantization": quant,
        "predictors": preds,
        "order2": sparsity,
        "stripes": stripes,
        "policy": policy,
        "scenario": scen,
        "text": "\n".join(lines),
    }
