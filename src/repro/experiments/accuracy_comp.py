"""Section 7 reproduction: computation-time prediction accuracy.

"For the test sequences, an average prediction accuracy of 97 % is
reached with sporadic excursions of the prediction error up to
20-30 %."

Held-out evaluation: the model trains on the corpus traces, then runs
the strict predict-then-observe loop over fresh test sequences (seeds
disjoint from the corpus).  Accuracy is evaluated at frame level
(sum of active tasks) and per task.
"""

from __future__ import annotations

import numpy as np

from repro.core import prediction_accuracy
from repro.experiments.common import ExperimentContext, make_pipeline
from repro.runtime import FrameEngine, StaticSerialPolicy
from repro.synthetic.sequence import SequenceConfig, XRaySequence

__all__ = ["run", "PAPER_ACCURACY"]

#: Paper headline: 97 % average, excursions up to 20-30 %.
PAPER_ACCURACY = {"mean": 0.97, "excursion_band": (0.20, 0.30)}

#: Held-out test sequences (seeds disjoint from the training corpus).
TEST_SEEDS = (1001, 2002, 3003, 4004)


def run(ctx: ExperimentContext, n_frames: int = 120, warmup: int = 3) -> dict:
    """Evaluate frame-level and per-task prediction accuracy."""
    model = ctx.fresh_model()
    # The engine's StaticSerialPolicy with a model runs exactly the
    # strict predict-then-observe protocol this evaluation needs: one
    # serial frame per prediction, observations fed back in order.
    engine = FrameEngine(
        ctx.profile_config.make_simulator(), StaticSerialPolicy(model=model)
    )

    n_scored = len(TEST_SEEDS) * max(0, n_frames - warmup)
    frame_pred = np.empty(n_scored)
    frame_meas = np.empty(n_scored)
    scored = 0
    # Per-frame (predicted, measured) task dicts; the per-task series
    # are assembled vectorized after the (inherently sequential)
    # predict-then-observe loop.
    frame_tasks: list[tuple[dict[str, float], dict[str, float]]] = []

    for seed in TEST_SEEDS:
        # One visibility dip per sequence: the tracking occasionally
        # breaks (exercising the switches) but most frames register,
        # matching the paper's clinically usable test sequences.
        seq = XRaySequence(
            SequenceConfig(
                n_frames=n_frames,
                seed=seed,
                visibility_dips=1,
                clutter_level=0.8,
                injection_frame=20,
            )
        )
        result = engine.run(seq, make_pipeline(seq), seq_key=seed)
        for log in result.frames:
            if log.index >= warmup:
                frame_pred[scored] = log.predicted_ms
                frame_meas[scored] = log.serial_ms
                scored += 1
                frame_tasks.append((dict(log.predicted_task_ms), dict(log.task_ms)))

    frame_rep = prediction_accuracy(frame_pred[:scored], frame_meas[:scored])
    all_tasks = sorted({t for p, m in frame_tasks for t in m if t in p})
    task_reps = {}
    for t in all_tasks:
        pairs = np.asarray(
            [(p[t], m[t]) for p, m in frame_tasks if t in m and t in p]
        )
        if pairs.shape[0] >= 10:
            task_reps[t] = prediction_accuracy(pairs[:, 0], pairs[:, 1])

    lines = ["Computation-time prediction accuracy (held-out)", ""]
    lines.append(
        f"frame-level: mean {frame_rep.mean_accuracy * 100:.1f}% "
        f"(paper: 97%), excursions >20%: "
        f"{frame_rep.excursion_fraction * 100:.1f}% of frames, "
        f"max error {frame_rep.max_relative_error * 100:.0f}% "
        f"(paper: sporadic 20-30%)"
    )
    lines.append("")
    lines.append(f"{'task':14s} {'mean acc':>9s} {'max err':>8s} {'n':>6s}")
    for t, rep in task_reps.items():
        lines.append(
            f"{t:14s} {rep.mean_accuracy * 100:8.1f}% "
            f"{rep.max_relative_error * 100:7.0f}% {rep.n:6d}"
        )
    return {
        "frame": frame_rep,
        "tasks": task_reps,
        "text": "\n".join(lines),
    }
