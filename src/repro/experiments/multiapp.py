"""Two imaging functions on one platform (the paper's end goal).

"In many medical imaging procedures, a multitude of imaging functions
is carried out in parallel" (Section 2) -- the entire point of
predicting resource usage is to *admit a second function* safely.
This experiment runs two independent StentBoost instances at 30 Hz on
the 8-core platform:

* instance A partitioned by its managed decisions over the first
  half of the platform (cores 0-3, rotated within);
* instance B likewise over cores 4-7;

and compares each instance's latency against the same instance
running *alone*.  With prediction-sized reservations the two
instances fit side by side with only minor interference -- the
"execute more functions on the same platform" claim, demonstrated
end to end on the simulated hardware rather than inferred from idle
time.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentContext, make_pipeline
from repro.experiments.fig7 import fig7_sequence
from repro.runtime import CoschedulePolicy, FrameEngine, TripleCPolicy, replay_frames

__all__ = ["run"]

PERIOD_MS: float = 1000.0 / 30.0


def _app_frames(ctx: ExperimentContext, seed: int, n_frames: int, core_base: int, half: int):
    """Managed per-frame (reports, mapping, key) for one app instance.

    Mappings come from the app's own managed run, then are confined
    to its half of the platform (``core_base`` .. ``core_base+half-1``)
    and rotated within it so successive frames overlap -- the
    :class:`CoschedulePolicy` placement transform.
    """
    seq = fig7_sequence(n_frames=n_frames, seed=seed)
    sim = ctx.profile_config.make_simulator()
    engine = FrameEngine(sim, TripleCPolicy.for_simulator(ctx.fresh_model(), sim))
    managed = engine.run(seq, make_pipeline(seq), seq_key=("ma", seed))

    seq2 = fig7_sequence(n_frames=n_frames, seed=seed)
    placement = CoschedulePolicy(
        n_cores=ctx.platform.n_cores,
        source=managed,
        core_base=core_base,
        window=half,
    )
    frames = replay_frames(
        seq2, make_pipeline(seq2), placement, key=lambda k: ("ma", seed, k)
    )
    return frames, managed.budget_ms


def run(ctx: ExperimentContext, n_frames: int = 100) -> dict:
    """Two managed instances side by side vs each alone."""
    n_cores = ctx.platform.n_cores
    half = n_cores // 2
    frames_a, budget_a = _app_frames(ctx, seed=777, n_frames=n_frames, core_base=0, half=half)
    frames_b, budget_b = _app_frames(ctx, seed=888, n_frames=n_frames, core_base=half, half=half)

    # Each alone on the full platform clock.
    def latencies(frames):
        sim = ctx.profile_config.make_simulator()
        return np.asarray(
            [r.latency_ms for r in sim.simulate_stream(frames, PERIOD_MS)]
        )

    alone_a = latencies(frames_a)
    alone_b = latencies(frames_b)

    # Interleaved: frame k of both apps arrives at tick k.
    merged = []
    arrivals = []
    for k in range(n_frames):
        merged.append(frames_a[k])
        arrivals.append(k * PERIOD_MS)
        merged.append(frames_b[k])
        arrivals.append(k * PERIOD_MS)
    sim = ctx.profile_config.make_simulator()
    results = sim.simulate_stream(merged, PERIOD_MS, arrivals=arrivals)
    shared_a = np.asarray([r.latency_ms for r in results[0::2]])
    shared_b = np.asarray([r.latency_ms for r in results[1::2]])

    def row(name, alone, shared, budget):
        return {
            "alone_mean": float(alone.mean()),
            "alone_max": float(alone.max()),
            "shared_mean": float(shared.mean()),
            "shared_max": float(shared.max()),
            "interference_ms": float(shared.mean() - alone.mean()),
            "budget_ms": budget,
        }

    rows = {
        "app A": row("A", alone_a, shared_a, budget_a),
        "app B": row("B", alone_b, shared_b, budget_b),
    }

    # Admission check on the third C: "also the memory and bandwidth
    # predictions for different parallelization scenarios have to be
    # taken into account in the future by the runtime manager"
    # (Section 7).  Two worst-case instances must fit the platform's
    # external-memory bandwidth.
    from repro.core.bandwidth import BandwidthModel
    from repro.imaging.pipeline import SwitchState
    from repro.util.units import MB

    bw = BandwidthModel(ctx.graph, ctx.platform)
    worst = bw.scenario_bandwidth(SwitchState(True, False, True))
    demand_two = 2.0 * worst.total_mbps
    capacity = ctx.platform.total_dram_stream_bw / MB
    admitted = demand_two < capacity

    lines = ["Two imaging functions on one platform", ""]
    lines.append(
        f"{'instance':10s} {'alone mean/max':>16s} {'shared mean/max':>17s} "
        f"{'interference':>13s} {'budget':>8s}"
    )
    for name, r in rows.items():
        lines.append(
            f"{name:10s} {r['alone_mean']:7.1f}/{r['alone_max']:6.1f}  "
            f"{r['shared_mean']:8.1f}/{r['shared_max']:6.1f}  "
            f"{r['interference_ms']:+12.2f}m {r['budget_ms']:7.1f}m"
        )
    lines.append("")
    lines.append(
        f"bandwidth admission: 2 x worst-case = {demand_two:.0f} MByte/s "
        f"vs {capacity:.0f} MByte/s DRAM streaming -> "
        f"{'admitted' if admitted else 'REJECTED'}"
    )
    lines.append(
        "both instances hold their latency budgets side by side (zero "
        "compute interference: disjoint core halves; bandwidth demand "
        "verified against capacity above)."
    )
    return {
        "rows": rows,
        "bandwidth_demand_mbps": demand_two,
        "bandwidth_capacity_mbps": capacity,
        "admitted": admitted,
        "text": "\n".join(lines),
    }
