"""Reproduction harness: one module per paper table/figure.

==================  =============================================
Module              Paper artefact
==================  =============================================
``fig2``            Flow graph + inter-task bandwidth labels
``fig3``            RDG FULL computation time + HPF/LPF split
``fig4``            Platform model parameters
``fig5``            Intra-task cache occupancy of RDG FULL
``fig6``            Effective latency vs ROI size (serial / 2-stripe)
``fig7``            Latency control: straightforward vs Triple-C
``table1``          Per-task memory requirements
``table2``          RDG Markov transition matrix + model summary
``accuracy_comp``   97 % computation-time prediction accuracy
``accuracy_bw``     90 % bandwidth/cache prediction accuracy
``coschedule``      "More functions on the same platform"
==================  =============================================

Every module exposes ``run(ctx) -> dict`` returning the measured
quantities plus a ``text`` rendering; ``python -m repro.experiments``
runs them all.  Shared training state (corpus, traces, fitted model)
lives in :class:`~repro.experiments.common.ExperimentContext` and is
cached on disk, so repeated runs are fast.
"""

from repro.experiments.common import ExperimentContext, default_context

__all__ = ["ExperimentContext", "default_context"]
