"""Run every reproduction experiment and print the results.

Usage::

    python -m repro.experiments            # all experiments
    python -m repro.experiments fig7       # one experiment
    REPRO_FAST=1 python -m repro.experiments   # small corpus
    REPRO_OBS_DIR=obs-out python -m repro.experiments fig7
        # also dump trace.jsonl + metrics.prom into obs-out/
"""

from __future__ import annotations

import sys

import repro.obs as obs
from repro.experiments import default_context
from repro.experiments import (  # noqa: F401 (registry below)
    ablations_report,
    acf_report,
    accuracy_bw,
    accuracy_comp,
    coschedule,
    fig2,
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    multiapp,
    table1,
    table2,
    throughput,
)

EXPERIMENTS = {
    "fig2": fig2,
    "fig3": fig3,
    "fig4": fig4,
    "fig5": fig5,
    "fig6": fig6,
    "fig7": fig7,
    "table1": table1,
    "table2": table2,
    "accuracy_comp": accuracy_comp,
    "accuracy_bw": accuracy_bw,
    "coschedule": coschedule,
    "throughput": throughput,
    "multiapp": multiapp,
    "acf": acf_report,
    "ablations": ablations_report,
}


def main(argv: list[str]) -> int:
    names = argv or list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}; known: {list(EXPERIMENTS)}")
        return 2
    obs_dir = obs.maybe_enable_from_env()
    o = obs.get_obs()
    ctx = default_context()
    for name in names:
        t0 = obs.monotonic_s()
        with o.tracer.span("experiment") as sp:
            if o.enabled:
                sp.set(name=name)
            result = EXPERIMENTS[name].run(ctx)
        dt = obs.monotonic_s() - t0
        print("=" * 72)
        print(f"[{name}]  ({dt:.1f} s)")
        print("=" * 72)
        print(result["text"])
        print()
    if obs_dir is not None:
        handle = obs.disable()
        if handle is not None:
            trace_path, prom_path = obs.dump(handle, obs_dir)
            print(f"observability: {trace_path} + {prom_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
