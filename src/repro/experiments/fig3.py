"""Fig. 3 reproduction: RDG FULL computation time and its EWMA split.

The paper plots ~1,750 frames of ridge-detection computation time in
the 35-55 ms band, decomposed into the EWMA low-pass trend and the
high-pass residual the Markov chain models, and validates Markov
applicability via the exponentially decaying autocorrelation.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentContext
from repro.imaging.pipeline import PipelineConfig, StentBoostPipeline
from repro.runtime import FrameEngine, StaticSerialPolicy
from repro.synthetic.sequence import SequenceConfig, XRaySequence
from repro.util.ewma import high_low_split
from repro.util.stats import autocorrelation, fit_exponential_decay, summarize

__all__ = ["run", "rdg_full_series"]

#: Paper's Fig. 3 band for the RDG FULL task.
PAPER_BAND_MS = (35.0, 55.0)


def rdg_full_series(
    ctx: ExperimentContext, n_frames: int = 600, seed: int = 90210
) -> np.ndarray:
    """Force a long run of RDG FULL executions and time them.

    The pipeline's full-frame mode is forced by disabling ROI
    tracking (``roi_margin_factor`` huge would still track, so we
    reset the pipeline ROI each frame instead), with clutter/contrast
    configured so the RDG switch stays on.
    """
    seq = XRaySequence(
        SequenceConfig(
            n_frames=n_frames,
            seed=seed,
            clutter_level=1.1,
            contrast_base=0.45,
            injection_frame=5,
            washout_frames=300.0,
            visibility_dips=0,
        )
    )
    pipe = StentBoostPipeline(
        PipelineConfig(
            expected_distance=seq.config.resolved_phantom().marker_separation
        )
    )
    def force_full_frame(pipeline: StentBoostPipeline) -> None:
        pipeline._roi = None  # force full-frame granularity every frame

    engine = FrameEngine(
        ctx.profile_config.make_simulator(),
        StaticSerialPolicy(frame_setup=force_full_frame),
    )
    result = engine.run(seq, pipe, seq_key="fig3")
    return np.asarray(
        [f.task_ms["RDG_FULL"] for f in result.frames if "RDG_FULL" in f.task_ms]
    )


def run(ctx: ExperimentContext, n_frames: int = 600) -> dict:
    """Produce the Fig. 3 series, its decomposition and the ACFs."""
    series = rdg_full_series(ctx, n_frames=n_frames)
    hpf, lpf = high_low_split(series, alpha=0.3)
    acf_raw = autocorrelation(series, max_lag=40)
    acf = autocorrelation(hpf, max_lag=40)
    tau_raw = fit_exponential_decay(acf_raw, lags=20)
    tau = fit_exponential_decay(acf, lags=20)
    stats = summarize(series)

    lines = ["Fig. 3 -- RDG FULL computation time", ""]
    lines.append(
        f"frames: {stats.n}; mean {stats.mean:.1f} ms; "
        f"range [{stats.minimum:.1f}, {stats.maximum:.1f}] ms "
        f"(paper band: {PAPER_BAND_MS[0]:.0f}-{PAPER_BAND_MS[1]:.0f} ms)"
    )
    lines.append(
        f"LPF (EWMA) std {np.std(lpf):.2f} ms; HPF std {np.std(hpf):.2f} ms"
    )
    lines.append(
        f"raw-series ACF decay tau = {tau_raw:.1f} frames (content "
        f"correlation the EWMA absorbs); residual tau = {tau:.1f} "
        f"(fast decay => a first-order Markov chain suffices)"
    )
    return {
        "series": series,
        "lpf": lpf,
        "hpf": hpf,
        "acf": acf,
        "acf_raw": acf_raw,
        "tau": tau,
        "tau_raw": tau_raw,
        "stats": stats,
        "text": "\n".join(lines),
    }
