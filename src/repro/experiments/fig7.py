"""Fig. 7 reproduction: latency control with Triple-C predictions.

Three runs over the same test sequence:

* **straightforward mapping** (red curve, top): static serial
  execution; latency follows the content (paper: 60-120 ms swings,
  worst-vs-average gap ~85 %);
* **Triple-C semi-automatic parallel** (yellow curve, bottom): the
  resource manager repartitions per frame from the predictions;
  completion latency flattens near the average-case budget with only
  "some small peaks" (paper: gap reduced to ~20 %, jitter ~70 %
  lower);
* **prediction model** (blue curve): the per-frame predicted serial
  time next to the measured one.
"""

from __future__ import annotations


from repro.experiments.common import ExperimentContext, make_pipeline
from repro.runtime import (
    FrameEngine,
    TripleCPolicy,
    run_straightforward,
    run_worst_case,
)
from repro.synthetic.sequence import SequenceConfig, XRaySequence
from repro.util.stats import jitter_metrics

__all__ = ["run", "fig7_sequence", "PAPER_RESULTS"]

#: Section 7 headline numbers.
PAPER_RESULTS = {
    "straightforward_worst_over_avg": 0.85,
    "managed_worst_over_avg": 0.20,
    "jitter_reduction": 0.70,
    "straightforward_range_ms": (60.0, 120.0),
}


def fig7_sequence(n_frames: int = 200, seed: int = 777) -> XRaySequence:
    """The Fig. 7 test sequence: steady tracking with content events.

    Contrast injection and clutter drive the RDG switch; a visibility
    dip forces a track loss + full-frame re-acquisition mid-sequence
    -- the events that make the straightforward latency swing.
    """
    return XRaySequence(
        SequenceConfig(
            n_frames=n_frames,
            seed=seed,
            clutter_level=0.9,
            contrast_base=0.35,
            injection_frame=40,
            visibility_dips=1,
        )
    )


def run(ctx: ExperimentContext, n_frames: int = 200) -> dict:
    """Run all three curves and compute the comparison metrics."""
    seq = fig7_sequence(n_frames=n_frames)

    sw = run_straightforward(
        seq, make_pipeline(seq), ctx.profile_config.make_simulator(), seq_key="sw"
    )
    sim = ctx.profile_config.make_simulator()
    engine = FrameEngine(sim, TripleCPolicy.for_simulator(ctx.fresh_model(), sim))
    mg = engine.run(seq, make_pipeline(seq), seq_key="mg")
    worst_budget = float(sw.latency().max()) * 1.05
    wc = run_worst_case(
        seq,
        make_pipeline(seq),
        ctx.profile_config.make_simulator(),
        worst_case_ms=worst_budget,
        seq_key="wc",
    )

    j_sw = jitter_metrics(sw.latency())
    j_mg = jitter_metrics(mg.latency())
    j_out = jitter_metrics(mg.output_latency())
    j_wc = jitter_metrics(wc.output_latency())

    # Prediction-vs-measured on the managed run's serial times.
    pred = mg.predicted()
    meas = mg.serial_latency()

    jitter_reduction = 1.0 - (j_out.std / j_sw.std) if j_sw.std > 0 else 0.0

    lines = ["Fig. 7 -- latency: straightforward vs Triple-C managed", ""]
    lines.append(f"{'run':28s} {'mean':>7s} {'std':>6s} {'p2p':>7s} {'worst/avg':>10s}")

    def row(label: str, j) -> None:
        lines.append(
            f"{label:28s} {j.mean:7.1f} {j.std:6.2f} {j.peak_to_peak:7.1f} "
            f"{j.worst_over_avg * 100:9.1f}%"
        )

    row("straightforward", j_sw)
    row("managed (completion)", j_mg)
    row("managed (output)", j_out)
    row("worst-case reservation", j_wc)
    lines.append("")
    lines.append(
        f"paper: straightforward 60-120 ms, worst/avg 85% -> 20%, "
        f"jitter -70%"
    )
    lines.append(
        f"ours:  straightforward [{sw.latency().min():.0f}, "
        f"{sw.latency().max():.0f}] ms; worst/avg "
        f"{j_sw.worst_over_avg * 100:.0f}% -> {j_mg.worst_over_avg * 100:.0f}% "
        f"(completion); output jitter -{jitter_reduction * 100:.0f}%"
    )
    lines.append(
        f"managed budget {mg.budget_ms:.1f} ms; scenario hit rate "
        f"{mg.scenario_hit_rate():.2f}; mean cores used {mg.mean_cores_used():.2f}"
    )
    return {
        "straightforward": sw,
        "managed": mg,
        "worst_case": wc,
        "jitter": {
            "straightforward": j_sw,
            "managed_completion": j_mg,
            "managed_output": j_out,
            "worst_case_output": j_wc,
        },
        "jitter_reduction": jitter_reduction,
        "predicted": pred,
        "measured_serial": meas,
        "text": "\n".join(lines),
    }
