"""Ablations of Triple-C's design choices.

The paper fixes several design parameters by experiment ("we have
experimentally evolved to a model with approximately 2M states",
equal-mass quantization, first-order chains, EWMA filtering).  These
helpers re-run those decisions on our traces so each choice can be
justified quantitatively:

* :func:`alpha_sweep` -- EWMA smoothing factor (Eq. 1);
* :func:`state_factor_sweep` -- M vs 2M vs 4M state counts;
* :func:`quantization_comparison` -- equal-mass vs equal-width bins;
* :func:`predictor_comparison` -- constant / last-value / pure Markov
  / EWMA+Markov, plus the order-2 sparsity diagnostic;
* :func:`order_comparison` -- order-1 vs order-2 accuracy (the
  sparsity penalty the paper predicts);
* :func:`conditioning_comparison` -- pooled vs granularity-conditioned
  task predictors (the title's "scenario-based" at task level);
* :func:`stripe_scaling` -- N-way data partitioning beyond the
  paper's 2-stripe case (extension);
* :func:`partition_policy_comparison` -- robust multi-scenario vs
  most-likely-only repartitioning;
* :func:`scenario_awareness_comparison` -- scenario-based vs pooled
  frame-time prediction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np
from numpy.typing import NDArray

from repro.core.accuracy import AccuracyReport, prediction_accuracy
from repro.core.computation import (
    ConstantPredictor,
    EwmaMarkovPredictor,
    LastValuePredictor,
    MarkovPredictor,
    PredictionContext,
    TaskTimePredictor,
    predict_series_loop,
)
from repro.core.markov import AdaptiveQuantizer, MarkovChain, MarkovChain2
from repro.experiments.common import ExperimentContext, make_pipeline
from repro.profiling import ProfileConfig, TraceSet, profile_corpus
from repro.runtime import ResourceManager
from repro.runtime.partition import Partitioner
from repro.synthetic import CorpusSpec, generate_corpus

__all__ = [
    "walk_forward_accuracy",
    "alpha_sweep",
    "state_factor_sweep",
    "quantization_comparison",
    "predictor_comparison",
    "order2_sparsity",
    "order_comparison",
    "Order2Predictor",
    "stripe_scaling",
    "partition_policy_comparison",
    "scenario_awareness_comparison",
    "held_out_traces",
]

def held_out_traces(ctx: ExperimentContext, n_sequences: int = 6) -> TraceSet:
    """Profile a disjoint-seed test corpus for ablation evaluation."""
    spec = CorpusSpec(
        n_sequences=n_sequences,
        total_frames=n_sequences * 70,
        base_seed=ctx.corpus_spec.base_seed + 4242,
    )
    return profile_corpus(
        generate_corpus(spec),
        ProfileConfig(
            platform=ctx.platform,
            pixel_scale=ctx.profile_config.pixel_scale,
            seed=ctx.profile_config.seed + 7,
        ),
    )


def walk_forward_accuracy(
    predictor: TaskTimePredictor,
    test_series: Sequence[NDArray[np.float64]],
    warmup: int = 2,
) -> AccuracyReport:
    """Strict predict-then-observe evaluation over held-out series.

    The predictor is reset at each series boundary (sequence change),
    and the first ``warmup`` frames of each series are excluded from
    scoring (state fill-in).
    """
    batch = getattr(predictor, "predict_series", None)
    pred_parts: list[NDArray[np.float64]] = []
    actual_parts: list[NDArray[np.float64]] = []
    for series in test_series:
        x = np.asarray(series, dtype=np.float64)
        if batch is not None:
            p = np.asarray(batch(x), dtype=np.float64)
        else:
            p = predict_series_loop(predictor, x)
        pred_parts.append(p[warmup:])
        actual_parts.append(x[warmup:])
    preds = np.concatenate(pred_parts) if pred_parts else np.empty(0)
    if preds.size == 0:
        raise ValueError("test series too short for the warmup")
    return prediction_accuracy(preds, np.concatenate(actual_parts))


def alpha_sweep(
    train: TraceSet,
    test: TraceSet,
    task: str = "RDG_FULL",
    alphas: Sequence[float] = (0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9),
) -> list[tuple[float, AccuracyReport]]:
    """Accuracy of the EWMA+Markov predictor across alpha (Eq. 1)."""
    train_series = train.task_series(task)
    test_series = test.task_series(task)
    out = []
    for alpha in alphas:
        p = EwmaMarkovPredictor.fit(train_series, alpha=alpha)
        out.append((float(alpha), walk_forward_accuracy(p, test_series)))
    return out


def state_factor_sweep(
    train: TraceSet,
    test: TraceSet,
    task: str = "CPLS_SEL",
    factors: Sequence[float] = (0.5, 1.0, 2.0, 4.0),
) -> list[tuple[float, int, AccuracyReport]]:
    """Accuracy vs the state-count refinement factor (paper: ~2M).

    Returns (factor, n_states, report) rows for a pure Markov
    predictor over the task's raw times.
    """
    train_series = train.task_series(task)
    test_series = test.task_series(task)
    all_values = np.concatenate([np.asarray(s) for s in train_series])
    out = []
    for factor in factors:
        q = AdaptiveQuantizer.fit(all_values, states_factor=factor)
        chain = MarkovChain.fit(train_series, quantizer=q)
        p = MarkovPredictor(chain)
        out.append((float(factor), q.n_states, walk_forward_accuracy(p, test_series)))
    return out


def quantization_comparison(
    train: TraceSet,
    test: TraceSet,
    task: str = "CPLS_SEL",
    n_states: int = 10,
) -> dict[str, AccuracyReport]:
    """Equal-mass (the paper's choice) vs equal-width intervals."""
    train_series = train.task_series(task)
    test_series = test.task_series(task)
    all_values = np.concatenate([np.asarray(s) for s in train_series])
    out: dict[str, AccuracyReport] = {}
    for name, equal_mass in (("equal-mass", True), ("equal-width", False)):
        q = AdaptiveQuantizer.fit(all_values, n_states=n_states, equal_mass=equal_mass)
        chain = MarkovChain.fit(train_series, quantizer=q)
        out[name] = walk_forward_accuracy(MarkovPredictor(chain), test_series)
    return out


def predictor_comparison(
    train: TraceSet,
    test: TraceSet,
    task: str = "RDG_FULL",
) -> dict[str, AccuracyReport]:
    """Constant / last-value / Markov / EWMA+Markov on one task."""
    train_series = train.task_series(task)
    test_series = test.task_series(task)
    factories: dict[str, Callable[[], TaskTimePredictor]] = {
        "constant": lambda: ConstantPredictor.fit(train_series),
        "last-value": lambda: LastValuePredictor.fit(train_series),
        "markov": lambda: MarkovPredictor.fit(train_series),
        "ewma+markov": lambda: EwmaMarkovPredictor.fit(train_series),
    }
    return {
        name: walk_forward_accuracy(make(), test_series)
        for name, make in factories.items()
    }


class Order2Predictor:
    """Second-order Markov predictor (ablation only).

    Exists to measure, in accuracy terms, the sparsity penalty that
    made the paper reject higher-order chains.
    """

    kind = "Markov (order 2)"

    def __init__(self, chain: MarkovChain2, fallback_ms: float) -> None:
        self.chain = chain
        self._fallback = float(fallback_ms)
        self._prev: float | None = None
        self._last: float | None = None

    @staticmethod
    def fit(series: Sequence[NDArray[np.float64]]) -> "Order2Predictor":
        values = np.concatenate([np.asarray(s) for s in series])
        return Order2Predictor(MarkovChain2.fit(series), float(values.mean()))

    def predict(self, ctx: PredictionContext) -> float:  # noqa: ARG002
        if self._prev is None or self._last is None:
            return self._fallback
        return max(1e-3, self.chain.predict_next(self._prev, self._last))

    def predict_series(
        self,
        values: NDArray[np.float64],
        roi_kpixels: NDArray[np.float64] | None = None,  # noqa: ARG002
    ) -> NDArray[np.float64]:
        """Batch walk-forward predictions (predict-then-observe)."""
        x = np.asarray(values, dtype=np.float64)
        out = np.full(x.size, self._fallback, dtype=np.float64)
        if x.size > 2:
            expected = self.chain.expected_next_values()
            i = self.chain.quantizer.states(x[:-2])
            j = self.chain.quantizer.states(x[1:-1])
            out[2:] = np.maximum(1e-3, expected[i, j])
        return out

    def observe(self, ms: float, ctx: PredictionContext) -> None:  # noqa: ARG002
        self._prev, self._last = self._last, float(ms)

    def reset(self) -> None:
        self._prev = None
        self._last = None


def order_comparison(
    train: TraceSet,
    test: TraceSet,
    task: str = "CPLS_SEL",
) -> dict[str, AccuracyReport]:
    """Order-1 vs order-2 Markov accuracy on held-out series.

    The paper's expectation: despite its larger context, the order-2
    chain does *not* win, because its per-context sample counts are
    too small for reliable estimates ("the number of samples for each
    estimate is very small, even for long data sets").
    """
    train_series = train.task_series(task)
    test_series = test.task_series(task)
    return {
        "order-1": walk_forward_accuracy(
            MarkovPredictor.fit(train_series), test_series
        ),
        "order-2": walk_forward_accuracy(
            Order2Predictor.fit(train_series), test_series
        ),
    }


def order2_sparsity(train: TraceSet, task: str = "CPLS_SEL") -> dict[str, float]:
    """The paper's case against higher-order chains, quantified.

    Returns the fraction of order-2 context rows ever observed and the
    mean samples per observed row, next to the order-1 equivalents.
    """
    series = train.task_series(task)
    all_values = np.concatenate([np.asarray(s) for s in series])
    q = AdaptiveQuantizer.fit(all_values)
    chain1 = MarkovChain.fit(series, quantizer=q)
    chain2 = MarkovChain2.fit(series, quantizer=q)
    frac2, samples2 = chain2.occupancy()
    rows1 = chain1.counts.sum(axis=1) > 0
    samples1 = float(chain1.counts.sum() / max(rows1.sum(), 1))
    return {
        "n_states": float(q.n_states),
        "order1_row_coverage": float(rows1.mean()),
        "order1_samples_per_row": samples1,
        "order2_row_coverage": frac2,
        "order2_samples_per_row": samples2,
    }


@dataclass(frozen=True)
class StripePoint:
    """Latency of one task at one partition width."""

    parts: int
    latency_ms: float
    speedup: float
    efficiency: float


def stripe_scaling(
    ctx: ExperimentContext,
    task: str = "RDG_FULL",
    compute_ms: float = 45.0,
    max_parts: int = 8,
) -> list[StripePoint]:
    """N-way stripe scaling curve (the paper stops at 2 stripes)."""
    part = Partitioner(ctx.platform, ctx.graph, max_parts=max_parts)
    serial = part.task_latency_ms(task, compute_ms, 1)
    out = []
    for k in range(1, max_parts + 1):
        lat = part.task_latency_ms(task, compute_ms, k)
        speedup = serial / lat
        out.append(
            StripePoint(
                parts=k,
                latency_ms=lat,
                speedup=speedup,
                efficiency=speedup / k,
            )
        )
    return out


def conditioning_comparison(
    train: TraceSet,
    test: TraceSet,
    task: str = "CPLS_SEL",
) -> dict[str, AccuracyReport]:
    """Pooled vs granularity-conditioned EWMA+Markov on one task.

    The conditioning key is the ROI-mode bit -- pipeline state that a
    runtime genuinely knows before the frame executes -- so the
    comparison is deployable, not an oracle.
    """
    from repro.core.computation import ScenarioConditionedPredictor

    pooled = EwmaMarkovPredictor.fit(train.task_series(task))
    conditioned = ScenarioConditionedPredictor.fit(train, task)

    out: dict[str, AccuracyReport] = {}
    for name, predictor in (("pooled", pooled), ("conditioned", conditioned)):
        preds: list[float] = []
        actuals: list[float] = []
        prev_seq: int | None = None
        warm = 0
        for rec in test.records:
            if rec.seq != prev_seq:
                predictor.reset()
                prev_seq = rec.seq
                warm = 0
            if task not in rec.task_ms:
                continue
            ctx = PredictionContext(
                roi_kpixels=rec.roi_kpixels, scenario_id=rec.scenario_id
            )
            p = predictor.predict(ctx)
            if warm >= 2:
                preds.append(p)
                actuals.append(rec.task_ms[task])
            warm += 1
            predictor.observe(rec.task_ms[task], ctx)
        out[name] = prediction_accuracy(np.asarray(preds), np.asarray(actuals))
    return out


def scenario_awareness_comparison(
    ctx: ExperimentContext,
    train: TraceSet | None = None,
    test: TraceSet | None = None,
) -> dict[str, AccuracyReport]:
    """The title ablation: *scenario-based* vs scenario-oblivious.

    Triple-C predicts the frame time as the sum of per-task models
    over the tasks of the *predicted scenario*.  The oblivious
    alternative models the frame latency as one pooled EWMA+Markov
    series, ignoring the switch structure entirely.  Scenario switches
    change the frame time by integer multiples of whole tasks
    (ENH+ZOOM appearing/disappearing is a ~37 ms step), which a pooled
    scalar model can only chase after the fact -- this comparison
    quantifies how much the scenario table buys.
    """
    train = train or ctx.traces
    test = test or held_out_traces(ctx)

    # --- scenario-oblivious: pooled frame-latency EWMA+Markov.
    lat_train: list[NDArray[np.float64]] = []
    for seq_id in train.sequences():
        lat_train.append(
            np.asarray(
                [r.latency_ms for r in train.records if r.seq == seq_id]
            )
        )
    pooled = EwmaMarkovPredictor.fit(lat_train)
    lat_test = [
        np.asarray([r.latency_ms for r in test.records if r.seq == seq_id])
        for seq_id in test.sequences()
    ]
    oblivious = walk_forward_accuracy(pooled, lat_test)

    # --- scenario-based: the full Triple-C predict/observe loop over
    # the same held-out records.
    from repro.core.triplec import TripleC

    model = TripleC.fit(train, graph=ctx.graph, platform=ctx.platform)
    preds: list[float] = []
    actuals: list[float] = []
    prev_seq: int | None = None
    warmup_left = 0
    for rec in test.records:
        if rec.seq != prev_seq:
            model.start_sequence()
            prev_seq = rec.seq
            warmup_left = 2
        pred = model.predict(rec.roi_kpixels)
        if warmup_left == 0:
            preds.append(pred.frame_ms)
            actuals.append(sum(rec.task_ms.values()))
        else:
            warmup_left -= 1
        model.observe(rec.scenario_id, rec.task_ms, rec.roi_kpixels)
    scenario_based = prediction_accuracy(np.asarray(preds), np.asarray(actuals))

    return {"scenario-based": scenario_based, "oblivious": oblivious}


def partition_policy_comparison(
    ctx: ExperimentContext, n_frames: int = 150, seed: int = 777
) -> dict[str, dict[str, float]]:
    """Robust multi-scenario vs most-likely-only repartitioning.

    Returns per-policy budget-violation rate and completion-latency
    jitter on the Fig. 7 test sequence.
    """
    from repro.experiments.fig7 import fig7_sequence

    results: dict[str, dict[str, float]] = {}
    for policy in ("robust", "most-likely"):
        model = ctx.fresh_model()
        sim = ctx.profile_config.make_simulator()
        mgr = ResourceManager(model, sim)
        if policy == "most-likely":
            # Monkey-wire the plain chooser: collapse the plausible
            # set to the single most likely scenario.
            original = model.plausible_predictions

            def only_most_likely(roi_kpixels, p_min=0.01, _orig=original):
                preds = _orig(roi_kpixels, p_min=1.1)  # empty threshold
                return preds

            model.plausible_predictions = only_most_likely  # type: ignore[method-assign]
        seq = fig7_sequence(n_frames=n_frames, seed=seed)
        run = mgr.run_sequence(seq, make_pipeline(seq), seq_key=f"pol-{policy}")
        lat = run.latency()
        budget = run.budget_ms or 0.0
        results[policy] = {
            "budget_ms": budget,
            "violation_rate": float(np.mean(lat > budget + 1e-9)),
            "latency_std": float(np.std(lat)),
            "latency_max": float(lat.max()),
            "mean_cores": run.mean_cores_used(),
        }
    return results
