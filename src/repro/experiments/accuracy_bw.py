"""Section 7 reproduction: cache/bandwidth prediction accuracy.

"For the test sequences, an average prediction accuracy between the
analysis and measured cache-memory and communication-bandwidth usage
of 90 % is obtained."

The analytic bandwidth model predicts each profiled frame's external
memory traffic from its scenario and ROI size (Table 1 specs + the
phase-occupancy eviction model); the measurement is what the platform
simulation actually moved (work-report footprints + the streaming
re-fetch model).  The residual mismatch is structural -- analytic
phases vs executed buffers -- which is exactly the gap the paper's
90 % quantifies.
"""

from __future__ import annotations

import numpy as np

from repro.core import BandwidthModel, prediction_accuracy
from repro.experiments.common import ExperimentContext
from repro.profiling import ProfileConfig, profile_corpus
from repro.synthetic import CorpusSpec, generate_corpus

__all__ = ["run", "PAPER_ACCURACY"]

PAPER_ACCURACY = 0.90


def run(ctx: ExperimentContext, n_test_sequences: int = 6) -> dict:
    """Predicted vs measured external bandwidth on held-out traces."""
    test_spec = CorpusSpec(
        n_sequences=n_test_sequences,
        total_frames=n_test_sequences * 60,
        base_seed=ctx.corpus_spec.base_seed + 999,
    )
    test_traces = profile_corpus(
        generate_corpus(test_spec),
        ProfileConfig(
            platform=ctx.platform,
            pixel_scale=ctx.profile_config.pixel_scale,
            seed=ctx.profile_config.seed + 1,
        ),
    )

    bw = BandwidthModel(ctx.graph, ctx.platform)
    predicted = bw.predicted_trace_bytes(test_traces)
    measured = bw.measured_trace_bytes(test_traces)
    rep = prediction_accuracy(predicted, measured)

    # Scenario-level aggregate (the paper's "at a scenario level, the
    # memory resource usage is more or less constant").
    by_scen: dict[int, list[float]] = {}
    for rec, p in zip(test_traces.records, predicted):
        by_scen.setdefault(rec.scenario_id, []).append(
            p / max(rec.external_bytes, 1)
        )

    lines = ["Cache/communication-bandwidth prediction accuracy", ""]
    lines.append(
        f"per-frame external traffic: mean accuracy "
        f"{rep.mean_accuracy * 100:.1f}% (paper: 90%), median "
        f"{rep.median_accuracy * 100:.1f}%"
    )
    lines.append("")
    lines.append("predicted/measured ratio by scenario:")
    for sid in sorted(by_scen):
        ratios = np.asarray(by_scen[sid])
        lines.append(
            f"  scenario {sid}: ratio {ratios.mean():5.2f} "
            f"(n={ratios.size})"
        )
    return {
        "report": rep,
        "predicted": predicted,
        "measured": measured,
        "text": "\n".join(lines),
    }
