"""The "more functions on the same platform" experiment.

The paper's recurring motivation: accurate predictions free resources
that worst-case reservation wastes.  We quantify it by running a
divisible background function on the capacity each policy leaves
idle:

* worst-case reservation blocks all cores for the reserved span every
  frame;
* Triple-C management blocks only the cores the partitioner actually
  requested, for the frame's real span.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentContext, make_pipeline
from repro.experiments.fig7 import fig7_sequence
from repro.runtime import FrameEngine, TripleCPolicy, run_worst_case
from repro.runtime.coschedule import BackgroundFunction, coschedule

__all__ = ["run"]


def run(ctx: ExperimentContext, n_frames: int = 150) -> dict:
    """Background throughput under worst-case vs managed policies."""
    seq = fig7_sequence(n_frames=n_frames, seed=4242)

    model = ctx.fresh_model()
    sim = ctx.profile_config.make_simulator()
    policy = TripleCPolicy.for_simulator(model, sim)
    managed = FrameEngine(sim, policy).run(seq, make_pipeline(seq), seq_key="co-mg")

    # The static alternative: reserve, for *every* frame, the cores a
    # worst-case-scenario frame needs to meet the same latency budget
    # (Section 6's "task partitioning based on worst-case resource
    # usage").  The worst-case run itself executes serially inside
    # that reservation and pads with the delay line.
    from repro.imaging.pipeline import SwitchState

    worst_sid = SwitchState(True, False, True).scenario_id
    worst_tasks = {
        t: model.computation.train_mean_ms.get(t, 0.0)
        for t in ctx.graph.active_tasks(SwitchState.from_scenario_id(worst_sid))
    }
    static_decision = policy.partitioner.choose(
        worst_tasks, managed.budget_ms or 50.0
    )
    static_cores = static_decision.cores_used

    worst_budget = float(managed.serial_latency().max()) * 1.1
    reserved = run_worst_case(
        seq,
        make_pipeline(seq),
        ctx.profile_config.make_simulator(),
        worst_case_ms=worst_budget,
        seq_key="co-wc",
    )

    bg = BackgroundFunction(work_ms_per_item=5.0)
    res_mg = coschedule(managed, ctx.platform, bg)
    res_wc = coschedule(reserved, ctx.platform, bg, reserved_cores=static_cores)
    gain = (
        res_mg.items_per_second / res_wc.items_per_second
        if res_wc.items_per_second > 0
        else float("inf")
    )

    lines = ['"More functions on the same platform" (co-scheduling)', ""]
    lines.append(
        f"static worst-case reservation: {static_cores} cores pinned "
        f"every frame (to meet {managed.budget_ms:.1f} ms under the "
        f"worst-case scenario)"
    )
    lines.append(f"{'policy':26s} {'idle core-ms/frame':>19s} {'bg items/s':>11s}")
    for r in (res_wc, res_mg):
        lines.append(
            f"{r.label:26s} {r.idle_core_ms_per_frame:19.1f} "
            f"{r.items_per_second:11.1f}"
        )
    lines.append("")
    lines.append(
        f"background throughput gain of Triple-C management over "
        f"worst-case reservation: {gain:.2f}x"
    )
    return {
        "managed": res_mg,
        "worst_case": res_wc,
        "static_cores": static_cores,
        "gain": gain,
        "text": "\n".join(lines),
    }
