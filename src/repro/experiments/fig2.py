"""Fig. 2 reproduction: inter-task bandwidth labels of the flow graph.

The paper annotates the flow-graph edges with MByte/s at 1024x1024,
2 B/pixel, 30 Hz and prints rounded values (60, 150, 75, 120, 30,
15).  We derive the labels analytically from the Table 1 buffer sizes
and compare against the paper's rounding.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentContext
from repro.graph.scenarios import ALL_SCENARIOS, scenario_name
from repro.imaging.pipeline import SwitchState

__all__ = ["run", "PAPER_EDGE_LABELS"]

#: The rounded MByte/s labels readable in the paper's Fig. 2, keyed by
#: the corresponding edge of our graph.
PAPER_EDGE_LABELS: dict[tuple[str, str], float] = {
    ("INPUT", "RDG_FULL"): 60.0,
    ("RDG_FULL", "MKX_FULL_RDG"): 150.0,
    ("INPUT", "MKX_FULL"): 15.0,
    ("INPUT", "ENH"): 60.0,
    ("ENH", "ZOOM"): 30.0,
    ("ZOOM", "OUTPUT"): 120.0,
}


def run(ctx: ExperimentContext) -> dict:
    """Compute all edge labels + the per-scenario bandwidth table."""
    graph = ctx.graph
    worst = SwitchState(True, False, True)
    labels = graph.inter_task_bandwidth(worst)

    rows = []
    for edge, paper_mbps in PAPER_EDGE_LABELS.items():
        ours = labels.get(edge)
        if ours is None:
            # Edge belongs to a different scenario (plain MKX path).
            state = SwitchState(False, False, True)
            ours = graph.inter_task_bandwidth(state).get(edge, 0.0)
        rows.append((edge, ours, paper_mbps))

    scen_rows = [
        (
            sc.scenario_id,
            scenario_name(sc.state),
            graph.total_bandwidth_mbps(sc.state),
        )
        for sc in ALL_SCENARIOS
    ]

    lines = ["Fig. 2 -- inter-task bandwidth labels (MByte/s)", ""]
    lines.append(f"{'edge':34s} {'ours':>8s} {'paper':>8s}")
    for (src, dst), ours, paper in rows:
        lines.append(f"{src:>14s} -> {dst:<16s} {ours:8.1f} {paper:8.0f}")
    lines.append("")
    lines.append("Per-scenario total inter-task bandwidth:")
    for sid, name, mbps in scen_rows:
        lines.append(f"  scenario {sid} {name:14s} {mbps:8.1f} MByte/s")

    return {
        "edges": rows,
        "scenarios": scen_rows,
        "text": "\n".join(lines),
    }
