"""Per-task autocorrelation analysis (the Section 4 methodology).

"Based on computation of the autocorrelation function, we have
concluded that couples selection (CPLS SEL) and guide-wire extraction
(GW EXT) tasks can both be modeled with Markov chains.  [...]
Markov-chain prediction falls short if processing times between video
frames are correlated over a longer time period."

This experiment reruns that analysis on our profiled traces: for each
task with enough samples it reports the ACF decay constant of the raw
time series and of the EWMA residual, then classifies the task the
way Section 4 does:

* ``constant``   -- negligible variance, a fixed cost suffices;
* ``markov``     -- raw series decorrelates within a few frames;
* ``ewma+markov``-- long-range correlation in the raw series that the
  EWMA must absorb before a first-order chain applies.

The classification is then compared against the model classes
Table 2(b) assigns -- reproducing not just the paper's models but the
*procedure that selected them*.
"""

from __future__ import annotations

import numpy as np

from repro.core.computation import DEFAULT_PREDICTOR_KINDS, PAPER_EWMA_ALPHA
from repro.experiments.common import ExperimentContext
from repro.util.ewma import ewma
from repro.util.stats import autocorrelation, fit_exponential_decay

__all__ = ["run", "classify_task"]

#: Raw-series decay beyond this many frames means "long-term
#: correlation": Markov alone falls short, decouple with the EWMA.
LONG_RANGE_TAU: float = 3.0

#: Coefficient of variation under which a constant model suffices.
CONSTANT_CV: float = 0.06


def _series_stats(series_list, alpha=PAPER_EWMA_ALPHA):
    """Pooled CV + raw/residual ACF decay constants for one task."""
    values = np.concatenate([np.asarray(s) for s in series_list])
    cv = float(values.std() / max(values.mean(), 1e-12))
    taus_raw, taus_res = [], []
    for s in series_list:
        s = np.asarray(s, dtype=float)
        if s.size < 24:
            continue
        max_lag = min(30, s.size - 2)
        try:
            taus_raw.append(
                fit_exponential_decay(autocorrelation(s, max_lag), lags=12)
            )
            resid = s[1:] - ewma(s, alpha)[:-1]
            if resid.size >= 12 and resid.std() > 0:
                taus_res.append(
                    fit_exponential_decay(
                        autocorrelation(resid, min(max_lag, resid.size - 2)),
                        lags=12,
                    )
                )
        except ValueError:
            continue
    tau_raw = float(np.median(taus_raw)) if taus_raw else float("nan")
    tau_res = float(np.median(taus_res)) if taus_res else float("nan")
    return cv, tau_raw, tau_res


def classify_task(cv: float, tau_raw: float) -> str:
    """Apply the Section 4 decision procedure to one task's stats."""
    if cv < CONSTANT_CV:
        return "constant"
    if np.isnan(tau_raw) or tau_raw <= LONG_RANGE_TAU:
        return "markov-ok"
    return "ewma+markov"


#: Mapping from our classifier's labels to Table 2(b) model families,
#: used for the agreement check ("markov-ok" tasks may be modeled with
#: or without the EWMA front -- both are Markov-family models).
_COMPATIBLE = {
    "constant": {"constant"},
    "markov-ok": {"markov", "ewma+markov"},
    "ewma+markov": {"ewma+markov", "roi+markov"},
}


def run(ctx: ExperimentContext, min_samples: int = 60) -> dict:
    """ACF analysis of every profiled task + Table 2(b) agreement."""
    traces = ctx.traces
    rows = []
    agreements = []
    for task in sorted(traces.tasks()):
        series = traces.task_series(task)
        total = sum(s.size for s in series)
        if total < min_samples:
            continue
        cv, tau_raw, tau_res = _series_stats(series)
        label = classify_task(cv, tau_raw)
        assigned = DEFAULT_PREDICTOR_KINDS.get(task, "constant")
        agree = assigned in _COMPATIBLE[label]
        agreements.append(agree)
        rows.append(
            {
                "task": task,
                "n": total,
                "cv": cv,
                "tau_raw": tau_raw,
                "tau_residual": tau_res,
                "classified": label,
                "table2b": assigned,
                "agree": agree,
            }
        )

    lines = ["Section 4 methodology: per-task autocorrelation analysis", ""]
    lines.append(
        f"{'task':14s} {'n':>6s} {'CV':>6s} {'tau raw':>8s} {'tau res':>8s} "
        f"{'classified':>12s} {'Table 2b':>16s}"
    )
    for r in rows:
        mark = "" if r["agree"] else "  <-- disagrees"
        lines.append(
            f"{r['task']:14s} {r['n']:6d} {r['cv']:6.2f} "
            f"{r['tau_raw']:8.1f} {r['tau_residual']:8.1f} "
            f"{r['classified']:>12s} {r['table2b']:>16s}{mark}"
        )
    lines.append("")
    lines.append(
        f"classifier agrees with the Table 2(b) assignment on "
        f"{sum(agreements)}/{len(agreements)} tasks"
    )
    return {
        "rows": rows,
        "agreement": sum(agreements) / max(len(agreements), 1),
        "text": "\n".join(lines),
    }
