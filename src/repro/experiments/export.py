"""CSV export of the figure data series (for external plotting).

The experiment modules print tables; this module writes the
underlying *series* so the figures can be re-plotted with any tool:

* ``fig3.csv``  -- frame, rdg_full_ms, lpf_ms, hpf_ms
* ``fig6.csv``  -- roi_kpixels, serial_ms, two_stripe_ms
* ``fig7.csv``  -- frame, straightforward_ms, managed_ms,
  managed_output_ms, predicted_ms
* ``table2a.csv`` -- the RDG transition matrix
* ``acf.csv``   -- lag, raw_acf, residual_acf (Fig. 3 inset)
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.experiments import fig3, fig6, fig7, table2
from repro.experiments.common import ExperimentContext

__all__ = ["export_csv"]


def _write(path: Path, header: list[str], rows) -> None:
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(header)
        writer.writerows(rows)


def export_csv(
    ctx: ExperimentContext,
    out_dir: str | Path,
    n_frames_fig3: int = 400,
    n_frames_fig7: int = 200,
) -> list[Path]:
    """Run the figure experiments and write their series as CSV.

    Returns the list of files written.
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []

    r3 = fig3.run(ctx, n_frames=n_frames_fig3)
    p = out / "fig3.csv"
    _write(
        p,
        ["frame", "rdg_full_ms", "lpf_ms", "hpf_ms"],
        zip(range(len(r3["series"])), r3["series"], r3["lpf"], r3["hpf"]),
    )
    written.append(p)

    p = out / "acf.csv"
    _write(
        p,
        ["lag", "raw_acf", "residual_acf"],
        zip(range(len(r3["acf"])), r3["acf_raw"], r3["acf"]),
    )
    written.append(p)

    r6 = fig6.run(ctx)
    p = out / "fig6.csv"
    _write(
        p,
        ["roi_kpixels", "serial_ms", "two_stripe_ms"],
        zip(r6["roi_kpixels"], r6["serial_ms"], r6["striped_ms"]),
    )
    written.append(p)

    r7 = fig7.run(ctx, n_frames=n_frames_fig7)
    p = out / "fig7.csv"
    sw = r7["straightforward"].latency()
    mg = r7["managed"].latency()
    mo = r7["managed"].output_latency()
    pr = r7["predicted"]
    _write(
        p,
        [
            "frame",
            "straightforward_ms",
            "managed_ms",
            "managed_output_ms",
            "predicted_ms",
        ],
        zip(range(len(sw)), sw, mg, mo, pr),
    )
    written.append(p)

    r2 = table2.run(ctx)
    p = out / "table2a.csv"
    n = r2["n_states"]
    _write(
        p,
        ["state"] + [f"s{j}" for j in range(n)],
        ([f"s{i}", *row] for i, row in enumerate(r2["transition"])),
    )
    written.append(p)

    return written
