"""Table 1 reproduction: per-task memory requirements.

The graph's task specs carry the paper's Table 1 numbers verbatim;
this experiment renders them and cross-checks against the measured
buffer footprints of executed tasks (work-report buffers rescaled to
native geometry), confirming the full-frame rows while exposing the
ROI rows' data dependence (the simplification the paper notes with
"the size of the ROI only slightly impacts the memory usage").
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.core.cachemodel import table1_rows
from repro.experiments.common import ExperimentContext
from repro.graph import TABLE1_ROWS
from repro.imaging.pipeline import SwitchState
from repro.util.units import KIB

__all__ = ["run"]


def run(ctx: ExperimentContext) -> dict:
    """Render Table 1 + measured footprints from the training traces."""
    rows = table1_rows(ctx.graph)

    lines = ["Table 1 -- memory requirements per task (KB, native)", ""]
    lines.append(f"{'task':14s} {'input':>8s} {'interm.':>8s} {'output':>8s}")
    for task, in_kb, mid_kb, out_kb in rows:
        lines.append(f"{task:14s} {in_kb:8.0f} {mid_kb:8.0f} {out_kb:8.0f}")
    lines.append("")
    lines.append("paper rows (verbatim):")
    for task, sel, in_kb, mid_kb, out_kb in TABLE1_ROWS:
        sel_s = f" (RDG {sel})" if sel else ""
        lines.append(f"  {task:10s}{sel_s:10s} {in_kb:6d} {mid_kb:6d} {out_kb:6d}")

    # Measured per-task working sets from the profiled corpus are not
    # stored in traces; re-derive representative ones by scenario.
    per_scenario = defaultdict(list)
    for rec in ctx.traces.records:
        per_scenario[rec.scenario_id].append(rec.external_bytes)
    lines.append("")
    lines.append("measured external bytes/frame by scenario (mean, KB):")
    scen_ext = {}
    for sid in sorted(per_scenario):
        mean_kb = float(np.mean(per_scenario[sid])) / KIB
        scen_ext[sid] = mean_kb
        state = SwitchState.from_scenario_id(sid)
        lines.append(
            f"  scenario {sid} (rdg={int(state.rdg_on)}, roi={int(state.roi_mode)}, "
            f"ok={int(state.reg_success)}): {mean_kb:10.0f}"
        )
    return {"rows": rows, "paper_rows": TABLE1_ROWS, "scenario_external_kb": scen_ext, "text": "\n".join(lines)}
