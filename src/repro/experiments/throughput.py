"""Sustained-throughput analysis at the 30 Hz video rate.

Effective latencies (45-100 ms) exceed the 33.3 ms frame period, so a
real deployment keeps several frames in flight.  This experiment
pipelines the test sequence through :meth:`PlatformSimulator.simulate_stream`
under three placements:

* **single-core**: every frame on core 0 -- the queue grows without
  bound (throughput collapse: ~21 fps sustainable vs 30 fps offered);
* **rotated serial**: frame ``k`` on core ``k mod 8`` -- throughput
  holds, but per-frame latency still swings with content;
* **managed + rotated**: the resource manager's per-frame partitioning
  decisions, rotated across the platform -- throughput holds *and*
  latency stays near the budget: the paper's "parallelization of data
  distribution and computations, such that the latency is kept nearly
  constant [...] enables the execution of more functions" (Section 8).
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentContext, make_pipeline
from repro.experiments.fig7 import fig7_sequence
from repro.runtime import CoschedulePolicy, FrameEngine, TripleCPolicy

__all__ = ["run"]

#: 30 Hz frame period.
PERIOD_MS: float = 1000.0 / 30.0


def _collect_frames(ctx: ExperimentContext, n_frames: int):
    """Run the pipeline once; keep per-frame reports + managed parts."""
    seq = fig7_sequence(n_frames=n_frames, seed=31337)
    sim = ctx.profile_config.make_simulator()
    engine = FrameEngine(sim, TripleCPolicy.for_simulator(ctx.fresh_model(), sim))
    managed = engine.run(seq, make_pipeline(seq), seq_key="tp-mg")

    seq2 = fig7_sequence(n_frames=n_frames, seed=31337)
    pipe = make_pipeline(seq2)
    reports = []
    for img, _ in seq2.iter_frames():
        reports.append(pipe.process(img).reports)
    return reports, managed


def run(ctx: ExperimentContext, n_frames: int = 120) -> dict:
    """Pipelined throughput under the three placements."""
    reports, managed = _collect_frames(ctx, n_frames)
    n_cores = ctx.platform.n_cores

    placements = {
        "single-core": (
            CoschedulePolicy(n_cores=n_cores, window=1),
            lambda k: ("tp", "single", k),
        ),
        "rotated serial": (
            CoschedulePolicy(n_cores=n_cores),
            lambda k: ("tp", "rot", k),
        ),
        "managed rotated": (
            CoschedulePolicy(n_cores=n_cores, source=managed),
            lambda k: ("tp", "mgd", k),
        ),
    }
    policies: dict[str, list] = {
        name: placement.assign(reports, key)
        for name, (placement, key) in placements.items()
    }

    rows = {}
    for name, frames in policies.items():
        sim = ctx.profile_config.make_simulator()
        results = sim.simulate_stream(frames, PERIOD_MS)
        lat = np.asarray([r.latency_ms for r in results])
        completions = np.arange(lat.size) * PERIOD_MS + lat
        span_s = (completions.max() - 0.0) / 1e3
        fps = len(results) / span_s if span_s > 0 else float("inf")
        # Queue growth: latency slope over the run (ms per frame).
        slope = float(np.polyfit(np.arange(lat.size), lat, 1)[0])
        rows[name] = {
            "mean_latency": float(lat.mean()),
            "max_latency": float(lat.max()),
            "latency_slope_ms_per_frame": slope,
            "sustained_fps": float(fps),
        }

    lines = ["Sustained throughput at 30 Hz (pipelined frames)", ""]
    lines.append(
        f"{'placement':18s} {'mean lat':>9s} {'max lat':>9s} "
        f"{'lat slope':>10s} {'fps':>6s}"
    )
    for name, r in rows.items():
        lines.append(
            f"{name:18s} {r['mean_latency']:8.1f}m {r['max_latency']:8.1f}m "
            f"{r['latency_slope_ms_per_frame']:+9.3f}m {r['sustained_fps']:6.1f}"
        )
    lines.append("")
    lines.append(
        "single-core queues without bound (latency slope >> 0); the "
        "rotated placements sustain 30 fps, and only the managed one "
        "also pins the latency."
    )
    return {"rows": rows, "managed_run": managed, "text": "\n".join(lines)}
