"""Fig. 4 reproduction: the instantiated architecture parameters.

A direct tabulation of the platform spec against the numbers printed
in Fig. 4(b): 8 x 2,327 MCycles/s cores, 8 x 32 KB L1, 4 x 4 MB L2,
72 / 48 / 29 GB/s links and 0.94 - 3.83 GB/s DRAM channels.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentContext
from repro.util.units import GB, KIB, MIB

__all__ = ["run", "PAPER_PLATFORM"]

#: The values printed in Fig. 4(b).
PAPER_PLATFORM = {
    "cores": 8,
    "core_mcycles": 2327.0,
    "l1_kb": 32,
    "n_l2": 4,
    "l2_mb": 4,
    "core_l1_gbps": 72.0,
    "l1_l2_gbps": 48.0,
    "l2_bus_gbps": 29.0,
    "dram_gbps": (0.94, 3.83),
}


def run(ctx: ExperimentContext) -> dict:
    """Tabulate our platform spec next to the paper's figures."""
    p = ctx.platform
    ours = {
        "cores": p.n_cores,
        "core_mcycles": p.core_hz / 1e6,
        "l1_kb": p.l1.capacity_bytes // KIB,
        "n_l2": p.n_l2,
        "l2_mb": p.l2.capacity_bytes // MIB,
        "core_l1_gbps": p.core_l1_bw / GB,
        "l1_l2_gbps": p.l1_l2_bw / GB,
        "l2_bus_gbps": p.l2_bus_bw / GB,
        "dram_gbps": (p.dram_random_bw / GB, p.dram_stream_bw / GB),
    }
    lines = ["Fig. 4 -- platform model parameters", ""]
    lines.append(f"{'parameter':18s} {'ours':>16s} {'paper':>16s}")
    for key, paper_v in PAPER_PLATFORM.items():
        lines.append(f"{key:18s} {str(ours[key]):>16s} {str(paper_v):>16s}")
    return {"ours": ours, "paper": PAPER_PLATFORM, "text": "\n".join(lines)}
