"""Incremental analysis: re-analyze only what a change can affect.

The whole-program passes (dataflow, effects, perf) are fast enough
for CI but not for a pre-commit hook that runs on every commit.  This
module caches per-module findings keyed by file content hash under
``.repro-analysis-cache/`` and, on re-run, re-analyzes only

* modules whose content hash changed, plus
* their reverse-import closure (importers, transitively) -- the
  modules whose *own* analysis results can change,

parsing additionally the forward-import closure of that dirty set so
the interprocedural passes see their callees.  Findings for dirty
modules are recomputed and merged with cached findings for everything
else.  A warm re-run on an unchanged tree analyzes zero modules and
does nothing but hash files and load one JSON document.

The cache is *salted* with a hash over the analysis implementation
itself (every source file of ``repro.analysis`` plus the
``repro.util.effects`` contract vocabulary) and the enabled pass set,
so editing a rule -- or toggling ``--no-effects`` -- invalidates every
entry at once rather than serving findings from an older rule set.

Approximation, by design: interprocedural facts that are merged
*project-wide* (``attr_units`` unit votes; cross-module race witnesses
reported into an unchanged callee module) are recomputed from the
partial symbol table only, so an incremental run can differ from a
full run in rare cross-module cases.  The full (non-incremental) run
in CI remains the gating authority; the incremental path is the
pre-commit convenience.
"""

from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.astlint import lint_paths
from repro.analysis.dataflow import run_dataflow
from repro.analysis.dataflow.symbols import (
    SymbolTable,
    _module_name,
    iter_source_files,
)
from repro.analysis.effects import check_perf, infer_effects, run_effects
from repro.analysis.findings import Finding, Severity
from repro.analysis.rules import default_rules
from repro.analysis.suppress import apply_suppressions, scan_suppressions
from repro.obs.clock import monotonic_s

__all__ = [
    "DEFAULT_CACHE_DIR",
    "ALL_PASSES",
    "AnalysisStats",
    "IncrementalResult",
    "analysis_salt",
    "run_incremental",
]

#: Default cache location (git-ignored; persisted across CI runs).
DEFAULT_CACHE_DIR = Path(".repro-analysis-cache")

#: Passes the incremental engine knows how to cache per module.
ALL_PASSES = ("lint", "dataflow", "effects", "perf")

_CACHE_VERSION = 1
_CACHE_FILE = "modules.json"


@dataclass
class AnalysisStats:
    """Wall time per pass and cache behavior of one run."""

    #: pass name -> wall seconds (insertion order = execution order).
    pass_seconds: dict[str, float] = field(default_factory=dict)
    #: Paths re-analyzed this run (the dirty set), sorted.
    analyzed: list[str] = field(default_factory=list)
    #: Modules whose findings were served from the cache.
    cache_hits: int = 0
    #: Modules that had to be re-analyzed (== len(analyzed)).
    cache_misses: int = 0

    def render(self) -> str:
        lines = ["analysis stats:"]
        for name, seconds in self.pass_seconds.items():
            lines.append(f"  pass {name:12s} {seconds * 1e3:9.1f} ms")
        total = sum(self.pass_seconds.values())
        lines.append(f"  total         {total * 1e3:9.1f} ms")
        lines.append(
            f"  cache: {self.cache_hits} hit(s), "
            f"{self.cache_misses} miss(es); "
            f"{len(self.analyzed)} module(s) analyzed"
        )
        return "\n".join(lines)

    def to_json(self) -> str:
        return json.dumps(
            {
                "pass_seconds": self.pass_seconds,
                "analyzed": self.analyzed,
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
            },
            indent=2,
            sort_keys=True,
        )


@dataclass
class IncrementalResult:
    """Findings plus the run's cache/timing statistics."""

    findings: list[Finding]
    stats: AnalysisStats


class _Timer:
    """Times one pass into ``stats.pass_seconds`` (obs clock, so the
    ``lint/direct-time-call`` rule stays clean)."""

    def __init__(self, stats: AnalysisStats, name: str) -> None:
        self.stats = stats
        self.name = name
        self._t0 = 0.0

    def __enter__(self) -> "_Timer":
        self._t0 = monotonic_s()
        return self

    def __exit__(self, *exc: object) -> None:
        self.stats.pass_seconds[self.name] = (
            self.stats.pass_seconds.get(self.name, 0.0)
            + monotonic_s()
            - self._t0
        )


def _sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def analysis_salt(passes: Sequence[str]) -> str:
    """Hash of the analysis implementation + enabled passes.

    Any edit to the analysis package (a rule tweak, a new pass) or to
    the contract vocabulary changes the salt and invalidates the whole
    cache -- stale findings can never outlive the rules that made them.
    """
    import repro.util.effects as util_effects

    h = hashlib.sha256()
    h.update(f"v{_CACHE_VERSION}".encode())
    h.update(("+".join(passes)).encode())
    analysis_dir = Path(__file__).resolve().parent
    sources = sorted(analysis_dir.rglob("*.py"))
    sources.append(Path(util_effects.__file__).resolve())
    for src in sources:
        try:
            h.update(src.read_bytes())
        except OSError:
            continue
    return h.hexdigest()


def _finding_to_dict(f: Finding) -> dict[str, str]:
    return {
        "rule": f.rule,
        "severity": f.severity.name.lower(),
        "location": f.location,
        "message": f.message,
    }


def _finding_from_dict(d: dict[str, str]) -> Finding:
    return Finding(
        rule=d["rule"],
        severity=Severity.parse(d["severity"]),
        location=d["location"],
        message=d["message"],
    )


def _location_path(location: str) -> str:
    head, sep, tail = location.rpartition(":")
    return head if sep and tail.isdigit() else location


def _module_deps(tree: ast.Module, known: dict[str, str]) -> list[str]:
    """Project modules imported by ``tree`` (absolute imports only),
    resolved against the ``modname -> path`` map of analyzed files."""
    deps: set[str] = set()

    def resolve(dotted: str) -> None:
        parts = dotted.split(".")
        while parts:
            cand = ".".join(parts)
            if cand in known:
                deps.add(cand)
                return
            parts.pop()

    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                resolve(alias.name)
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for alias in node.names:
                if alias.name != "*":
                    resolve(f"{node.module}.{alias.name}")
            resolve(node.module)
    return sorted(deps)


def _load_cache(cache_dir: Path, salt: str) -> dict[str, dict]:
    """Cached per-module entries, or empty on any mismatch/corruption."""
    path = cache_dir / _CACHE_FILE
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return {}
    if not isinstance(doc, dict) or doc.get("salt") != salt:
        return {}
    modules = doc.get("modules")
    return modules if isinstance(modules, dict) else {}


def _write_cache(cache_dir: Path, salt: str, modules: dict[str, dict]) -> None:
    cache_dir.mkdir(parents=True, exist_ok=True)
    payload = json.dumps(
        {"version": _CACHE_VERSION, "salt": salt, "modules": modules},
        indent=1,
        sort_keys=True,
    )
    (cache_dir / _CACHE_FILE).write_text(payload, encoding="utf-8")


def _closure(seeds: set[str], edges: dict[str, set[str]]) -> set[str]:
    """Transitive closure of ``seeds`` over ``edges`` (inclusive)."""
    out = set(seeds)
    work = list(seeds)
    while work:
        cur = work.pop()
        for nxt in edges.get(cur, ()):
            if nxt not in out:
                out.add(nxt)
                work.append(nxt)
    return out


def _run_passes(
    files: Sequence[Path],
    table: SymbolTable,
    passes: Sequence[str],
    stats: AnalysisStats,
) -> list[Finding]:
    findings: list[Finding] = []
    if "lint" in passes:
        with _Timer(stats, "lint"):
            findings += lint_paths(files, default_rules())
    if "dataflow" in passes:
        with _Timer(stats, "dataflow"):
            findings += run_dataflow(files, table=table)
    if "effects" in passes or "perf" in passes:
        with _Timer(stats, "effects"):
            inference = infer_effects(table) if "effects" in passes else None
        if "effects" in passes and inference is not None:
            with _Timer(stats, "effects"):
                findings += run_effects(table, inference)
        if "perf" in passes:
            with _Timer(stats, "perf"):
                findings += check_perf(table)
    return findings


def run_incremental(
    roots: Iterable[Path],
    cache_dir: Path = DEFAULT_CACHE_DIR,
    passes: Sequence[str] = ALL_PASSES,
) -> IncrementalResult:
    """Run the per-module passes incrementally over ``roots``."""
    stats = AnalysisStats()
    salt = analysis_salt(passes)

    with _Timer(stats, "hash"):
        files = iter_source_files(list(roots))
        contents: dict[str, bytes] = {}
        hashes: dict[str, str] = {}
        mod_of_path: dict[str, str] = {}
        path_of_mod: dict[str, str] = {}
        for f in files:
            p = str(f)
            try:
                data = f.read_bytes()
            except OSError:
                continue
            contents[p] = data
            hashes[p] = _sha256(data)
            modname = _module_name(f)
            mod_of_path[p] = modname
            path_of_mod[modname] = p
        cache = _load_cache(cache_dir, salt)

    changed = {
        p
        for p, digest in hashes.items()
        if cache.get(p, {}).get("hash") != digest
    }

    # Import graph: deps of changed modules come from a fresh parse,
    # deps of unchanged modules from the cache.
    with _Timer(stats, "deps"):
        deps_of: dict[str, set[str]] = {}
        for p in hashes:
            modname = mod_of_path[p]
            if p in changed:
                try:
                    tree = ast.parse(contents[p].decode("utf-8"), filename=p)
                except (SyntaxError, UnicodeDecodeError):
                    deps_of[modname] = set()
                    continue
                deps_of[modname] = set(_module_deps(tree, path_of_mod))
            else:
                deps_of[modname] = {
                    d
                    for d in cache.get(p, {}).get("deps", ())
                    if d in path_of_mod
                }
        importers_of: dict[str, set[str]] = {m: set() for m in deps_of}
        for m, deps in deps_of.items():
            for d in deps:
                importers_of.setdefault(d, set()).add(m)

    # Dirty = changed + everyone importing them (their analysis can
    # change); parse additionally what the dirty set imports (context
    # for the interprocedural passes).
    changed_mods = {mod_of_path[p] for p in changed}
    dirty_mods = _closure(changed_mods, importers_of)
    parse_mods = _closure(dirty_mods, deps_of)
    dirty_paths = {path_of_mod[m] for m in dirty_mods}
    parse_paths = sorted(path_of_mod[m] for m in parse_mods)

    stats.analyzed = sorted(dirty_paths)
    stats.cache_misses = len(dirty_paths)
    stats.cache_hits = len(hashes) - len(dirty_paths)

    fresh: list[Finding] = []
    if dirty_paths:
        with _Timer(stats, "parse"):
            table = SymbolTable()
            for p in parse_paths:
                table.add_module(
                    p, mod_of_path[p], contents[p].decode("utf-8")
                )
        fresh = _run_passes(
            [Path(p) for p in sorted(dirty_paths)], table, passes, stats
        )
        fresh = [f for f in fresh if _location_path(f.location) in dirty_paths]
        with _Timer(stats, "suppress"):
            markers = scan_suppressions(Path(p) for p in sorted(dirty_paths))
            fresh = apply_suppressions(fresh, markers)

    # Merge: fresh findings for dirty modules, cached for the rest.
    fresh_by_path: dict[str, list[Finding]] = {p: [] for p in dirty_paths}
    for f in fresh:
        fresh_by_path.setdefault(_location_path(f.location), []).append(f)

    findings: list[Finding] = []
    modules_doc: dict[str, dict] = {}
    for p in sorted(hashes):
        modname = mod_of_path[p]
        if p in dirty_paths:
            module_findings = fresh_by_path.get(p, [])
        else:
            module_findings = [
                _finding_from_dict(d)
                for d in cache.get(p, {}).get("findings", ())
            ]
        findings.extend(module_findings)
        modules_doc[p] = {
            "hash": hashes[p],
            "deps": sorted(deps_of.get(modname, ())),
            "findings": [_finding_to_dict(f) for f in module_findings],
        }

    with _Timer(stats, "cache-write"):
        _write_cache(cache_dir, salt, modules_doc)
    return IncrementalResult(findings=findings, stats=stats)
