"""Static-analysis suite: flow-graph invariants and project lint rules.

Two passes, one findings model:

* :mod:`repro.analysis.graphcheck` verifies the paper's structural
  invariants on a :class:`~repro.graph.flowgraph.FlowGraph` -- DAG-ness,
  switch-state coverage, bandwidth conservation, Table 1 buffer budgets
  against the platform's L2 -- before anything executes;
* :mod:`repro.analysis.astlint` lints the sources for hygiene rules the
  prediction pipeline depends on (named RNG streams, no wall clock in
  model code, no decimal/binary unit mixing, sane EWMA alphas,
  immutable frozen dataclasses).

Run both with ``python -m repro.analysis``.
"""

from __future__ import annotations

from repro.analysis.astlint import (
    LintContext,
    LintRule,
    lint_file,
    lint_paths,
    lint_source,
)
from repro.analysis.findings import (
    Finding,
    Severity,
    count_at_least,
    findings_to_json,
    format_findings,
    max_severity,
)
from repro.analysis.graphcheck import (
    check_bandwidth,
    check_buffers,
    check_flowgraph,
    check_scenarios,
    check_topology,
)
from repro.analysis.rules import default_rules

__all__ = [
    "Finding",
    "Severity",
    "max_severity",
    "count_at_least",
    "format_findings",
    "findings_to_json",
    "LintContext",
    "LintRule",
    "lint_source",
    "lint_file",
    "lint_paths",
    "default_rules",
    "check_topology",
    "check_scenarios",
    "check_buffers",
    "check_bandwidth",
    "check_flowgraph",
]
