"""Static checks over a switched flow graph and its scenario table.

A compile-time version of the paper's resource arguments: everything
here is knowable from the :class:`~repro.graph.flowgraph.FlowGraph`
structure, the Table 1 buffer sizes and the platform spec -- before a
single frame is rendered or simulated.

Checks (rule ids):

``graph/cycle``
    The task-to-task edge set must be a DAG (Fig. 2 is acyclic; a
    cycle would deadlock the per-frame schedule).
``graph/dangling``
    Every edge endpoint must be a declared task or the ``INPUT`` /
    ``OUTPUT`` pseudo-node.
``graph/switch-coverage``
    All 2^3 switch states must yield a non-empty, dependency-ordered
    activation -- the scenario table of Section 5.2 covers eight
    scenarios, and a hole here means a frame could arrive with no
    defined schedule.
``graph/dead-task``
    A declared task active under *no* scenario is suspicious
    (typically a stale spec after a graph edit).
``graph/starved-task``
    Under every scenario, each active task needs at least one active
    incoming edge (from ``INPUT`` or another active task); a starved
    task would stall the frame.
``graph/edge-capacity``
    An edge cannot carry more KiB per frame than its producer's
    output buffer or its consumer's input buffer holds (bandwidth
    conservation at task boundaries, Table 1).
``graph/bandwidth-budget``
    Per scenario, the aggregate analytic inter-task bandwidth must fit
    the platform's links (Fig. 4): error above the weakest relevant
    link, warning above 80 % of it.
``graph/buffer-budget``
    Stream tasks whose live working set exceeds the L2 capacity are
    reported at INFO severity -- this is *expected* for RDG FULL
    (7,168 KiB intermediate vs 4 MiB L2) and is exactly what feeds
    the Fig. 5 swap-bandwidth model, but the report makes the
    overflow set auditable.
``graph/phase-budget``
    A phase's live buffer set may not exceed the task's declared
    Table 1 total (input + intermediate + output); if it does, the
    phase decomposition and the table disagree.
"""

from __future__ import annotations

from typing import Iterable, Protocol, Sequence, runtime_checkable

from repro.analysis.findings import Finding, Severity
from repro.graph.flowgraph import Edge, FlowGraph
from repro.imaging.pipeline import SwitchState
from repro.util.units import KIB, MB

__all__ = [
    "CacheLike",
    "PlatformLike",
    "scenario_ids_for",
    "check_topology",
    "check_scenarios",
    "check_buffers",
    "check_bandwidth",
    "check_flowgraph",
]


@runtime_checkable
class CacheLike(Protocol):
    """The cache facts the budget checks consume."""

    capacity_bytes: int


@runtime_checkable
class PlatformLike(Protocol):
    """The platform facts the resource-budget checks consume.

    A structural subset of :class:`repro.hw.spec.PlatformSpec`; the
    checks are typed against this protocol rather than duck-typing
    attribute-by-attribute with ``getattr``, so a platform missing a
    budget is a type error at the call site, not a silently skipped
    check.
    """

    n_cores: int
    l2: CacheLike
    l2_bus_bw: float
    n_l2: int
    total_dram_stream_bw: float


def scenario_ids_for(switch_names: Sequence[str]) -> tuple[int, ...]:
    """Every scenario id of an application with the given switches.

    The scenario space is the full assignment space of the binary
    switches -- ``2 ** len(switch_names)`` ids.  Deriving the range
    from the workload's ``switch_names`` (instead of assuming the
    StentBoost eight) keeps the checks correct for workloads with a
    different switch count.
    """
    return tuple(range(2 ** len(switch_names)))


#: All eight switch states of the Fig. 2 graph (three switches).
ALL_SCENARIO_IDS: tuple[int, ...] = scenario_ids_for(("b2", "b1", "b0"))

_PSEUDO = (FlowGraph.INPUT, FlowGraph.OUTPUT)


def _task_kb(task: object, attr: str) -> float | None:
    """Duck-typed Table 1 column of a task spec (``None`` if absent)."""
    value = getattr(task, attr, None)
    if isinstance(value, (int, float)):
        return float(value)
    return None


# -- topology ----------------------------------------------------------------


def check_topology(
    tasks: Iterable[str], edges: Sequence[Edge]
) -> list[Finding]:
    """Cycle and dangling-endpoint checks on the raw edge set.

    Operates on task *names* plus edges so it can run on specs under
    construction, before a :class:`FlowGraph` (whose constructor
    rejects dangling endpoints outright) exists.
    """
    findings: list[Finding] = []
    known = set(tasks)

    for e in edges:
        for endpoint in (e.src, e.dst):
            if endpoint not in known and endpoint not in _PSEUDO:
                findings.append(
                    Finding(
                        rule="graph/dangling",
                        severity=Severity.ERROR,
                        location=f"edge {e.src}->{e.dst}",
                        message=f"endpoint {endpoint!r} is not a declared task",
                    )
                )

    # Kahn's algorithm over task-to-task edges (pseudo-nodes cannot
    # participate in a cycle: INPUT has no predecessors, OUTPUT no
    # successors).
    succ: dict[str, set[str]] = {t: set() for t in known}
    indeg: dict[str, int] = {t: 0 for t in known}
    for e in edges:
        if e.src in known and e.dst in known and e.dst not in succ[e.src]:
            succ[e.src].add(e.dst)
            indeg[e.dst] += 1
    ready = [t for t, d in indeg.items() if d == 0]
    removed = 0
    while ready:
        node = ready.pop()
        removed += 1
        for nxt in succ[node]:
            indeg[nxt] -= 1
            if indeg[nxt] == 0:
                ready.append(nxt)
    if removed < len(known):
        cyclic = sorted(t for t, d in indeg.items() if d > 0)
        findings.append(
            Finding(
                rule="graph/cycle",
                severity=Severity.ERROR,
                location="graph",
                message=(
                    "task edge set contains a cycle through "
                    + ", ".join(cyclic)
                ),
            )
        )
    return findings


# -- scenario coverage and conservation --------------------------------------


def check_scenarios(
    graph: FlowGraph, scenario_ids: Sequence[int] = ALL_SCENARIO_IDS
) -> list[Finding]:
    """Switch coverage, dead tasks and per-scenario conservation."""
    findings: list[Finding] = []
    ever_active: set[str] = set()

    for sid in scenario_ids:
        state = SwitchState.from_scenario_id(sid)
        loc = f"scenario {sid}"
        try:
            order = graph.execution_order(state)
        except Exception as exc:  # noqa: BLE001 - any failure is a coverage hole
            findings.append(
                Finding(
                    rule="graph/switch-coverage",
                    severity=Severity.ERROR,
                    location=loc,
                    message=f"activation failed for switch state {sid}: {exc}",
                )
            )
            continue
        if not order:
            findings.append(
                Finding(
                    rule="graph/switch-coverage",
                    severity=Severity.ERROR,
                    location=loc,
                    message="activation returned no tasks for this switch state",
                )
            )
            continue
        ever_active.update(order)

        active_edges = graph.active_edges(state)
        fed = {e.dst for e in active_edges}
        for name in order:
            if name not in fed:
                findings.append(
                    Finding(
                        rule="graph/starved-task",
                        severity=Severity.ERROR,
                        location=f"{loc}, task {name}",
                        message=(
                            "active task has no active incoming edge "
                            "(neither INPUT nor an active producer feeds it)"
                        ),
                    )
                )

    for name in sorted(set(graph.tasks) - ever_active):
        findings.append(
            Finding(
                rule="graph/dead-task",
                severity=Severity.WARNING,
                location=f"task {name}",
                message="task is active under no checked scenario",
            )
        )

    # Edge payload vs producer/consumer buffer capacity (Table 1).
    for e in graph.edges:
        src_out = _task_kb(graph.tasks.get(e.src), "output_kb")
        dst_in = _task_kb(graph.tasks.get(e.dst), "input_kb")
        if src_out is not None and e.kb_per_frame > src_out:
            findings.append(
                Finding(
                    rule="graph/edge-capacity",
                    severity=Severity.ERROR,
                    location=f"edge {e.src}->{e.dst}",
                    message=(
                        f"carries {e.kb_per_frame:g} KiB/frame but producer "
                        f"{e.src} outputs only {src_out:g} KiB"
                    ),
                )
            )
        if dst_in is not None and e.kb_per_frame > dst_in:
            findings.append(
                Finding(
                    rule="graph/edge-capacity",
                    severity=Severity.ERROR,
                    location=f"edge {e.src}->{e.dst}",
                    message=(
                        f"carries {e.kb_per_frame:g} KiB/frame but consumer "
                        f"{e.dst} accepts only {dst_in:g} KiB"
                    ),
                )
            )
    return findings


# -- resource budgets --------------------------------------------------------


def check_buffers(graph: FlowGraph, platform: PlatformLike) -> list[Finding]:
    """Table 1 working sets vs the platform's L2 capacity."""
    findings: list[Finding] = []
    capacity = platform.l2.capacity_bytes

    for name, task in sorted(graph.tasks.items()):
        total_kb = _task_kb(task, "total_kb")
        phases = getattr(task, "phases", ()) or ()
        live_sets = [(p.name, float(p.total_kb)) for p in phases]
        if total_kb is not None:
            for phase_name, live_kb in live_sets:
                if live_kb > total_kb:
                    findings.append(
                        Finding(
                            rule="graph/phase-budget",
                            severity=Severity.ERROR,
                            location=f"task {name}, phase {phase_name}",
                            message=(
                                f"phase keeps {live_kb:g} KiB live, more than "
                                f"the task's declared Table 1 total "
                                f"({total_kb:g} KiB)"
                            ),
                        )
                    )
        peak_kb = max((kb for _, kb in live_sets), default=total_kb)
        if peak_kb is not None and peak_kb * KIB > capacity:
            findings.append(
                Finding(
                    rule="graph/buffer-budget",
                    severity=Severity.INFO,
                    location=f"task {name}",
                    message=(
                        f"peak working set {peak_kb:g} KiB exceeds the "
                        f"{capacity // KIB} KiB L2 -- evictions expected "
                        "(this is what generates the Fig. 5 swap bandwidth)"
                    ),
                )
            )
    return findings


def check_bandwidth(
    graph: FlowGraph,
    platform: PlatformLike,
    scenario_ids: Sequence[int] = ALL_SCENARIO_IDS,
) -> list[Finding]:
    """Aggregate scenario bandwidth vs the platform's link budgets."""
    findings: list[Finding] = []
    budget = min(float(platform.l2_bus_bw), float(platform.total_dram_stream_bw))
    if budget <= 0:
        return findings

    for sid in scenario_ids:
        state = SwitchState.from_scenario_id(sid)
        try:
            scenario_bw = graph.total_bandwidth_mbps(state) * MB
        except Exception:  # noqa: BLE001 - reported by check_scenarios already
            continue
        if scenario_bw > budget:
            findings.append(
                Finding(
                    rule="graph/bandwidth-budget",
                    severity=Severity.ERROR,
                    location=f"scenario {sid}",
                    message=(
                        f"inter-task bandwidth {scenario_bw / MB:.0f} MByte/s "
                        f"exceeds the weakest platform link "
                        f"({budget / MB:.0f} MByte/s)"
                    ),
                )
            )
        elif scenario_bw > 0.8 * budget:
            findings.append(
                Finding(
                    rule="graph/bandwidth-budget",
                    severity=Severity.WARNING,
                    location=f"scenario {sid}",
                    message=(
                        f"inter-task bandwidth {scenario_bw / MB:.0f} MByte/s "
                        f"uses over 80 % of the weakest platform link "
                        f"({budget / MB:.0f} MByte/s)"
                    ),
                )
            )
    return findings


def check_flowgraph(
    graph: FlowGraph,
    platform: PlatformLike | None = None,
    scenario_ids: Sequence[int] = ALL_SCENARIO_IDS,
) -> list[Finding]:
    """Run every graph check; the one-call entry point used by the CLI."""
    findings = check_topology(graph.tasks, graph.edges)
    findings += check_scenarios(graph, scenario_ids)
    if platform is not None:
        findings += check_buffers(graph, platform)
        findings += check_bandwidth(graph, platform, scenario_ids)
    return findings
