"""``python -m repro.analysis schedcheck`` -- the schedulability gate.

Runs the scenario-space model checker (:mod:`repro.analysis.schedcheck`)
over one application mix, or -- with ``--apps all`` / no ``--apps`` --
over the whole composite matrix: every registered workload alone,
every homogeneous pair and every heterogeneous pair.  Findings flow
through the same reporting machinery as the main suite (text / JSON /
SARIF output, committed baselines, ``--fail-on`` severity gate), so
the command drops into CI next to ``python -m repro.analysis``::

    python -m repro.analysis schedcheck --apps stentboost,stentboost --cores 8
    python -m repro.analysis schedcheck --apps all --format sarif
    python -m repro.analysis schedcheck --envelope sched-envelope.json

Results are served from a content-keyed cache under
``--cache-dir/schedcheck/`` (the same directory tree the incremental
analysis uses): the key hashes the checker and workload sources plus
the request, so editing a workload or the checker invalidates exactly
the affected entries.  ``--no-cache`` bypasses it.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
from pathlib import Path
from typing import Sequence

from repro.analysis.baseline import filter_baselined, load_baseline, write_baseline
from repro.analysis.catalog import rule_catalog
from repro.analysis.findings import (
    Finding,
    Severity,
    count_at_least,
    findings_to_json,
    format_findings,
)
from repro.analysis.incremental import DEFAULT_CACHE_DIR
from repro.analysis.sarif import findings_to_sarif_json
from repro.analysis.schedcheck import (
    DEFAULT_REPORT_CAP,
    SchedReport,
    check_schedulability,
    compute_envelope,
)
from repro.util.units import HZ_VIDEO

__all__ = ["build_parser", "matrix_mixes", "main"]

#: Sentinel for the full composite matrix.
ALL_APPS = "all"

_CACHE_SUBDIR = "schedcheck"
_CACHE_VERSION = 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.analysis schedcheck",
        description=(
            "scenario-space schedulability model checker for composite "
            "multi-workload graphs"
        ),
    )
    parser.add_argument(
        "--apps",
        default=ALL_APPS,
        help="comma-separated workload names, one per concurrent "
        "instance (e.g. stentboost,ultrasound); 'all' checks every "
        "workload alone plus every pair (default: all)",
    )
    parser.add_argument(
        "--cores",
        type=int,
        default=None,
        help="core count to check against (default: the platform's)",
    )
    parser.add_argument(
        "--platform",
        default="repro.hw.spec:blackford",
        help="platform-spec factory MODULE:CALLABLE "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--rate-hz",
        type=float,
        default=HZ_VIDEO,
        help="frame rate defining the period (default: %(default)s)",
    )
    parser.add_argument(
        "--report-cap",
        type=int,
        default=DEFAULT_REPORT_CAP,
        help="most-probable violations reported per rule "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--envelope",
        type=Path,
        default=None,
        metavar="FILE",
        help="also write the per-workload feasibility envelope JSON "
        "(consumed by the fleet admission controller)",
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=DEFAULT_CACHE_DIR,
        metavar="DIR",
        help=f"result cache directory (default: {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="always recompute; do not read or write the result cache",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        metavar="FILE",
        help="subtract a committed baseline; only new findings remain",
    )
    parser.add_argument(
        "--write-baseline",
        type=Path,
        default=None,
        metavar="FILE",
        help="write the current findings as a baseline and exit 0",
    )
    parser.add_argument(
        "--fail-on",
        type=Severity.parse,
        default=Severity.ERROR,
        metavar="{error,warning,info}",
        help="minimum severity that makes the exit status nonzero "
        "(default: error)",
    )
    return parser


def matrix_mixes(names: Sequence[str]) -> list[tuple[str, ...]]:
    """The composite matrix: singles, homogeneous and hetero pairs."""
    mixes: list[tuple[str, ...]] = [(n,) for n in names]
    for i, a in enumerate(names):
        for b in names[i:]:
            mixes.append((a, b))
    return mixes


# -- result cache ------------------------------------------------------------


def _source_salt() -> str:
    """Hash over every source the checker's verdict depends on."""
    import repro.analysis.schedcheck as schedcheck_mod
    import repro.graph as graph_pkg
    import repro.hw as hw_pkg
    import repro.workloads as workloads_pkg

    h = hashlib.sha256()
    h.update(str(_CACHE_VERSION).encode())
    files = [Path(schedcheck_mod.__file__)]
    for pkg in (workloads_pkg, graph_pkg, hw_pkg):
        root = Path(pkg.__file__).resolve().parent
        files += sorted(root.rglob("*.py"))
    for path in files:
        h.update(path.name.encode())
        h.update(path.read_bytes())
    return h.hexdigest()


def _cache_key(
    salt: str,
    apps: Sequence[str],
    cores: int | None,
    platform_spec: str,
    rate_hz: float,
    report_cap: int,
) -> str:
    payload = json.dumps(
        {
            "salt": salt,
            "apps": list(apps),
            "cores": cores,
            "platform": platform_spec,
            "rate_hz": rate_hz,
            "report_cap": report_cap,
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:32]


def _cache_load(path: Path) -> list[Finding] | None:
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    try:
        return [
            Finding(
                rule=str(e["rule"]),
                severity=Severity.parse(str(e["severity"])),
                location=str(e["location"]),
                message=str(e["message"]),
            )
            for e in doc["findings"]
        ]
    except (KeyError, TypeError, ValueError):
        return None


def _cache_store(path: Path, findings: Sequence[Finding]) -> None:
    doc = {
        "findings": [
            {
                "rule": f.rule,
                "severity": f.severity.name.lower(),
                "location": f.location,
                "message": f.message,
            }
            for f in findings
        ],
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


# -- entry point -------------------------------------------------------------


def _run_one(
    apps: Sequence[str],
    platform: object,
    args: argparse.Namespace,
    salt: str | None,
) -> SchedReport | list[Finding]:
    """One mix, through the cache when enabled."""
    if salt is not None:
        key = _cache_key(
            salt, apps, args.cores, args.platform, args.rate_hz,
            args.report_cap,
        )
        path = args.cache_dir / _CACHE_SUBDIR / f"{key}.json"
        cached = _cache_load(path)
        if cached is not None:
            return cached
    report = check_schedulability(
        list(apps),
        platform,  # type: ignore[arg-type]
        cores=args.cores,
        rate_hz=args.rate_hz,
        report_cap=args.report_cap,
    )
    if salt is not None:
        _cache_store(path, report.findings)
    return report


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    # Late import keeps ``--help`` fast and mirrors the lazy workload
    # resolution of the main CLI.
    from repro.analysis.cli import _load_factory
    from repro.workloads import workload_names

    try:
        platform = _load_factory(args.platform)()
    except (argparse.ArgumentTypeError, ImportError) as exc:
        raise SystemExit(f"repro.analysis schedcheck: error: {exc}") from exc

    if args.apps == ALL_APPS:
        mixes = matrix_mixes(workload_names())
    else:
        names = tuple(a.strip() for a in args.apps.split(",") if a.strip())
        if not names:
            raise SystemExit(
                "repro.analysis schedcheck: error: --apps needs at "
                "least one workload name"
            )
        mixes = [names]

    salt = None if args.no_cache else _source_salt()
    findings: list[Finding] = []
    for mix in mixes:
        try:
            result = _run_one(mix, platform, args, salt)
        except KeyError as exc:
            raise SystemExit(
                f"repro.analysis schedcheck: error: {exc}"
            ) from exc
        findings += result if isinstance(result, list) else result.findings

    if args.envelope is not None:
        envelope = compute_envelope(
            platform, cores=args.cores, rate_hz=args.rate_hz
        )
        args.envelope.write_text(
            json.dumps(envelope.to_doc(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(
            f"wrote feasibility envelope to {args.envelope}",
            file=sys.stderr,
        )

    if args.write_baseline is not None:
        write_baseline(args.write_baseline, findings)
        print(f"wrote {len(findings)} finding(s) to {args.write_baseline}")
        return 0

    if args.baseline is not None:
        try:
            baseline = load_baseline(args.baseline)
        except (OSError, ValueError, KeyError) as exc:
            raise SystemExit(
                f"repro.analysis schedcheck: error: {exc}"
            ) from exc
        findings = filter_baselined(findings, baseline)

    if args.format == "json":
        print(findings_to_json(findings))
    elif args.format == "sarif":
        descriptions = {
            rule_id: description
            for rule_id, (_, description) in rule_catalog().items()
        }
        print(findings_to_sarif_json(findings, descriptions))
    else:
        print(format_findings(findings))

    return 1 if count_at_least(findings, args.fail_on) else 0
