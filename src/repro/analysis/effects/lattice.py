"""The effect lattice: sets of effect atoms ordered by inclusion.

An *effect set* is a ``frozenset`` over the closed atom vocabulary
declared in :mod:`repro.util.effects` (``reads-global``,
``writes-global``, ``io``, ``env``, ``spawns``, ``nondet``).  The
lattice is the powerset lattice: bottom is ``pure`` (the empty set),
join is union, and ``a <= b`` iff ``a <= b`` as sets.  Inference only
ever moves *up* the lattice (union is monotone), which is what makes
the SCC fixpoint in :mod:`~repro.analysis.effects.infer` terminate.

Besides the coarse atoms, the inference records *witnesses* -- one
:class:`EffectWitness` per syntactic evidence site -- so findings can
say "``io`` because ``print()`` at line 12", and the pool-seam race
detector can report every global-mutation site a worker reaches, not
just the fact that one exists.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.effects import EFFECT_ATOMS

__all__ = [
    "EffectSet",
    "PURE",
    "EffectWitness",
    "EffectSummary",
    "effect_str",
    "join",
]

#: An element of the lattice: a set of effect atoms.
EffectSet = frozenset[str]

#: Bottom of the lattice: no process-global effects.
PURE: EffectSet = frozenset()


def effect_str(effects: EffectSet) -> str:
    """Human rendering: ``pure`` for bottom, sorted atoms otherwise."""
    return "+".join(sorted(effects)) if effects else "pure"


def join(*sets: EffectSet) -> EffectSet:
    """Least upper bound (set union) of any number of effect sets."""
    out: set[str] = set()
    for s in sets:
        out |= s
    return frozenset(out)


@dataclass(frozen=True)
class EffectWitness:
    """One piece of syntactic evidence for an effect atom.

    Attributes
    ----------
    atom:
        Which lattice atom the evidence supports.
    line:
        Line in the function's module.
    detail:
        Short human phrase (``"calls print()"``, ``".append() on
        module global 'results'"``).
    name:
        The global/parameter name involved, when one is ("" otherwise)
        -- lets the race detector group witnesses per shared binding.
    """

    atom: str
    line: int
    detail: str
    name: str = ""


@dataclass
class EffectSummary:
    """Per-function inference result.

    ``effects`` is the transitive set (own evidence joined with every
    resolvable callee's summary); ``witnesses`` holds only the
    function's *direct* evidence, so callers walking the call graph
    can attribute each witness to the function that owns it.
    ``mutated_params`` names parameters the function mutates in place,
    directly or by passing them to a callee that does -- the alias
    fact the pool-seam race detector runs on.
    """

    qualname: str
    effects: EffectSet = PURE
    witnesses: list[EffectWitness] = field(default_factory=list)
    mutated_params: frozenset[str] = frozenset()

    def witness_for(self, atom: str) -> EffectWitness | None:
        """The first direct witness of ``atom``, if this function has one."""
        for w in self.witnesses:
            if w.atom == atom:
                return w
        return None


def validate_atoms(effects: EffectSet) -> None:
    """Raise if ``effects`` strays outside the closed vocabulary."""
    unknown = effects - EFFECT_ATOMS
    if unknown:
        raise ValueError(f"unknown effect atom(s): {sorted(unknown)}")
