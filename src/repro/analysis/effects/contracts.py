"""Declared-vs-inferred effect contract checking.

:mod:`repro.util.effects` lets a function declare its effect ceiling
(``@pure``, ``@effects("io")``).  This pass compares every declaration
against the interprocedural inference and enforces that the functions
crossing trust boundaries -- pool workers, registered predictor
backends, engine policy steps -- carry one at all.

Rules:

``effects/contract-mismatch`` (error)
    The inference *proves* an effect the declaration does not cover.
    Because the inference is optimistic (unknown external calls
    contribute nothing), a proven effect is real evidence, never an
    approximation artifact.
``effects/contract-unused`` (info)
    The declaration claims an atom the inference cannot find any
    trace of.  Often a stale contract after a refactor; harmless but
    worth a look -- an over-wide contract weakens what callers may
    assume.
``effects/missing-contract`` (warning)
    A function at a checked boundary (``map_sequences`` worker,
    ``PredictorBackend(fit=...)`` target, ``SchedulingPolicy`` step
    method) declares nothing.  The boundary is exactly where the
    runtime relies on purity, so the contract must be explicit there.
"""

from __future__ import annotations

import ast

from repro.analysis.dataflow.symbols import FunctionInfo, SymbolTable
from repro.analysis.effects.infer import EffectInference, is_exempt_module
from repro.analysis.effects.lattice import effect_str
from repro.analysis.effects.races import find_pool_seams
from repro.analysis.findings import Finding, Severity

__all__ = ["required_contracts", "check_contracts"]

#: SchedulingPolicy step methods that must carry contracts.
_POLICY_STEPS = ("begin_run", "plan_frame", "observe_frame")


def _is_protocol_class(node: ast.ClassDef) -> bool:
    for base in node.bases:
        name = (
            base.attr
            if isinstance(base, ast.Attribute)
            else base.id
            if isinstance(base, ast.Name)
            else None
        )
        if name == "Protocol":
            return True
    return False


def _policy_step_quals(table: SymbolTable) -> dict[str, str]:
    """Qualname -> reason for every concrete policy step method.

    A *policy class* is any non-Protocol class implementing both
    ``begin_run`` and ``plan_frame`` (the structural shape of
    :class:`repro.runtime.engine.SchedulingPolicy`).
    """
    out: dict[str, str] = {}
    for modname in sorted(table.modules):
        mod = table.modules[modname]
        if is_exempt_module(modname):
            continue
        for stmt in mod.tree.body:
            if not isinstance(stmt, ast.ClassDef) or _is_protocol_class(stmt):
                continue
            methods = table.class_methods.get(f"{modname}.{stmt.name}", {})
            if "begin_run" not in methods or "plan_frame" not in methods:
                continue
            for step in _POLICY_STEPS:
                qual = methods.get(step)
                if qual is not None:
                    out[qual] = f"policy step of {modname}.{stmt.name}"
    return out


def _backend_fit_quals(table: SymbolTable) -> dict[str, str]:
    """Qualname -> reason for every ``PredictorBackend(fit=...)`` target."""
    out: dict[str, str] = {}
    for modname in sorted(table.modules):
        mod = table.modules[modname]
        if is_exempt_module(modname):
            continue
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            base = (
                func.attr
                if isinstance(func, ast.Attribute)
                else func.id
                if isinstance(func, ast.Name)
                else None
            )
            if base != "PredictorBackend":
                continue
            for kw in node.keywords:
                if kw.arg != "fit":
                    continue
                if isinstance(kw.value, (ast.Name, ast.Attribute)):
                    dotted = mod.resolve_dotted(kw.value)
                    if dotted is None:
                        continue
                    fn = table.lookup(dotted, mod)
                    if fn is not None:
                        out[fn.qualname] = "PredictorBackend fit function"
    return out


def required_contracts(table: SymbolTable) -> dict[str, str]:
    """Every qualname that must declare a contract, with the reason."""
    out: dict[str, str] = {}
    for seam in find_pool_seams(table):
        worker = seam.resolve_worker(table)
        if worker is not None and not is_exempt_module(worker.module.modname):
            out.setdefault(worker.qualname, "map_sequences pool worker")
    out.update(_backend_fit_quals(table))
    out.update(_policy_step_quals(table))
    return out


def _loc(fn: FunctionInfo) -> str:
    return f"{fn.module.path}:{fn.node.lineno}"


def check_contracts(
    table: SymbolTable, inference: EffectInference
) -> list[Finding]:
    """Check declared contracts and required-contract coverage."""
    findings: list[Finding] = []

    for qual in sorted(inference.contracts):
        declared = inference.contracts[qual]
        fn = table.functions.get(qual)
        if fn is None:
            continue
        inferred = inference.effects_of(qual)
        excess = inferred - declared
        if excess:
            evidence = []
            for atom in sorted(excess):
                chain = inference.witness_chain(qual, atom)
                if chain is not None:
                    owner, w = chain
                    where = (
                        f"line {w.line}"
                        if owner == qual
                        else f"{owner} line {w.line}"
                    )
                    evidence.append(f"{atom}: {w.detail} at {where}")
                else:
                    evidence.append(atom)
            findings.append(
                Finding(
                    rule="effects/contract-mismatch",
                    severity=Severity.ERROR,
                    location=_loc(fn),
                    message=(
                        f"{qual} declares {effect_str(declared)} but the "
                        f"inference proves {effect_str(inferred)} "
                        f"[{'; '.join(evidence)}]; widen the contract or "
                        "remove the effect"
                    ),
                )
            )
        unused = declared - inferred
        if unused:
            findings.append(
                Finding(
                    rule="effects/contract-unused",
                    severity=Severity.INFO,
                    location=_loc(fn),
                    message=(
                        f"{qual} declares {effect_str(declared)} but the "
                        f"inference finds no evidence of "
                        f"{'+'.join(sorted(unused))}; narrow the contract "
                        "if the effect is gone"
                    ),
                )
            )

    required = required_contracts(table)
    for qual in sorted(required):
        if qual in inference.contracts:
            continue
        fn = table.functions.get(qual)
        if fn is None:
            continue
        findings.append(
            Finding(
                rule="effects/missing-contract",
                severity=Severity.WARNING,
                location=_loc(fn),
                message=(
                    f"{qual} is a {required[qual]} but declares no effect "
                    "contract; add @pure or @effects(...) from "
                    "repro.util.effects (inferred: "
                    f"{effect_str(inference.effects_of(qual))})"
                ),
            )
        )
    return findings
