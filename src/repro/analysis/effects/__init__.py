"""Interprocedural effect/purity inference and its rule passes.

Layered on the dataflow symbol table (:mod:`repro.analysis.dataflow`):

* :mod:`~repro.analysis.effects.lattice` -- the effect lattice and
  per-function summaries.
* :mod:`~repro.analysis.effects.infer` -- SCC-fixpoint inference of
  effects and parameter mutation over the call graph.
* :mod:`~repro.analysis.effects.races` -- the ``map_sequences``
  pool-seam race detector.
* :mod:`~repro.analysis.effects.contracts` -- ``@pure`` /
  ``@effects(...)`` declared-vs-inferred checking.
* :mod:`~repro.analysis.effects.perf` -- frame-loop perf smells
  feeding the batched-engine roadmap item.
"""

from __future__ import annotations

from repro.analysis.dataflow.symbols import SymbolTable
from repro.analysis.effects.contracts import check_contracts, required_contracts
from repro.analysis.effects.infer import (
    EXEMPT_PREFIXES,
    EffectInference,
    infer_effects,
    is_exempt_module,
)
from repro.analysis.effects.lattice import (
    PURE,
    EffectSet,
    EffectSummary,
    EffectWitness,
    effect_str,
)
from repro.analysis.effects.perf import check_perf
from repro.analysis.effects.races import check_races, find_pool_seams
from repro.analysis.findings import Finding

__all__ = [
    "EXEMPT_PREFIXES",
    "PURE",
    "EffectInference",
    "EffectSet",
    "EffectSummary",
    "EffectWitness",
    "check_contracts",
    "check_perf",
    "check_races",
    "effect_str",
    "find_pool_seams",
    "infer_effects",
    "is_exempt_module",
    "required_contracts",
    "run_effects",
]


def run_effects(
    table: SymbolTable, inference: EffectInference | None = None
) -> list[Finding]:
    """Run inference plus the race and contract passes over ``table``.

    (The perf pass is separate -- :func:`check_perf` -- so the CLI can
    toggle the families independently.)
    """
    if inference is None:
        inference = infer_effects(table)
    findings = check_races(table, inference)
    findings.extend(check_contracts(table, inference))
    return findings
