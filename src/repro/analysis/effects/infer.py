"""Interprocedural effect and purity inference.

For every function in the project symbol table this pass computes an
element of the effect lattice (:mod:`~repro.analysis.effects.lattice`)
by

1. extracting *direct* evidence from the function's own AST -- global
   reads/writes, known-effect calls (``print``, ``os.environ``,
   ``map_sequences``, ``time.time``, ...), in-place mutation of
   parameters (with local alias tracking), and
2. propagating summaries over the call graph: Tarjan SCCs are
   condensed and processed in reverse topological order, so recursion
   and mutual recursion converge in one inner fixpoint per cycle --
   union is monotone on the powerset lattice, so the fixpoint exists
   and is reached in at most ``|atoms|`` rounds per SCC.

The inference is *optimistic about the outside world*: a call that
does not resolve to a project function and does not match the curated
effect tables contributes nothing.  That keeps the lattice meaningful
(``numpy.sqrt`` does not poison every caller with "unknown") at the
cost of missing effects hidden behind dynamic dispatch; the contract
rules treat inferred effects as a *lower bound* accordingly.

Sanctioned cross-process plumbing -- ``repro.parallel``, ``repro.obs``
and ``repro.util.rng`` (named, seeded RNG streams) -- is effect-free
by fiat: its internal state handling is the audited implementation of
determinism, not a violation of it.

Receiver mutation (``self.x = ...``) is deliberately *not* a lattice
atom: policies and predictors are stateful objects by design.  What
the pool seam needs is argument mutation, which is tracked separately
per parameter (``EffectSummary.mutated_params``) and propagated
through calls by position/keyword.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.effects.lattice import (
    PURE,
    EffectSet,
    EffectSummary,
    EffectWitness,
)
from repro.analysis.dataflow.symbols import FunctionInfo, SymbolTable

__all__ = [
    "EXEMPT_PREFIXES",
    "CallEdge",
    "EffectInference",
    "infer_effects",
    "declared_contract",
    "is_exempt_module",
]

#: Module prefixes whose state handling is sanctioned plumbing.
EXEMPT_PREFIXES = ("repro.parallel", "repro.obs", "repro.util.rng")

#: Container / numpy methods that mutate their receiver in place.
MUTATING_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "remove",
        "discard",
        "clear",
        "appendleft",
        "extendleft",
        # numpy in-place operations
        "fill",
        "sort",
        "partition",
        "put",
        "itemset",
        "resize",
        "setflags",
        "byteswap",
    }
)

#: Bare-name calls with known effects.
_IO_NAME_CALLS = frozenset({"print", "open", "input"})

#: Attribute-call basenames that touch the filesystem (Path methods).
_IO_ATTR_CALLS = frozenset(
    {
        "write_text",
        "write_bytes",
        "read_text",
        "read_bytes",
        "mkdir",
        "rmdir",
        "unlink",
        "touch",
    }
)

#: Resolved-dotted-name prefixes with known effects.
_IO_DOTTED = (
    "sys.stdout",
    "sys.stderr",
    "shutil.",
    "logging.",
    "tempfile.",
    "os.remove",
    "os.rename",
    "os.makedirs",
    "os.rmdir",
    "json.dump",  # json.dump(obj, fp) writes a stream; json.dumps is pure
    "pickle.dump",
    "numpy.save",
    "numpy.load",
)

_ENV_DOTTED = (
    "os.environ",
    "os.getenv",
    "os.putenv",
    "os.cpu_count",
    "platform.",
    "socket.gethostname",
)

_SPAWN_DOTTED = (
    "subprocess.",
    "multiprocessing.",
    "concurrent.futures.",
    "threading.",
    "os.fork",
    "os.system",
    "os.popen",
    "os.exec",
    "os.spawn",
)

_SPAWN_BASENAMES = frozenset(
    {"map_sequences", "ProcessPoolExecutor", "ThreadPoolExecutor", "Popen"}
)

_NONDET_DOTTED = (
    "random.",
    "numpy.random.",
    "secrets.",
    "uuid.uuid",
    "os.urandom",
    "time.time",
    "time.monotonic",
    "time.perf_counter",
    "time.process_time",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.date.today",
)

#: ``json.dumps`` and friends that the prefixes above must not catch.
_PURE_DOTTED_EXACT = frozenset({"json.dumps", "pickle.dumps", "numpy.loadtxt"})


def is_exempt_module(modname: str) -> bool:
    """Whether a module is sanctioned cross-process plumbing."""
    return modname.startswith(EXEMPT_PREFIXES)


def declared_contract(fn: FunctionInfo) -> EffectSet | None:
    """The effect contract declared by ``@pure`` / ``@effects(...)``.

    Matched syntactically by decorator basename, so both
    ``@pure`` and ``@util_effects.pure`` resolve; ``None`` means the
    function declares nothing.
    """
    for deco in fn.node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        base = (
            target.attr
            if isinstance(target, ast.Attribute)
            else target.id
            if isinstance(target, ast.Name)
            else None
        )
        if base == "pure" and not isinstance(deco, ast.Call):
            return PURE
        if base == "effects" and isinstance(deco, ast.Call):
            atoms: set[str] = set()
            for arg in deco.args:
                if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                    atoms.add(arg.value)
            return frozenset(atoms)
    return None


@dataclass(frozen=True)
class CallEdge:
    """One resolved project-internal call.

    ``param_map`` pairs ``(callee_param, caller_param)`` for arguments
    whose value is (an alias of) a caller parameter -- the conduit
    along which parameter-mutation facts flow back to the caller.
    """

    callee: str
    line: int
    param_map: tuple[tuple[str, str], ...] = ()


@dataclass
class _DirectInfo:
    """Intraprocedural facts of one function."""

    effects: set[str] = field(default_factory=set)
    witnesses: list[EffectWitness] = field(default_factory=list)
    mutated_params: set[str] = field(default_factory=set)
    edges: list[CallEdge] = field(default_factory=list)

    def witness(self, atom: str, line: int, detail: str, name: str = "") -> None:
        self.effects.add(atom)
        self.witnesses.append(
            EffectWitness(atom=atom, line=line, detail=detail, name=name)
        )


def _local_bindings(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Names bound locally (params + stores), shadowing module globals."""
    a = fn.args
    names = {p.arg for p in (*a.posonlyargs, *a.args, *a.kwonlyargs)}
    if a.vararg:
        names.add(a.vararg.arg)
    if a.kwarg:
        names.add(a.kwarg.arg)
    for node in ast.walk(fn):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            names.add(node.id)
    for node in ast.walk(fn):
        if isinstance(node, ast.Global):
            names.difference_update(node.names)
    return names


def _root_name(expr: ast.expr) -> str | None:
    """The root identifier of an Attribute/Subscript chain, if any."""
    cur = expr
    while isinstance(cur, (ast.Attribute, ast.Subscript)):
        cur = cur.value
    return cur.id if isinstance(cur, ast.Name) else None


def _param_aliases(
    fn: ast.FunctionDef | ast.AsyncFunctionDef, params: set[str]
) -> dict[str, set[str]]:
    """Local name -> parameters it may alias (chain-rooted assignments).

    ``buf = item.data`` makes ``buf`` an alias of ``item``; aliases of
    aliases resolve by iterating to a (small) fixpoint.  Calls break
    the chain: ``x = item.copy()`` is a fresh object, not an alias.
    """
    aliases: dict[str, set[str]] = {p: {p} for p in params}
    for _ in range(4):
        changed = False
        for node in ast.walk(fn):
            if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            root = _root_name(node.value)
            if root is None or root not in aliases:
                continue
            merged = aliases.get(target.id, set()) | aliases[root]
            if merged != aliases.get(target.id):
                aliases[target.id] = merged
                changed = True
        if not changed:
            break
    return aliases


class _DirectExtractor:
    """Extracts one function's direct effects, witnesses and edges."""

    def __init__(self, fn: FunctionInfo, table: SymbolTable) -> None:
        self.fn = fn
        self.table = table
        self.info = _DirectInfo()
        self.globals_here = fn.module.mutable_globals
        self.locals_here = _local_bindings(fn.node)
        self.aliases = _param_aliases(fn.node, set(fn.params))
        #: (global name, line) pairs already reported as mutations --
        #: a load on the same line is the mutation itself, not a read.
        self._mutated_at: set[tuple[str, int]] = set()

    def run(self) -> _DirectInfo:
        for node in ast.walk(self.fn.node):
            if isinstance(node, ast.Global):
                for name in node.names:
                    self._mutated_at.add((name, node.lineno))
                    self.info.witness(
                        "writes-global", node.lineno, "rebinds", name
                    )
            elif isinstance(node, ast.Call):
                self._call(node)
            elif isinstance(node, (ast.Subscript, ast.Attribute)):
                self._store_or_env(node)
            elif isinstance(node, ast.AugAssign):
                self._augassign(node)
        # Global reads come last so mutation lines are known.
        for node in ast.walk(self.fn.node):
            if (
                isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
                and node.id in self.globals_here
                and node.id not in self.locals_here
                and (node.id, node.lineno) not in self._mutated_at
            ):
                self.info.witness(
                    "reads-global", node.lineno, "reads", node.id
                )
        return self.info

    # -- helpers --------------------------------------------------------------

    def _params_aliased_by(self, expr: ast.expr) -> set[str]:
        root = _root_name(expr)
        if root is None:
            return set()
        return self.aliases.get(root, set())

    def _mutates_params(self, expr: ast.expr, line: int, how: str) -> None:
        for param in self._params_aliased_by(expr):
            if param not in self.info.mutated_params:
                self.info.mutated_params.add(param)
                self.info.witnesses.append(
                    EffectWitness(
                        atom="mutates-param", line=line, detail=how, name=param
                    )
                )

    def _call(self, node: ast.Call) -> None:
        func = node.func
        basename = (
            func.attr
            if isinstance(func, ast.Attribute)
            else func.id
            if isinstance(func, ast.Name)
            else None
        )
        dotted = self.fn.module.resolve_dotted(func)

        # In-place mutation: receiver method or out= keyword.
        if isinstance(func, ast.Attribute) and basename in MUTATING_METHODS:
            self._mutates_params(
                func.value, node.lineno, f".{basename}() in place"
            )
            root = _root_name(func.value)
            if (
                isinstance(func.value, ast.Name)
                and root in self.globals_here
                and root not in self.locals_here
            ):
                self._mutated_at.add((root, node.lineno))
                self.info.witness(
                    "writes-global", node.lineno, f".{basename}() on", root
                )
        for kw in node.keywords:
            if kw.arg == "out":
                self._mutates_params(kw.value, node.lineno, "out= target")

        # Curated effect tables.
        self._known_effects(node, basename, dotted)

        # Project-internal call edge with parameter mapping.
        callee = self.table.resolve_callee(self.fn, node)
        if callee is not None and not is_exempt_module(callee.module.modname):
            callee_params = callee.params
            mapping: list[tuple[str, str]] = []
            for idx, arg in enumerate(node.args):
                if isinstance(arg, ast.Starred) or idx >= len(callee_params):
                    continue
                for param in self._params_aliased_by(arg):
                    mapping.append((callee_params[idx], param))
            for kw in node.keywords:
                if kw.arg is None:
                    continue
                for param in self._params_aliased_by(kw.value):
                    mapping.append((kw.arg, param))
            self.info.edges.append(
                CallEdge(
                    callee=callee.qualname,
                    line=node.lineno,
                    param_map=tuple(sorted(set(mapping))),
                )
            )

    def _known_effects(
        self, node: ast.Call, basename: str | None, dotted: str | None
    ) -> None:
        line = node.lineno
        if basename in _IO_NAME_CALLS and dotted == basename:
            self.info.witness("io", line, f"calls {basename}()")
            return
        if basename in _IO_ATTR_CALLS and isinstance(node.func, ast.Attribute):
            self.info.witness("io", line, f"calls .{basename}()")
            return
        if basename in _SPAWN_BASENAMES:
            self.info.witness("spawns", line, f"calls {basename}()")
            return
        if dotted is None or dotted in _PURE_DOTTED_EXACT:
            return
        if dotted.startswith(_IO_DOTTED):
            self.info.witness("io", line, f"calls {dotted}")
        elif dotted.startswith(_ENV_DOTTED):
            self.info.witness("env", line, f"reads {dotted}")
        elif dotted.startswith(_SPAWN_DOTTED):
            self.info.witness("spawns", line, f"calls {dotted}")
        elif dotted.startswith(_NONDET_DOTTED):
            self.info.witness("nondet", line, f"calls {dotted}")

    def _store_or_env(self, node: ast.Subscript | ast.Attribute) -> None:
        # os.environ[...] access outside a call position.
        if isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load):
            dotted = self.fn.module.resolve_dotted(node)
            if dotted is not None and dotted.startswith("os.environ"):
                self.info.witness("env", node.lineno, "reads os.environ")
        if not isinstance(node.ctx, (ast.Store, ast.Del)):
            return
        self._mutates_params(node.value, node.lineno, "stores into")
        value = node.value
        if (
            isinstance(value, ast.Name)
            and value.id in self.globals_here
            and value.id not in self.locals_here
        ):
            self._mutated_at.add((value.id, node.lineno))
            self.info.witness(
                "writes-global", node.lineno, "writes into", value.id
            )

    def _augassign(self, node: ast.AugAssign) -> None:
        # ``a[i] += x`` / ``a.field += x`` mutate the aliased object.
        # A bare-name ``a += x`` is a rebind for scalars, so it is
        # deliberately not counted (precision over recall).
        if isinstance(node.target, (ast.Subscript, ast.Attribute)):
            self._mutates_params(
                node.target.value, node.lineno, "augmented assignment into"
            )


@dataclass
class EffectInference:
    """Whole-program inference result over one symbol table."""

    table: SymbolTable
    summaries: dict[str, EffectSummary]
    edges: dict[str, tuple[CallEdge, ...]]
    contracts: dict[str, EffectSet]

    def effects_of(self, qualname: str) -> EffectSet:
        s = self.summaries.get(qualname)
        return s.effects if s is not None else PURE

    def reachable(self, qualname: str) -> list[str]:
        """Project functions reachable from ``qualname`` (inclusive),
        in deterministic BFS order, stopping at exempt modules."""
        if qualname not in self.summaries:
            return []
        seen = [qualname]
        seen_set = {qualname}
        queue = [qualname]
        while queue:
            cur = queue.pop(0)
            for edge in self.edges.get(cur, ()):
                if edge.callee not in seen_set and edge.callee in self.summaries:
                    seen_set.add(edge.callee)
                    seen.append(edge.callee)
                    queue.append(edge.callee)
        return seen

    def witness_chain(
        self, qualname: str, atom: str
    ) -> tuple[str, EffectWitness] | None:
        """First (owner, witness) pair proving ``atom`` from ``qualname``."""
        for reached in self.reachable(qualname):
            summary = self.summaries[reached]
            w = summary.witness_for(atom)
            if w is not None:
                return reached, w
        return None


def _tarjan_sccs(
    nodes: list[str], edges: dict[str, tuple[CallEdge, ...]]
) -> list[list[str]]:
    """Strongly connected components, in reverse topological order.

    Iterative Tarjan (the call graph can be deeper than the
    interpreter's recursion limit).  Tarjan emits SCCs children-first,
    which is exactly the order summary propagation wants.
    """
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[list[str]] = []
    counter = 0

    for root in nodes:
        if root in index:
            continue
        work: list[tuple[str, int]] = [(root, 0)]
        while work:
            node, i = work[-1]
            if i == 0:
                index[node] = low[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            succs = [e.callee for e in edges.get(node, ())]
            descended = False
            while i < len(succs):
                succ = succs[i]
                i += 1
                if succ not in index:
                    work[-1] = (node, i)
                    work.append((succ, 0))
                    descended = True
                    break
                if succ in on_stack:
                    low[node] = min(low[node], index[succ])
            if descended:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                scc: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc.append(member)
                    if member == node:
                        break
                sccs.append(scc)
    return sccs


def infer_effects(table: SymbolTable) -> EffectInference:
    """Run the full inference: direct extraction + SCC fixpoint."""
    direct: dict[str, _DirectInfo] = {}
    contracts: dict[str, EffectSet] = {}
    for qual, fn in table.functions.items():
        if is_exempt_module(fn.module.modname):
            direct[qual] = _DirectInfo()
        else:
            direct[qual] = _DirectExtractor(fn, table).run()
            declared = declared_contract(fn)
            if declared is not None:
                contracts[qual] = declared

    edges = {
        qual: tuple(e for e in info.edges if e.callee in direct)
        for qual, info in direct.items()
    }
    nodes = sorted(direct)

    # -- effect atoms: one pass over the condensation ------------------------
    effects: dict[str, set[str]] = {q: set(direct[q].effects) for q in nodes}
    sccs = _tarjan_sccs(nodes, edges)
    scc_of: dict[str, int] = {}
    for i, scc in enumerate(sccs):
        for member in scc:
            scc_of[member] = i
    for i, scc in enumerate(sccs):
        merged: set[str] = set()
        for member in scc:
            merged |= effects[member]
            for edge in edges.get(member, ()):
                if scc_of.get(edge.callee) != i:
                    merged |= effects[edge.callee]
        for member in scc:
            effects[member] = merged

    # -- parameter mutation: per-SCC inner fixpoint --------------------------
    mutated: dict[str, set[str]] = {q: set(direct[q].mutated_params) for q in nodes}
    for i, scc in enumerate(sccs):
        for _ in range(len(scc) + 1):
            changed = False
            for member in scc:
                for edge in edges.get(member, ()):
                    callee_mut = mutated.get(edge.callee, set())
                    for callee_param, caller_param in edge.param_map:
                        if (
                            callee_param in callee_mut
                            and caller_param not in mutated[member]
                        ):
                            mutated[member].add(caller_param)
                            changed = True
            if not changed:
                break

    summaries = {
        qual: EffectSummary(
            qualname=qual,
            effects=frozenset(effects[qual]),
            witnesses=list(direct[qual].witnesses),
            mutated_params=frozenset(mutated[qual]),
        )
        for qual in nodes
    }
    return EffectInference(
        table=table, summaries=summaries, edges=edges, contracts=contracts
    )
