"""Pool-seam race detector over inferred effect summaries.

:func:`repro.parallel.map_sequences` promises bit-identical merges
versus the serial path *provided the worker is a pure function of its
pickled argument*.  Earlier revisions checked that contract with a
depth-bounded syntactic walk in ``dataflow/determinism``; this module
supersedes it with the interprocedural effect summaries: unbounded
(SCC-correct) propagation, alias-aware argument-mutation tracking and
the full effect lattice.

Rules (ids retained from the superseded audit where behavior matches):

``dataflow/pool-worker-closure`` (error)
    The worker handed to ``map_sequences`` is a lambda or a function
    nested in the calling scope: unpicklable under ``spawn``, captures
    live parent state under ``fork``.
``dataflow/pool-global-mutation`` (error)
    The worker -- or anything it transitively calls -- mutates a
    mutable module-level binding.  Under a pool the mutation lands in
    a forked copy and is silently lost; inline it persists, so the
    two paths diverge.  One finding per mutation site.
``dataflow/pool-shared-state`` (warning)
    The worker transitively *reads* a mutable module global; the read
    is reproducible only while nothing mutates the global between
    runs.
``dataflow/pool-arg-mutation`` (error)
    The worker mutates its argument in place (directly or through a
    callee, via any local alias).  Pooled runs mutate the pickled
    copy while inline runs mutate the caller's object, so the two
    paths diverge in caller-visible state.
``dataflow/pool-impure-worker`` (warning)
    The worker's inferred effects include ``io``, ``env``, ``spawns``
    or ``nondet``: output interleaving, environment reads after fork,
    nested pools and unseeded entropy are all scheduling-dependent.

Workers that cross the seam through sanctioned plumbing
(``repro.obs`` telemetry shipping, ``repro.util.rng`` named streams)
stay clean: exempt modules contribute no witnesses.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.dataflow.symbols import FunctionInfo, ModuleInfo, SymbolTable
from repro.analysis.effects.infer import EffectInference, is_exempt_module
from repro.analysis.effects.lattice import effect_str
from repro.analysis.findings import Finding, Severity

__all__ = ["PoolSeam", "find_pool_seams", "check_races"]

#: Worker effect atoms that make pooled scheduling observable.
_IMPURE_ATOMS = frozenset({"io", "env", "spawns", "nondet"})


class PoolSeam:
    """One ``map_sequences`` call site and its worker expression."""

    def __init__(
        self,
        module: ModuleInfo,
        caller: FunctionInfo,
        call: ast.Call,
        worker: ast.expr,
    ) -> None:
        self.module = module
        self.caller = caller
        self.call = call
        self.worker = worker
        self.location = f"{module.path}:{call.lineno}"

    def resolve_worker(self, table: SymbolTable) -> FunctionInfo | None:
        """The module-level function the worker expression names."""
        if isinstance(self.worker, (ast.Name, ast.Attribute)):
            dotted = self.module.resolve_dotted(self.worker)
            if dotted is not None:
                return table.lookup(dotted, self.module)
        return None


def _is_map_sequences(mod: ModuleInfo, call: ast.Call) -> bool:
    func = call.func
    base = (
        func.attr
        if isinstance(func, ast.Attribute)
        else func.id
        if isinstance(func, ast.Name)
        else None
    )
    if base != "map_sequences":
        return False
    dotted = mod.resolve_dotted(func)
    return dotted is None or dotted.startswith("repro.") or dotted == "map_sequences"


def _worker_expr(call: ast.Call) -> ast.expr | None:
    if call.args:
        return call.args[0]
    for kw in call.keywords:
        if kw.arg == "worker":
            return kw.value
    return None


def _nested_def_names(fn: FunctionInfo) -> set[str]:
    names: set[str] = set()
    for node in ast.walk(fn.node):
        if node is not fn.node and isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            names.add(node.name)
    return names


def find_pool_seams(table: SymbolTable) -> Iterator[PoolSeam]:
    """Every ``map_sequences`` call site outside exempt modules."""
    for modname in sorted(table.modules):
        mod = table.modules[modname]
        if is_exempt_module(modname):
            continue
        for fn in table.functions.values():
            if fn.module is not mod:
                continue
            for node in ast.walk(fn.node):
                if isinstance(node, ast.Call) and _is_map_sequences(mod, node):
                    worker = _worker_expr(node)
                    if worker is not None:
                        yield PoolSeam(mod, fn, node, worker)


def _closure_finding(seam: PoolSeam) -> Finding:
    kind = (
        "lambda"
        if isinstance(seam.worker, ast.Lambda)
        else f"function nested in {seam.caller.qualname}"
    )
    return Finding(
        rule="dataflow/pool-worker-closure",
        severity=Severity.ERROR,
        location=seam.location,
        message=(
            f"map_sequences worker is a {kind}; workers must be "
            "module-level callables (unpicklable under spawn, captures "
            "live parent state under fork)"
        ),
    )


def _audit_worker(
    seam: PoolSeam,
    worker: FunctionInfo,
    inference: EffectInference,
    findings: list[Finding],
) -> None:
    table = inference.table
    # Global writes and reads: one finding per witness site, reported
    # at the function that owns the evidence.
    for qual in inference.reachable(worker.qualname):
        fn = table.functions[qual]
        summary = inference.summaries[qual]
        for w in summary.witnesses:
            if w.atom == "writes-global":
                findings.append(
                    Finding(
                        rule="dataflow/pool-global-mutation",
                        severity=Severity.ERROR,
                        location=f"{fn.module.path}:{w.line}",
                        message=(
                            f"{qual} (reached from pool worker at "
                            f"{seam.location}) {w.detail} module global "
                            f"{w.name!r}; under a process pool the mutation "
                            "is lost in the forked copy, so pooled and "
                            "inline runs diverge"
                        ),
                    )
                )
            elif w.atom == "reads-global":
                findings.append(
                    Finding(
                        rule="dataflow/pool-shared-state",
                        severity=Severity.WARNING,
                        location=f"{fn.module.path}:{w.line}",
                        message=(
                            f"{qual} (reached from pool worker at "
                            f"{seam.location}) reads mutable module global "
                            f"{w.name!r}; workers must be pure functions of "
                            "their pickled argument"
                        ),
                    )
                )

    # Argument mutation: the worker's own parameters only (a callee
    # mutating its params is fine unless the worker's argument flows
    # there, which the interprocedural summary already folds in).
    summary = inference.summaries[worker.qualname]
    for param in sorted(summary.mutated_params):
        w = next(
            (
                x
                for x in summary.witnesses
                if x.atom == "mutates-param" and x.name == param
            ),
            None,
        )
        site = w.line if w is not None else worker.node.lineno
        how = f" ({w.detail})" if w is not None else " (via a callee)"
        findings.append(
            Finding(
                rule="dataflow/pool-arg-mutation",
                severity=Severity.ERROR,
                location=f"{worker.module.path}:{site}",
                message=(
                    f"{worker.qualname} mutates its argument "
                    f"{param!r}{how}; under a pool the mutation lands in "
                    "the pickled copy while the inline path mutates the "
                    "caller's object, so the two paths diverge"
                ),
            )
        )

    impure = summary.effects & _IMPURE_ATOMS
    if impure:
        chains = []
        for atom in sorted(impure):
            chain = inference.witness_chain(worker.qualname, atom)
            if chain is not None:
                owner, w = chain
                chains.append(f"{atom}: {w.detail} in {owner} line {w.line}")
            else:
                chains.append(atom)
        findings.append(
            Finding(
                rule="dataflow/pool-impure-worker",
                severity=Severity.WARNING,
                location=f"{worker.module.path}:{worker.node.lineno}",
                message=(
                    f"pool worker {worker.qualname} (at {seam.location}) has "
                    f"inferred effects {effect_str(summary.effects)} "
                    f"[{'; '.join(chains)}]; pooled scheduling makes these "
                    "observable -- keep workers pure or route through the "
                    "sanctioned obs/rng plumbing"
                ),
            )
        )


def check_races(table: SymbolTable, inference: EffectInference) -> list[Finding]:
    """Audit every pool seam; returns the findings."""
    findings: list[Finding] = []
    audited: set[tuple[str, str]] = set()
    for seam in find_pool_seams(table):
        nested = _nested_def_names(seam.caller)
        if isinstance(seam.worker, ast.Lambda) or (
            isinstance(seam.worker, ast.Name) and seam.worker.id in nested
        ):
            findings.append(_closure_finding(seam))
            continue
        worker = seam.resolve_worker(table)
        if worker is None or is_exempt_module(worker.module.modname):
            continue
        key = (seam.location, worker.qualname)
        if key in audited:
            continue
        audited.add(key)
        _audit_worker(seam, worker, inference, findings)
    return findings
