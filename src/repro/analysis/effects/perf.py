"""Perf-smell rules for the frame-loop hot paths.

The ROADMAP's batched-engine item needs today's hot paths to be
batch-shaped; these rules flag the three smells that block it:

``perf/scalar-predict-in-loop`` (warning)
    A loop calls ``x.predict(...)`` per element on a loop-invariant
    receiver whose class also implements ``predict_series`` -- the
    batch walk-forward equivalent.  Only fires when the receiver's
    class resolves statically (annotation or a ``x = Cls(...)`` /
    ``x = Cls.fit(...)`` assignment in the same function), so
    predictors without a batch path are never flagged.
``perf/invariant-attr-in-loop`` (warning)
    Loop-invariant work repeated per iteration: a metric-instrument
    lookup with constant arguments (``m.counter("frames")`` resolves
    the same instrument every frame) or a deep attribute chain
    (``self.sim.cost_model.scale``) re-walked per iteration.  Both
    hoist verbatim above the loop.  Instrument lookups are also
    flagged in functions *called from* a hot-module loop -- the
    per-frame helpers the engine delegates to.
``perf/alloc-in-hot-loop`` (info)
    A container literal whose elements are all constants, allocated
    inside a hot-module loop; the identical object could be built
    once outside.
``perf/frame-object-churn`` (warning)
    A loop appends a freshly constructed project dataclass to a plain
    list -- one record object per frame.  The batched layers keep
    per-frame state in preallocated structured rows
    (:class:`repro.runtime.frametable.FrameTable`,
    ``TraceSet.add_frame``); building an object per frame resurrects
    the allocation churn those stores removed.  Scoped to the modules
    that *have* a columnar store to write into
    (``repro.runtime.engine``, ``repro.profiling``); the golden
    scalar paths elsewhere (e.g. ``repro.hw``'s per-task timings)
    stay un-nagged.

"Hot modules" are the per-frame layers: ``repro.runtime``,
``repro.hw``, ``repro.profiling`` and ``repro.core``.  The predict
rule runs repo-wide (a slow evaluation loop in ``experiments`` costs
wall-clock time too).
"""

from __future__ import annotations

import ast

from repro.analysis.dataflow.symbols import FunctionInfo, SymbolTable
from repro.analysis.effects.infer import is_exempt_module
from repro.analysis.findings import Finding, Severity

__all__ = ["HOT_MODULE_PREFIXES", "check_perf"]

#: Module prefixes whose loops are per-frame hot paths.
HOT_MODULE_PREFIXES = ("repro.runtime", "repro.hw", "repro.profiling", "repro.core")

#: Modules with a columnar frame store: per-frame record objects are
#: churn *here* because the structured-row alternative exists.
_CHURN_MODULE_PREFIXES = ("repro.runtime.engine", "repro.profiling")

#: Metric-registry lookup basenames (repro.obs.metrics instruments).
_INSTRUMENT_LOOKUPS = frozenset({"counter", "histogram", "gauge"})

_Loop = (ast.For, ast.AsyncFor, ast.While)


def _is_hot(modname: str) -> bool:
    return modname.startswith(HOT_MODULE_PREFIXES)


def _dotted_chain(expr: ast.expr) -> str | None:
    """Render a pure Name/Attribute chain (``a.b.c``), else ``None``."""
    parts: list[str] = []
    cur = expr
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if not isinstance(cur, ast.Name):
        return None
    parts.append(cur.id)
    return ".".join(reversed(parts))


def _assigned_names(node: ast.AST) -> set[str]:
    """Every name (re)bound anywhere inside ``node``."""
    names: set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and isinstance(sub.ctx, (ast.Store, ast.Del)):
            names.add(sub.id)
    return names


def _constant_args(call: ast.Call) -> bool:
    if not call.args and not call.keywords:
        return False
    return all(isinstance(a, ast.Constant) for a in call.args) and all(
        kw.arg is not None and isinstance(kw.value, ast.Constant)
        for kw in call.keywords
    )


def _local_lists(fn: FunctionInfo) -> set[str]:
    """Names bound to a plain list somewhere in the function (list
    literal, comprehension, ``list(...)`` call, or ``list`` annotation)."""
    out: set[str] = set()
    for node in ast.walk(fn.node):
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
        ):
            value = node.value
            if isinstance(value, (ast.List, ast.ListComp)) or (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id == "list"
            ):
                out.add(node.targets[0].id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            ann = node.annotation
            base = ann.value if isinstance(ann, ast.Subscript) else ann
            if isinstance(base, ast.Name) and base.id in ("list", "List"):
                out.add(node.target.id)
    return out


def _is_dataclass_qual(table: SymbolTable, cls_qual: str) -> bool:
    """True when ``cls_qual`` is a ``@dataclass``-decorated project class."""
    modname, _, clsname = cls_qual.rpartition(".")
    mod = table.modules.get(modname)
    if mod is None:
        return False
    for stmt in mod.tree.body:
        if not (isinstance(stmt, ast.ClassDef) and stmt.name == clsname):
            continue
        for dec in stmt.decorator_list:
            base = dec.func if isinstance(dec, ast.Call) else dec
            dotted = mod.resolve_dotted(base)
            if dotted in ("dataclass", "dataclasses.dataclass"):
                return True
    return False


def _local_classes(fn: FunctionInfo, table: SymbolTable) -> dict[str, str]:
    """Local name -> class qualname, from annotations and constructor
    or ``Cls.fit(...)`` assignments in the function body."""
    mod = fn.module
    out: dict[str, str] = {}

    def resolve_cls(expr: ast.expr) -> str | None:
        dotted = mod.resolve_dotted(expr)
        if dotted is None:
            return None
        if dotted in table.class_methods:
            return dotted
        qualified = f"{mod.modname}.{dotted}"
        return qualified if qualified in table.class_methods else None

    a = fn.node.args
    for arg in (*a.posonlyargs, *a.args, *a.kwonlyargs):
        if arg.annotation is not None:
            cls = resolve_cls(arg.annotation)
            if cls is not None:
                out[arg.arg] = cls
    for node in ast.walk(fn.node):
        if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            cls = resolve_cls(node.annotation)
            if cls is not None:
                out[node.target.id] = cls
        elif (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and isinstance(node.value, ast.Call)
        ):
            func = node.value.func
            target: ast.expr | None = None
            if isinstance(func, ast.Attribute) and func.attr in (
                "fit",
                "from_dict",
            ):
                target = func.value
            elif isinstance(func, (ast.Name, ast.Attribute)):
                target = func
            if target is not None:
                cls = resolve_cls(target)
                if cls is not None:
                    out[node.targets[0].id] = cls
    return out


class _FunctionScanner:
    """Scans one function's loops for the three smells."""

    def __init__(
        self, fn: FunctionInfo, table: SymbolTable, findings: list[Finding]
    ) -> None:
        self.fn = fn
        self.table = table
        self.findings = findings
        self.hot = _is_hot(fn.module.modname)
        self.churn = fn.module.modname.startswith(_CHURN_MODULE_PREFIXES)
        self._classes: dict[str, str] | None = None
        self._lists: set[str] | None = None
        # Attribute nodes that are an inner segment of a longer chain
        # or the callee of a call -- handled at the outer node.
        self._inner: set[int] = set()
        self._call_funcs: set[int] = set()
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Attribute):
                if isinstance(node.value, ast.Attribute):
                    self._inner.add(id(node.value))
            elif isinstance(node, ast.Call):
                for part in ast.walk(node.func):
                    if isinstance(part, ast.Attribute):
                        self._call_funcs.add(id(part))

    @property
    def classes(self) -> dict[str, str]:
        if self._classes is None:
            self._classes = _local_classes(self.fn, self.table)
        return self._classes

    @property
    def lists(self) -> set[str]:
        if self._lists is None:
            self._lists = _local_lists(self.fn)
        return self._lists

    def run(self) -> None:
        todo: list[ast.AST] = [self.fn.node]
        while todo:
            node = todo.pop()
            for child in ast.iter_child_nodes(node):
                if isinstance(child, _Loop):
                    self._scan_loop(child)
                    todo.append(child)  # nested loops get their own scan
                elif not isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
                ):
                    todo.append(child)

    def _emit(self, rule: str, severity: Severity, line: int, msg: str) -> None:
        self.findings.append(
            Finding(
                rule=rule,
                severity=severity,
                location=f"{self.fn.module.path}:{line}",
                message=msg,
            )
        )

    def _loop_body_nodes(self, loop: ast.AST) -> list[ast.AST]:
        """Nodes of ``loop`` excluding nested loops (scanned on their
        own, against their own assigned-name set)."""
        out: list[ast.AST] = []
        todo: list[ast.AST] = [loop]
        while todo:
            node = todo.pop()
            out.append(node)
            for child in ast.iter_child_nodes(node):
                if not isinstance(
                    child,
                    (*_Loop, ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda),
                ):
                    todo.append(child)
        return out

    def _scan_loop(self, loop: ast.AST) -> None:
        assigned = _assigned_names(loop)
        seen: set[tuple[str, str]] = set()
        for node in self._loop_body_nodes(loop):
            if isinstance(node, ast.Call):
                self._predict_call(node, assigned, seen)
                if self.hot:
                    self._instrument_lookup(node, assigned, seen)
                if self.churn:
                    self._record_churn(node, seen)
            elif isinstance(node, ast.Attribute) and self.hot:
                self._deep_chain(node, assigned, seen)
            elif self.hot and isinstance(node, (ast.Dict, ast.List, ast.Set)):
                # Tuples are excluded: constant tuples are folded into
                # co_consts and unpacking assignments never build one.
                self._const_alloc(node, seen)

    def _predict_call(
        self, node: ast.Call, assigned: set[str], seen: set[tuple[str, str]]
    ) -> None:
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "predict"):
            return
        if not isinstance(func.value, ast.Name) or func.value.id in assigned:
            return
        cls = self.classes.get(func.value.id)
        if cls is None:
            return
        methods = self.table.class_methods.get(cls, {})
        if "predict" not in methods or "predict_series" not in methods:
            return
        key = ("predict", f"{func.value.id}:{node.lineno}")
        if key in seen:
            return
        seen.add(key)
        self._emit(
            "perf/scalar-predict-in-loop",
            Severity.WARNING,
            node.lineno,
            (
                f"scalar {func.value.id}.predict() per loop iteration; "
                f"{cls} implements predict_series -- batch the walk-forward "
                "evaluation instead of calling predict per element"
            ),
        )

    def _instrument_lookup(
        self, node: ast.Call, assigned: set[str], seen: set[tuple[str, str]]
    ) -> None:
        func = node.func
        if not (
            isinstance(func, ast.Attribute)
            and func.attr in _INSTRUMENT_LOOKUPS
            and _constant_args(node)
        ):
            return
        chain = _dotted_chain(func)
        if chain is None or chain.split(".", 1)[0] in assigned:
            return
        key = ("instrument", chain + str(node.lineno))
        if key in seen:
            return
        seen.add(key)
        self._emit(
            "perf/invariant-attr-in-loop",
            Severity.WARNING,
            node.lineno,
            (
                f"{chain}(...) with constant arguments resolves the same "
                "instrument every iteration; hoist the instrument above "
                "the loop"
            ),
        )

    def _deep_chain(
        self, node: ast.Attribute, assigned: set[str], seen: set[tuple[str, str]]
    ) -> None:
        if (
            id(node) in self._inner
            or id(node) in self._call_funcs
            or not isinstance(node.ctx, ast.Load)
        ):
            return
        chain = _dotted_chain(node)
        if chain is None:
            return
        parts = chain.split(".")
        if len(parts) < 3 or parts[0] in assigned:  # root + >= 2 attributes
            return
        key = ("chain", chain)
        if key in seen:
            return
        seen.add(key)
        self._emit(
            "perf/invariant-attr-in-loop",
            Severity.WARNING,
            node.lineno,
            (
                f"attribute chain {chain} is loop-invariant (root "
                f"{parts[0]!r} is never rebound in the loop); hoist it to "
                "a local before the loop"
            ),
        )

    def _record_churn(self, node: ast.Call, seen: set[tuple[str, str]]) -> None:
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "append"):
            return
        # Only plain lists count: an ``append`` on a columnar store
        # (TraceSet) or any other object is that type's own API.
        if not isinstance(func.value, ast.Name) or func.value.id not in self.lists:
            return
        if len(node.args) != 1 or node.keywords:
            return
        arg = node.args[0]
        if not isinstance(arg, ast.Call):
            return
        dotted = self.fn.module.resolve_dotted(arg.func)
        if dotted is None:
            return
        if dotted not in self.table.class_methods:
            dotted = f"{self.fn.module.modname}.{dotted}"
            if dotted not in self.table.class_methods:
                return
        if not _is_dataclass_qual(self.table, dotted):
            return
        cls = dotted.rpartition(".")[2]
        key = ("churn", f"{func.value.id}:{node.lineno}")
        if key in seen:
            return
        seen.add(key)
        self._emit(
            "perf/frame-object-churn",
            Severity.WARNING,
            node.lineno,
            (
                f"one {cls} object allocated and appended to "
                f"{func.value.id!r} per loop iteration; this module has "
                "columnar frame stores (FrameTable, TraceSet.add_frame) "
                "-- write structured rows instead of building a record "
                "object per frame"
            ),
        )

    def _const_alloc(self, node: ast.expr, seen: set[tuple[str, str]]) -> None:
        elts: list[ast.expr]
        if isinstance(node, ast.Dict):
            elts = [e for e in (*node.keys, *node.values) if e is not None]
        else:
            assert isinstance(node, (ast.List, ast.Set))
            elts = list(node.elts)
        if not elts or not all(isinstance(e, ast.Constant) for e in elts):
            return
        kind = type(node).__name__.lower()
        key = ("alloc", f"{kind}:{node.lineno}:{node.col_offset}")
        if key in seen:
            return
        seen.add(key)
        self._emit(
            "perf/alloc-in-hot-loop",
            Severity.INFO,
            node.lineno,
            (
                f"constant {kind} literal allocated every iteration of a "
                "hot-path loop; build it once outside the loop"
            ),
        )


def _loop_callees(table: SymbolTable) -> dict[str, int]:
    """Hot-module functions called from inside a hot-module loop,
    mapped to one representative call-site line."""
    out: dict[str, int] = {}
    for fn in table.functions.values():
        if not _is_hot(fn.module.modname):
            continue
        for loop in ast.walk(fn.node):
            if not isinstance(loop, _Loop):
                continue
            for node in ast.walk(loop):
                if not isinstance(node, ast.Call):
                    continue
                callee = table.resolve_callee(fn, node)
                if (
                    callee is not None
                    and _is_hot(callee.module.modname)
                    and not is_exempt_module(callee.module.modname)
                ):
                    out.setdefault(callee.qualname, node.lineno)
    return out


def _scan_hot_callee(
    fn: FunctionInfo, call_line: int, findings: list[Finding]
) -> None:
    """Instrument-lookup scan over a whole per-frame helper body."""
    seen: set[str] = set()
    for node in ast.walk(fn.node):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (
            isinstance(func, ast.Attribute)
            and func.attr in _INSTRUMENT_LOOKUPS
            and _constant_args(node)
        ):
            continue
        chain = _dotted_chain(func)
        if chain is None or chain + str(node.lineno) in seen:
            continue
        seen.add(chain + str(node.lineno))
        findings.append(
            Finding(
                rule="perf/invariant-attr-in-loop",
                severity=Severity.WARNING,
                location=f"{fn.module.path}:{node.lineno}",
                message=(
                    f"{chain}(...) with constant arguments runs per frame "
                    f"({fn.qualname} is called from a hot loop at line "
                    f"{call_line}); resolve the instrument once and reuse it"
                ),
            )
        )


def check_perf(table: SymbolTable) -> list[Finding]:
    """Run the perf-smell rules over every analyzed function."""
    findings: list[Finding] = []
    scanned_in_loop: set[str] = set()
    for qual in sorted(table.functions):
        fn = table.functions[qual]
        if is_exempt_module(fn.module.modname):
            continue
        _FunctionScanner(fn, table, findings).run()
        scanned_in_loop.add(qual)
    for qual, line in sorted(_loop_callees(table).items()):
        fn = table.functions[qual]
        # Loops inside the callee were already scanned above; this
        # pass covers straight-line per-frame bodies.
        if any(isinstance(n, _Loop) for n in ast.walk(fn.node)):
            continue
        _scan_hot_callee(fn, line, findings)
    return findings
