"""SARIF 2.1.0 export of analysis findings.

`SARIF <https://docs.oasis-open.org/sarif/sarif/v2.1.0/sarif-v2.1.0.html>`_
is the interchange format GitHub code scanning ingests
(``github/codeql-action/upload-sarif``), so emitting it turns every
finding into an inline PR annotation.  One run, one tool
(``repro.analysis``), one result per finding:

* ``path:line`` locations map to ``physicalLocation`` (relative URI +
  ``startLine``), which is what the PR diff annotator needs;
* graph-element locations (edges, tasks, scenarios) have no file, so
  they map to ``logicalLocations`` with the element description as
  the fully-qualified name.

Severity maps ``INFO -> note``, ``WARNING -> warning``,
``ERROR -> error``.  Results are sorted by (path, line, rule) and the
JSON is key-sorted, so identical findings serialize byte-identically
regardless of discovery order.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Mapping, Sequence

from repro.analysis.findings import Finding, Severity, sort_key
from repro.analysis.suppress import split_location

__all__ = ["SARIF_VERSION", "findings_to_sarif", "findings_to_sarif_json"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"

_LEVELS: Mapping[Severity, str] = {
    Severity.INFO: "note",
    Severity.WARNING: "warning",
    Severity.ERROR: "error",
}


def _relative_uri(path: str) -> str:
    """Repo-relative forward-slash URI when possible, else as-is."""
    p = Path(path)
    if p.is_absolute():
        try:
            p = p.relative_to(Path.cwd())
        except ValueError:
            pass
    return p.as_posix()


def _result(finding: Finding) -> dict[str, object]:
    result: dict[str, object] = {
        "ruleId": finding.rule,
        "level": _LEVELS[finding.severity],
        "message": {"text": finding.message},
    }
    site = split_location(finding.location)
    if site is not None:
        path, line = site
        result["locations"] = [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": _relative_uri(path)},
                    "region": {"startLine": line},
                }
            }
        ]
    else:
        result["locations"] = [
            {
                "logicalLocations": [
                    {"fullyQualifiedName": finding.location}
                ]
            }
        ]
    return result


def findings_to_sarif(
    findings: Sequence[Finding],
    rule_descriptions: Mapping[str, str] | None = None,
) -> dict[str, object]:
    """Build the SARIF log object for ``findings``.

    ``rule_descriptions`` optionally maps rule ids to short
    descriptions for the ``tool.driver.rules`` metadata; rules that
    appear in findings but not in the mapping still get an entry
    (SARIF requires every ``ruleId`` to be declarable).
    """
    descriptions = dict(rule_descriptions or {})
    rule_ids = sorted({f.rule for f in findings} | set(descriptions))
    rules = []
    for rule_id in rule_ids:
        entry: dict[str, object] = {"id": rule_id, "name": rule_id}
        if rule_id in descriptions:
            entry["shortDescription"] = {"text": descriptions[rule_id]}
        rules.append(entry)
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro.analysis",
                        "rules": rules,
                    }
                },
                "results": [_result(f) for f in sorted(findings, key=sort_key)],
            }
        ],
    }


def findings_to_sarif_json(
    findings: Sequence[Finding],
    rule_descriptions: Mapping[str, str] | None = None,
) -> str:
    """Serialized SARIF log (stable key order)."""
    return json.dumps(
        findings_to_sarif(findings, rule_descriptions), indent=2, sort_keys=True
    )
