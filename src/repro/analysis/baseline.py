"""Committed finding baselines: hard-fail only on *new* violations.

A baseline file records the accepted findings of a previous run as
``(rule, path, message)`` fingerprints -- deliberately ignoring line
numbers, so unrelated edits that shift code do not resurrect accepted
findings.  The CLI's ``--baseline`` flag subtracts the baseline from
the current run before deciding the exit status; ``--write-baseline``
refreshes the file.

The repository's own baseline (``analysis-baseline.json`` at the repo
root) is committed **empty**: the codebase carries no accepted
violations, and CI fails on the first new one.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from repro.analysis.findings import Finding
from repro.analysis.suppress import split_location

__all__ = [
    "fingerprint",
    "load_baseline",
    "write_baseline",
    "filter_baselined",
]

_VERSION = 1

Fingerprint = tuple[str, str, str]


def fingerprint(finding: Finding) -> Fingerprint:
    """Stable identity of a finding across line renumbering."""
    site = split_location(finding.location)
    path = site[0] if site is not None else finding.location
    return (finding.rule, path, finding.message)


def load_baseline(path: str | Path) -> set[Fingerprint]:
    """Read a baseline file into a fingerprint set."""
    doc = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(doc, dict) or doc.get("version") != _VERSION:
        raise ValueError(
            f"{path}: not a repro.analysis baseline (expected "
            f'{{"version": {_VERSION}, ...}})'
        )
    out: set[Fingerprint] = set()
    for entry in doc.get("findings", []):
        out.add((str(entry["rule"]), str(entry["path"]), str(entry["message"])))
    return out


def write_baseline(path: str | Path, findings: Iterable[Finding]) -> None:
    """Write the findings' fingerprints as a fresh baseline."""
    entries = sorted({fingerprint(f) for f in findings})
    doc = {
        "version": _VERSION,
        "findings": [
            {"rule": rule, "path": fpath, "message": message}
            for rule, fpath, message in entries
        ],
    }
    Path(path).write_text(
        json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def filter_baselined(
    findings: Iterable[Finding], baseline: set[Fingerprint]
) -> list[Finding]:
    """Findings whose fingerprint is *not* in the baseline."""
    return [f for f in findings if fingerprint(f) not in baseline]
