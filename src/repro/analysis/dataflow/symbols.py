"""Project symbol table and call graph for the dataflow passes.

Parses every python file under the given roots once and indexes:

* modules (dotted name, AST, per-module import aliases),
* functions and methods by fully-qualified name, with the unit
  dimensions of annotated parameters and returns
  (:mod:`repro.util.quantity` vocabulary, matched by annotation name),
* class attribute units, harvested from class-level ``AnnAssign``
  (dataclass fields) across the whole project, keyed by attribute
  *name* -- attribute accesses are resolved without type inference,
  so a name used with conflicting units in two classes is dropped,
* module-level mutable bindings (the determinism audit's prey),
* a call graph over *resolvable* calls: dotted names through import
  aliases, bare names in the same module, ``self.method()`` within a
  class, and ``ClassName(...)`` constructors.

The table is deliberately syntactic: no imports are executed, so it
can index fixture files with seeded bugs safely.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from repro.analysis.dataflow.dims import Dim, parse_dim
from repro.util.quantity import QUANTITY_DIMS, SUFFIX_DIMS

__all__ = [
    "ModuleInfo",
    "FunctionInfo",
    "SymbolTable",
    "build_symbol_table",
    "annotation_dim",
    "suffix_dim",
    "iter_source_files",
]

#: Value nodes considered mutable when bound at module level.
_MUTABLE_CALLS = frozenset(
    {"list", "dict", "set", "defaultdict", "OrderedDict", "Counter", "deque"}
)


def annotation_dim(node: ast.expr | None) -> Dim | None:
    """Dimension named by an annotation expression, if any.

    Matches the quantity vocabulary by (dotted) basename, so
    ``Milliseconds``, ``quantity.Milliseconds`` and string annotations
    like ``"Milliseconds"`` all resolve.
    """
    if node is None:
        return None
    name: str | None = None
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):
        name = node.attr
    elif isinstance(node, ast.Constant) and isinstance(node.value, str):
        name = node.value.rsplit(".", 1)[-1]
    if name is None:
        return None
    unit = QUANTITY_DIMS.get(name)
    return parse_dim(unit) if unit is not None else None


def suffix_dim(identifier: str) -> Dim | None:
    """Dimension implied by an identifier's naming-convention suffix.

    Case-insensitive, so constants (``_MIN_PREDICTION_MS``) follow the
    same convention as variables (``stall_ms``).
    """
    lowered = identifier.lower()
    for suffix, unit in SUFFIX_DIMS.items():
        if lowered.endswith(suffix):
            return parse_dim(unit)
    return None


@dataclass
class ModuleInfo:
    """One parsed source file."""

    path: str
    modname: str
    tree: ast.Module
    source: str
    #: local name -> absolute dotted path (import indexing).
    aliases: dict[str, str] = field(default_factory=dict)
    #: module-level names bound to mutable containers (non-CONSTANT case).
    mutable_globals: dict[str, int] = field(default_factory=dict)

    def resolve_dotted(self, node: ast.expr) -> str | None:
        """Absolute dotted name of an attribute/name chain, or None."""
        parts: list[str] = []
        cur: ast.expr = node
        while isinstance(cur, ast.Attribute):
            parts.append(cur.attr)
            cur = cur.value
        if not isinstance(cur, ast.Name):
            return None
        parts.append(cur.id)
        parts.reverse()
        parts[0] = self.aliases.get(parts[0], parts[0])
        return ".".join(parts)


@dataclass
class FunctionInfo:
    """One function or method."""

    qualname: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    module: ModuleInfo
    class_name: str | None = None
    #: parameter name -> dimension from an *annotation* (high trust).
    param_ann: dict[str, Dim] = field(default_factory=dict)
    #: dimension of the annotated return, if any.
    return_ann: Dim | None = None

    @property
    def is_method(self) -> bool:
        return self.class_name is not None

    @property
    def params(self) -> list[str]:
        a = self.node.args
        names = [p.arg for p in (*a.posonlyargs, *a.args, *a.kwonlyargs)]
        if self.is_method and names and names[0] in ("self", "cls"):
            names = names[1:]
        return names


class SymbolTable:
    """Whole-program index over the analysis roots."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        #: class qualname -> {method name -> function qualname}
        self.class_methods: dict[str, dict[str, str]] = {}
        #: class qualname -> {field name -> Dim} from AnnAssign.
        self.class_fields: dict[str, dict[str, Dim]] = {}
        #: attribute name -> Dim, merged project-wide (conflicts dropped).
        self.attr_units: dict[str, Dim | None] = {}

    # -- construction --------------------------------------------------------

    def add_module(self, path: str, modname: str, source: str) -> None:
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError:
            return
        mod = ModuleInfo(path=path, modname=modname, tree=tree, source=source)
        self._index_imports(mod)
        self._index_globals(mod)
        self.modules[modname] = mod
        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(mod, stmt, class_name=None)
            elif isinstance(stmt, ast.ClassDef):
                self._add_class(mod, stmt)

    def _index_imports(self, mod: ModuleInfo) -> None:
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    mod.aliases[local] = target
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    mod.aliases[local] = f"{node.module}.{alias.name}"

    def _index_globals(self, mod: ModuleInfo) -> None:
        for stmt in mod.tree.body:
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            if value is None or not _is_mutable_value(value):
                continue
            for t in targets:
                if isinstance(t, ast.Name) and not t.id.isupper() and t.id != "__all__":
                    mod.mutable_globals[t.id] = stmt.lineno

    def _add_class(self, mod: ModuleInfo, node: ast.ClassDef) -> None:
        cls_qual = f"{mod.modname}.{node.name}"
        methods: dict[str, str] = {}
        fields: dict[str, Dim] = {}
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = self._add_function(mod, stmt, class_name=node.name)
                methods[stmt.name] = info.qualname
            elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                dim = annotation_dim(stmt.annotation)
                if dim is not None:
                    fields[stmt.target.id] = dim
        self.class_methods[cls_qual] = methods
        self.class_fields[cls_qual] = fields
        for name, dim in fields.items():
            if name in self.attr_units and self.attr_units[name] != dim:
                self.attr_units[name] = None  # conflicting uses: drop
            else:
                self.attr_units.setdefault(name, dim)

    def _add_function(
        self,
        mod: ModuleInfo,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        class_name: str | None,
    ) -> FunctionInfo:
        qual = (
            f"{mod.modname}.{class_name}.{node.name}"
            if class_name
            else f"{mod.modname}.{node.name}"
        )
        info = FunctionInfo(
            qualname=qual, node=node, module=mod, class_name=class_name
        )
        a = node.args
        for p in (*a.posonlyargs, *a.args, *a.kwonlyargs):
            dim = annotation_dim(p.annotation)
            if dim is not None:
                info.param_ann[p.arg] = dim
        info.return_ann = annotation_dim(node.returns)
        self.functions[qual] = info
        return info

    # -- resolution ----------------------------------------------------------

    def resolve_callee(
        self, caller: FunctionInfo, call: ast.Call
    ) -> FunctionInfo | None:
        """Resolve a call expression to a project function, if possible."""
        func = call.func
        mod = caller.module
        # self.method() within the same class.
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
            and caller.class_name is not None
        ):
            methods = self.class_methods.get(f"{mod.modname}.{caller.class_name}", {})
            qual = methods.get(func.attr)
            return self.functions.get(qual) if qual else None
        dotted = mod.resolve_dotted(func)
        if dotted is None:
            return None
        return self.lookup(dotted, mod)

    def lookup(self, dotted: str, mod: ModuleInfo | None = None) -> FunctionInfo | None:
        """Find a function by absolute dotted name (module fn, method,
        or ``Class`` constructor resolving to ``Class.__init__``)."""
        if dotted in self.functions:
            return self.functions[dotted]
        if dotted in self.class_methods:  # constructor
            init = self.class_methods[dotted].get("__init__")
            if init:
                return self.functions.get(init)
            return None
        # A bare name used in its defining module.
        if mod is not None and "." not in dotted:
            return self.functions.get(f"{mod.modname}.{dotted}")
        return None

    def constructor_fields(self, dotted: str) -> dict[str, Dim] | None:
        """Field units of a (likely dataclass) constructor call."""
        return self.class_fields.get(dotted)


def _is_mutable_value(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        fn = node.func
        base = fn.attr if isinstance(fn, ast.Attribute) else (
            fn.id if isinstance(fn, ast.Name) else None
        )
        return base in _MUTABLE_CALLS
    return False


def _module_name(path: Path) -> str:
    """Dotted module name from a file path (walking up ``__init__.py``)."""
    path = path.resolve()
    parts = [path.stem] if path.stem != "__init__" else []
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts) or path.stem


def iter_source_files(paths: Iterable[Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated file list."""
    seen: set[Path] = set()
    out: list[Path] = []
    for p in paths:
        candidates = sorted(p.rglob("*.py")) if p.is_dir() else [p]
        for c in candidates:
            if c.suffix == ".py" and c not in seen:
                seen.add(c)
                out.append(c)
    return out


def build_symbol_table(paths: Iterable[Path]) -> SymbolTable:
    """Parse every ``.py`` file under ``paths`` into one symbol table."""
    table = SymbolTable()
    for f in iter_source_files(paths):
        try:
            source = f.read_text(encoding="utf-8")
        except OSError:
            continue
        table.add_module(str(f), _module_name(f), source)
    return table
