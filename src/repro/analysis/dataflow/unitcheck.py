"""Interprocedural unit inference over the project symbol table.

Seeds dimensions from the :mod:`repro.util.quantity` annotations on
``core/``, ``hw/`` and ``graph/`` signatures (plus class fields and
identifier-suffix conventions) and propagates them through
assignments, arithmetic and resolvable calls, to a fixpoint of
per-function return dimensions.  A final pass reports:

``dataflow/unit-mix`` (error)
    Addition, subtraction, comparison or ``+=`` between two values of
    confidently different dimensions -- the ms+KiB class of bug.
``dataflow/unit-assign`` (error)
    A value of one dimension assigned to a variable whose name or
    annotation claims another (``stall_ms = bytes / bw`` is seconds).
``dataflow/unit-arg`` (error)
    An argument of one dimension passed to a parameter annotated with
    another.
``dataflow/unit-return`` (error)
    A return whose inferred dimension contradicts the function's
    annotated quantity.
``dataflow/unitless-return`` (info)
    A function with quantity-annotated parameters whose return
    dimension infers to a vocabulary unit, but whose signature drops
    it -- annotating the return keeps callers in the unit discipline.

Only conflicts between two *canonical* vocabulary dimensions are
reported (see :mod:`repro.analysis.dataflow.dims`), which keeps the
error rules high-precision: residual compounds from partially-known
products stay silent.  :mod:`repro.util.units` and the declared
conversion helpers are the sanctioned crossing points and are exempt.
"""

from __future__ import annotations

import ast
from typing import Callable, Iterable, Sequence

from repro.analysis.dataflow.dims import (
    DIMENSIONLESS,
    Dim,
    dim_div,
    dim_mul,
    dim_pow,
    dim_str,
    dims_conflict,
    is_canonical,
    parse_dim,
)
from repro.analysis.dataflow.symbols import (
    FunctionInfo,
    SymbolTable,
    annotation_dim,
    suffix_dim,
)
from repro.analysis.findings import Finding, Severity
from repro.util.quantity import CONVERSION_CONSTANTS, CONVERSION_FUNCTIONS

__all__ = ["infer_return_dims", "check_units"]

#: Modules that *are* the conversion boundary: no unit findings inside.
EXEMPT_MODULES = frozenset({"repro.util.units", "repro.util.quantity"})

#: Conversion helpers by basename (receiver types are not inferred, so
#: ``self.platform.cycles_to_ms(...)`` must match by attribute name).
_CONVERSION_BY_BASENAME = {
    qual.rsplit(".", 1)[-1]: spec for qual, spec in CONVERSION_FUNCTIONS.items()
}

#: Builtins through which a dimension passes unchanged.
_TRANSPARENT_CALLS = frozenset({"float", "int", "abs", "round", "min", "max", "sum"})

_ADDITIVE = (ast.Add, ast.Sub)


def _swap_dim(d: Dim, src: str, dst: str) -> Dim:
    out = dict(d)
    if src not in out:
        return d
    exp = out.pop(src)
    out[dst] = out.get(dst, 0) + exp
    return tuple(sorted((t, e) for t, e in out.items() if e != 0))


class _Evaluator:
    """Single-function abstract interpreter over dimensions."""

    def __init__(
        self,
        fn: FunctionInfo,
        table: SymbolTable,
        returns: dict[str, Dim | None],
        report: Callable[[str, Severity, ast.AST, str], None] | None = None,
    ) -> None:
        self.fn = fn
        self.table = table
        self.returns = returns
        self.report = report
        self.return_dims: list[Dim | None] = []
        self.env: dict[str, Dim | None] = {}
        for name in fn.params:
            self.env[name] = fn.param_ann.get(name) or suffix_dim(name)

    # -- driving -------------------------------------------------------------

    def run(self) -> Dim | None:
        """Walk the body; returns the unified return dimension."""
        self._walk(self.fn.node.body)
        known = {d for d in self.return_dims if d is not None}
        if len(known) == 1 and len(self.return_dims) == len(known):
            return next(iter(known))
        return None

    def _walk(self, stmts: Sequence[ast.stmt]) -> None:
        for stmt in stmts:
            self._stmt(stmt)

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            dim = self.eval(stmt.value)
            for target in stmt.targets:
                self._bind(target, dim, stmt.value)
        elif isinstance(stmt, ast.AnnAssign):
            dim = self.eval(stmt.value) if stmt.value is not None else None
            ann = annotation_dim(stmt.annotation)
            if ann is not None and dims_conflict(ann, dim):
                self._report_assign(stmt.target, ann, dim, stmt)
            if isinstance(stmt.target, ast.Name):
                self.env[stmt.target.id] = ann if ann is not None else dim
        elif isinstance(stmt, ast.AugAssign):
            value = self.eval(stmt.value)
            if isinstance(stmt.target, ast.Name):
                current = self.env.get(stmt.target.id) or suffix_dim(stmt.target.id)
                if isinstance(stmt.op, _ADDITIVE) and dims_conflict(current, value):
                    self._report(
                        "dataflow/unit-mix",
                        stmt,
                        f"accumulates {dim_str(value)} into "  # type: ignore[arg-type]
                        f"{stmt.target.id} ({dim_str(current)})",  # type: ignore[arg-type]
                    )
                if current is None or current == DIMENSIONLESS:
                    self.env[stmt.target.id] = value
        elif isinstance(stmt, ast.Return):
            dim = self.eval(stmt.value) if stmt.value is not None else None
            self.return_dims.append(dim)
            if self.fn.return_ann is not None and dims_conflict(self.fn.return_ann, dim):
                self._report(
                    "dataflow/unit-return",
                    stmt,
                    f"returns {dim_str(dim)} but the signature is annotated "  # type: ignore[arg-type]
                    f"{dim_str(self.fn.return_ann)}",
                )
        elif isinstance(stmt, ast.For):
            iter_dim = self.eval(stmt.iter)
            self._bind(stmt.target, iter_dim, stmt.iter, check=False)
            self._walk(stmt.body)
            self._walk(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self.eval(stmt.test)
            self._walk(stmt.body)
            self._walk(stmt.orelse)
        elif isinstance(stmt, ast.If):
            self.eval(stmt.test)
            self._walk(stmt.body)
            self._walk(stmt.orelse)
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                self.eval(item.context_expr)
            self._walk(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._walk(stmt.body)
            for handler in stmt.handlers:
                self._walk(handler.body)
            self._walk(stmt.orelse)
            self._walk(stmt.finalbody)
        elif isinstance(stmt, ast.Expr):
            self.eval(stmt.value)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            pass  # nested scopes are indexed separately or skipped
        else:
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self.eval(child)

    def _bind(
        self, target: ast.expr, dim: Dim | None, value: ast.expr, check: bool = True
    ) -> None:
        if isinstance(target, ast.Name):
            claimed = suffix_dim(target.id)
            if check and claimed is not None and dims_conflict(claimed, dim):
                self._report_assign(target, claimed, dim, value)
            self.env[target.id] = dim if dim is not None else claimed
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind(elt, None, value, check=False)

    def _report_assign(
        self, target: ast.expr, claimed: Dim, actual: Dim | None, at: ast.AST
    ) -> None:
        name = target.id if isinstance(target, ast.Name) else "<target>"
        self._report(
            "dataflow/unit-assign",
            at,
            f"assigns a {dim_str(actual)} value to {name}, which is "  # type: ignore[arg-type]
            f"declared/named as {dim_str(claimed)}",
        )

    def _report(self, rule: str, node: ast.AST, message: str) -> None:
        if self.report is not None:
            severity = Severity.INFO if rule == "dataflow/unitless-return" else Severity.ERROR
            self.report(rule, severity, node, message)

    # -- expression evaluation ----------------------------------------------

    def eval(self, node: ast.expr | None) -> Dim | None:
        if node is None:
            return None
        method = getattr(self, f"_eval_{type(node).__name__}", None)
        if method is not None:
            result: Dim | None = method(node)
            return result
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self.eval(child)
        return None

    def _eval_Constant(self, node: ast.Constant) -> Dim | None:
        if isinstance(node.value, bool) or not isinstance(node.value, (int, float)):
            return None
        return DIMENSIONLESS

    def _eval_Name(self, node: ast.Name) -> Dim | None:
        if node.id in self.env:
            return self.env[node.id]
        unit = CONVERSION_CONSTANTS.get(node.id)
        if unit is not None:
            return parse_dim(unit)
        return suffix_dim(node.id)

    def _eval_Attribute(self, node: ast.Attribute) -> Dim | None:
        self.eval(node.value)
        unit = CONVERSION_CONSTANTS.get(node.attr)
        if unit is not None:
            return parse_dim(unit)
        attr_dim = self.table.attr_units.get(node.attr)
        if attr_dim is not None:
            return attr_dim
        return suffix_dim(node.attr)

    def _eval_Subscript(self, node: ast.Subscript) -> Dim | None:
        self.eval(node.slice)
        return self.eval(node.value)

    def _eval_UnaryOp(self, node: ast.UnaryOp) -> Dim | None:
        return self.eval(node.operand)

    def _eval_IfExp(self, node: ast.IfExp) -> Dim | None:
        self.eval(node.test)
        body, orelse = self.eval(node.body), self.eval(node.orelse)
        return body if body is not None else orelse

    def _eval_BoolOp(self, node: ast.BoolOp) -> Dim | None:
        for v in node.values:
            self.eval(v)
        return None

    def _eval_Compare(self, node: ast.Compare) -> Dim | None:
        dims = [self.eval(node.left)] + [self.eval(c) for c in node.comparators]
        known = [d for d in dims if d is not None]
        for i in range(len(known) - 1):
            if dims_conflict(known[i], known[i + 1]):
                self._report(
                    "dataflow/unit-mix",
                    node,
                    f"compares {dim_str(known[i])} with {dim_str(known[i + 1])}",
                )
                break
        return DIMENSIONLESS

    def _eval_BinOp(self, node: ast.BinOp) -> Dim | None:
        left, right = self.eval(node.left), self.eval(node.right)
        if isinstance(node.op, _ADDITIVE):
            if dims_conflict(left, right):
                self._report(
                    "dataflow/unit-mix",
                    node,
                    f"{'adds' if isinstance(node.op, ast.Add) else 'subtracts'} "
                    f"{dim_str(left)} and {dim_str(right)} in one expression",  # type: ignore[arg-type]
                )
                return None
            return left if left not in (None, DIMENSIONLESS) else right
        if isinstance(node.op, ast.Mult):
            if left is None or right is None:
                return None
            return dim_mul(left, right)
        if isinstance(node.op, (ast.Div, ast.FloorDiv)):
            if left is None or right is None:
                return None
            return dim_div(left, right)
        if isinstance(node.op, ast.Pow):
            if (
                left is not None
                and isinstance(node.right, ast.Constant)
                and isinstance(node.right.value, int)
            ):
                return dim_pow(left, node.right.value)
            return None
        if isinstance(node.op, ast.Mod):
            return left
        return None

    def _eval_Call(self, node: ast.Call) -> Dim | None:
        for kw in node.keywords:
            self.eval(kw.value)
        basename = (
            node.func.attr
            if isinstance(node.func, ast.Attribute)
            else node.func.id
            if isinstance(node.func, ast.Name)
            else None
        )
        # Sanctioned conversion helpers: dimension-rewriting transfer.
        conv = _CONVERSION_BY_BASENAME.get(basename or "")
        if conv is not None:
            arg0 = self.eval(node.args[0]) if node.args else None
            for extra in node.args[1:]:
                self.eval(extra)
            if conv[0] == "result":
                return parse_dim(conv[1])
            if arg0 is None:
                return None
            return _swap_dim(arg0, conv[1], conv[2])
        callee = self.table.resolve_callee(self.fn, node)
        if callee is not None:
            self._check_args(node, callee)
            if callee.return_ann is not None:
                return callee.return_ann
            if callee.node.name == "__init__":
                return None
            return self.returns.get(callee.qualname)
        # Dataclass-style constructor with keyword units.
        dotted = self.fn.module.resolve_dotted(node.func)
        if dotted is not None:
            fields = self.table.constructor_fields(dotted)
            if fields is not None:
                self._check_fields(node, fields, dotted)
                return None
        if basename in _TRANSPARENT_CALLS:
            for d in (self.eval(a) for a in node.args):
                if d is not None and d != DIMENSIONLESS:
                    return d
            return None
        for arg in node.args:
            self.eval(arg)
        return None

    def _check_args(self, node: ast.Call, callee: FunctionInfo) -> None:
        params = callee.params
        for idx, arg in enumerate(node.args):
            dim = self.eval(arg)
            if isinstance(arg, ast.Starred) or idx >= len(params):
                continue
            expected = callee.param_ann.get(params[idx])
            if expected is not None and dims_conflict(expected, dim):
                self._report(
                    "dataflow/unit-arg",
                    arg,
                    f"passes {dim_str(dim)} to parameter "  # type: ignore[arg-type]
                    f"{params[idx]!r} of {callee.qualname} "
                    f"(annotated {dim_str(expected)})",
                )
        for kw in node.keywords:
            if kw.arg is None:
                continue
            expected = callee.param_ann.get(kw.arg)
            dim = self.eval(kw.value)
            if expected is not None and dims_conflict(expected, dim):
                self._report(
                    "dataflow/unit-arg",
                    kw.value,
                    f"passes {dim_str(dim)} to parameter {kw.arg!r} of "  # type: ignore[arg-type]
                    f"{callee.qualname} (annotated {dim_str(expected)})",
                )

    def _check_fields(
        self, node: ast.Call, fields: dict[str, Dim], dotted: str
    ) -> None:
        for arg in node.args:
            self.eval(arg)
        for kw in node.keywords:
            dim = self.eval(kw.value)
            expected = fields.get(kw.arg or "")
            if expected is not None and dims_conflict(expected, dim):
                self._report(
                    "dataflow/unit-arg",
                    kw.value,
                    f"passes {dim_str(dim)} to field {kw.arg!r} of {dotted} "  # type: ignore[arg-type]
                    f"(annotated {dim_str(expected)})",
                )


def _is_exempt(fn: FunctionInfo) -> bool:
    return fn.module.modname in EXEMPT_MODULES or fn.qualname in CONVERSION_FUNCTIONS


def infer_return_dims(
    table: SymbolTable, max_passes: int = 4
) -> dict[str, Dim | None]:
    """Fixpoint of per-function return dimensions over the call graph."""
    returns: dict[str, Dim | None] = {
        q: fn.return_ann for q, fn in table.functions.items()
    }
    for _ in range(max_passes):
        changed = False
        for qual, fn in table.functions.items():
            if fn.return_ann is not None:
                continue
            inferred = _Evaluator(fn, table, returns).run()
            if inferred != returns.get(qual):
                returns[qual] = inferred
                changed = True
        if not changed:
            break
    # Property getters become attribute units for receiver-less lookups.
    for qual, fn in table.functions.items():
        if any(
            (isinstance(d, ast.Name) and d.id in ("property", "cached_property"))
            or (isinstance(d, ast.Attribute) and d.attr in ("property", "cached_property"))
            for d in fn.node.decorator_list
        ):
            dim = returns.get(qual)
            name = fn.node.name
            if dim is not None:
                if name in table.attr_units and table.attr_units[name] != dim:
                    table.attr_units[name] = None
                else:
                    table.attr_units.setdefault(name, dim)
    return returns


def check_units(table: SymbolTable) -> list[Finding]:
    """Run the unit-inference pass; returns its findings."""
    returns = infer_return_dims(table)
    findings: list[Finding] = []
    for fn in table.functions.values():
        if _is_exempt(fn):
            continue
        reported: set[tuple[int, str]] = set()

        def report(rule: str, severity: Severity, node: ast.AST, message: str) -> None:
            line = getattr(node, "lineno", fn.node.lineno)  # noqa: B023
            key = (line, rule)
            if key in reported:  # noqa: B023
                return
            reported.add(key)  # noqa: B023
            findings.append(
                Finding(
                    rule=rule,
                    severity=severity,
                    location=f"{fn.module.path}:{line}",  # noqa: B023
                    message=message,
                )
            )

        _Evaluator(fn, table, returns, report=report).run()
        if (
            fn.return_ann is None
            and fn.param_ann
            and fn.node.name != "__init__"
            and is_canonical(returns.get(fn.qualname))
        ):
            findings.append(
                Finding(
                    rule="dataflow/unitless-return",
                    severity=Severity.INFO,
                    location=f"{fn.module.path}:{fn.node.lineno}",
                    message=(
                        f"{fn.qualname} has unit-annotated parameters and "
                        f"returns {dim_str(returns[fn.qualname])}, "  # type: ignore[arg-type]
                        "but its return annotation drops the unit; annotate "
                        "it with the matching repro.util.quantity alias"
                    ),
                )
            )
    return findings


def check_units_paths(paths: Iterable[object]) -> list[Finding]:
    """Convenience wrapper building a table from paths (tests, CLI)."""
    from pathlib import Path

    from repro.analysis.dataflow.symbols import build_symbol_table

    return check_units(build_symbol_table([Path(str(p)) for p in paths]))
