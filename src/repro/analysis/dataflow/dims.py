"""Dimension algebra for the whole-program unit-inference pass.

A *dimension* is a mapping from base tokens (``ms``, ``s``, ``B``,
``KiB``, ``MB``, ``Kpixel``, ``pixel``, ``cycle``) to integer
exponents, represented canonically as a sorted tuple so it can key
sets and compare cheaply.  ``None`` everywhere means *unknown* (the
lattice bottom the inference is free to stay at); the empty tuple is
*dimensionless*, which is deliberately compatible with everything --
``latency_ms + 1e-9`` is not a unit error.

Arithmetic follows exact rational algebra: multiplying a Table 1
``KiB`` count by the ``KIB`` conversion constant (``B/KiB``) cancels
to ``B``.  Products that do *not* cancel (``72 * GB`` where ``72`` is
a bare count) leave residual tokens such as ``B/GB``; those are not
in the :func:`canonical_dims` set, and the checkers only ever flag
conflicts between two canonical dimensions, so partially-inferred
compounds stay silent rather than noisy.
"""

from __future__ import annotations

from functools import lru_cache

from repro.util.quantity import QUANTITY_DIMS

__all__ = [
    "Dim",
    "DIMENSIONLESS",
    "parse_dim",
    "dim_mul",
    "dim_div",
    "dim_pow",
    "dim_str",
    "canonical_dims",
    "is_canonical",
    "dims_conflict",
]

#: Sorted ``((token, exponent), ...)`` pairs; ``()`` is dimensionless.
Dim = tuple[tuple[str, int], ...]

DIMENSIONLESS: Dim = ()


def _normalize(mapping: dict[str, int]) -> Dim:
    return tuple(sorted((t, e) for t, e in mapping.items() if e != 0))


@lru_cache(maxsize=None)
def parse_dim(text: str) -> Dim:
    """Parse ``"MB/s"``, ``"1/s"``, ``"ms"``, ``"B/KiB"`` into a Dim.

    Grammar: ``numerator[/denominator]`` where each side is ``*``-
    separated tokens and ``1`` denotes the empty product.
    """
    num, _, den = text.partition("/")
    out: dict[str, int] = {}
    for side, sign in ((num, 1), (den, -1)):
        for token in side.split("*"):
            token = token.strip()
            if not token or token == "1":
                continue
            out[token] = out.get(token, 0) + sign
    return _normalize(out)


def dim_mul(a: Dim, b: Dim) -> Dim:
    out = dict(a)
    for t, e in b:
        out[t] = out.get(t, 0) + e
    return _normalize(out)


def dim_div(a: Dim, b: Dim) -> Dim:
    out = dict(a)
    for t, e in b:
        out[t] = out.get(t, 0) - e
    return _normalize(out)


def dim_pow(a: Dim, n: int) -> Dim:
    return _normalize({t: e * n for t, e in a})


def dim_str(d: Dim) -> str:
    """Human rendering: ``MB/s``, ``1``, ``cycle*s``."""
    num = [t if e == 1 else f"{t}^{e}" for t, e in d if e > 0]
    den = [t if e == -1 else f"{t}^{-e}" for t, e in d if e < 0]
    if not num and not den:
        return "1"
    head = "*".join(num) if num else "1"
    return f"{head}/{'*'.join(den)}" if den else head


@lru_cache(maxsize=1)
def canonical_dims() -> frozenset[Dim]:
    """The dimensions of the declared quantity vocabulary."""
    return frozenset(parse_dim(v) for v in QUANTITY_DIMS.values())


def is_canonical(d: Dim | None) -> bool:
    """Whether ``d`` is a known vocabulary dimension (not a residue)."""
    return d is not None and d != DIMENSIONLESS and d in canonical_dims()


def dims_conflict(a: Dim | None, b: Dim | None) -> bool:
    """Whether two dimensions are confidently incompatible.

    Only two *canonical* dimensions that differ conflict; unknown,
    dimensionless and residual compounds never do.  This is what keeps
    the pass's error findings high-precision.
    """
    return is_canonical(a) and is_canonical(b) and a != b
