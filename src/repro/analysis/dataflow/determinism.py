"""Ordering-hazard determinism audit over the project symbol table.

Three hazards that corrupt committed artifacts (TraceSets, BENCH json,
golden runs) silently:

``dataflow/unordered-accumulation`` (warning)
    Iteration over a set (or ``sum()`` of one) feeding accumulation.
    Set order is hash-order; float addition is not associative, so
    aggregates can differ across interpreters/PYTHONHASHSEED.
``dataflow/unsorted-listing`` (warning)
    ``os.listdir`` / ``Path.glob`` / ``rglob`` / ``iterdir`` /
    ``scandir`` results used without an immediate ``sorted(...)``
    wrapper; filesystem order is platform-dependent.
``dataflow/json-sort-keys`` (warning)
    ``json.dump(s)`` without ``sort_keys=True``: dict insertion order
    leaks into committed artifacts, so refactors that reorder keys
    churn goldens.

The ``map_sequences`` pool-seam audit that used to live here
(``dataflow/pool-*``) is superseded by the interprocedural race
detector in :mod:`repro.analysis.effects.races`, which keeps the same
rule ids but reasons over full effect summaries instead of a
depth-bounded syntactic walk.
"""

from __future__ import annotations

import ast

from repro.analysis.dataflow.symbols import ModuleInfo, SymbolTable
from repro.analysis.findings import Finding, Severity

__all__ = ["check_determinism"]

_LISTING_CALLS = frozenset({"listdir", "glob", "rglob", "iterdir", "scandir"})


def _is_set_annotation(node: ast.expr | None) -> bool:
    if isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Attribute):
        return node.attr in ("Set", "FrozenSet", "AbstractSet")
    return isinstance(node, ast.Name) and node.id in (
        "set",
        "frozenset",
        "Set",
        "FrozenSet",
        "AbstractSet",
    )


def _check_unordered_accumulation(mod: ModuleInfo, findings: list[Finding]) -> None:
    set_names: set[str] = set()
    for node in ast.walk(mod.tree):
        if isinstance(node, ast.Assign) and _is_set_expr(node.value):
            for t in node.targets:
                if isinstance(t, ast.Name):
                    set_names.add(t.id)
        elif isinstance(node, ast.AnnAssign) and _is_set_annotation(node.annotation):
            if isinstance(node.target, ast.Name):
                set_names.add(node.target.id)
        elif isinstance(node, ast.arg) and _is_set_annotation(node.annotation):
            set_names.add(node.arg)

    def is_unordered(expr: ast.expr) -> bool:
        if _is_set_expr(expr):
            return True
        return isinstance(expr, ast.Name) and expr.id in set_names

    for node in ast.walk(mod.tree):
        if isinstance(node, ast.For) and is_unordered(node.iter):
            accumulates = any(
                isinstance(inner, ast.AugAssign) and isinstance(inner.op, ast.Add)
                for body_stmt in node.body
                for inner in ast.walk(body_stmt)
            )
            if accumulates:
                findings.append(
                    Finding(
                        rule="dataflow/unordered-accumulation",
                        severity=Severity.WARNING,
                        location=f"{mod.path}:{node.lineno}",
                        message=(
                            "iterates a set while accumulating; set order is "
                            "hash order and float addition is not associative "
                            "-- sort the elements first"
                        ),
                    )
                )
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "sum"
            and node.args
            and is_unordered(node.args[0])
        ):
            findings.append(
                Finding(
                    rule="dataflow/unordered-accumulation",
                    severity=Severity.WARNING,
                    location=f"{mod.path}:{node.lineno}",
                    message=(
                        "sums a set; set order is hash order and float "
                        "addition is not associative -- sum sorted(...) instead"
                    ),
                )
            )


def _is_set_expr(expr: ast.expr) -> bool:
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Name)
        and expr.func.id in ("set", "frozenset")
    )


def _check_unsorted_listing(mod: ModuleInfo, findings: list[Finding]) -> None:
    sanctioned: set[int] = set()
    for node in ast.walk(mod.tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "sorted"
            and node.args
        ):
            sanctioned.add(id(node.args[0]))
    for node in ast.walk(mod.tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _LISTING_CALLS
            and id(node) not in sanctioned
        ):
            findings.append(
                Finding(
                    rule="dataflow/unsorted-listing",
                    severity=Severity.WARNING,
                    location=f"{mod.path}:{node.lineno}",
                    message=(
                        f"{node.func.attr}() order is platform-dependent; "
                        "wrap the call in sorted(...) before iterating"
                    ),
                )
            )


def _check_json_sort_keys(mod: ModuleInfo, findings: list[Finding]) -> None:
    for node in ast.walk(mod.tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("dump", "dumps")
        ):
            continue
        dotted = mod.resolve_dotted(node.func)
        if dotted not in ("json.dump", "json.dumps"):
            continue
        sorts = any(
            kw.arg == "sort_keys"
            and isinstance(kw.value, ast.Constant)
            and kw.value.value is True
            for kw in node.keywords
        )
        if not sorts:
            findings.append(
                Finding(
                    rule="dataflow/json-sort-keys",
                    severity=Severity.WARNING,
                    location=f"{mod.path}:{node.lineno}",
                    message=(
                        f"json.{node.func.attr}() without sort_keys=True lets "
                        "dict insertion order leak into artifacts; pass "
                        "sort_keys=True for byte-stable output"
                    ),
                )
            )


def check_determinism(table: SymbolTable) -> list[Finding]:
    """Run the ordering-hazard audit; returns its findings."""
    findings: list[Finding] = []
    for mod in table.modules.values():
        _check_unordered_accumulation(mod, findings)
        _check_unsorted_listing(mod, findings)
        _check_json_sort_keys(mod, findings)
    return findings
