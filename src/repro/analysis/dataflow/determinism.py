"""Cross-process determinism audit over the project symbol table.

:func:`repro.parallel.map_sequences` promises bit-identical merges
versus the serial path *provided the worker is a pure function of its
pickled argument*.  That contract is prose in ``pool.py``; this pass
makes it machine-checked, plus two ordering hazards that corrupt
committed artifacts (TraceSets, BENCH json, golden runs) silently:

``dataflow/pool-worker-closure`` (error)
    The worker handed to ``map_sequences`` is a lambda or a function
    nested in the calling scope.  Closures are unpicklable under
    ``spawn`` and capture live parent state under ``fork``.
``dataflow/pool-global-mutation`` (error)
    The worker -- or anything it transitively calls within the
    project -- mutates a mutable module-level binding.  Under a pool
    the mutation lands in a forked copy and is silently lost; inline
    it persists, so the two paths diverge.
``dataflow/pool-shared-state`` (warning)
    The worker transitively *reads* a mutable module global.  Reads
    are reproducible only if nothing mutates the global between runs;
    flag it so the dependence is explicit.
``dataflow/unordered-accumulation`` (warning)
    Iteration over a set (or ``sum()`` of one) feeding accumulation.
    Set order is hash-order; float addition is not associative, so
    aggregates can differ across interpreters/PYTHONHASHSEED.
``dataflow/unsorted-listing`` (warning)
    ``os.listdir`` / ``Path.glob`` / ``rglob`` / ``iterdir`` /
    ``scandir`` results used without an immediate ``sorted(...)``
    wrapper; filesystem order is platform-dependent.
``dataflow/json-sort-keys`` (warning)
    ``json.dump(s)`` without ``sort_keys=True``: dict insertion order
    leaks into committed artifacts, so refactors that reorder keys
    churn goldens.

Modules that *are* the sanctioned cross-process plumbing --
``repro.parallel``, ``repro.obs`` (telemetry is shipped back via
``_ObsTask``) and ``repro.util.rng`` (named streams keyed by sequence
id) -- are exempt from the pool-seam walk.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.dataflow.symbols import FunctionInfo, ModuleInfo, SymbolTable
from repro.analysis.findings import Finding, Severity

__all__ = ["check_determinism"]

#: Module prefixes whose state is sanctioned to cross the pool seam.
POOL_EXEMPT_PREFIXES = ("repro.parallel", "repro.obs", "repro.util.rng")

#: Method names that mutate their receiver in place.
_MUTATING_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "remove",
        "discard",
        "clear",
        "appendleft",
        "extendleft",
    }
)

_LISTING_CALLS = frozenset({"listdir", "glob", "rglob", "iterdir", "scandir"})

_MAX_WORKER_DEPTH = 6


def _is_map_sequences(mod: ModuleInfo, call: ast.Call) -> bool:
    func = call.func
    base = (
        func.attr
        if isinstance(func, ast.Attribute)
        else func.id
        if isinstance(func, ast.Name)
        else None
    )
    if base != "map_sequences":
        return False
    dotted = mod.resolve_dotted(func)
    return dotted is None or dotted.startswith("repro.") or dotted == "map_sequences"


def _worker_expr(call: ast.Call) -> ast.expr | None:
    if call.args:
        return call.args[0]
    for kw in call.keywords:
        if kw.arg == "worker":
            return kw.value
    return None


def _functions_of(table: SymbolTable, mod: ModuleInfo) -> Iterator[FunctionInfo]:
    for fn in table.functions.values():
        if fn.module is mod:
            yield fn


def _nested_def_names(fn: FunctionInfo) -> set[str]:
    names: set[str] = set()
    for node in ast.walk(fn.node):
        if node is not fn.node and isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            names.add(node.name)
    return names


class _PoolSeamAuditor:
    """Walks a worker's transitive call graph for shared-state hazards."""

    def __init__(self, table: SymbolTable, findings: list[Finding]) -> None:
        self.table = table
        self.findings = findings
        self.visited: set[str] = set()

    def audit(self, fn: FunctionInfo, seam: str, depth: int = 0) -> None:
        if fn.qualname in self.visited or depth > _MAX_WORKER_DEPTH:
            return
        self.visited.add(fn.qualname)
        if fn.module.modname.startswith(POOL_EXEMPT_PREFIXES):
            return
        globals_here = fn.module.mutable_globals
        local_names = _local_bindings(fn.node)
        mutated: set[tuple[str, int]] = set()
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Global):
                for name in node.names:
                    mutated.add((name, node.lineno))
                    self._report_mutation(fn, node.lineno, name, seam, "rebinds")
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in _MUTATING_METHODS
                    and isinstance(func.value, ast.Name)
                    and func.value.id in globals_here
                    and func.value.id not in local_names
                ):
                    mutated.add((func.value.id, node.lineno))
                    self._report_mutation(
                        fn, node.lineno, func.value.id, seam, f".{func.attr}() on"
                    )
                callee = self.table.resolve_callee(fn, node)
                if callee is not None:
                    self.audit(callee, seam, depth + 1)
            elif (
                isinstance(node, (ast.Subscript, ast.Attribute))
                and isinstance(node.ctx, (ast.Store, ast.Del))
                and isinstance(getattr(node, "value", None), ast.Name)
                and node.value.id in globals_here  # type: ignore[union-attr]
                and node.value.id not in local_names  # type: ignore[union-attr]
            ):
                mutated.add((node.value.id, node.lineno))  # type: ignore[union-attr]
                self._report_mutation(
                    fn, node.lineno, node.value.id, seam, "writes into"  # type: ignore[union-attr]
                )
        for node in ast.walk(fn.node):
            if (
                isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
                and node.id in globals_here
                and node.id not in local_names
                and (node.id, node.lineno) not in mutated
            ):
                self.findings.append(
                    Finding(
                        rule="dataflow/pool-shared-state",
                        severity=Severity.WARNING,
                        location=f"{fn.module.path}:{node.lineno}",
                        message=(
                            f"{fn.qualname} (reached from pool worker at {seam}) "
                            f"reads mutable module global {node.id!r}; workers "
                            "must be pure functions of their pickled argument"
                        ),
                    )
                )

    def _report_mutation(
        self, fn: FunctionInfo, line: int, name: str, seam: str, verb: str
    ) -> None:
        self.findings.append(
            Finding(
                rule="dataflow/pool-global-mutation",
                severity=Severity.ERROR,
                location=f"{fn.module.path}:{line}",
                message=(
                    f"{fn.qualname} (reached from pool worker at {seam}) "
                    f"{verb} module global {name!r}; under a process pool the "
                    "mutation is lost in the forked copy, so pooled and "
                    "inline runs diverge"
                ),
            )
        )


def _local_bindings(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Names bound locally (params + assignments), shadowing globals."""
    a = fn.args
    names = {p.arg for p in (*a.posonlyargs, *a.args, *a.kwonlyargs)}
    if a.vararg:
        names.add(a.vararg.arg)
    if a.kwarg:
        names.add(a.kwarg.arg)
    for node in ast.walk(fn):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            names.add(node.id)
    # names declared global are NOT local, whatever the stores say
    for node in ast.walk(fn):
        if isinstance(node, ast.Global):
            names.difference_update(node.names)
    return names


def _check_pool_seams(table: SymbolTable, findings: list[Finding]) -> None:
    auditor = _PoolSeamAuditor(table, findings)
    for mod in table.modules.values():
        if mod.modname.startswith(POOL_EXEMPT_PREFIXES):
            continue
        for fn in _functions_of(table, mod):
            nested = _nested_def_names(fn)
            for node in ast.walk(fn.node):
                if not (isinstance(node, ast.Call) and _is_map_sequences(mod, node)):
                    continue
                seam = f"{mod.path}:{node.lineno}"
                worker = _worker_expr(node)
                if worker is None:
                    continue
                if isinstance(worker, ast.Lambda) or (
                    isinstance(worker, ast.Name) and worker.id in nested
                ):
                    findings.append(
                        Finding(
                            rule="dataflow/pool-worker-closure",
                            severity=Severity.ERROR,
                            location=seam,
                            message=(
                                "map_sequences worker is a "
                                + (
                                    "lambda"
                                    if isinstance(worker, ast.Lambda)
                                    else f"function nested in {fn.qualname}"
                                )
                                + "; workers must be module-level callables "
                                "(unpicklable under spawn, captures live "
                                "parent state under fork)"
                            ),
                        )
                    )
                    continue
                target: FunctionInfo | None = None
                if isinstance(worker, (ast.Name, ast.Attribute)):
                    dotted = mod.resolve_dotted(worker)
                    if dotted is not None:
                        target = table.lookup(dotted, mod)
                if target is not None:
                    auditor.audit(target, seam)


def _is_set_annotation(node: ast.expr | None) -> bool:
    if isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Attribute):
        return node.attr in ("Set", "FrozenSet", "AbstractSet")
    return isinstance(node, ast.Name) and node.id in (
        "set",
        "frozenset",
        "Set",
        "FrozenSet",
        "AbstractSet",
    )


def _check_unordered_accumulation(mod: ModuleInfo, findings: list[Finding]) -> None:
    set_names: set[str] = set()
    for node in ast.walk(mod.tree):
        if isinstance(node, ast.Assign) and _is_set_expr(node.value):
            for t in node.targets:
                if isinstance(t, ast.Name):
                    set_names.add(t.id)
        elif isinstance(node, ast.AnnAssign) and _is_set_annotation(node.annotation):
            if isinstance(node.target, ast.Name):
                set_names.add(node.target.id)
        elif isinstance(node, ast.arg) and _is_set_annotation(node.annotation):
            set_names.add(node.arg)

    def is_unordered(expr: ast.expr) -> bool:
        if _is_set_expr(expr):
            return True
        return isinstance(expr, ast.Name) and expr.id in set_names

    for node in ast.walk(mod.tree):
        if isinstance(node, ast.For) and is_unordered(node.iter):
            accumulates = any(
                isinstance(inner, ast.AugAssign) and isinstance(inner.op, ast.Add)
                for body_stmt in node.body
                for inner in ast.walk(body_stmt)
            )
            if accumulates:
                findings.append(
                    Finding(
                        rule="dataflow/unordered-accumulation",
                        severity=Severity.WARNING,
                        location=f"{mod.path}:{node.lineno}",
                        message=(
                            "iterates a set while accumulating; set order is "
                            "hash order and float addition is not associative "
                            "-- sort the elements first"
                        ),
                    )
                )
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "sum"
            and node.args
            and is_unordered(node.args[0])
        ):
            findings.append(
                Finding(
                    rule="dataflow/unordered-accumulation",
                    severity=Severity.WARNING,
                    location=f"{mod.path}:{node.lineno}",
                    message=(
                        "sums a set; set order is hash order and float "
                        "addition is not associative -- sum sorted(...) instead"
                    ),
                )
            )


def _is_set_expr(expr: ast.expr) -> bool:
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Name)
        and expr.func.id in ("set", "frozenset")
    )


def _check_unsorted_listing(mod: ModuleInfo, findings: list[Finding]) -> None:
    sanctioned: set[int] = set()
    for node in ast.walk(mod.tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "sorted"
            and node.args
        ):
            sanctioned.add(id(node.args[0]))
    for node in ast.walk(mod.tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _LISTING_CALLS
            and id(node) not in sanctioned
        ):
            findings.append(
                Finding(
                    rule="dataflow/unsorted-listing",
                    severity=Severity.WARNING,
                    location=f"{mod.path}:{node.lineno}",
                    message=(
                        f"{node.func.attr}() order is platform-dependent; "
                        "wrap the call in sorted(...) before iterating"
                    ),
                )
            )


def _check_json_sort_keys(mod: ModuleInfo, findings: list[Finding]) -> None:
    for node in ast.walk(mod.tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("dump", "dumps")
        ):
            continue
        dotted = mod.resolve_dotted(node.func)
        if dotted not in ("json.dump", "json.dumps"):
            continue
        sorts = any(
            kw.arg == "sort_keys"
            and isinstance(kw.value, ast.Constant)
            and kw.value.value is True
            for kw in node.keywords
        )
        if not sorts:
            findings.append(
                Finding(
                    rule="dataflow/json-sort-keys",
                    severity=Severity.WARNING,
                    location=f"{mod.path}:{node.lineno}",
                    message=(
                        f"json.{node.func.attr}() without sort_keys=True lets "
                        "dict insertion order leak into artifacts; pass "
                        "sort_keys=True for byte-stable output"
                    ),
                )
            )


def check_determinism(table: SymbolTable) -> list[Finding]:
    """Run the determinism audit; returns its findings."""
    findings: list[Finding] = []
    _check_pool_seams(table, findings)
    for mod in table.modules.values():
        _check_unordered_accumulation(mod, findings)
        _check_unsorted_listing(mod, findings)
        _check_json_sort_keys(mod, findings)
    return findings
