"""Whole-program dataflow analysis over the ``repro`` sources.

Two interprocedural passes share one :class:`~repro.analysis.dataflow.
symbols.SymbolTable`:

* :mod:`~repro.analysis.dataflow.unitcheck` -- unit/dimension
  inference seeded from the :mod:`repro.util.quantity` annotations;
* :mod:`~repro.analysis.dataflow.determinism` -- ordering hazards
  (the pool-seam audit moved to :mod:`repro.analysis.effects.races`).

:func:`run_dataflow` is the CLI's entry point: build the table once
(or reuse one the caller already built), run both passes.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable

from repro.analysis.dataflow.determinism import check_determinism
from repro.analysis.dataflow.symbols import SymbolTable, build_symbol_table
from repro.analysis.dataflow.unitcheck import check_units
from repro.analysis.findings import Finding

__all__ = [
    "SymbolTable",
    "build_symbol_table",
    "check_units",
    "check_determinism",
    "run_dataflow",
]


def run_dataflow(
    paths: Iterable[Path], table: SymbolTable | None = None
) -> list[Finding]:
    """Run both dataflow passes, building the symbol table over
    ``paths`` unless the caller shares one."""
    if table is None:
        table = build_symbol_table(list(paths))
    return check_units(table) + check_determinism(table)
