"""Inline finding suppressions: ``# repro: ignore[rule]``.

A comment of the form ``# repro: ignore[lint/unit-mix]`` (or several
rules comma-separated, or just the rule's last segment,
``ignore[unit-mix]``) on the *same line* as a finding suppresses it.
Suppressions are audited: a marker that suppresses nothing raises an
``analysis/unsuppressed-ignore`` warning, so stale markers cannot
linger after the underlying code is fixed.

This is deliberately line-scoped -- no file-level or block-level
escape hatch -- to keep each suppression reviewable next to the code
it excuses.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Mapping

from repro.analysis.findings import Finding, Severity

__all__ = [
    "SUPPRESS_RE",
    "SuppressionMarker",
    "scan_suppressions",
    "apply_suppressions",
    "split_location",
]

SUPPRESS_RE = re.compile(r"#\s*repro:\s*ignore\[([^\]]+)\]")

#: Rule id of the stale-marker audit finding.
UNSUPPRESSED_IGNORE = "analysis/unsuppressed-ignore"


@dataclass
class SuppressionMarker:
    """One ``# repro: ignore[...]`` comment."""

    path: str
    line: int
    rules: tuple[str, ...]
    used: bool = False

    def matches(self, rule: str) -> bool:
        """Whether this marker covers ``rule`` (full id or last segment)."""
        tail = rule.rsplit("/", 1)[-1]
        return any(r == rule or r == tail for r in self.rules)


def split_location(location: str) -> tuple[str, int] | None:
    """Split a ``path:line`` location; None for graph-element locations."""
    head, sep, tail = location.rpartition(":")
    if sep and tail.isdigit():
        return head, int(tail)
    return None


def scan_suppressions(paths: Iterable[Path]) -> list[SuppressionMarker]:
    """Collect suppression markers from source files.

    ``paths`` are the files the analysis actually read; markers are
    keyed by the same path string the findings carry.
    """
    markers: list[SuppressionMarker] = []
    for p in paths:
        try:
            source = Path(p).read_text(encoding="utf-8")
        except OSError:
            continue
        # Tokenize so only *comments* count -- documentation that merely
        # mentions the marker syntax inside a string must not register.
        try:
            tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
        except (tokenize.TokenError, SyntaxError, IndentationError):
            continue
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            m = SUPPRESS_RE.search(tok.string)
            if m is None:
                continue
            rules = tuple(
                r.strip() for r in m.group(1).split(",") if r.strip()
            )
            if rules:
                markers.append(
                    SuppressionMarker(path=str(p), line=tok.start[0], rules=rules)
                )
    return markers


def apply_suppressions(
    findings: Iterable[Finding], markers: Iterable[SuppressionMarker]
) -> list[Finding]:
    """Drop findings covered by a marker; flag markers that cover nothing.

    Returns the surviving findings plus one
    :data:`UNSUPPRESSED_IGNORE` warning per unused marker.
    """
    by_site: Mapping[tuple[str, int], list[SuppressionMarker]] = {}
    for marker in markers:
        by_site.setdefault((marker.path, marker.line), []).append(marker)  # type: ignore[attr-defined]

    kept: list[Finding] = []
    for f in findings:
        site = split_location(f.location)
        suppressed = False
        if site is not None:
            for marker in by_site.get(site, ()):
                if marker.matches(f.rule):
                    marker.used = True
                    suppressed = True
        if not suppressed:
            kept.append(f)

    for site_markers in by_site.values():
        for marker in site_markers:
            if not marker.used:
                kept.append(
                    Finding(
                        rule=UNSUPPRESSED_IGNORE,
                        severity=Severity.WARNING,
                        location=f"{marker.path}:{marker.line}",
                        message=(
                            "suppression "
                            f"ignore[{', '.join(marker.rules)}] matches no "
                            "finding on this line; remove the stale marker"
                        ),
                    )
                )
    return kept
