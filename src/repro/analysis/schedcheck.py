"""Scenario-space schedulability model checker for composite graphs.

The graph checks (:mod:`repro.analysis.graphcheck`) verify each
application *alone*, one scenario at a time.  This pass closes the
multi-application gap of Section 7: given a mix of registry workloads
sharing one platform (``stentboost+stentboost``,
``stentboost+ultrasound`` ...), it exhaustively enumerates the *joint*
scenario space -- the product of every application's ``2**n_switches``
switch assignments -- and statically verifies each joint scenario
against the platform budgets:

``sched/compute-budget`` (ERROR)
    The aggregate static compute lower bound of all active tasks must
    fit the core supply within one frame period.  Task costs are the
    *data-independent* part of the calibrated cost model (fixed cost
    plus the per-kpixel term over the task's Table 1 input), so an
    ERROR is provable: no data can make the scenario cheaper.
``sched/deadline`` (ERROR)
    Per application and scenario, the critical path through the active
    tasks -- with divisible tasks optimistically split across every
    core -- must meet the frame period.  This bound ignores all
    interference, so a violation is again provable.
``sched/bus-budget`` (ERROR)
    The joint scenario's aggregate inter-task bandwidth must fit the
    weakest platform link (L2 bus vs aggregate DRAM streams).
``sched/l2-pressure`` (WARNING)
    The joint scenario's aggregate stream working set vs the
    platform's total L2 capacity.  Overflow is legitimate (it is what
    feeds the Fig. 5 swap model), hence a warning, not an error.

Violations are *reachability-weighted*: each workload carries a
first-order scenario chain (:class:`repro.workloads.ScenarioDynamics`);
the product of the per-application chains
(:func:`repro.core.markov.product_chain`) is the joint chain, and each
violating joint scenario is reported with its stationary probability
and a shortest witness path from the initial joint scenario -- the
counterexample trace.  A violation *without* a witness is downgraded
one severity step: either some application provably cannot reach its
scenario at all (no positive-probability path from its initial
scenario), or the applications -- which advance in lockstep -- cannot
all reach their targets in the same number of frames within
:data:`MAX_WITNESS_FRAMES`.  Every full-severity finding therefore
carries a concrete counterexample trace.

The search is pruned: identical application instances are enumerated
as multisets (symmetry reduction -- two StentBoost instances in
scenarios ``(3, 5)`` and ``(5, 3)`` are the same orbit), and subtrees
whose component-wise worst case already fits every budget are cut
without expansion.  All metrics are monotone sums/maxima of per-app
loads, so both reductions are exact.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.analysis.findings import Finding, Severity
from repro.analysis.graphcheck import PlatformLike, scenario_ids_for
from repro.core.markov import MarkovChain, product_chain
from repro.graph.composite import CompositeGraph, build_multiapp_graph
from repro.graph.flowgraph import FlowGraph
from repro.graph.scenarios import scenario_name
from repro.hw.cost import DEFAULT_TASK_COSTS, TaskCostSpec
from repro.imaging.pipeline import SwitchState
from repro.util.units import BYTES_PER_PIXEL, HZ_VIDEO, KIB, MB, MIB, MS_PER_S, PX_PER_KPX
from repro.workloads import Workload, get_workload

__all__ = [
    "MAX_WITNESS_FRAMES",
    "DEFAULT_REPORT_CAP",
    "SchedReport",
    "FeasibilityEnvelope",
    "static_task_cost_ms",
    "check_schedulability",
    "compute_envelope",
]

#: Longest witness path the checker searches for (frames).  Every
#: registered workload's chain reaches everything in one step (all
#: stay probabilities strictly inside (0, 1)); the bound only matters
#: for nearly-deterministic fixture dynamics.
MAX_WITNESS_FRAMES = 32

#: Most-probable violating joint scenarios reported per rule; the
#: remainder is counted in one ``sched/report-cap`` note so nothing
#: is dropped silently.
DEFAULT_REPORT_CAP = 24

_EPS = 1e-9


# -- static per-task cost ----------------------------------------------------


def static_task_cost_ms(
    input_kb: float, cost: TaskCostSpec | None
) -> float:
    """Data-independent lower bound on one task execution (ms).

    ``fixed_ms`` plus the per-kpixel term over the task's Table 1
    input at the native 2 B/pixel geometry.  Content-dependent
    per-count terms are excluded -- they can be zero on easy frames --
    so the bound is sound: no input makes the task cheaper.
    """
    if cost is None:
        return 0.0
    kpx = input_kb * KIB / BYTES_PER_PIXEL / PX_PER_KPX
    return cost.fixed_ms + cost.per_kpixel_ms * kpx


# -- per-application model ---------------------------------------------------


@dataclass(frozen=True)
class _Load:
    """Monotone joint-scenario metrics of one app in one scenario."""

    cost_ms: float
    bw_bytes: float
    ws_bytes: float

    def __add__(self, other: "_Load") -> "_Load":
        return _Load(
            self.cost_ms + other.cost_ms,
            self.bw_bytes + other.bw_bytes,
            self.ws_bytes + other.ws_bytes,
        )


_ZERO_LOAD = _Load(0.0, 0.0, 0.0)


class _AppModel:
    """Everything the checker precomputes about one workload."""

    def __init__(
        self, workload: Workload, cores: int, rate_hz: float
    ) -> None:
        self.workload = workload
        self.name = workload.name
        self.graph = workload.build_graph()
        dynamics = workload.scenarios
        ids = scenario_ids_for(workload.switch_names)
        if len(ids) != dynamics.n_scenarios:
            raise ValueError(
                f"workload {workload.name!r}: {len(workload.switch_names)} "
                f"switches imply {len(ids)} scenarios but its dynamics "
                f"model {dynamics.n_scenarios}"
            )
        self.n_scenarios = dynamics.n_scenarios
        self.initial = dynamics.initial_scenario
        self.chain = MarkovChain.from_transition(dynamics.transition())
        self.stationary = tuple(float(p) for p in self.chain.stationary())

        costs = dict(workload.task_costs or DEFAULT_TASK_COSTS)
        self.loads: list[_Load] = []
        self.span_ms: list[float] = []
        for sid in ids:
            state = SwitchState.from_scenario_id(sid)
            self.loads.append(self._load(state, costs, rate_hz))
            self.span_ms.append(self._span(state, costs, cores))
        self.max_load = _Load(
            max(l.cost_ms for l in self.loads),
            max(l.bw_bytes for l in self.loads),
            max(l.ws_bytes for l in self.loads),
        )
        self._build_reachability()

    def _load(
        self,
        state: SwitchState,
        costs: Mapping[str, TaskCostSpec],
        rate_hz: float,
    ) -> _Load:
        graph = self.graph
        active = graph.active_tasks(state)
        cost = sum(
            static_task_cost_ms(graph.tasks[n].input_kb, costs.get(n))
            for n in active
        )
        bw = graph.total_bandwidth_mbps(state, rate_hz) * MB
        ws = 0.0
        for name in sorted(active):
            task = graph.tasks[name]
            if task.kind != "stream":
                continue
            peak_kb = max(
                (p.total_kb for p in task.phases), default=task.total_kb
            )
            ws += peak_kb * KIB
        return _Load(float(cost), float(bw), float(ws))

    def _span(
        self,
        state: SwitchState,
        costs: Mapping[str, TaskCostSpec],
        cores: int,
    ) -> float:
        """Critical path with divisible tasks split over all cores."""
        graph = self.graph
        order = graph.execution_order(state)
        running = set(order)
        preds: dict[str, list[str]] = {}
        for e in graph.active_edges(state):
            if e.src in running and e.dst in running:
                preds.setdefault(e.dst, []).append(e.src)
        finish: dict[str, float] = {}
        for name in order:
            task = graph.tasks[name]
            w = static_task_cost_ms(task.input_kb, costs.get(name))
            if task.divisible and cores > 1:
                w /= cores
            start = max(
                (finish[p] for p in preds.get(name, []) if p in finish),
                default=0.0,
            )
            finish[name] = start + w
        return max(finish.values(), default=0.0)

    def _build_reachability(self) -> None:
        t = self.chain.transition
        succ = [
            [j for j in range(self.n_scenarios) if t[i][j] > 0.0]
            for i in range(self.n_scenarios)
        ]
        # BFS hop counts from the initial scenario (None: unreachable).
        dist: list[int | None] = [None] * self.n_scenarios
        dist[self.initial] = 0
        frontier = [self.initial]
        while frontier:
            nxt: list[int] = []
            for s in frontier:
                for d in succ[s]:
                    if dist[d] is None:
                        dist[d] = dist[s] + 1  # type: ignore[operator]
                        nxt.append(d)
            frontier = nxt
        self.dist = dist
        # Exact-length layers with parents, for witness extraction: a
        # joint witness needs every app to reach its target in the
        # *same* number of frames, which BFS distance alone cannot give.
        self.exact: list[set[int]] = [{self.initial}]
        self.parent: list[dict[int, int]] = [{}]
        for _ in range(MAX_WITNESS_FRAMES):
            layer: set[int] = set()
            par: dict[int, int] = {}
            for s in sorted(self.exact[-1]):
                for d in succ[s]:
                    if d not in par:
                        par[d] = s
                        layer.add(d)
            self.exact.append(layer)
            self.parent.append(par)

    def path_of_length(self, target: int, length: int) -> list[int]:
        """A positive-probability path initial -> target in exactly
        ``length`` steps (caller guarantees one exists)."""
        path = [target]
        for step in range(length, 0, -1):
            path.append(self.parent[step][path[-1]])
        path.reverse()
        return path

    def label(self, sid: int) -> str:
        return scenario_name(
            SwitchState.from_scenario_id(sid), self.workload.switch_names
        )


# -- results -----------------------------------------------------------------


@dataclass
class SchedReport:
    """Outcome of one schedulability check."""

    apps: tuple[str, ...]
    cores: int
    rate_hz: float
    #: Size of the full joint scenario space (product over apps).
    n_joint: int
    #: Symmetry-reduced orbits the space collapses to.
    n_orbits: int
    #: Orbits actually evaluated at a leaf.
    n_checked: int
    #: Subtrees cut because their worst case already fit every budget.
    n_pruned: int
    findings: list[Finding] = field(default_factory=list)

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity >= Severity.ERROR]


@dataclass(frozen=True)
class FeasibilityEnvelope:
    """Statically-proven concurrency limits per workload.

    ``max_instances[name]`` is the largest number of concurrent
    instances of ``name`` for which the checker finds no ERROR on the
    given platform -- the feasibility region boundary along each
    homogeneous axis.  The fleet's admission controller consumes this
    as a per-app in-flight cap (:meth:`as_app_caps`): a job that would
    exceed the statically-proven envelope is shed at the door instead
    of admitted into an unschedulable mix.
    """

    cores: int
    rate_hz: float
    max_instances: Mapping[str, int]

    def as_app_caps(self) -> dict[str, int]:
        """Plain per-app caps for the fleet admission controller."""
        return dict(self.max_instances)

    def to_doc(self) -> dict[str, object]:
        return {
            "schema": ENVELOPE_SCHEMA,
            "cores": self.cores,
            "rate_hz": self.rate_hz,
            "max_instances": dict(sorted(self.max_instances.items())),
        }


#: Schema tag of the envelope JSON document.
ENVELOPE_SCHEMA = "repro-sched-envelope/1"


# -- the checker -------------------------------------------------------------


def _resolve_workload(app: "str | Workload") -> Workload:
    if isinstance(app, Workload):
        return app
    return get_workload(app)


def _multinomial(combo: Sequence[int]) -> int:
    """Assignments in the orbit of one within-group multiset."""
    counts: dict[int, int] = {}
    for sid in combo:
        counts[sid] = counts.get(sid, 0) + 1
    orbit = math.factorial(len(combo))
    for c in counts.values():
        orbit //= math.factorial(c)
    return orbit


@dataclass
class _Violation:
    rule: str
    severity: Severity
    sids: tuple[int, ...]
    prob: float
    orbit: int
    detail: str


def check_schedulability(
    apps: "Sequence[str | Workload]",
    platform: PlatformLike,
    cores: int | None = None,
    rate_hz: float = HZ_VIDEO,
    report_cap: int = DEFAULT_REPORT_CAP,
    graph: CompositeGraph | None = None,
) -> SchedReport:
    """Exhaustively model-check one application mix on one platform.

    ``apps`` is the mix, one entry per concurrent instance (workload
    names or :class:`Workload` objects).  ``cores`` defaults to the
    platform's core count.  ``graph`` optionally supplies a prebuilt
    composite; by default the mix is materialized through
    :func:`repro.graph.composite.build_multiapp_graph`, which also
    validates that the composite graph itself is well formed.
    """
    if not apps:
        raise ValueError("need at least one app")
    workloads = [_resolve_workload(a) for a in apps]
    n_cores = platform.n_cores if cores is None else int(cores)
    if n_cores < 1:
        raise ValueError(f"cores must be >= 1, got {n_cores}")
    if graph is None:
        # Materializing the composite exercises the generalized
        # builders (prefix uniqueness, shared pseudo-nodes) on the
        # exact mix under check.
        graph = build_multiapp_graph([w.build_graph for w in workloads])

    models: dict[str, _AppModel] = {}
    for w in workloads:
        if w.name not in models:
            models[w.name] = _AppModel(w, n_cores, rate_hz)
    instances = [models[w.name] for w in workloads]
    names = tuple(w.name for w in workloads)
    label = "+".join(names) + f"@{n_cores}c"

    period_ms = MS_PER_S / rate_hz
    supply_core_ms = n_cores * period_ms
    bus_budget = min(
        float(platform.l2_bus_bw), float(platform.total_dram_stream_bw)
    )
    l2_total = float(platform.n_l2 * platform.l2.capacity_bytes)

    findings: list[Finding] = []

    # Per-app deadline feasibility: the critical path depends on one
    # app's scenario only, so checking it inside the joint loop would
    # replicate each violation across the whole product space.
    for i, model in enumerate(instances):
        for sid in range(model.n_scenarios):
            span = model.span_ms[sid]
            if span <= period_ms + _EPS:
                continue
            severity = Severity.ERROR
            suffix = _app_reach_suffix(model, sid)
            if model.dist[sid] is None:
                severity = Severity.WARNING
            findings.append(
                Finding(
                    rule="sched/deadline",
                    severity=severity,
                    location=f"schedcheck[{label}] app {i} scenario {sid}",
                    message=(
                        f"critical path {span:.2f} ms of {model.name} "
                        f"scenario {sid} [{model.label(sid)}] exceeds the "
                        f"{period_ms:.2f} ms frame period even split "
                        f"across all {n_cores} core(s)"
                        f"{suffix}"
                    ),
                )
            )

    # Group identical instances for symmetry reduction.  Positions
    # remember where each group's instances sit in the original order
    # so representative tuples read in ``apps`` order.
    groups: list[tuple[_AppModel, list[int]]] = []
    by_name: dict[str, int] = {}
    for pos, model in enumerate(instances):
        g = by_name.get(model.name)
        if g is None:
            by_name[model.name] = len(groups)
            groups.append((model, [pos]))
        else:
            groups[g][1].append(pos)

    n_joint = math.prod(m.n_scenarios for m in instances)
    n_orbits = math.prod(
        math.comb(m.n_scenarios + len(pos) - 1, len(pos))
        for m, pos in groups
    )

    def fits(load: _Load) -> bool:
        return (
            load.cost_ms <= supply_core_ms + _EPS
            and load.bw_bytes <= bus_budget + _EPS
            and load.ws_bytes <= l2_total + _EPS
        )

    suffix_max = [_ZERO_LOAD] * (len(groups) + 1)
    for g in range(len(groups) - 1, -1, -1):
        model, positions = groups[g]
        worst = _ZERO_LOAD
        for _ in positions:
            worst = worst + model.max_load
        suffix_max[g] = suffix_max[g + 1] + worst

    violations: list[_Violation] = []
    stats = {"checked": 0, "pruned": 0}

    def leaf(chosen: list[tuple[int, ...]], load: _Load) -> None:
        stats["checked"] += 1
        broken: list[tuple[str, Severity, str]] = []
        if load.cost_ms > supply_core_ms + _EPS:
            broken.append(
                (
                    "sched/compute-budget",
                    Severity.ERROR,
                    f"aggregate compute demand {load.cost_ms:.2f} "
                    f"core-ms/frame exceeds supply "
                    f"{supply_core_ms:.2f} core-ms "
                    f"({n_cores} core(s) x {period_ms:.2f} ms period)",
                )
            )
        if load.bw_bytes > bus_budget + _EPS:
            broken.append(
                (
                    "sched/bus-budget",
                    Severity.ERROR,
                    f"aggregate inter-task bandwidth "
                    f"{load.bw_bytes / MB:.0f} MByte/s exceeds the "
                    f"weakest platform link ({bus_budget / MB:.0f} "
                    f"MByte/s)",
                )
            )
        if load.ws_bytes > l2_total + _EPS:
            broken.append(
                (
                    "sched/l2-pressure",
                    Severity.WARNING,
                    f"aggregate stream working set "
                    f"{load.ws_bytes / MIB:.1f} MiB exceeds the "
                    f"platform's total L2 ({l2_total / MIB:.1f} MiB)",
                )
            )
        if not broken:
            return
        sids = [0] * len(instances)
        orbit = 1
        prob = 1.0
        for (model, positions), combo in zip(groups, chosen):
            orbit *= _multinomial(combo)
            for pos, sid in zip(positions, combo):
                sids[pos] = sid
                prob *= model.stationary[sid]
        for rule, severity, detail in broken:
            violations.append(
                _Violation(
                    rule=rule,
                    severity=severity,
                    sids=tuple(sids),
                    prob=prob,
                    orbit=orbit,
                    detail=detail,
                )
            )

    def rec(g: int, chosen: list[tuple[int, ...]], load: _Load) -> None:
        if fits(load + suffix_max[g]):
            stats["pruned"] += 1
            return
        if g == len(groups):
            leaf(chosen, load)
            return
        model, positions = groups[g]
        for combo in itertools.combinations_with_replacement(
            range(model.n_scenarios), len(positions)
        ):
            extra = _ZERO_LOAD
            for sid in combo:
                extra = extra + model.loads[sid]
            chosen.append(combo)
            rec(g + 1, chosen, load + extra)
            chosen.pop()

    rec(0, [], _ZERO_LOAD)

    findings += _render_violations(
        violations, instances, label, report_cap
    )
    report = SchedReport(
        apps=names,
        cores=n_cores,
        rate_hz=rate_hz,
        n_joint=n_joint,
        n_orbits=n_orbits,
        n_checked=stats["checked"],
        n_pruned=stats["pruned"],
        findings=findings,
    )
    return report


def _app_reach_suffix(model: _AppModel, sid: int) -> str:
    """Reachability annotation of one single-app scenario."""
    pi = model.stationary[sid]
    d = model.dist[sid]
    if d is None:
        return (
            f"; stationary p={pi:.3e}; statically unreachable from "
            f"initial scenario {model.initial} -- downgraded"
        )
    path = "->".join(
        str(s) for s in model.path_of_length(sid, d)
    )
    return f"; stationary p={pi:.3e}; witness ({d} frame(s)): {path}"


def _joint_witness(
    instances: Sequence[_AppModel], sids: Sequence[int]
) -> "tuple[str, bool]":
    """Reachability annotation of one joint scenario.

    Returns ``(suffix, witnessed)``; a violation without a witness is
    downgraded -- per-app reachability alone is not enough, because
    independent apps advance in lockstep and a joint scenario needs
    every app to reach its target in the *same* number of frames
    (two deterministic copies can each reach 0 and 7 individually yet
    never sit in (0, 7) together).
    """
    if any(m.dist[s] is None for m, s in zip(instances, sids)):
        initials = ",".join(str(m.initial) for m in instances)
        return (
            f"; statically unreachable from initial scenario "
            f"({initials}) -- downgraded"
        ), False
    length = None
    for l in range(MAX_WITNESS_FRAMES + 1):
        if all(s in m.exact[l] for m, s in zip(instances, sids)):
            length = l
            break
    if length is None:
        return (
            f"; no witness within {MAX_WITNESS_FRAMES} frames of the "
            f"initial scenario -- downgraded"
        ), False
    paths = [
        m.path_of_length(s, length) for m, s in zip(instances, sids)
    ]
    steps = [
        "(" + ",".join(str(p[t]) for p in paths) + ")"
        for t in range(length + 1)
    ]
    return f"; witness ({length} frame(s)): {'->'.join(steps)}", True


def _render_violations(
    violations: list[_Violation],
    instances: Sequence[_AppModel],
    label: str,
    report_cap: int,
) -> list[Finding]:
    """Most-probable-first findings, capped per rule with a note."""
    findings: list[Finding] = []
    by_rule: dict[str, list[_Violation]] = {}
    for v in violations:
        by_rule.setdefault(v.rule, []).append(v)
    for rule in sorted(by_rule):
        ranked = sorted(by_rule[rule], key=lambda v: (-v.prob, v.sids))
        for v in ranked[:report_cap]:
            witness, witnessed = _joint_witness(instances, v.sids)
            severity = v.severity
            if not witnessed and severity > Severity.INFO:
                severity = Severity(severity - 1)
            sids_str = ",".join(str(s) for s in v.sids)
            labels = " | ".join(
                m.label(s) for m, s in zip(instances, v.sids)
            )
            orbit_note = (
                f"; orbit x{v.orbit}" if v.orbit > 1 else ""
            )
            findings.append(
                Finding(
                    rule=rule,
                    severity=severity,
                    location=(
                        f"schedcheck[{label}] joint scenario ({sids_str})"
                    ),
                    message=(
                        f"{v.detail} in joint scenario ({sids_str}) "
                        f"[{labels}]; stationary p={v.prob:.3e}"
                        f"{orbit_note}"
                        f"{witness}"
                    ),
                )
            )
        dropped = len(ranked) - report_cap
        if dropped > 0:
            findings.append(
                Finding(
                    rule="sched/report-cap",
                    severity=Severity.INFO,
                    location=f"schedcheck[{label}] rule {rule}",
                    message=(
                        f"{dropped} more violating joint scenario "
                        f"orbit(s) beyond the {report_cap} most "
                        f"probable reported for {rule}"
                    ),
                )
            )
    return findings


def product_scenario_chain(
    apps: "Sequence[str | Workload]",
) -> MarkovChain:
    """The joint scenario chain of a mix (first app most significant).

    Exposed for diagnostics and tests: the checker itself factors
    reachability per application, but the product chain *is* the
    semantics being factored -- its stationary distribution over joint
    states equals the product of the per-app stationaries the checker
    multiplies.
    """
    chains = [
        MarkovChain.from_transition(
            _resolve_workload(a).scenarios.transition()
        )
        for a in apps
    ]
    return product_chain(chains)


def compute_envelope(
    platform: PlatformLike,
    cores: int | None = None,
    rate_hz: float = HZ_VIDEO,
    workloads: "Sequence[str | Workload] | None" = None,
    search_cap: int = 16,
) -> FeasibilityEnvelope:
    """Max statically-feasible concurrent instances per workload.

    For each workload, the largest homogeneous mix with no ERROR
    finding, by linear search up to ``search_cap`` (the metrics are
    monotone in the instance count, so the first failure is the
    boundary).
    """
    if workloads is None:
        from repro.workloads import all_workloads

        candidates: list[Workload] = all_workloads()
    else:
        candidates = [_resolve_workload(w) for w in workloads]
    n_cores = platform.n_cores if cores is None else int(cores)
    caps: dict[str, int] = {}
    for w in candidates:
        feasible = 0
        for n in range(1, search_cap + 1):
            report = check_schedulability(
                [w] * n, platform, cores=n_cores, rate_hz=rate_hz
            )
            if report.errors:
                break
            feasible = n
        caps[w.name] = feasible
    return FeasibilityEnvelope(
        cores=n_cores, rate_hz=rate_hz, max_instances=caps
    )
