"""Project lint rules enforcing the reproduction's hygiene invariants.

Each rule guards a property the prediction pipeline depends on:

``lint/banned-random``
    All randomness must flow through :func:`repro.util.rng.rng_stream`
    named streams; a direct ``np.random.*`` / ``random.*`` call breaks
    the bit-for-bit reproducibility of every figure in EXPERIMENTS.md.
``lint/wall-clock``
    Model code in ``core/`` must be a pure function of its inputs;
    reading the wall clock (``time.time`` & friends) would smuggle
    nondeterminism into predictions.
``lint/unit-mix``
    Decimal (``KB``/``MB``/``GB``) and binary (``KIB``/``MIB``/``GIB``)
    byte families may not meet in one expression; conversions between
    the Table 1 (binary) and Fig. 4 (decimal) families belong in
    :mod:`repro.util.units` helpers, where the factor is explicit.
``lint/ewma-alpha``
    EWMA smoothing factors are only meaningful in ``(0, 1]`` (paper
    Eq. 1); a literal outside that range is a latent ValueError.
``lint/frozen-setattr``
    ``object.__setattr__`` outside ``__post_init__`` defeats frozen
    dataclasses; models are shared across threads in the runtime
    manager and must stay immutable after construction.
``lint/executor-outside-parallel``
    Process/thread pools may only be built in ``repro/parallel/``;
    :func:`repro.parallel.map_sequences` is the sanctioned fan-out.
    Ad-hoc executors fork with unpredictable inherited state and
    bypass the input-order merge that keeps parallel results
    bit-identical to serial ones.
``lint/direct-time-call``
    Stopwatch reads (``time.monotonic``/``time.perf_counter`` and
    their ``_ns`` variants) may only appear in ``repro/obs/`` (the
    injectable-clock implementation) and ``repro/bench/`` (raw timing
    is its whole point).  Everything else times through
    :func:`repro.obs.clock.monotonic_s` or an obs span, so tests can
    substitute a manual clock and traces stay consistent.
``lint/app-hardcode``
    Application code resolves workloads through the
    :mod:`repro.workloads` registry; importing the StentBoost graph
    builder (``build_stentboost_graph`` / ``repro.graph.stentboost``)
    anywhere else hard-wires one application into a layer that is
    supposed to serve every registered workload.  The graph package
    itself and the registry definitions are exempt.
``lint/frame-loop-outside-engine``
    Per-frame ``simulate_frame`` loops belong to the frame engine
    (``repro/runtime/engine.py``); everything else runs sequences
    through :class:`repro.runtime.FrameEngine` and a scheduling
    policy (or :func:`repro.runtime.simulate_report_sweep` for
    hand-built reports).  An ad-hoc loop silently skips the budget /
    delay-line / telemetry wiring the engine owns, so its results
    drift from the managed paths.  ``repro/bench/`` (raw timing) and
    ``repro/profiling/`` (trace collection predates any model) keep
    their own loops.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.analysis.astlint import LintContext, LintRule
from repro.analysis.findings import Severity

__all__ = [
    "BannedRandomRule",
    "WallClockRule",
    "UnitMixRule",
    "EwmaAlphaRule",
    "FrozenSetattrRule",
    "ExecutorRule",
    "DirectTimeCallRule",
    "FrameLoopRule",
    "AppHardcodeRule",
    "default_rules",
]


def _path_endswith(path: str, suffixes: tuple[str, ...]) -> bool:
    posix = Path(path).as_posix()
    return any(posix.endswith(s) for s in suffixes)


class BannedRandomRule(LintRule):
    """No direct ``np.random.*`` / ``random.*`` calls outside util/rng."""

    rule_id = "lint/banned-random"
    description = (
        "randomness must come from repro.util.rng named streams, not "
        "direct numpy.random / random calls"
    )

    #: Files allowed to touch the raw generators (the stream factory).
    allowed_files: tuple[str, ...] = ("util/rng.py",)

    def __init__(self, allowed_files: tuple[str, ...] | None = None) -> None:
        if allowed_files is not None:
            self.allowed_files = allowed_files

    def applies_to(self, path: str) -> bool:
        return not _path_endswith(path, self.allowed_files)

    def on_call(self, ctx: LintContext, node: ast.Call) -> None:
        dotted = ctx.dotted_name(node.func)
        if dotted is None:
            return
        if dotted.startswith("numpy.random.") or dotted == "numpy.random":
            ctx.report(
                self.rule_id,
                Severity.ERROR,
                node,
                f"direct call to {dotted}; derive a generator with "
                "repro.util.rng.rng_stream instead",
            )
        elif dotted == "random" or dotted.startswith("random."):
            ctx.report(
                self.rule_id,
                Severity.ERROR,
                node,
                f"direct call to stdlib {dotted}; derive a generator with "
                "repro.util.rng.rng_stream instead",
            )


class WallClockRule(LintRule):
    """No wall-clock reads inside model code."""

    rule_id = "lint/wall-clock"
    description = "core/ model code may not read the wall clock"

    banned: tuple[str, ...] = (
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.date.today",
    )

    def __init__(self, directories: tuple[str, ...] | None = ("core",)) -> None:
        #: Path components the rule is restricted to; ``None`` = all files.
        self.directories = directories

    def applies_to(self, path: str) -> bool:
        if self.directories is None:
            return True
        parts = Path(path).parts
        return any(d in parts for d in self.directories)

    def on_call(self, ctx: LintContext, node: ast.Call) -> None:
        dotted = ctx.dotted_name(node.func)
        if dotted in self.banned:
            ctx.report(
                self.rule_id,
                Severity.ERROR,
                node,
                f"{dotted} read in model code; predictions must be pure "
                "functions of their inputs",
            )


class UnitMixRule(LintRule):
    """No mixing of decimal and binary byte units in one expression."""

    rule_id = "lint/unit-mix"
    description = (
        "KB/MB/GB (decimal) and KIB/MIB/GIB (binary) may not appear in "
        "the same expression; convert via repro.util.units helpers"
    )

    decimal: frozenset[str] = frozenset({"KB", "MB", "GB"})
    binary: frozenset[str] = frozenset({"KIB", "MIB", "GIB"})

    #: The conversion boundary itself is exempt.
    allowed_files: tuple[str, ...] = ("util/units.py",)

    def applies_to(self, path: str) -> bool:
        return not _path_endswith(path, self.allowed_files)

    def _unit_names(self, node: ast.AST) -> set[str]:
        names: set[str] = set()
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name):
                names.add(sub.id)
            elif isinstance(sub, ast.Attribute):
                names.add(sub.attr)
        return names & (self.decimal | self.binary)

    def on_binop(self, ctx: LintContext, node: ast.BinOp) -> None:
        units = self._unit_names(node)
        dec = sorted(units & self.decimal)
        binr = sorted(units & self.binary)
        if dec and binr:
            ctx.report(
                self.rule_id,
                Severity.ERROR,
                node,
                f"expression mixes decimal {dec} with binary {binr} byte "
                "units; lift the conversion into repro.util.units",
            )


class EwmaAlphaRule(LintRule):
    """EWMA smoothing-factor literals must lie in (0, 1]."""

    rule_id = "lint/ewma-alpha"
    description = "EWMA alpha literals must satisfy 0 < alpha <= 1 (Eq. 1)"

    #: callee basename -> positional index of its alpha parameter.
    callees: dict[str, int] = {
        "EwmaFilter": 0,
        "ewma": 1,
        "high_low_split": 1,
    }

    def _alpha_node(self, basename: str, node: ast.Call) -> ast.expr | None:
        for kw in node.keywords:
            if kw.arg == "alpha":
                return kw.value
        idx = self.callees[basename]
        if len(node.args) > idx:
            return node.args[idx]
        return None

    def on_call(self, ctx: LintContext, node: ast.Call) -> None:
        dotted = ctx.dotted_name(node.func)
        if dotted is None:
            return
        basename = dotted.rsplit(".", 1)[-1]
        if basename not in self.callees:
            return
        value = self._alpha_node(basename, node)
        if (
            isinstance(value, ast.Constant)
            and isinstance(value.value, (int, float))
            and not isinstance(value.value, bool)
        ):
            alpha = float(value.value)
            if not 0.0 < alpha <= 1.0:
                ctx.report(
                    self.rule_id,
                    Severity.ERROR,
                    node,
                    f"{basename} called with alpha={alpha!r}, outside the "
                    "(0, 1] range of Eq. 1",
                )


class FrozenSetattrRule(LintRule):
    """No ``object.__setattr__`` outside dataclass ``__post_init__``."""

    rule_id = "lint/frozen-setattr"
    description = (
        "object.__setattr__ is only legitimate inside __post_init__ of a "
        "frozen dataclass"
    )

    def on_call(self, ctx: LintContext, node: ast.Call) -> None:
        if ctx.dotted_name(node.func) != "object.__setattr__":
            return
        if ctx.current_function != "__post_init__":
            where = ctx.current_function or "module level"
            ctx.report(
                self.rule_id,
                Severity.ERROR,
                node,
                f"object.__setattr__ in {where}; mutating a frozen "
                "dataclass outside __post_init__ breaks immutability",
            )


class ExecutorRule(LintRule):
    """No executor/pool construction outside ``repro/parallel/``."""

    rule_id = "lint/executor-outside-parallel"
    description = (
        "process/thread pools may only be constructed in repro/parallel/; "
        "use repro.parallel.map_sequences for fan-out"
    )

    banned: tuple[str, ...] = (
        "concurrent.futures.ProcessPoolExecutor",
        "concurrent.futures.ThreadPoolExecutor",
        "concurrent.futures.process.ProcessPoolExecutor",
        "concurrent.futures.thread.ThreadPoolExecutor",
        "multiprocessing.Pool",
        "multiprocessing.Process",
        "multiprocessing.pool.Pool",
        "multiprocessing.pool.ThreadPool",
        "multiprocessing.get_context",
    )

    #: The sanctioned pool implementation itself.
    allowed_files: tuple[str, ...] = ("parallel/pool.py",)

    def __init__(self, allowed_files: tuple[str, ...] | None = None) -> None:
        if allowed_files is not None:
            self.allowed_files = allowed_files

    def applies_to(self, path: str) -> bool:
        return not _path_endswith(path, self.allowed_files)

    def on_call(self, ctx: LintContext, node: ast.Call) -> None:
        dotted = ctx.dotted_name(node.func)
        if dotted in self.banned:
            ctx.report(
                self.rule_id,
                Severity.ERROR,
                node,
                f"{dotted} constructed outside repro/parallel/; route "
                "fan-out through repro.parallel.map_sequences",
            )


class DirectTimeCallRule(LintRule):
    """Stopwatch calls only in ``repro/obs/`` and ``repro/bench/``."""

    rule_id = "lint/direct-time-call"
    description = (
        "time.monotonic/time.perf_counter may only be called in "
        "repro/obs/ and repro/bench/; time through "
        "repro.obs.clock.monotonic_s or an obs span elsewhere"
    )

    banned: tuple[str, ...] = (
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
    )

    def __init__(self, allowed_dirs: tuple[str, ...] | None = None) -> None:
        #: Directory components whose files may read the stopwatch.
        self.allowed_dirs: tuple[str, ...] = (
            allowed_dirs if allowed_dirs is not None else ("obs", "bench")
        )

    def applies_to(self, path: str) -> bool:
        parts = Path(path).parts
        return not any(d in parts for d in self.allowed_dirs)

    def on_call(self, ctx: LintContext, node: ast.Call) -> None:
        dotted = ctx.dotted_name(node.func)
        if dotted in self.banned:
            ctx.report(
                self.rule_id,
                Severity.ERROR,
                node,
                f"direct {dotted} call outside repro/obs/ and "
                "repro/bench/; use repro.obs.clock.monotonic_s (or an "
                "obs span) so the clock stays injectable",
            )


class FrameLoopRule(LintRule):
    """No per-frame ``simulate_frame`` loops outside the frame engine."""

    rule_id = "lint/frame-loop-outside-engine"
    description = (
        "per-frame simulate_frame loops may only live in "
        "repro/runtime/engine.py; drive sequences through "
        "repro.runtime.FrameEngine and a scheduling policy"
    )

    #: The engine owns the canonical per-frame loop.
    allowed_files: tuple[str, ...] = ("runtime/engine.py",)

    _LOOP_NODES = (
        ast.For,
        ast.AsyncFor,
        ast.While,
        ast.ListComp,
        ast.SetComp,
        ast.DictComp,
        ast.GeneratorExp,
    )

    def __init__(
        self,
        allowed_files: tuple[str, ...] | None = None,
        allowed_dirs: tuple[str, ...] | None = None,
    ) -> None:
        if allowed_files is not None:
            self.allowed_files = allowed_files
        #: Directory components whose files keep their own loops
        #: (raw benchmarking; profiling, which predates any model).
        self.allowed_dirs: tuple[str, ...] = (
            allowed_dirs if allowed_dirs is not None else ("bench", "profiling")
        )

    def applies_to(self, path: str) -> bool:
        if _path_endswith(path, self.allowed_files):
            return False
        parts = Path(path).parts
        return not any(d in parts for d in self.allowed_dirs)

    @staticmethod
    def _callee_basename(node: ast.Call) -> str | None:
        func = node.func
        if isinstance(func, ast.Attribute):
            return func.attr
        if isinstance(func, ast.Name):
            return func.id
        return None

    def on_module(self, ctx: LintContext, node: ast.Module) -> None:
        reported: set[int] = set()
        for loop in ast.walk(node):
            if not isinstance(loop, self._LOOP_NODES):
                continue
            for sub in ast.walk(loop):
                if (
                    isinstance(sub, ast.Call)
                    and id(sub) not in reported
                    and self._callee_basename(sub) == "simulate_frame"
                ):
                    reported.add(id(sub))
                    ctx.report(
                        self.rule_id,
                        Severity.ERROR,
                        sub,
                        "simulate_frame called in a loop outside "
                        "repro/runtime/engine.py; run the sequence through "
                        "repro.runtime.FrameEngine with a scheduling policy "
                        "(or simulate_report_sweep for prebuilt reports)",
                    )


class AppHardcodeRule(LintRule):
    """No direct StentBoost graph imports outside workloads/graph."""

    rule_id = "lint/app-hardcode"
    description = (
        "application layers resolve workloads via repro.workloads; "
        "importing build_stentboost_graph / repro.graph.stentboost "
        "elsewhere hard-wires one application in"
    )

    #: The hard-wired module and its builder symbol.
    _MODULE = "repro.graph.stentboost"
    _SYMBOL = "build_stentboost_graph"

    def __init__(self, allowed_dirs: tuple[str, ...] | None = None) -> None:
        #: Directory components whose files may import the builder
        #: directly: the graph package (it *defines* the builder) and
        #: the registry (its entries wrap the direct imports).
        self.allowed_dirs: tuple[str, ...] = (
            allowed_dirs if allowed_dirs is not None else ("graph", "workloads")
        )

    def applies_to(self, path: str) -> bool:
        parts = Path(path).parts
        return not any(d in parts for d in self.allowed_dirs)

    def on_import(
        self, ctx: LintContext, node: ast.Import | ast.ImportFrom
    ) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                if (
                    alias.name == self._MODULE
                    or alias.name.startswith(self._MODULE + ".")
                ):
                    self._flag(ctx, node, alias.name)
            return
        module = node.module or ""
        if module == self._MODULE or module.startswith(self._MODULE + "."):
            self._flag(ctx, node, module)
            return
        for alias in node.names:
            if alias.name == self._SYMBOL:
                self._flag(ctx, node, f"{module}.{self._SYMBOL}")

    def _flag(
        self,
        ctx: LintContext,
        node: ast.Import | ast.ImportFrom,
        what: str,
    ) -> None:
        ctx.report(
            self.rule_id,
            Severity.ERROR,
            node,
            f"direct import of {what} outside repro/graph/ and "
            "repro/workloads/; resolve the application through "
            "repro.workloads.get_workload instead",
        )


def default_rules() -> list[LintRule]:
    """Fresh instances of every project rule (the CLI's default set)."""
    return [
        BannedRandomRule(),
        WallClockRule(),
        UnitMixRule(),
        EwmaAlphaRule(),
        FrozenSetattrRule(),
        ExecutorRule(),
        DirectTimeCallRule(),
        FrameLoopRule(),
        AppHardcodeRule(),
    ]
