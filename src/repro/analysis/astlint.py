"""A small visitor-based AST lint framework for project rules.

The framework does the generic work -- parsing, walking, import-alias
resolution, function context -- and dispatches events to
:class:`LintRule` objects, which only contain the project-specific
judgement.  Rules receive a :class:`LintContext` describing where the
walker currently is and append :class:`Finding` values to it.

Event hooks a rule may implement (all optional):

``on_module(ctx, node)``
    Once per file, after imports were indexed.
``on_import(ctx, node)``
    For each ``import`` / ``from ... import`` statement.
``on_call(ctx, node)``
    For each function call; ``ctx.dotted_name(node.func)`` resolves
    the callee through the module's import aliases.
``on_binop(ctx, node)``
    For each *outermost* binary-operator expression (nested ``BinOp``
    children are not re-dispatched, so expression-level rules see
    each expression exactly once).
``on_function(ctx, node)``
    For each function/method definition (before its body is walked).
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.analysis.findings import Finding, Severity

__all__ = [
    "LintContext",
    "LintRule",
    "lint_source",
    "lint_file",
    "lint_paths",
    "iter_python_files",
]


class LintContext:
    """Per-file walking state handed to every rule hook."""

    def __init__(self, path: str, tree: ast.Module) -> None:
        self.path = path
        self.tree = tree
        self.findings: list[Finding] = []
        #: local name -> absolute dotted module path, from import statements.
        self.aliases: dict[str, str] = {}
        #: enclosing function names, innermost last.
        self.function_stack: list[str] = []
        self._index_imports(tree)

    # -- import-alias resolution ---------------------------------------------

    def _index_imports(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self.aliases[local] = target
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.aliases[local] = f"{node.module}.{alias.name}"

    def dotted_name(self, node: ast.expr) -> str | None:
        """Resolve an attribute/name chain to an absolute dotted name.

        ``np.random.default_rng`` (with ``import numpy as np``)
        resolves to ``numpy.random.default_rng``; unresolvable
        expressions (calls, subscripts ...) yield ``None``.
        """
        parts: list[str] = []
        cur: ast.expr = node
        while isinstance(cur, ast.Attribute):
            parts.append(cur.attr)
            cur = cur.value
        if not isinstance(cur, ast.Name):
            return None
        parts.append(cur.id)
        parts.reverse()
        parts[0] = self.aliases.get(parts[0], parts[0])
        return ".".join(parts)

    # -- reporting ------------------------------------------------------------

    def report(
        self, rule: str, severity: Severity, node: ast.AST, message: str
    ) -> None:
        line = getattr(node, "lineno", 0)
        self.findings.append(
            Finding(
                rule=rule,
                severity=severity,
                location=f"{self.path}:{line}",
                message=message,
            )
        )

    @property
    def current_function(self) -> str | None:
        return self.function_stack[-1] if self.function_stack else None


class LintRule:
    """Base class for project rules; subclass and override hooks."""

    #: Stable identifier, e.g. ``lint/banned-random``.
    rule_id: str = "lint/unnamed"
    #: One-line description shown by ``--list-rules``.
    description: str = ""

    def applies_to(self, path: str) -> bool:
        """Whether this rule runs on ``path`` (default: every file)."""
        return True

    def on_module(self, ctx: LintContext, node: ast.Module) -> None: ...

    def on_import(
        self, ctx: LintContext, node: ast.Import | ast.ImportFrom
    ) -> None: ...

    def on_call(self, ctx: LintContext, node: ast.Call) -> None: ...

    def on_binop(self, ctx: LintContext, node: ast.BinOp) -> None: ...

    def on_function(
        self, ctx: LintContext, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None: ...


class _Walker(ast.NodeVisitor):
    """Drives the tree walk and dispatches events to active rules."""

    def __init__(self, ctx: LintContext, rules: Sequence[LintRule]) -> None:
        self.ctx = ctx
        self.rules = [r for r in rules if r.applies_to(ctx.path)]

    def run(self) -> None:
        for rule in self.rules:
            rule.on_module(self.ctx, self.ctx.tree)
        self.visit(self.ctx.tree)

    def visit_Import(self, node: ast.Import) -> None:
        for rule in self.rules:
            rule.on_import(self.ctx, node)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        for rule in self.rules:
            rule.on_import(self.ctx, node)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        for rule in self.rules:
            rule.on_call(self.ctx, node)
        self.generic_visit(node)

    def visit_BinOp(self, node: ast.BinOp) -> None:
        # Dispatch only the outermost BinOp of an expression; walk the
        # children ourselves so nested BinOps are not re-dispatched,
        # but calls/subscripts *inside* them still are.
        for rule in self.rules:
            rule.on_binop(self.ctx, node)
        self._descend_binop(node)

    def _descend_binop(self, node: ast.BinOp) -> None:
        for child in (node.left, node.right):
            if isinstance(child, ast.BinOp):
                self._descend_binop(child)
            else:
                self.visit(child)

    def _visit_function(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        for rule in self.rules:
            rule.on_function(self.ctx, node)
        self.ctx.function_stack.append(node.name)
        try:
            self.generic_visit(node)
        finally:
            self.ctx.function_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)


def lint_source(
    source: str, path: str, rules: Sequence[LintRule]
) -> list[Finding]:
    """Lint one module given as text; returns its findings."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                rule="lint/syntax-error",
                severity=Severity.ERROR,
                location=f"{path}:{exc.lineno or 0}",
                message=f"file does not parse: {exc.msg}",
            )
        ]
    ctx = LintContext(path, tree)
    _Walker(ctx, rules).run()
    return ctx.findings


def lint_file(path: Path, rules: Sequence[LintRule]) -> list[Finding]:
    """Lint one ``.py`` file from disk."""
    return lint_source(path.read_text(encoding="utf-8"), str(path), rules)


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Expand files/directories into a sorted stream of ``.py`` files."""
    seen: set[Path] = set()
    for p in paths:
        if p.is_dir():
            candidates: Iterable[Path] = sorted(p.rglob("*.py"))
        else:
            candidates = [p]
        for c in candidates:
            if c.suffix == ".py" and c not in seen:
                seen.add(c)
                yield c


def lint_paths(
    paths: Iterable[Path], rules: Sequence[LintRule]
) -> list[Finding]:
    """Lint every python file under ``paths``."""
    findings: list[Finding] = []
    for f in iter_python_files(paths):
        findings += lint_file(f, rules)
    return findings
