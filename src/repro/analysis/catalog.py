"""The complete rule catalog of the analysis suite.

One place that knows every rule id, its default severity and a
one-line description -- consumed by ``--list-rules``, by the SARIF
exporter (``tool.driver.rules`` metadata) and cross-checked against
the rule catalog in ``docs/analysis.md`` by the doc test.

Lint rules self-describe (each :class:`~repro.analysis.astlint.
LintRule` carries ``rule_id`` and ``description``); graph, dataflow
and meta rules are declared here because their checkers are plain
functions.
"""

from __future__ import annotations

from typing import Mapping

from repro.analysis.findings import Severity
from repro.analysis.rules import default_rules

__all__ = ["RuleInfo", "rule_catalog"]

RuleInfo = tuple[Severity, str]

#: Graph-invariant rules (:mod:`repro.analysis.graphcheck`).
_GRAPH_RULES: Mapping[str, RuleInfo] = {
    "graph/dangling": (
        Severity.ERROR,
        "edge references a task absent from the task table",
    ),
    "graph/cycle": (
        Severity.ERROR,
        "the task graph has a dependency cycle",
    ),
    "graph/switch-coverage": (
        Severity.ERROR,
        "a switch state activates no tasks or an unknown task",
    ),
    "graph/starved-task": (
        Severity.ERROR,
        "active task has no active input edge in some scenario",
    ),
    "graph/dead-task": (
        Severity.WARNING,
        "task is never activated by any switch state",
    ),
    "graph/edge-capacity": (
        Severity.ERROR,
        "edge payload disagrees with the producing task's output size",
    ),
    "graph/phase-budget": (
        Severity.INFO,
        "a task phase's working set overflows the L2 capacity",
    ),
    "graph/buffer-budget": (
        Severity.INFO,
        "a task's total buffer footprint overflows the L2 capacity",
    ),
    "graph/bandwidth-budget": (
        Severity.ERROR,
        "scenario bandwidth exceeds the platform's bus/DRAM budget",
    ),
}

#: Scenario-space schedulability rules (:mod:`repro.analysis.schedcheck`).
_SCHED_RULES: Mapping[str, RuleInfo] = {
    "sched/compute-budget": (
        Severity.ERROR,
        "a joint scenario's aggregate compute lower bound exceeds the "
        "core supply within one frame period",
    ),
    "sched/deadline": (
        Severity.ERROR,
        "an application scenario's critical path misses the frame "
        "period even fully parallelized",
    ),
    "sched/bus-budget": (
        Severity.ERROR,
        "a joint scenario's aggregate inter-task bandwidth exceeds "
        "the weakest platform link",
    ),
    "sched/l2-pressure": (
        Severity.WARNING,
        "a joint scenario's aggregate stream working set exceeds the "
        "platform's total L2 capacity",
    ),
    "sched/report-cap": (
        Severity.INFO,
        "violating joint scenarios beyond the per-rule report cap "
        "were counted, not listed",
    ),
}

#: Whole-program dataflow rules (:mod:`repro.analysis.dataflow`).
_DATAFLOW_RULES: Mapping[str, RuleInfo] = {
    "dataflow/unit-mix": (
        Severity.ERROR,
        "adds, subtracts or compares two values of different units",
    ),
    "dataflow/unit-assign": (
        Severity.ERROR,
        "assigns a value to a variable whose name/annotation claims "
        "a different unit",
    ),
    "dataflow/unit-arg": (
        Severity.ERROR,
        "passes a value to a parameter annotated with a different unit",
    ),
    "dataflow/unit-return": (
        Severity.ERROR,
        "returns a value contradicting the annotated return unit",
    ),
    "dataflow/unitless-return": (
        Severity.INFO,
        "function with unit-annotated parameters drops the unit of "
        "its inferable return",
    ),
    "dataflow/pool-worker-closure": (
        Severity.ERROR,
        "map_sequences worker is a lambda or nested function",
    ),
    "dataflow/pool-global-mutation": (
        Severity.ERROR,
        "pool worker (transitively) mutates a mutable module global",
    ),
    "dataflow/pool-shared-state": (
        Severity.WARNING,
        "pool worker (transitively) reads a mutable module global",
    ),
    "dataflow/unordered-accumulation": (
        Severity.WARNING,
        "set iteration feeds accumulation; order is hash-dependent",
    ),
    "dataflow/unsorted-listing": (
        Severity.WARNING,
        "filesystem listing used without an immediate sorted(...)",
    ),
    "dataflow/json-sort-keys": (
        Severity.WARNING,
        "json.dump(s) without sort_keys=True in artifact output",
    ),
    "dataflow/pool-arg-mutation": (
        Severity.ERROR,
        "pool worker mutates its argument; pooled and inline runs "
        "mutate different objects",
    ),
    "dataflow/pool-impure-worker": (
        Severity.WARNING,
        "pool worker has inferred effects (io/env/spawns/nondet) "
        "observable under pooled scheduling",
    ),
}

#: Effect-engine rules (:mod:`repro.analysis.effects`).
_EFFECT_RULES: Mapping[str, RuleInfo] = {
    "effects/contract-mismatch": (
        Severity.ERROR,
        "inferred effects exceed the @pure/@effects(...) declaration",
    ),
    "effects/contract-unused": (
        Severity.INFO,
        "declared effect the inference finds no evidence of",
    ),
    "effects/missing-contract": (
        Severity.WARNING,
        "pool worker, predictor-backend fit or policy step without "
        "an effect contract",
    ),
    "perf/scalar-predict-in-loop": (
        Severity.WARNING,
        "per-element predict() on a receiver whose class implements "
        "predict_series",
    ),
    "perf/invariant-attr-in-loop": (
        Severity.WARNING,
        "loop-invariant instrument lookup or attribute chain "
        "re-resolved per iteration",
    ),
    "perf/alloc-in-hot-loop": (
        Severity.INFO,
        "constant container literal allocated per iteration of a "
        "hot-path loop",
    ),
    "perf/frame-object-churn": (
        Severity.WARNING,
        "per-frame dataclass appended to a list in a module with a "
        "columnar frame store",
    ),
}

#: Meta rules emitted by the reporting layer itself.
_META_RULES: Mapping[str, RuleInfo] = {
    "analysis/unsuppressed-ignore": (
        Severity.WARNING,
        "a '# repro: ignore[...]' marker suppresses no finding",
    ),
}


def rule_catalog() -> dict[str, RuleInfo]:
    """Every rule id -> (default severity, one-line description)."""
    catalog: dict[str, RuleInfo] = {}
    for rule in default_rules():
        catalog[rule.rule_id] = (Severity.ERROR, rule.description)
    catalog.update(_GRAPH_RULES)
    catalog.update(_SCHED_RULES)
    catalog.update(_DATAFLOW_RULES)
    catalog.update(_EFFECT_RULES)
    catalog.update(_META_RULES)
    return dict(sorted(catalog.items()))
