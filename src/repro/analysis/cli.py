"""``python -m repro.analysis`` -- run the static-analysis suite.

By default five passes run:

* the AST lint over the ``repro`` package sources (or explicit paths),
* the whole-program dataflow passes (unit inference + determinism
  audit) over the same roots,
* the effect passes (pool-seam race detector + effect-contract
  verification, backed by interprocedural purity inference),
* the perf-smell pass (scalar ``predict`` in loops, per-iteration
  instrument lookups and allocations in hot paths),
* the graph checker over every registered workload's flow graph on
  the Blackford platform (``--graph MODULE:CALLABLE`` checks one
  explicit graph instead).

Findings on a line carrying a matching ``# repro: ignore[rule]``
comment are suppressed (stale markers are themselves flagged).  With
``--baseline FILE`` previously-accepted findings are subtracted, so
the exit status reflects *new* violations only; ``--write-baseline``
refreshes the file.  The exit status is nonzero when any remaining
finding reaches ``--fail-on`` severity (default: ``error``), making
the command directly usable as a CI gate and as a pre-commit hook.

``--incremental`` serves per-module findings from a content-hash
cache under ``--cache-dir`` (default ``.repro-analysis-cache/``) and
re-analyzes only changed modules plus their reverse-import closure;
``--stats`` reports per-pass wall time and cache hits/misses on
stderr (``--stats-json FILE`` writes the same as JSON for CI
artifacts).

Examples::

    python -m repro.analysis
    python -m repro.analysis src/repro --no-graph --format json
    python -m repro.analysis --format sarif > analysis.sarif
    python -m repro.analysis --baseline analysis-baseline.json
    python -m repro.analysis --incremental --stats
    python -m repro.analysis --graph mygraphs.py:build_graph --fail-on warning
    python -m repro.analysis schedcheck --apps stentboost,ultrasound --cores 8

The ``schedcheck`` subcommand runs the scenario-space schedulability
model checker over composite workload mixes instead of the default
suite (see :mod:`repro.analysis.schedcheck_cli`).
"""

from __future__ import annotations

import argparse
import importlib
import importlib.util
import sys
from pathlib import Path
from typing import Callable, Sequence

from repro.analysis.astlint import lint_paths
from repro.analysis.baseline import filter_baselined, load_baseline, write_baseline
from repro.analysis.catalog import rule_catalog
from repro.analysis.dataflow import run_dataflow
from repro.analysis.dataflow.symbols import build_symbol_table, iter_source_files
from repro.analysis.effects import check_perf, infer_effects, run_effects
from repro.analysis.findings import (
    Finding,
    Severity,
    count_at_least,
    findings_to_json,
    format_findings,
)
from repro.analysis.graphcheck import (
    ALL_SCENARIO_IDS,
    check_flowgraph,
    scenario_ids_for,
)
from repro.analysis.incremental import (
    ALL_PASSES,
    DEFAULT_CACHE_DIR,
    AnalysisStats,
    _Timer,
    run_incremental,
)
from repro.analysis.rules import default_rules
from repro.analysis.sarif import findings_to_sarif_json
from repro.analysis.suppress import apply_suppressions, scan_suppressions
from repro.graph.flowgraph import FlowGraph

__all__ = ["build_parser", "main"]

#: Sentinel: check every graph in the workload registry.
WORKLOADS_GRAPH = "workloads"

DEFAULT_GRAPH = WORKLOADS_GRAPH
DEFAULT_PLATFORM = "repro.hw.spec:blackford"


def _load_factory(spec: str) -> Callable[[], object]:
    """Load ``module:callable`` or ``path/to/file.py:callable``."""
    target, sep, attr = spec.partition(":")
    if not sep or not attr:
        raise argparse.ArgumentTypeError(
            f"expected MODULE:CALLABLE or FILE.py:CALLABLE, got {spec!r}"
        )
    if target.endswith(".py") or "/" in target:
        module_spec = importlib.util.spec_from_file_location(
            "_repro_analysis_target", target
        )
        if module_spec is None or module_spec.loader is None:
            raise argparse.ArgumentTypeError(f"cannot load module from {target!r}")
        module = importlib.util.module_from_spec(module_spec)
        module_spec.loader.exec_module(module)
    else:
        module = importlib.import_module(target)
    factory = getattr(module, attr, None)
    if not callable(factory):
        raise argparse.ArgumentTypeError(
            f"{target!r} has no callable {attr!r}"
        )
    return factory


def _default_lint_root() -> Path:
    """The installed ``repro`` package directory."""
    import repro

    return Path(repro.__file__).resolve().parent


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.analysis",
        description=(
            "static-analysis suite: flow-graph invariants + AST lint + "
            "whole-program dataflow (units, determinism)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files/directories to analyze (default: the repro package)",
    )
    parser.add_argument(
        "--graph",
        default=DEFAULT_GRAPH,
        help=f"flow-graph factory MODULE:CALLABLE or FILE.py:CALLABLE "
        f"(default: {DEFAULT_GRAPH})",
    )
    parser.add_argument(
        "--platform",
        default=DEFAULT_PLATFORM,
        help=f"platform-spec factory (default: {DEFAULT_PLATFORM}); "
        "pass an empty string to skip resource-budget checks",
    )
    parser.add_argument(
        "--no-graph", action="store_true", help="skip the flow-graph checks"
    )
    parser.add_argument(
        "--no-lint", action="store_true", help="skip the AST lint"
    )
    parser.add_argument(
        "--no-dataflow",
        action="store_true",
        help="skip the whole-program dataflow passes",
    )
    parser.add_argument(
        "--no-effects",
        action="store_true",
        help="skip the effect passes (race detector + contracts)",
    )
    parser.add_argument(
        "--no-perf",
        action="store_true",
        help="skip the perf-smell pass",
    )
    parser.add_argument(
        "--incremental",
        action="store_true",
        help="serve unchanged modules from the content-hash cache; "
        "re-analyze only changed modules and their importers",
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=DEFAULT_CACHE_DIR,
        metavar="DIR",
        help=f"incremental cache directory (default: {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="report per-pass wall time and cache hits/misses on stderr",
    )
    parser.add_argument(
        "--stats-json",
        type=Path,
        default=None,
        metavar="FILE",
        help="write the --stats payload as JSON (CI artifact)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        metavar="FILE",
        help="subtract a committed baseline; only new findings remain",
    )
    parser.add_argument(
        "--write-baseline",
        type=Path,
        default=None,
        metavar="FILE",
        help="write the current findings as a baseline and exit 0",
    )
    parser.add_argument(
        "--fail-on",
        type=Severity.parse,
        default=Severity.ERROR,
        metavar="{error,warning,info}",
        help="minimum severity that makes the exit status nonzero "
        "(default: error)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the full rule catalog and exit",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "schedcheck":
        # Subcommand: the scenario-space schedulability checker.  A
        # plain positional would collide with the PATH arguments of
        # the default suite, so it is dispatched before parsing.
        from repro.analysis.schedcheck_cli import main as schedcheck_main

        return schedcheck_main(argv[1:])
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for rule_id, (severity, description) in rule_catalog().items():
            print(f"{rule_id:32s} {severity.name.lower():8s} {description}")
        return 0

    findings: list[Finding] = []
    roots = list(args.paths) or [_default_lint_root()]
    missing = [p for p in roots if not p.exists()]
    if missing:
        raise SystemExit(f"no such path: {', '.join(map(str, missing))}")

    passes = [
        name
        for name, skipped in (
            ("lint", args.no_lint),
            ("dataflow", args.no_dataflow),
            ("effects", args.no_effects),
            ("perf", args.no_perf),
        )
        if not skipped
    ]
    assert set(passes) <= set(ALL_PASSES)
    stats = AnalysisStats()

    if args.incremental:
        result = run_incremental(roots, cache_dir=args.cache_dir, passes=passes)
        findings += result.findings
        stats = result.stats
    else:
        # One symbol table feeds every whole-program pass.
        if "lint" in passes:
            with _Timer(stats, "lint"):
                findings += lint_paths(roots, default_rules())
        table = None
        if {"dataflow", "effects", "perf"} & set(passes):
            with _Timer(stats, "parse"):
                table = build_symbol_table(roots)
        if table is not None and "dataflow" in passes:
            with _Timer(stats, "dataflow"):
                findings += run_dataflow(roots, table=table)
        if table is not None and "effects" in passes:
            with _Timer(stats, "effects"):
                findings += run_effects(table, infer_effects(table))
        if table is not None and "perf" in passes:
            with _Timer(stats, "perf"):
                findings += check_perf(table)
        stats.analyzed = [str(f) for f in iter_source_files(roots)]
        stats.cache_misses = len(stats.analyzed)

    if not args.no_graph:
        try:
            if args.graph == WORKLOADS_GRAPH:
                from repro.workloads import all_workloads

                # The scenario id range follows each workload's own
                # switch set rather than assuming the StentBoost eight.
                graphs = [
                    (wl.build_graph(), scenario_ids_for(wl.switch_names))
                    for wl in all_workloads()
                ]
            else:
                graphs = [(_load_factory(args.graph)(), ALL_SCENARIO_IDS)]
            platform_factory = (
                _load_factory(args.platform) if args.platform else None
            )
        except (argparse.ArgumentTypeError, ImportError) as exc:
            raise SystemExit(f"repro.analysis: error: {exc}") from exc
        platform = platform_factory() if platform_factory is not None else None
        for graph, scenario_ids in graphs:
            if not isinstance(graph, FlowGraph):
                raise SystemExit(
                    f"graph factory {args.graph!r} returned "
                    f"{type(graph).__name__}, expected FlowGraph"
                )
            findings += check_flowgraph(graph, platform, scenario_ids)

    if not args.incremental:
        # Inline suppressions apply to everything located at a
        # path:line.  (The incremental engine applies them to dirty
        # modules itself; cached findings are already post-suppression,
        # and re-scanning clean files here would flag every marker in
        # them as stale.)
        markers = scan_suppressions(iter_source_files(roots))
        findings = apply_suppressions(findings, markers)

    if args.stats or args.stats_json is not None:
        if args.stats:
            print(stats.render(), file=sys.stderr)
        if args.stats_json is not None:
            args.stats_json.write_text(stats.to_json() + "\n", encoding="utf-8")

    if args.write_baseline is not None:
        write_baseline(args.write_baseline, findings)
        print(f"wrote {len(findings)} finding(s) to {args.write_baseline}")
        return 0

    if args.baseline is not None:
        try:
            baseline = load_baseline(args.baseline)
        except (OSError, ValueError, KeyError) as exc:
            raise SystemExit(f"repro.analysis: error: {exc}") from exc
        findings = filter_baselined(findings, baseline)

    if args.format == "json":
        print(findings_to_json(findings))
    elif args.format == "sarif":
        descriptions = {
            rule_id: description
            for rule_id, (_, description) in rule_catalog().items()
        }
        print(findings_to_sarif_json(findings, descriptions))
    else:
        print(format_findings(findings))

    return 1 if count_at_least(findings, args.fail_on) else 0
