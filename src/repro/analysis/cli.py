"""``python -m repro.analysis`` -- run the static-analysis suite.

By default both passes run:

* the AST lint over the ``repro`` package sources (or explicit paths),
* the graph checker over the StentBoost flow graph on the Blackford
  platform.

The exit status is nonzero when any finding reaches ``--fail-on``
severity (default: ``error``), making the command directly usable as
a CI gate and as a pre-commit hook.

Examples::

    python -m repro.analysis
    python -m repro.analysis src/repro --no-graph --format json
    python -m repro.analysis --graph mygraphs.py:build_graph --fail-on warning
"""

from __future__ import annotations

import argparse
import importlib
import importlib.util
from pathlib import Path
from typing import Callable, Sequence

from repro.analysis.findings import (
    Finding,
    Severity,
    count_at_least,
    findings_to_json,
    format_findings,
)
from repro.analysis.graphcheck import check_flowgraph
from repro.analysis.astlint import lint_paths
from repro.analysis.rules import default_rules
from repro.graph.flowgraph import FlowGraph

__all__ = ["build_parser", "main"]

DEFAULT_GRAPH = "repro.graph.stentboost:build_stentboost_graph"
DEFAULT_PLATFORM = "repro.hw.spec:blackford"


def _load_factory(spec: str) -> Callable[[], object]:
    """Load ``module:callable`` or ``path/to/file.py:callable``."""
    target, sep, attr = spec.partition(":")
    if not sep or not attr:
        raise argparse.ArgumentTypeError(
            f"expected MODULE:CALLABLE or FILE.py:CALLABLE, got {spec!r}"
        )
    if target.endswith(".py") or "/" in target:
        module_spec = importlib.util.spec_from_file_location(
            "_repro_analysis_target", target
        )
        if module_spec is None or module_spec.loader is None:
            raise argparse.ArgumentTypeError(f"cannot load module from {target!r}")
        module = importlib.util.module_from_spec(module_spec)
        module_spec.loader.exec_module(module)
    else:
        module = importlib.import_module(target)
    factory = getattr(module, attr, None)
    if not callable(factory):
        raise argparse.ArgumentTypeError(
            f"{target!r} has no callable {attr!r}"
        )
    return factory


def _default_lint_root() -> Path:
    """The installed ``repro`` package directory."""
    import repro

    return Path(repro.__file__).resolve().parent


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.analysis",
        description="static-analysis suite: flow-graph invariants + AST lint",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files/directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--graph",
        default=DEFAULT_GRAPH,
        help=f"flow-graph factory MODULE:CALLABLE or FILE.py:CALLABLE "
        f"(default: {DEFAULT_GRAPH})",
    )
    parser.add_argument(
        "--platform",
        default=DEFAULT_PLATFORM,
        help=f"platform-spec factory (default: {DEFAULT_PLATFORM}); "
        "pass an empty string to skip resource-budget checks",
    )
    parser.add_argument(
        "--no-graph", action="store_true", help="skip the flow-graph checks"
    )
    parser.add_argument(
        "--no-lint", action="store_true", help="skip the AST lint"
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--fail-on",
        type=Severity.parse,
        default=Severity.ERROR,
        metavar="{error,warning,info}",
        help="minimum severity that makes the exit status nonzero "
        "(default: error)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the lint rule set and exit",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    rules = default_rules()
    if args.list_rules:
        for rule in rules:
            print(f"{rule.rule_id:24s} {rule.description}")
        return 0

    findings: list[Finding] = []

    if not args.no_lint:
        lint_roots = list(args.paths) or [_default_lint_root()]
        missing = [p for p in lint_roots if not p.exists()]
        if missing:
            raise SystemExit(f"no such path: {', '.join(map(str, missing))}")
        findings += lint_paths(lint_roots, rules)

    if not args.no_graph:
        try:
            graph = _load_factory(args.graph)()
            platform_factory = (
                _load_factory(args.platform) if args.platform else None
            )
        except (argparse.ArgumentTypeError, ImportError) as exc:
            raise SystemExit(f"repro.analysis: error: {exc}") from exc
        if not isinstance(graph, FlowGraph):
            raise SystemExit(
                f"graph factory {args.graph!r} returned "
                f"{type(graph).__name__}, expected FlowGraph"
            )
        platform = platform_factory() if platform_factory is not None else None
        findings += check_flowgraph(graph, platform)

    if args.format == "json":
        print(findings_to_json(findings))
    else:
        print(format_findings(findings))

    return 1 if count_at_least(findings, args.fail_on) else 0
