"""Structured findings shared by the static-analysis passes.

Both the flow-graph checker (:mod:`repro.analysis.graphcheck`) and the
AST lint (:mod:`repro.analysis.astlint`) report problems as
:class:`Finding` values rather than raising or printing, so callers --
the CLI, the tier-2 self-check test, future CI annotations -- can
filter by severity, render in several formats and decide the exit
code uniformly.
"""

from __future__ import annotations

import enum
import json
from dataclasses import asdict, dataclass
from typing import Iterable, Sequence

__all__ = [
    "Severity",
    "Finding",
    "max_severity",
    "count_at_least",
    "sort_key",
    "format_findings",
    "findings_to_json",
]


class Severity(enum.IntEnum):
    """Ordered severity of a finding.

    ``INFO`` records expected-but-notable facts (e.g. a task whose
    working set overflows the L2 by design, feeding the Fig. 5 swap
    model); ``WARNING`` marks suspicious constructs; ``ERROR`` marks
    invariant violations that would corrupt predictions at runtime.
    """

    INFO = 0
    WARNING = 1
    ERROR = 2

    @classmethod
    def parse(cls, name: str) -> "Severity":
        try:
            return cls[name.upper()]
        except KeyError:
            raise ValueError(
                f"unknown severity {name!r}; expected one of "
                f"{[s.name.lower() for s in cls]}"
            ) from None


@dataclass(frozen=True)
class Finding:
    """One problem located by a static-analysis pass.

    Attributes
    ----------
    rule:
        Stable rule identifier (``graph/cycle``, ``lint/banned-random`` ...).
    severity:
        How bad it is; only ``ERROR`` findings fail the CLI by default.
    location:
        Where: ``path:line`` for lint findings, a graph element
        description (edge, task, scenario) for graph findings.
    message:
        Human-readable, single-line explanation.
    """

    rule: str
    severity: Severity
    location: str
    message: str

    def render(self) -> str:
        """``location: severity [rule] message`` -- one line."""
        return (
            f"{self.location}: {self.severity.name.lower()} "
            f"[{self.rule}] {self.message}"
        )


def max_severity(findings: Iterable[Finding]) -> Severity | None:
    """Highest severity present, or ``None`` for an empty run."""
    best: Severity | None = None
    for f in findings:
        if best is None or f.severity > best:
            best = f.severity
    return best


def count_at_least(findings: Iterable[Finding], threshold: Severity) -> int:
    """Number of findings at or above ``threshold``."""
    return sum(1 for f in findings if f.severity >= threshold)


def sort_key(finding: Finding) -> tuple[str, int, str, str]:
    """``(path, line, rule, message)`` ordering key.

    Numeric line components sort numerically (``:9`` before ``:10``),
    graph-element locations sort as line 0 of their description, so
    repeated runs and CI diffs are byte-stable.
    """
    head, sep, tail = finding.location.rpartition(":")
    if sep and tail.isdigit():
        return (head, int(tail), finding.rule, finding.message)
    return (finding.location, 0, finding.rule, finding.message)


def format_findings(findings: Sequence[Finding]) -> str:
    """Render findings as text, sorted by (path, line, rule)."""
    ordered = sorted(findings, key=sort_key)
    lines = [f.render() for f in ordered]
    counts = {
        sev: sum(1 for f in findings if f.severity == sev) for sev in Severity
    }
    summary = ", ".join(
        f"{counts[sev]} {sev.name.lower()}" for sev in reversed(Severity) if counts[sev]
    )
    lines.append(f"{len(findings)} finding(s): {summary}" if findings else "clean")
    return "\n".join(lines)


def findings_to_json(findings: Sequence[Finding]) -> str:
    """Machine-readable rendering (one JSON document, stable keys),
    in the same (path, line, rule) order as the text format."""
    payload = [
        {**asdict(f), "severity": f.severity.name.lower()}
        for f in sorted(findings, key=sort_key)
    ]
    return json.dumps(payload, indent=2, sort_keys=True)
