"""Triple-C: resource-usage prediction for semi-automatic
parallelization of groups of dynamic image-processing tasks.

Reproduction of Albers, Suijs & de With, IEEE IPDPS 2009
(DOI 10.1109/IPDPS.2009.5160942).

Package map
-----------
``repro.synthetic``
    Synthetic X-ray angiography sequences (the data substrate).
``repro.imaging``
    The StentBoost image-analysis pipeline (the application).
``repro.graph``
    Structural flow-graph model: tasks, switches, scenarios, Table 1.
``repro.hw``
    Deterministic platform model: cost model, caches, simulator.
``repro.profiling``
    Trace collection (the paper's profiling step).
``repro.core``
    **Triple-C itself**: Markov chains, EWMA+Markov computation
    predictors, cache and bandwidth models, accuracy metrics.
``repro.runtime``
    Semi-automatic parallelization: partitioner, QoS, manager,
    baselines, co-scheduling.
``repro.experiments``
    One module per paper table/figure; regenerates every number.
``repro.workloads``
    Workload registry: named application bundles (flow graph +
    pipeline + corpus + fleet parameters); StentBoost is one entry.
"""

from repro.core import TripleC, TripleCPrediction, prediction_accuracy
from repro.hw import CostModel, Mapping, PlatformSimulator, blackford
from repro.imaging import StentBoostPipeline
from repro.profiling import ProfileConfig, profile_corpus, profile_sequence
from repro.runtime import ResourceManager, run_straightforward, run_worst_case
from repro.synthetic import CorpusSpec, SequenceConfig, XRaySequence, generate_corpus
from repro.workloads import DEFAULT_WORKLOAD, Workload, get_workload, workload_names

__version__ = "1.0.0"

__all__ = [
    "TripleC",
    "TripleCPrediction",
    "prediction_accuracy",
    "DEFAULT_WORKLOAD",
    "Workload",
    "get_workload",
    "workload_names",
    "blackford",
    "CostModel",
    "Mapping",
    "PlatformSimulator",
    "StentBoostPipeline",
    "ProfileConfig",
    "profile_corpus",
    "profile_sequence",
    "ResourceManager",
    "run_straightforward",
    "run_worst_case",
    "CorpusSpec",
    "SequenceConfig",
    "XRaySequence",
    "generate_corpus",
    "__version__",
]
