"""Synthetic X-ray angiography sequences.

The paper trains and evaluates Triple-C on 37 clinical fluoroscopy
sequences (1,921 frames) that we cannot have.  This package generates
the closest synthetic equivalent: a coronary-angioplasty phantom with
a balloon-marker pair, guide wire, stent mesh, vessels, cardiac and
respiratory motion, contrast-agent phases and X-ray quantum noise.

What matters for the reproduction is not photorealism but that the
*timing statistics* of the image-analysis tasks driven by these frames
have the same structure as the paper's: slow content-driven drift
(EWMA-trackable), exponentially-decorrelating frame-to-frame
fluctuation (Markov-modelable) and data-dependent scenario switching.
Every generator is deterministic in its seed.
"""

from repro.synthetic.dataset import (
    CorpusRanges,
    CorpusSpec,
    corpus_configs,
    generate_corpus,
)
from repro.synthetic.motion import MotionModel, MotionSpec, RigidOffset
from repro.synthetic.noise import NoiseSpec, apply_xray_noise
from repro.synthetic.phantom import PhantomSpec, build_phantom
from repro.synthetic.sequence import SequenceConfig, XRaySequence

__all__ = [
    "PhantomSpec",
    "build_phantom",
    "MotionModel",
    "MotionSpec",
    "RigidOffset",
    "NoiseSpec",
    "apply_xray_noise",
    "SequenceConfig",
    "XRaySequence",
    "CorpusRanges",
    "CorpusSpec",
    "corpus_configs",
    "generate_corpus",
]
