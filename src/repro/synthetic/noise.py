"""X-ray quantum and electronic noise.

Fluoroscopy runs at low dose, so quantum (photon-counting) noise
dominates: the variance of a pixel is proportional to its signal.  We
use the standard Gaussian approximation of Poisson statistics --
``sigma = sqrt(I / dose)`` -- plus a small signal-independent
electronic noise floor.  The ``dose`` knob is the main SNR control and
one of the content drivers of short-term computation-time fluctuation
(noisier frames yield more spurious ridge/marker candidates).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from numpy.typing import NDArray

__all__ = ["NoiseSpec", "apply_xray_noise"]


@dataclass(frozen=True)
class NoiseSpec:
    """Noise parameters.

    Attributes
    ----------
    dose:
        Relative photon dose; larger is cleaner.  Quantum noise sigma
        is ``sqrt(I) * quantum_scale / sqrt(dose)``.
    quantum_scale:
        Overall quantum-noise magnitude at ``dose == 1``.
    electronic_sigma:
        Signal-independent additive Gaussian noise.
    """

    dose: float = 1.0
    quantum_scale: float = 0.03
    electronic_sigma: float = 0.005

    def __post_init__(self) -> None:
        if self.dose <= 0:
            raise ValueError("dose must be positive")


def apply_xray_noise(
    clean: NDArray[np.float32],
    spec: NoiseSpec,
    rng: np.random.Generator,
) -> NDArray[np.float32]:
    """Return a noisy copy of ``clean`` (values clipped to [0, 1]).

    The input is the noiseless detected intensity in [0, 1]; output has
    quantum noise with per-pixel variance proportional to intensity and
    an additive electronic floor.
    """
    clean = np.asarray(clean, dtype=np.float32)
    sigma_q = spec.quantum_scale / np.sqrt(spec.dose)
    # Quantum and electronic components are independent Gaussians, so
    # their sum is a single Gaussian with the combined variance -- one
    # draw suffices (halves the RNG cost of frame rendering).
    var = np.clip(clean, 0.0, None) * np.float32(sigma_q**2)
    var += np.float32(spec.electronic_sigma**2)
    noise = rng.standard_normal(clean.shape).astype(np.float32)
    noise *= np.sqrt(var, out=var)
    noisy = clean + noise
    np.clip(noisy, 0.0, 1.0, out=noisy)
    return noisy
