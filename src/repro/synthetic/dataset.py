"""Training / test corpus builder.

The paper trains its prediction models on "a data set of 37 video
sequences of in total 1,921 video frames" in which "different
scenarios exist to create the dynamics in algorithmic adaptation and
switching" (Section 7).  ``corpus_configs`` reproduces that setup
synthetically: 37 sequences whose lengths sum to 1,921 frames, with
per-sequence variation of dose, motion, contrast schedule, clutter and
marker visibility so that all eight flow-graph scenarios occur.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.synthetic.motion import MotionSpec
from repro.synthetic.noise import NoiseSpec
from repro.synthetic.sequence import SequenceConfig, XRaySequence
from repro.util.rng import rng_stream, spawn_seeds

__all__ = ["CorpusSpec", "CorpusRanges", "corpus_configs", "generate_corpus"]

#: Paper values (Section 7).
PAPER_N_SEQUENCES: int = 37
PAPER_TOTAL_FRAMES: int = 1921


@dataclass(frozen=True)
class CorpusSpec:
    """Parameters of a corpus of sequences.

    Defaults match the paper's training set size; tests shrink both
    numbers for speed.
    """

    n_sequences: int = PAPER_N_SEQUENCES
    total_frames: int = PAPER_TOTAL_FRAMES
    width: int = 256
    height: int = 256
    base_seed: int = 2009

    def __post_init__(self) -> None:
        if self.n_sequences < 1:
            raise ValueError("need at least one sequence")
        if self.total_frames < self.n_sequences * 8:
            raise ValueError(
                "total_frames too small: need >= 8 frames per sequence"
            )


@dataclass(frozen=True)
class CorpusRanges:
    """Per-sequence parameter ranges of a corpus (the load dynamics).

    Each field is the ``(low, high)`` bound of one uniform draw in
    :func:`corpus_configs`; ``visibility_dips`` bounds an integer draw
    (``high`` exclusive).  The defaults are the StentBoost training
    dynamics -- the draw *order* is fixed, so the default ranges
    reproduce the historical corpus bit for bit, while a workload with
    different dynamics (slow drift, abrupt switching) only supplies
    different bounds.
    """

    cardiac_period: tuple[float, float] = (18.0, 30.0)
    cardiac_amp: tuple[float, float] = (2.0, 6.0)
    resp_period: tuple[float, float] = (90.0, 150.0)
    resp_amp: tuple[float, float] = (3.0, 9.0)
    tremor_sigma: tuple[float, float] = (0.2, 0.6)
    rotation_amp: tuple[float, float] = (0.02, 0.09)
    dose: tuple[float, float] = (0.5, 2.0)
    contrast_base: tuple[float, float] = (0.25, 0.5)
    washout_frames: tuple[float, float] = (80.0, 200.0)
    clutter_period: tuple[float, float] = (60.0, 140.0)
    clutter_level: tuple[float, float] = (0.3, 1.1)
    visibility_dips: tuple[int, int] = (0, 3)


def _frame_budget(spec: CorpusSpec, rng: np.random.Generator) -> list[int]:
    """Split ``total_frames`` into per-sequence lengths (each >= 8)."""
    weights = rng.uniform(0.5, 1.8, size=spec.n_sequences)
    raw = weights / weights.sum() * spec.total_frames
    lengths = np.maximum(8, np.floor(raw).astype(int))
    # Distribute the rounding remainder one frame at a time.
    diff = spec.total_frames - int(lengths.sum())
    order = rng.permutation(spec.n_sequences)
    i = 0
    while diff != 0:
        idx = order[i % spec.n_sequences]
        if diff > 0:
            lengths[idx] += 1
            diff -= 1
        elif lengths[idx] > 8:
            lengths[idx] -= 1
            diff += 1
        i += 1
    return [int(n) for n in lengths]


def corpus_configs(
    spec: CorpusSpec | None = None,
    ranges: CorpusRanges | None = None,
) -> list[SequenceConfig]:
    """Build the per-sequence configs of a corpus (deterministic).

    ``ranges`` selects the application's load dynamics (default: the
    StentBoost training dynamics); the draw order is identical for
    every ranges choice, so the default is bit-identical to the
    historical generator.
    """
    spec = spec or CorpusSpec()
    r = ranges or CorpusRanges()
    rng = rng_stream(spec.base_seed, "corpus")
    seeds = spawn_seeds(spec.base_seed, spec.n_sequences, "corpus-seeds")
    lengths = _frame_budget(spec, rng)

    configs: list[SequenceConfig] = []
    for i in range(spec.n_sequences):
        n = lengths[i]
        motion = MotionSpec(
            cardiac_period=float(rng.uniform(*r.cardiac_period)),
            cardiac_amp=float(rng.uniform(*r.cardiac_amp)),
            resp_period=float(rng.uniform(*r.resp_period)),
            resp_amp=float(rng.uniform(*r.resp_amp)),
            tremor_sigma=float(rng.uniform(*r.tremor_sigma)),
            rotation_amp=float(rng.uniform(*r.rotation_amp)),
        )
        noise = NoiseSpec(dose=float(rng.uniform(*r.dose)))
        inject = int(rng.integers(-1, max(2, n // 2)))
        configs.append(
            SequenceConfig(
                width=spec.width,
                height=spec.height,
                n_frames=n,
                seed=seeds[i],
                motion=motion,
                noise=noise,
                contrast_base=float(rng.uniform(*r.contrast_base)),
                injection_frame=inject,
                washout_frames=float(rng.uniform(*r.washout_frames)),
                clutter_period=float(rng.uniform(*r.clutter_period)),
                clutter_level=float(rng.uniform(*r.clutter_level)),
                visibility_dips=int(rng.integers(*r.visibility_dips)),
            )
        )
    return configs


def generate_corpus(spec: CorpusSpec | None = None) -> list[XRaySequence]:
    """Instantiate (lazily rendering) sequences for a corpus spec."""
    return [XRaySequence(cfg) for cfg in corpus_configs(spec)]
